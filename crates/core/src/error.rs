use std::fmt;

use mutree_distmat::MatrixError;
use mutree_tree::TreeError;

/// Errors from the MUT solver and the compact-set pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum MutError {
    /// The exact search encodes leaf sets as fixed-width bitsets, the
    /// widest monomorphized width being [`MAX_EXACT_TAXA`] taxa
    /// (`crate::MAX_EXACT_TAXA`); matrices beyond that must go through
    /// the compact-set pipeline (which decomposes them) or be reduced
    /// some other way.
    ///
    /// [`MAX_EXACT_TAXA`]: crate::MAX_EXACT_TAXA
    TooManyTaxa {
        /// Number of taxa requested.
        n: usize,
        /// The supported maximum for a single exact search.
        max: usize,
    },
    /// The pipeline could not reduce the problem below the exact-search
    /// limit: the matrix has too little compact structure.
    NotDecomposable {
        /// Number of groups the best decomposition produced.
        groups: usize,
        /// The exact-search limit the groups must fit within.
        max: usize,
    },
    /// The search was stopped (deadline, cancellation, …) before *any*
    /// feasible tree existed — possible only when the UPGMM initial
    /// incumbent is disabled; with it on, an interrupted solve still
    /// returns that incumbent.
    Interrupted {
        /// Why the search stopped.
        reason: mutree_bnb::StopReason,
    },
    /// A checkpoint file could not be read, verified or decoded for a
    /// resume — corrupt or truncated files refuse loudly rather than
    /// silently warm-starting from wrong data.
    Checkpoint {
        /// What went wrong (I/O failure, checksum mismatch, bad payload…).
        message: String,
    },
    /// A solve request's input could not be loaded — the matrix file was
    /// missing or failed to parse, or the request itself was malformed.
    Input {
        /// What went wrong.
        message: String,
    },
    /// An underlying matrix error.
    Matrix(MatrixError),
    /// An underlying tree error.
    Tree(TreeError),
}

impl fmt::Display for MutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutError::TooManyTaxa { n, max } => {
                write!(f, "exact search supports at most {max} taxa, got {n}")
            }
            MutError::NotDecomposable { groups, max } => write!(
                f,
                "compact-set decomposition still leaves {groups} groups (limit {max})"
            ),
            MutError::Interrupted { reason } => {
                write!(
                    f,
                    "search stopped ({reason}) before any feasible tree was found"
                )
            }
            MutError::Checkpoint { message } => write!(f, "checkpoint error: {message}"),
            MutError::Input { message } => write!(f, "input error: {message}"),
            MutError::Matrix(e) => write!(f, "matrix error: {e}"),
            MutError::Tree(e) => write!(f, "tree error: {e}"),
        }
    }
}

impl std::error::Error for MutError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MutError::Matrix(e) => Some(e),
            MutError::Tree(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MatrixError> for MutError {
    fn from(e: MatrixError) -> Self {
        MutError::Matrix(e)
    }
}

impl From<TreeError> for MutError {
    fn from(e: TreeError) -> Self {
        MutError::Tree(e)
    }
}
