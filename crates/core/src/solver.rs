use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mutree_bnb::{
    checkpoint, solve_parallel_observed, solve_parallel_pooled, solve_sequential_observed,
    BoundKernel, CancelToken, CheckpointFile, CheckpointPolicy, LoggingObserver, MemoryBudget,
    PruneStrategy, SearchMode, SearchOptions, SearchStats, StopReason, Strategy,
};
use mutree_clustersim::{ClusterSpec, SimReport};
use mutree_distmat::DistanceMatrix;
use mutree_tree::{newick, UltrametricTree};

use crate::{solve_simulated_observed, Executor, MutError, MutProblem, ThreeThree};

/// Leaf-bitset widths (in 64-bit words) the exact search is
/// monomorphized for, narrowest first. Each width `K` handles up to
/// `64·K` taxa; [`MutSolver::solve`] dispatches to the narrowest fit so
/// the historical `K = 1` hot path compiles to exactly the single-`u64`
/// code it always was.
pub const LEAF_WIDTHS: [usize; 3] = [1, 2, 4];

/// Taxa ceiling of a single exact search: the widest monomorphized
/// leaf-bitset width (`LeafWords<4>`) holds 256 leaves. Matrices beyond
/// this must go through [`CompactPipeline`](crate::CompactPipeline).
pub const MAX_EXACT_TAXA: usize = 64 * LEAF_WIDTHS[LEAF_WIDTHS.len() - 1];

/// The leaf-bitset width (in 64-bit words) the engine dispatches an
/// `n`-taxon exact solve to: the narrowest entry of [`LEAF_WIDTHS`] that
/// fits, or `None` beyond [`MAX_EXACT_TAXA`].
pub fn leaf_words_for(n: usize) -> Option<usize> {
    LEAF_WIDTHS.iter().copied().find(|&k| n <= 64 * k)
}

/// The `MUTREE_FORCE_LEAF_WORDS` override, validated against
/// [`LEAF_WIDTHS`]: a supported width forces every solve in the process
/// onto at least that many leaf words (the differential CI pass pins it
/// to 2 so the whole suite runs the wide path). Unset, empty or
/// unsupported values mean no override. The raw read lives in
/// [`mutree_engine::plan`] with the other environment hooks; it happens
/// per solve, not cached, so tests can toggle it.
fn env_forced_leaf_words() -> Option<usize> {
    mutree_engine::plan::env_forced_leaf_words().filter(|w| LEAF_WIDTHS.contains(w))
}

/// Which execution backend runs the branch-and-bound search.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchBackend {
    /// Single-threaded depth-first search (Algorithm BBU as published).
    Sequential,
    /// Master/slave thread-parallel search with global and local pools.
    Parallel {
        /// Number of worker threads (the paper's slave computing nodes).
        workers: usize,
    },
    /// Deterministic discrete-event simulation of the paper's PC cluster;
    /// produces identical optima plus virtual-time measurements.
    SimulatedCluster {
        /// The simulated cluster configuration.
        spec: ClusterSpec,
    },
}

/// A solved minimum ultrametric tree instance.
#[derive(Debug, Clone)]
pub struct MutSolution {
    /// An optimal ultrametric tree, taxa in the *original* matrix indexing.
    pub tree: UltrametricTree,
    /// Its weight — the minimum over all ultrametric trees for the matrix.
    pub weight: f64,
    /// All optimal trees when solving with [`SearchMode::AllOptimal`]
    /// (deduplicated by topology); otherwise just the one tree.
    pub trees: Vec<UltrametricTree>,
    /// Search counters (branched, pruned, incumbent updates, …).
    pub stats: SearchStats,
    /// Why the search stopped. Anything other than
    /// [`StopReason::Completed`] means `weight` is only an upper bound.
    pub stop: StopReason,
    /// Virtual-time measurements when the simulated-cluster backend ran.
    pub sim: Option<SimReport>,
}

impl MutSolution {
    /// Whether the search space was exhausted, making `weight` the proven
    /// minimum.
    pub fn is_complete(&self) -> bool {
        self.stop.is_complete()
    }
}

/// Builder-style front end for exact minimum ultrametric tree search.
///
/// ```
/// use mutree_distmat::DistanceMatrix;
/// use mutree_core::{MutSolver, SearchBackend, SearchMode};
///
/// let m = DistanceMatrix::from_rows(&[
///     vec![0.0, 3.0, 8.0],
///     vec![3.0, 0.0, 7.0],
///     vec![8.0, 7.0, 0.0],
/// ]).unwrap();
/// let sol = MutSolver::new()
///     .backend(SearchBackend::Parallel { workers: 2 })
///     .mode(SearchMode::AllOptimal)
///     .solve(&m)
///     .unwrap();
/// assert!(sol.tree.is_feasible_for(&m, 1e-9));
/// ```
#[derive(Debug, Clone)]
pub struct MutSolver {
    backend: SearchBackend,
    mode: SearchMode,
    strategy: Strategy,
    three_three: ThreeThree,
    max_branches: u64,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    use_maxmin: bool,
    use_upgmm: bool,
    executor: Option<Executor>,
    trace: Option<LoggingObserver>,
    panic_on_taxa: Option<usize>,
    panic_fuel: Option<(usize, Arc<AtomicU64>)>,
    leaf_words: Option<usize>,
    bound_kernel: Option<BoundKernel>,
    prune: Option<PruneStrategy>,
    frontier_shards: Option<usize>,
    memory: Option<MemoryBudget>,
    checkpoint: Option<CheckpointPolicy>,
    resume: Option<PathBuf>,
    seed: Option<UltrametricTree>,
}

impl Default for MutSolver {
    fn default() -> Self {
        MutSolver::new()
    }
}

impl MutSolver {
    /// A sequential, best-one solver with maxmin relabeling, the UPGMM
    /// initial bound and no 3-3 rule — Algorithm BBU's published
    /// configuration.
    pub fn new() -> Self {
        MutSolver {
            backend: SearchBackend::Sequential,
            mode: SearchMode::BestOne,
            strategy: Strategy::DepthFirst,
            three_three: ThreeThree::Off,
            max_branches: u64::MAX,
            deadline: None,
            cancel: None,
            use_maxmin: true,
            use_upgmm: true,
            executor: None,
            trace: None,
            panic_on_taxa: None,
            panic_fuel: None,
            leaf_words: None,
            bound_kernel: None,
            prune: None,
            frontier_shards: None,
            memory: None,
            checkpoint: None,
            resume: None,
            seed: None,
        }
    }

    /// Selects the execution backend.
    pub fn backend(mut self, backend: SearchBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Find one optimum or enumerate all of them.
    pub fn mode(mut self, mode: SearchMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the sequential backend's node-selection strategy (the
    /// parallel and simulated backends always run depth-first per worker,
    /// as the papers do).
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the 3-3 relationship pruning strength.
    pub fn three_three(mut self, rule: ThreeThree) -> Self {
        self.three_three = rule;
        self
    }

    /// Caps the number of branch operations; an exceeded cap is reported
    /// via [`MutSolution::stop`].
    pub fn max_branches(mut self, limit: u64) -> Self {
        self.max_branches = limit;
        self
    }

    /// Sets an absolute wall-clock deadline; a search past it stops with
    /// [`StopReason::DeadlineExpired`] and returns its best incumbent.
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the deadline to `timeout` from now.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Attaches a cancellation token (keep a clone to trigger it from
    /// another thread).
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The configured deadline, if any.
    pub fn deadline_instant(&self) -> Option<Instant> {
        self.deadline
    }

    /// Caps the number of simultaneously open search nodes (the dominant
    /// memory consumer). On breach the watchdog sheds the worst-bound
    /// open nodes and the solve finishes with
    /// [`StopReason::MemoryExhausted`]: the tree returned is the best
    /// found, an upper bound rather than a proven optimum. Applies to the
    /// sequential and thread-parallel backends; the simulated cluster
    /// models the paper's machines, which had no such guard.
    pub fn memory_budget(mut self, budget: MemoryBudget) -> Self {
        self.memory = Some(budget);
        self
    }

    /// Writes crash-safe snapshots of the best incumbent to `path` while
    /// solving, plus one final snapshot when the solve returns. A later
    /// run can warm-start from the file via
    /// [`resume_from`](MutSolver::resume_from). See
    /// [`mutree_bnb::checkpoint`] for the file format.
    pub fn checkpoint_to(mut self, path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        self.checkpoint = Some(match self.checkpoint {
            Some(p) => CheckpointPolicy { path, ..p },
            None => CheckpointPolicy::new(path),
        });
        self
    }

    /// Sets the snapshot cadence in branch operations (default 512).
    /// Only meaningful together with [`checkpoint_to`](MutSolver::checkpoint_to).
    pub fn checkpoint_interval(mut self, every: u64) -> Self {
        if let Some(p) = self.checkpoint.take() {
            self.checkpoint = Some(p.interval(every));
        } else {
            // Remember the cadence for a later `checkpoint_to`.
            self.checkpoint = Some(CheckpointPolicy::new(PathBuf::new()).interval(every));
        }
        self
    }

    /// Overrides the parallel drivers' work-stealing shard count
    /// (clamped to the frontier's compiled-in maximum). The
    /// `MUTREE_FRONTIER_SHARDS` environment variable applies the same
    /// override process-wide; this builder wins when both are set.
    pub fn frontier_shards(mut self, shards: usize) -> Self {
        self.frontier_shards = Some(shards);
        self
    }

    /// Seeds the search with a known-feasible incumbent tree (original
    /// taxon indexing, all `n` taxa). Its heights are re-fit to dominate
    /// the matrix and it competes with the UPGMM tree for the initial
    /// upper bound — the better one wins, so a seed can speed the search
    /// up but never change the optimum. The group-solve cache uses this
    /// to warm-start ε-near re-solves. Ignored when
    /// [`resume_from`](MutSolver::resume_from) is also set (a checkpoint
    /// is a strictly better-informed seed). A seed over the wrong taxa
    /// is discarded rather than erroring: it is an optimization hint,
    /// not an input.
    pub fn seed_incumbent(mut self, tree: UltrametricTree) -> Self {
        self.seed = Some(tree);
        self
    }

    /// Warm-starts the solve from a checkpoint written by a previous run
    /// (same matrix): the snapshot's incumbent seeds the upper bound, so
    /// the resumed search prunes at least as hard as the interrupted one
    /// did. The optimum found is bit-identical to an uninterrupted run's.
    ///
    /// # Errors
    ///
    /// [`MutError::Checkpoint`](crate::MutError::Checkpoint) from
    /// [`solve`](MutSolver::solve) when the file is missing, corrupt, or
    /// encodes a tree over different taxa than the matrix.
    pub fn resume_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.resume = Some(path.into());
        self
    }

    /// Whether an attached deadline or cancel token already demands a
    /// stop. The pipeline uses this to skip doomed exact solves and jump
    /// straight to the agglomerative fallback.
    pub(crate) fn stop_requested(&self) -> Option<StopReason> {
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            Some(StopReason::Cancelled)
        } else if self.deadline.is_some_and(|d| Instant::now() >= d) {
            Some(StopReason::DeadlineExpired)
        } else {
            None
        }
    }

    /// Borrows worker threads from `exec` for the thread-parallel backend
    /// instead of spawning a fresh `thread::scope` per solve, so many
    /// concurrent solves (the compact-set pipeline's group stages) share
    /// one thread budget. Ignored by the other backends.
    pub fn executor(mut self, exec: Executor) -> Self {
        self.executor = Some(exec);
        self
    }

    /// The attached executor, if any.
    pub fn executor_handle(&self) -> Option<&Executor> {
        self.executor.as_ref()
    }

    /// Logs structured kernel events ([`SearchEvent`]s) to stderr while
    /// solving, on every backend. See [`LoggingObserver`].
    ///
    /// [`SearchEvent`]: mutree_bnb::SearchEvent
    pub fn trace(mut self, observer: LoggingObserver) -> Self {
        self.trace = Some(observer);
        self
    }

    /// Test-only fault injection: `solve` panics on any `n`-taxon matrix.
    /// The pipeline fault tests use this to prove that one poisoned group
    /// solve degrades alone while its siblings complete on the same pool.
    #[doc(hidden)]
    pub fn panic_on_taxa(mut self, n: usize) -> Self {
        self.panic_on_taxa = Some(n);
        self
    }

    /// Test-only fault injection with *fuel*: the first `times` solves of
    /// an `n`-taxon matrix panic, later ones succeed. The fuel counter is
    /// shared across clones of this solver — exactly what a pipeline
    /// stage sees — so retry tests can fail a stage a fixed number of
    /// times and then let it recover.
    #[doc(hidden)]
    pub fn panic_on_taxa_times(mut self, n: usize, times: u64) -> Self {
        self.panic_fuel = Some((n, Arc::new(AtomicU64::new(times))));
        self
    }

    /// Forces the leaf-bitset width to `words` 64-bit words (one of
    /// [`LEAF_WIDTHS`]) instead of the narrowest fit for the matrix. A
    /// forced width narrower than the matrix needs is ignored. The
    /// `MUTREE_FORCE_LEAF_WORDS` environment variable applies the same
    /// override process-wide (this builder wins when both are set); the
    /// differential tests solve with widths 1 and 2 and assert identical
    /// results.
    ///
    /// # Panics
    ///
    /// Panics when `words` is not a supported width.
    pub fn leaf_words(mut self, words: usize) -> Self {
        assert!(
            LEAF_WIDTHS.contains(&words),
            "supported leaf-word widths are {LEAF_WIDTHS:?}, got {words}"
        );
        self.leaf_words = Some(words);
        self
    }

    /// Forces the bound-arithmetic kernel instead of the default
    /// dispatch: [`BoundKernel::Lanes`] (the blocked solver-matrix path)
    /// unless `MUTREE_FORCE_BOUND_KERNEL` says otherwise. This builder
    /// wins over the environment hook; the two kernels produce
    /// bit-identical searches, so forcing one is a benchmarking and
    /// differential-testing affordance, never a correctness knob.
    pub fn bound_kernel(mut self, kernel: BoundKernel) -> Self {
        self.bound_kernel = Some(kernel);
        self
    }

    /// The bound kernel [`solve`](MutSolver::solve) will dispatch
    /// through: the builder override when set, else the
    /// `MUTREE_FORCE_BOUND_KERNEL` environment hook (read per solve, not
    /// cached), else [`BoundKernel::Lanes`]. The CLI reports this in its
    /// diagnostics.
    pub fn dispatch_bound_kernel(&self) -> BoundKernel {
        self.bound_kernel
            .or_else(mutree_engine::plan::env_forced_bound_kernel)
            .unwrap_or_default()
    }

    /// Forces the prune-stage strategy instead of the default dispatch:
    /// [`PruneStrategy::Propagate`] (full-depth constraint propagation
    /// with mask-driven insertion-site filtering) unless
    /// `MUTREE_FORCE_PRUNE` says otherwise. This builder wins over the environment hook. Every
    /// strategy returns the same optimum, bit for bit — propagation only
    /// discards nodes whose subtrees provably hold no improving solution
    /// — so forcing one is a benchmarking and ablation affordance.
    pub fn prune(mut self, prune: PruneStrategy) -> Self {
        self.prune = Some(prune);
        self
    }

    /// The prune-stage strategy [`solve`](MutSolver::solve) will dispatch
    /// through: the builder override when set, else the
    /// `MUTREE_FORCE_PRUNE` environment hook (read per solve, not
    /// cached), else [`PruneStrategy::Propagate`]. The CLI reports this in
    /// its diagnostics.
    pub fn dispatch_prune(&self) -> PruneStrategy {
        self.prune
            .or_else(mutree_engine::plan::env_forced_prune)
            .unwrap_or_default()
    }

    /// The dispatcher's taxa ceiling for one exact solve
    /// ([`MAX_EXACT_TAXA`]). The compact-set pipeline reads the limit from
    /// here instead of hard-coding it.
    pub fn max_taxa(&self) -> usize {
        MAX_EXACT_TAXA
    }

    /// The leaf-bitset width [`solve`](MutSolver::solve) would dispatch an
    /// `n`-taxon matrix to, accounting for a width forced via
    /// [`leaf_words`](MutSolver::leaf_words) or `MUTREE_FORCE_LEAF_WORDS`;
    /// `None` beyond [`MAX_EXACT_TAXA`]. The CLI reports this in its
    /// diagnostics.
    pub fn dispatch_leaf_words(&self, n: usize) -> Option<usize> {
        let needed = leaf_words_for(n)?;
        let forced = self.leaf_words.or_else(env_forced_leaf_words);
        Some(forced.filter(|&w| w >= needed).unwrap_or(needed))
    }

    /// The content-addressing signature of this solver's *answer*, or
    /// `None` when its solves must not be cached.
    ///
    /// Two solvers with the same signature produce the same optimum for
    /// the same matrix, so a [`GroupCache`](crate::GroupCache) entry
    /// filed under one can answer the other. The signature hashes every
    /// knob that changes *which* answer comes back (the 3-3 rule, the
    /// maxmin/UPGMM heuristics, the node-selection strategy, the backend
    /// family) and deliberately omits knobs proven answer-neutral (leaf
    /// width, bound kernel, worker count — the differential tests pin
    /// those as bit-identical). The prune strategy *is* hashed even
    /// though its optima are bit-identical too: cached entries replay
    /// search statistics (branched/pruned counts) into reports, and
    /// those differ per strategy, so strategies must not share entries.
    ///
    /// `None` — no caching — whenever a solve is constrained or
    /// instrumented: anything but a plain unconstrained
    /// [`SearchMode::BestOne`] search (deadlines, cancellation, branch
    /// or memory budgets, checkpoints, resume, tracing, fault
    /// injection) can return a non-optimal incumbent or carries
    /// side effects a cache hit would silently skip.
    pub fn cache_sig(&self) -> Option<u64> {
        if self.deadline.is_some() || self.cancel.is_some() {
            return None;
        }
        self.cache_sig_interruptible()
    }

    /// Like [`cache_sig`](MutSolver::cache_sig), but tolerating a
    /// deadline or cancel token — the supervision hooks a serving front
    /// end attaches to every solve. An interrupt can only stop a search
    /// *early*; it never changes what a **completed** search answers. So
    /// a caller that files entries exclusively from completed solves
    /// (the [`solve_plan`](crate::solve_plan) family checks
    /// `stop.is_complete()` before inserting) and serves hits as the
    /// stored proven optimum may share entries across interrupt
    /// configurations: a hit for a deadlined request just returns the
    /// exact answer sooner than the deadline required. Every other
    /// constraint (mode, budgets, checkpoints, tracing, fault injection)
    /// still disables caching, exactly as in `cache_sig`.
    pub fn cache_sig_interruptible(&self) -> Option<u64> {
        let unconstrained = self.mode == SearchMode::BestOne
            && self.max_branches == u64::MAX
            && self.memory.is_none()
            && self.checkpoint.is_none()
            && self.resume.is_none()
            && self.trace.is_none()
            && self.panic_on_taxa.is_none()
            && self.panic_fuel.is_none();
        if !unconstrained {
            return None;
        }
        use mutree_bnb::hash::{fnv1a, fnv1a_continue};
        let mut h = fnv1a(b"mutree-solver-sig-v2");
        h = fnv1a_continue(
            h,
            &[
                match self.three_three {
                    ThreeThree::Off => 0u8,
                    ThreeThree::InitialOnly => 1,
                    ThreeThree::Full => 2,
                },
                u8::from(self.use_maxmin),
                u8::from(self.use_upgmm),
                match self.strategy {
                    Strategy::DepthFirst => 0,
                    Strategy::BestFirst => 1,
                },
                match self.backend {
                    SearchBackend::Sequential => 0,
                    SearchBackend::Parallel { .. } => 1,
                    SearchBackend::SimulatedCluster { .. } => 2,
                },
                match self.dispatch_prune() {
                    PruneStrategy::WeightOnly => 0,
                    PruneStrategy::Propagate => 1,
                    PruneStrategy::Hybrid => 2,
                },
            ],
        );
        Some(h)
    }

    /// Disables the maxmin relabeling (ablation; hurts the lower bound).
    pub fn without_maxmin(mut self) -> Self {
        self.use_maxmin = false;
        self
    }

    /// Disables the UPGMM initial incumbent (ablation; the first bound
    /// then comes from the first completed leaf).
    pub fn without_upgmm(mut self) -> Self {
        self.use_upgmm = false;
        self
    }

    /// Solves the minimum ultrametric tree problem for `m`, dispatching
    /// to the narrowest monomorphized leaf-bitset width that fits (see
    /// [`LEAF_WIDTHS`] and [`MutSolver::leaf_words`]).
    ///
    /// # Errors
    ///
    /// [`MutError::TooManyTaxa`] beyond [`MAX_EXACT_TAXA`] taxa — use
    /// [`CompactPipeline`](crate::CompactPipeline) there.
    pub fn solve(&self, m: &DistanceMatrix) -> Result<MutSolution, MutError> {
        let n = m.len();
        // A forced width (builder first, then the env hook) may widen the
        // dispatch but never narrow it below what the matrix needs.
        let Some(width) = self.dispatch_leaf_words(n) else {
            return Err(MutError::TooManyTaxa {
                n,
                max: MAX_EXACT_TAXA,
            });
        };
        match width {
            1 => self.solve_width::<1>(m),
            2 => self.solve_width::<2>(m),
            _ => self.solve_width::<4>(m),
        }
    }

    /// The width-monomorphized search body: everything from maxmin
    /// relabeling to topology dedup runs with `K`-word leaf bitsets.
    fn solve_width<const K: usize>(&self, m: &DistanceMatrix) -> Result<MutSolution, MutError> {
        let n = m.len();
        if self.panic_on_taxa == Some(n) {
            panic!("injected fault: {n}-taxon solve");
        }
        if let Some((taxa, fuel)) = &self.panic_fuel {
            if *taxa == n
                && fuel
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |f| f.checked_sub(1))
                    .is_ok()
            {
                panic!("injected fault: {n}-taxon solve (fueled)");
            }
        }

        // Step 1: maxmin relabeling. When the permutation is the identity
        // (the matrix is already in maxmin order) there is nothing to
        // relabel: search `m` directly — no matrix clone going in, no
        // taxon remap coming out. `order = None` encodes the identity.
        let pm_owned: DistanceMatrix;
        let (pm, order): (&DistanceMatrix, Option<Vec<usize>>) = if self.use_maxmin {
            let perm = m.maxmin_permutation();
            if perm.order().iter().enumerate().all(|(i, &o)| i == o) {
                (m, None)
            } else {
                pm_owned = perm.apply(m);
                (&pm_owned, Some(perm.order().to_vec()))
            }
        } else {
            (m, None)
        };

        let mut problem = MutProblem::<K>::with_config(
            pm,
            self.three_three,
            self.use_upgmm,
            self.dispatch_bound_kernel(),
            self.dispatch_prune(),
        );
        if let Some(order) = &order {
            problem.set_taxon_map(order.clone());
        }
        if let Some(path) = &self.resume {
            let ckpt = checkpoint::read(path).map_err(|e| MutError::Checkpoint {
                message: e.to_string(),
            })?;
            let mut tree =
                crate::codec::decode_tree(&ckpt.payload).ok_or_else(|| MutError::Checkpoint {
                    message: "payload does not decode to an ultrametric tree".into(),
                })?;
            if tree.leaf_count() != n || tree.taxa().any(|t| t >= n) {
                return Err(MutError::Checkpoint {
                    message: format!(
                        "checkpoint tree has {} leaves, matrix has {n} taxa",
                        tree.leaf_count()
                    ),
                });
            }
            // The payload is in original indexing; the problem searches the
            // permuted matrix, so map through the inverse permutation.
            if let Some(order) = &order {
                let mut inv = vec![0usize; n];
                for (permuted, &original) in order.iter().enumerate() {
                    inv[original] = permuted;
                }
                tree.map_taxa(|original| inv[original]);
            }
            problem.set_resume_incumbent(tree, ckpt.best_value);
        } else if let Some(seed) = &self.seed {
            // A cache-provided warm start (original indexing). Unlike a
            // checkpoint it is advisory: a seed over the wrong taxa is
            // dropped, and its weight is re-derived by fitting minimal
            // feasible heights against this matrix rather than trusted.
            if seed.leaf_count() == n && seed.taxa().all(|t| t < n) {
                let mut tree = seed.clone();
                if let Some(order) = &order {
                    let mut inv = vec![0usize; n];
                    for (permuted, &original) in order.iter().enumerate() {
                        inv[original] = permuted;
                    }
                    tree.map_taxa(|original| inv[original]);
                }
                let w = tree.fit_heights(pm);
                problem.set_resume_incumbent(tree, w);
            }
        }
        let mut opts = SearchOptions::new(self.mode)
            .max_branches(self.max_branches)
            .strategy(self.strategy);
        opts.deadline = self.deadline;
        opts.cancel = self.cancel.clone();
        opts.memory = self.memory;
        opts.frontier_shards = self
            .frontier_shards
            .or_else(mutree_engine::plan::env_frontier_shards);
        // A cadence set before any destination was given has an empty
        // path; never hand that to the drivers.
        opts.checkpoint = self
            .checkpoint
            .clone()
            .filter(|p| !p.path.as_os_str().is_empty());

        let (outcome, sim) = match &self.backend {
            SearchBackend::Sequential => (
                solve_sequential_observed(&problem, &opts, &mut self.trace.clone()),
                None,
            ),
            SearchBackend::Parallel { workers } => {
                let out = match &self.executor {
                    // Borrowed workers: the search runs on the caller's
                    // shared pool instead of a per-solve thread::scope.
                    Some(exec) => {
                        solve_parallel_pooled(Arc::new(problem), &opts, *workers, exec, self.trace)
                    }
                    None => solve_parallel_observed(&problem, &opts, *workers, self.trace),
                };
                (out, None)
            }
            SearchBackend::SimulatedCluster { spec } => {
                let out = solve_simulated_observed(&problem, &opts, spec, &mut self.trace.clone());
                (out.outcome, Some(out.report))
            }
        };

        // With UPGMM on, an incumbent exists from the start, so a missing
        // value can only mean the search was stopped before finding any
        // leaf with the initial bound disabled.
        let weight = match outcome.best_value {
            Some(w) => w,
            None => {
                return Err(MutError::Interrupted {
                    reason: outcome.stop,
                })
            }
        };

        // Map taxa back to the original indexing and deduplicate by
        // topology (the UPGMM incumbent can coincide with a search tree).
        let mut trees: Vec<UltrametricTree> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for mut t in outcome.solutions {
            if let Some(order) = &order {
                t.map_taxa(|permuted| order[permuted]);
            }
            let canon = canonical_form(&t);
            if seen.insert(canon) {
                trees.push(t);
            }
        }
        assert!(!trees.is_empty(), "search returned a value but no tree");
        let tree = trees[0].clone();
        let mut stats = outcome.stats;
        // One final durable snapshot after the solve, whatever stopped it:
        // covers runs too short (or too interrupted) for a periodic write
        // to have fired, so `--resume` always has the latest incumbent.
        if let Some(policy) = opts.checkpoint.as_ref() {
            let file = CheckpointFile {
                best_value: weight,
                open_nodes: 0,
                branched: stats.branched,
                payload: crate::codec::encode_tree(&tree),
            };
            if checkpoint::write_atomic(&policy.path, &file).is_ok() {
                stats.checkpoints += 1;
            }
        }
        Ok(MutSolution {
            tree,
            weight,
            trees,
            stats,
            stop: outcome.stop,
            sim,
        })
    }
}

/// A topology-canonical string: Newick with children ordered by smallest
/// descendant taxon and no branch lengths. Two trees get the same form iff
/// they have the same leaf-labeled topology.
fn canonical_form(t: &UltrametricTree) -> String {
    fn rec(t: &UltrametricTree, id: mutree_tree::NodeId) -> (usize, String) {
        match t.kind(id) {
            mutree_tree::NodeKind::Leaf(taxon) => (taxon, format!("{taxon}")),
            mutree_tree::NodeKind::Internal(a, b) => {
                let (ma, sa) = rec(t, a);
                let (mb, sb) = rec(t, b);
                if ma <= mb {
                    (ma, format!("({sa},{sb})"))
                } else {
                    (mb, format!("({sb},{sa})"))
                }
            }
        }
    }
    rec(t, t.root()).1
}

/// Formats a solution's tree as Newick with the matrix's taxon labels.
pub fn solution_newick(sol: &MutSolution, m: &DistanceMatrix) -> String {
    newick::to_newick_with(&sol.tree, |t| m.label(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutree_distmat::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn m5() -> DistanceMatrix {
        DistanceMatrix::from_rows(&[
            vec![0.0, 9.0, 4.0, 6.0, 5.0],
            vec![9.0, 0.0, 7.0, 8.0, 6.0],
            vec![4.0, 7.0, 0.0, 3.0, 5.0],
            vec![6.0, 8.0, 3.0, 0.0, 5.0],
            vec![5.0, 6.0, 5.0, 5.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn backends_agree_on_optimum() {
        let m = m5();
        let seq = MutSolver::new().solve(&m).unwrap();
        let par = MutSolver::new()
            .backend(SearchBackend::Parallel { workers: 3 })
            .solve(&m)
            .unwrap();
        let sim = MutSolver::new()
            .backend(SearchBackend::SimulatedCluster {
                spec: ClusterSpec::with_slaves(4),
            })
            .solve(&m)
            .unwrap();
        assert!((seq.weight - par.weight).abs() < 1e-9);
        assert!((seq.weight - sim.weight).abs() < 1e-9);
        assert!(sim.sim.is_some());
        assert!(seq.tree.is_feasible_for(&m, 1e-9));
        assert!(par.tree.is_feasible_for(&m, 1e-9));
        assert!(sim.tree.is_feasible_for(&m, 1e-9));
    }

    #[test]
    fn backends_agree_on_random_matrices() {
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..5 {
            let m = gen::uniform_metric(8, 0.0, 100.0, &mut rng);
            let seq = MutSolver::new().solve(&m).unwrap();
            let par = MutSolver::new()
                .backend(SearchBackend::Parallel { workers: 4 })
                .solve(&m)
                .unwrap();
            assert!(
                (seq.weight - par.weight).abs() < 1e-6,
                "trial {trial}: {} vs {}",
                seq.weight,
                par.weight
            );
        }
    }

    #[test]
    fn all_optimal_sets_agree_across_backends() {
        let m = m5();
        let solve = |backend| {
            let mut sol = MutSolver::new()
                .backend(backend)
                .mode(SearchMode::AllOptimal)
                .solve(&m)
                .unwrap();
            let mut forms: Vec<String> = sol.trees.iter().map(super::canonical_form).collect();
            forms.sort();
            sol.trees.clear();
            (sol.weight, forms)
        };
        let (w_seq, seq) = solve(SearchBackend::Sequential);
        let (w_par, par) = solve(SearchBackend::Parallel { workers: 3 });
        let (w_sim, sim) = solve(SearchBackend::SimulatedCluster {
            spec: ClusterSpec::with_slaves(3),
        });
        assert!((w_seq - w_par).abs() < 1e-9);
        assert!((w_seq - w_sim).abs() < 1e-9);
        assert_eq!(seq, par);
        assert_eq!(seq, sim);
        assert!(!seq.is_empty());
    }

    #[test]
    fn best_first_strategy_agrees() {
        let m = m5();
        let dfs = MutSolver::new().solve(&m).unwrap();
        let bfs = MutSolver::new()
            .strategy(Strategy::BestFirst)
            .solve(&m)
            .unwrap();
        assert!((dfs.weight - bfs.weight).abs() < 1e-9);
        assert!(bfs.stats.branched <= dfs.stats.branched);
    }

    /// A matrix already in maxmin order takes the identity fast path (no
    /// clone, no output remap) and must still solve identically.
    #[test]
    fn already_relabeled_matrix_takes_identity_fast_path() {
        let m = m5();
        let perm = m.maxmin_permutation();
        let pm = perm.apply(&m);
        // Relabeling is idempotent: the permuted matrix's own maxmin
        // order is the identity, which is what triggers the fast path.
        let again = pm.maxmin_permutation();
        assert!(again.order().iter().enumerate().all(|(i, &o)| i == o));
        let direct = MutSolver::new().solve(&pm).unwrap();
        let via_original = MutSolver::new().solve(&m).unwrap();
        assert!((direct.weight - via_original.weight).abs() < 1e-9);
        assert!(direct.tree.is_feasible_for(&pm, 1e-9));
    }

    #[test]
    fn maxmin_off_still_correct() {
        let m = m5();
        let a = MutSolver::new().solve(&m).unwrap();
        let b = MutSolver::new().without_maxmin().solve(&m).unwrap();
        assert!((a.weight - b.weight).abs() < 1e-9);
    }

    #[test]
    fn upgmm_off_still_correct_but_slower() {
        let m = m5();
        let a = MutSolver::new().solve(&m).unwrap();
        let b = MutSolver::new().without_upgmm().solve(&m).unwrap();
        assert!((a.weight - b.weight).abs() < 1e-9);
        assert!(b.stats.branched >= a.stats.branched);
    }

    #[test]
    fn two_taxa_instance() {
        let m = DistanceMatrix::from_rows(&[vec![0.0, 4.0], vec![4.0, 0.0]]).unwrap();
        let sol = MutSolver::new().solve(&m).unwrap();
        assert_eq!(sol.weight, 4.0);
        assert_eq!(sol.tree.leaf_count(), 2);
    }

    #[test]
    fn sixty_four_taxa_boundary_works() {
        // The leaf-set bitmask uses all 64 bits at the engine limit; an
        // ultrametric input keeps the search trivial so this stays fast.
        let mut rng = StdRng::seed_from_u64(64);
        let m = gen::random_ultrametric(64, 100.0, &mut rng);
        let sol = MutSolver::new().solve(&m).unwrap();
        assert_eq!(sol.tree.leaf_count(), 64);
        assert_eq!(sol.tree.distance_matrix().max_relative_deviation(&m), 0.0);
    }

    #[test]
    fn too_many_taxa_is_an_error() {
        let m = DistanceMatrix::zeros(MAX_EXACT_TAXA + 1).unwrap();
        assert!(matches!(
            MutSolver::new().solve(&m),
            Err(MutError::TooManyTaxa { n, max }) if n == MAX_EXACT_TAXA + 1 && max == MAX_EXACT_TAXA
        ));
    }

    #[test]
    fn leaf_width_dispatch_is_narrowest_fit() {
        assert_eq!(leaf_words_for(2), Some(1));
        assert_eq!(leaf_words_for(64), Some(1));
        assert_eq!(leaf_words_for(65), Some(2));
        assert_eq!(leaf_words_for(128), Some(2));
        assert_eq!(leaf_words_for(129), Some(4));
        assert_eq!(leaf_words_for(MAX_EXACT_TAXA), Some(4));
        assert_eq!(leaf_words_for(MAX_EXACT_TAXA + 1), None);
    }

    /// 65 taxa used to be a hard error; now it dispatches to two-word
    /// leaf bitsets and solves exactly.
    #[test]
    fn sixty_five_taxa_crosses_the_word_boundary() {
        let mut rng = StdRng::seed_from_u64(65);
        let m = gen::random_ultrametric(65, 100.0, &mut rng);
        let sol = MutSolver::new().solve(&m).unwrap();
        assert!(sol.is_complete());
        assert_eq!(sol.tree.leaf_count(), 65);
        assert_eq!(sol.tree.distance_matrix().max_relative_deviation(&m), 0.0);
    }

    /// Scalar and lane bound kernels must run indistinguishable searches:
    /// same weight to the bit, same branch and prune counts.
    #[test]
    fn forced_bound_kernels_agree_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(33);
        for m in [m5(), gen::uniform_metric(10, 0.0, 100.0, &mut rng)] {
            let scalar = MutSolver::new()
                .bound_kernel(BoundKernel::Scalar)
                .solve(&m)
                .unwrap();
            let lanes = MutSolver::new()
                .bound_kernel(BoundKernel::Lanes)
                .solve(&m)
                .unwrap();
            assert_eq!(scalar.weight.to_bits(), lanes.weight.to_bits());
            assert_eq!(scalar.stats.branched, lanes.stats.branched);
            assert_eq!(scalar.stats.pruned, lanes.stats.pruned);
        }
    }

    /// Every prune strategy finds the same optimum, bit for bit, with
    /// the same topology: propagation only discards nodes whose
    /// completions the weight prune would reject anyway. `Full` 3-3
    /// additionally exercises the arm-wipeout masks.
    #[test]
    fn forced_prune_strategies_agree_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(44);
        for m in [m5(), gen::uniform_metric(10, 0.0, 100.0, &mut rng)] {
            for rule in [ThreeThree::Off, ThreeThree::Full] {
                let base = MutSolver::new()
                    .three_three(rule)
                    .prune(PruneStrategy::WeightOnly)
                    .solve(&m)
                    .unwrap();
                for p in [PruneStrategy::Propagate, PruneStrategy::Hybrid] {
                    let sol = MutSolver::new()
                        .three_three(rule)
                        .prune(p)
                        .solve(&m)
                        .unwrap();
                    assert_eq!(
                        base.weight.to_bits(),
                        sol.weight.to_bits(),
                        "{rule:?} / {p:?}"
                    );
                    assert_eq!(
                        canonical_form(&base.tree),
                        canonical_form(&sol.tree),
                        "{rule:?} / {p:?}"
                    );
                    assert!(
                        sol.stats.branched <= base.stats.branched,
                        "{rule:?} / {p:?}: propagation must never widen the search"
                    );
                }
            }
        }
    }

    /// Forcing a wider width than needed must not change the result.
    #[test]
    fn forced_wide_width_agrees_with_narrow() {
        let m = m5();
        let narrow = MutSolver::new().leaf_words(1).solve(&m).unwrap();
        for words in [2usize, 4] {
            let wide = MutSolver::new().leaf_words(words).solve(&m).unwrap();
            assert_eq!(narrow.weight, wide.weight, "width {words}");
            assert_eq!(narrow.stats.branched, wide.stats.branched, "width {words}");
        }
    }

    #[test]
    fn optimum_on_ultrametric_matrix_reproduces_it() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = gen::random_ultrametric(9, 50.0, &mut rng);
        let sol = MutSolver::new().solve(&m).unwrap();
        // The generating tree is itself feasible with weight equal to the
        // matrix's own ultrametric tree; the optimum reproduces exact
        // distances.
        assert_eq!(sol.tree.distance_matrix().max_relative_deviation(&m), 0.0);
    }

    #[test]
    fn newick_output_uses_labels() {
        let mut m = m5();
        m.set_labels(["a", "b", "c", "d", "e"]);
        let sol = MutSolver::new().solve(&m).unwrap();
        let nw = solution_newick(&sol, &m);
        for l in ["a", "b", "c", "d", "e"] {
            assert!(nw.contains(l), "{nw}");
        }
    }

    #[test]
    fn canonical_form_distinguishes_topologies() {
        let t1 = UltrametricTree::join(
            UltrametricTree::cherry(0, 1, 1.0),
            UltrametricTree::leaf(2),
            2.0,
        );
        let t2 = UltrametricTree::join(
            UltrametricTree::cherry(0, 2, 1.0),
            UltrametricTree::leaf(1),
            2.0,
        );
        let t1_flipped = UltrametricTree::join(
            UltrametricTree::leaf(2),
            UltrametricTree::cherry(1, 0, 1.0),
            9.0,
        );
        assert_ne!(canonical_form(&t1), canonical_form(&t2));
        assert_eq!(canonical_form(&t1), canonical_form(&t1_flipped));
    }
}
