//! Shared work pool and task-DAG runner for the compact-set pipeline.
//!
//! The pipeline decomposes one big matrix into many independent solves
//! (one per compact group, plus a condensed meta-matrix, plus a merge).
//! Before this module each of those solves either ran serially or spawned
//! its own `thread::scope`, so an 8-group instance on 8 cores used the
//! machine badly: either one core, or 8 × N oversubscribed threads.
//!
//! [`Executor`] owns N long-lived worker threads fed from one queue;
//! [`TaskDag`] declares a set of labelled tasks with dependencies and runs
//! them on an executor. Together they give the pipeline *one* thread
//! budget shared by group-level parallelism and intra-solve B&B
//! parallelism (the executor also implements
//! [`WorkerPool`], so
//! [`solve_parallel_pooled`](mutree_bnb::solve_parallel_pooled) borrows
//! the same workers).
//!
//! # Design rules
//!
//! * **Tasks are `'static`.** A queued task may run on a pool thread long
//!   after the submitting stack frame is gone, so tasks own (or
//!   `Arc`-share) their data. This is why [`MutProblem`](crate::MutProblem)
//!   owns its matrix.
//! * **Blocking waits help.** Any wait on pool work (`run_all`, DAG
//!   [`run`](TaskDag::run)) executes queued jobs on the waiting thread
//!   instead of sleeping. A one-thread executor therefore completes any
//!   DAG, including DAGs whose tasks recursively run nested DAGs or pooled
//!   B&B searches on the same executor — there is always at least one
//!   thread making progress.
//! * **Panics are contained.** A panicking task marks its slot as failed
//!   (observable to dependents and in the [`StageReport`]) and never takes
//!   down a worker thread or a waiter.
//! * **Results are positional.** DAG results come back indexed by
//!   [`TaskId`] in insertion order, never completion order, so callers
//!   that aggregate (the pipeline merging stats and degradation records)
//!   stay deterministic under any scheduling.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use mutree_bnb::{PoolJob, WorkerPool};

/// How long a helping waiter sleeps when the queue is momentarily empty
/// but its wait condition has not fired yet. Bounds the staleness window
/// between "a new job was queued" and "the helper notices it" when every
/// pool worker is busy; pool workers themselves block on the queue condvar
/// and wake immediately.
const HELP_POLL: Duration = Duration::from_millis(2);

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

struct PoolQueue {
    jobs: Mutex<VecDeque<PoolJob>>,
    cv: Condvar,
    shutdown: AtomicBool,
    /// Jobs ever pushed (queue instrumentation; see [`QueueStats`]).
    submitted: AtomicU64,
    /// Jobs popped for execution (by a worker or a helping waiter).
    started: AtomicU64,
    /// High-water mark of jobs simultaneously queued.
    peak_depth: AtomicUsize,
}

impl PoolQueue {
    /// Non-blocking pop, used by helping waiters.
    fn try_pop(&self) -> Option<PoolJob> {
        let job = self
            .jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front();
        if job.is_some() {
            self.started.fetch_add(1, Ordering::Relaxed);
        }
        job
    }

    /// Blocking pop, used by pool workers; `None` means shut down.
    fn next_job(&self) -> Option<PoolJob> {
        let mut jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = jobs.pop_front() {
                self.started.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            jobs = self.cv.wait(jobs).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn push(&self, job: PoolJob) {
        let depth = {
            let mut jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
            jobs.push_back(job);
            jobs.len()
        };
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.peak_depth.fetch_max(depth, Ordering::Relaxed);
        self.cv.notify_one();
    }
}

/// A snapshot of an [`Executor`]'s queue counters, for admission-control
/// observability: a long-lived daemon reports these at drain so sustained
/// load (jobs submitted), progress (jobs started) and backlog pressure
/// (the deepest the queue ever got) are visible without tracing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Jobs ever pushed onto the pool queue.
    pub submitted: u64,
    /// Jobs popped for execution (by a pool worker or a helping waiter).
    /// `submitted - started` is the backlog at snapshot time.
    pub started: u64,
    /// High-water mark of jobs simultaneously queued.
    pub peak_depth: usize,
}

fn worker_loop(queue: &PoolQueue) {
    while let Some(job) = queue.next_job() {
        // A panicking job must not kill the worker; accounting (latches,
        // DAG slots) is done by Drop guards inside the job itself, which
        // run during this unwind.
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}

/// Owns the threads; dropping the last [`Executor`] handle shuts the pool
/// down and joins them.
struct ExecutorCore {
    queue: Arc<PoolQueue>,
    threads: usize,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Drop for ExecutorCore {
    fn drop(&mut self) {
        self.queue.shutdown.store(true, Ordering::Release);
        self.queue.cv.notify_all();
        for handle in self
            .handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
        {
            let _ = handle.join();
        }
    }
}

/// A fixed-size pool of worker threads fed from one shared queue.
///
/// Cheap to clone (a handle); the threads live until the last handle
/// drops. Submitted jobs are `'static` and panic-isolated. Blocking
/// operations ([`WorkerPool::run_all`], [`TaskDag::run`]) have the
/// help-while-wait property described in the module docs.
#[derive(Clone)]
pub struct Executor {
    core: Arc<ExecutorCore>,
}

impl fmt::Debug for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Executor")
            .field("threads", &self.core.threads)
            .finish()
    }
}

impl Executor {
    /// Spawns a pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Executor {
        let threads = threads.max(1);
        let queue = Arc::new(PoolQueue {
            jobs: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            submitted: AtomicU64::new(0),
            started: AtomicU64::new(0),
            peak_depth: AtomicUsize::new(0),
        });
        let handles = (0..threads)
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("mutree-exec-{i}"))
                    .spawn(move || worker_loop(&queue))
                    .expect("spawn executor worker")
            })
            .collect();
        Executor {
            core: Arc::new(ExecutorCore {
                queue,
                threads,
                handles: Mutex::new(handles),
            }),
        }
    }

    /// Number of pool threads.
    pub fn thread_count(&self) -> usize {
        self.core.threads
    }

    /// A snapshot of the pool queue's lifetime counters.
    pub fn queue_stats(&self) -> QueueStats {
        let q = &self.core.queue;
        QueueStats {
            submitted: q.submitted.load(Ordering::Relaxed),
            started: q.started.load(Ordering::Relaxed),
            peak_depth: q.peak_depth.load(Ordering::Relaxed),
        }
    }

    fn spawn_job(&self, job: PoolJob) {
        self.core.queue.push(job);
    }

    /// Runs queued jobs on the calling thread until `latch` releases.
    fn help_latch(&self, latch: &Latch) {
        while !latch.is_done() {
            match self.core.queue.try_pop() {
                Some(job) => {
                    let _ = catch_unwind(AssertUnwindSafe(job));
                }
                None => latch.wait_briefly(),
            }
        }
    }
}

impl WorkerPool for Executor {
    fn threads(&self) -> usize {
        self.thread_count()
    }

    fn run_all(&self, jobs: Vec<PoolJob>, main: Box<dyn FnOnce() + '_>) {
        let latch = Arc::new(Latch::new(jobs.len()));
        for job in jobs {
            let guard_latch = Arc::clone(&latch);
            self.spawn_job(Box::new(move || {
                // Drop guard: the latch releases even if the job panics.
                let _guard = LatchGuard(guard_latch);
                job();
            }));
        }
        main();
        self.help_latch(&latch);
    }
}

/// Counts outstanding work; releases waiters at zero.
struct Latch {
    remaining: Mutex<usize>,
    cv: Condvar,
}

impl Latch {
    fn new(n: usize) -> Latch {
        Latch {
            remaining: Mutex::new(n),
            cv: Condvar::new(),
        }
    }

    fn done_one(&self) {
        let mut r = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        *r -= 1;
        if *r == 0 {
            self.cv.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        *self.remaining.lock().unwrap_or_else(|e| e.into_inner()) == 0
    }

    /// Sleeps until a completion notification or the short poll interval,
    /// whichever comes first (the poll bounds the window in which a newly
    /// queued job could otherwise go unnoticed by a helping waiter).
    fn wait_briefly(&self) {
        let guard = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        if *guard > 0 {
            let _ = self
                .cv
                .wait_timeout(guard, HELP_POLL)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

struct LatchGuard(Arc<Latch>);

impl Drop for LatchGuard {
    fn drop(&mut self) {
        self.0.done_one();
    }
}

// ---------------------------------------------------------------------------
// Task DAG
// ---------------------------------------------------------------------------

/// Index of a task within its [`TaskDag`], in insertion order.
pub type TaskId = usize;

type Body<T> = Box<dyn FnOnce(&DagCtx<'_, T>) -> T + Send + 'static>;

struct Finished<T> {
    /// `None` when the task body panicked.
    value: Option<T>,
    elapsed: Duration,
}

/// Read-only view of completed dependencies, passed to each task body.
pub struct DagCtx<'a, T> {
    slots: &'a [OnceLock<Finished<T>>],
}

impl<T> DagCtx<'_, T> {
    /// The result of dependency `id`, or `None` if that task panicked.
    ///
    /// Only declared dependencies are guaranteed to have finished; asking
    /// for anything else returns `None` rather than a torn read.
    pub fn dep(&self, id: TaskId) -> Option<&T> {
        self.slots
            .get(id)
            .and_then(|slot| slot.get())
            .and_then(|fin| fin.value.as_ref())
    }
}

/// One task's outcome: its label, its return value (`None` if the body
/// panicked), and how long the body ran.
#[derive(Debug)]
pub struct StageReport<T> {
    /// The label given to [`TaskDag::add`].
    pub label: String,
    /// What the body returned; `None` means it panicked.
    pub result: Option<T>,
    /// Wall-clock time the body ran for.
    pub elapsed: Duration,
}

/// A set of labelled tasks with dependencies, run either on an
/// [`Executor`] ([`run`](TaskDag::run)) or serially on the calling thread
/// ([`run_inline`](TaskDag::run_inline)) — same results either way, which
/// is what the pipeline's determinism tests check.
///
/// Dependencies must point at already-added tasks, so every DAG is
/// acyclic by construction and insertion order is a topological order.
pub struct TaskDag<T: Send + Sync + 'static> {
    labels: Vec<String>,
    deps: Vec<Vec<TaskId>>,
    bodies: Vec<Body<T>>,
}

impl<T: Send + Sync + 'static> Default for TaskDag<T> {
    fn default() -> Self {
        TaskDag::new()
    }
}

impl<T: Send + Sync + 'static> TaskDag<T> {
    /// An empty DAG.
    pub fn new() -> Self {
        TaskDag {
            labels: Vec::new(),
            deps: Vec::new(),
            bodies: Vec::new(),
        }
    }

    /// Number of tasks added so far.
    pub fn len(&self) -> usize {
        self.bodies.len()
    }

    /// Whether the DAG has no tasks.
    pub fn is_empty(&self) -> bool {
        self.bodies.is_empty()
    }

    /// Adds a task that runs `body` once every task in `deps` has
    /// finished (panicked dependencies count as finished). Returns the
    /// task's id, which is also its index in the result vector.
    ///
    /// # Panics
    ///
    /// Panics if a dependency id has not been added yet.
    pub fn add<F>(&mut self, label: impl Into<String>, deps: &[TaskId], body: F) -> TaskId
    where
        F: FnOnce(&DagCtx<'_, T>) -> T + Send + 'static,
    {
        let id = self.bodies.len();
        for &d in deps {
            assert!(d < id, "dependency {d} of task {id} not added yet");
        }
        self.labels.push(label.into());
        self.deps.push(deps.to_vec());
        self.bodies.push(Box::new(body));
        id
    }

    /// Runs every task on `exec`, helping from the calling thread, and
    /// returns one [`StageReport`] per task in insertion order.
    pub fn run(self, exec: &Executor) -> Vec<StageReport<T>> {
        let n = self.bodies.len();
        if n == 0 {
            return Vec::new();
        }
        let mut dependents: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for (id, ds) in self.deps.iter().enumerate() {
            for &d in ds {
                dependents[d].push(id);
            }
        }
        let roots: Vec<TaskId> = (0..n).filter(|&id| self.deps[id].is_empty()).collect();
        let state = Arc::new(DagState {
            slots: (0..n).map(|_| OnceLock::new()).collect(),
            waiting: self
                .deps
                .iter()
                .map(|d| AtomicUsize::new(d.len()))
                .collect(),
            dependents,
            bodies: self
                .bodies
                .into_iter()
                .map(|b| Mutex::new(Some(b)))
                .collect(),
            latch: Latch::new(n),
            exec: exec.clone(),
        });
        for id in roots {
            schedule(&state, id);
        }
        exec.help_latch(&state.latch);

        // The latch releases inside `execute`, a hair before the last job
        // closure drops its `Arc` clone; spin the gap out.
        let mut state = state;
        let state = loop {
            match Arc::try_unwrap(state) {
                Ok(inner) => break inner,
                Err(again) => {
                    state = again;
                    std::thread::yield_now();
                }
            }
        };
        finish(self.labels, state.slots)
    }

    /// Runs every task serially on the calling thread, in insertion
    /// order (a valid topological order by construction). Reference
    /// implementation for [`run`](TaskDag::run); same panic isolation.
    pub fn run_inline(self) -> Vec<StageReport<T>> {
        let n = self.bodies.len();
        let slots: Vec<OnceLock<Finished<T>>> = (0..n).map(|_| OnceLock::new()).collect();
        for (id, body) in self.bodies.into_iter().enumerate() {
            let started = Instant::now();
            let value = {
                let ctx = DagCtx { slots: &slots };
                catch_unwind(AssertUnwindSafe(|| body(&ctx))).ok()
            };
            let set = slots[id].set(Finished {
                value,
                elapsed: started.elapsed(),
            });
            debug_assert!(set.is_ok());
        }
        finish(self.labels, slots)
    }
}

fn finish<T>(labels: Vec<String>, slots: Vec<OnceLock<Finished<T>>>) -> Vec<StageReport<T>> {
    labels
        .into_iter()
        .zip(slots)
        .map(|(label, slot)| {
            let fin = slot.into_inner().expect("every task ran");
            StageReport {
                label,
                result: fin.value,
                elapsed: fin.elapsed,
            }
        })
        .collect()
}

struct DagState<T: Send + Sync + 'static> {
    slots: Vec<OnceLock<Finished<T>>>,
    waiting: Vec<AtomicUsize>,
    dependents: Vec<Vec<TaskId>>,
    bodies: Vec<Mutex<Option<Body<T>>>>,
    latch: Latch,
    exec: Executor,
}

fn schedule<T: Send + Sync + 'static>(state: &Arc<DagState<T>>, id: TaskId) {
    let task_state = Arc::clone(state);
    state
        .exec
        .spawn_job(Box::new(move || execute(&task_state, id)));
}

fn execute<T: Send + Sync + 'static>(state: &Arc<DagState<T>>, id: TaskId) {
    let body = state.bodies[id]
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take()
        .expect("a task is scheduled exactly once");
    let started = Instant::now();
    let value = {
        let ctx = DagCtx {
            slots: &state.slots,
        };
        catch_unwind(AssertUnwindSafe(|| body(&ctx))).ok()
    };
    let set = state.slots[id].set(Finished {
        value,
        elapsed: started.elapsed(),
    });
    debug_assert!(set.is_ok());
    // Publish the slot before waking dependents, then count down.
    for &dep in &state.dependents[id] {
        if state.waiting[dep].fetch_sub(1, Ordering::AcqRel) == 1 {
            schedule(state, dep);
        }
    }
    state.latch.done_one();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_all_executes_every_job() {
        let exec = Executor::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<PoolJob> = (0..20)
            .map(|_| {
                let c = Arc::clone(&counter);
                Box::new(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }) as PoolJob
            })
            .collect();
        let mut main_ran = false;
        exec.run_all(jobs, Box::new(|| main_ran = true));
        assert!(main_ran);
        assert_eq!(counter.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn run_all_survives_panicking_jobs() {
        let exec = Executor::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        let mut jobs: Vec<PoolJob> = Vec::new();
        for i in 0..10 {
            let c = Arc::clone(&counter);
            jobs.push(Box::new(move || {
                if i % 2 == 0 {
                    panic!("injected");
                }
                c.fetch_add(1, Ordering::Relaxed);
            }));
        }
        exec.run_all(jobs, Box::new(|| {}));
        assert_eq!(counter.load(Ordering::Relaxed), 5);
        // The pool is still usable afterwards.
        let c = Arc::clone(&counter);
        exec.run_all(
            vec![Box::new(move || {
                c.fetch_add(10, Ordering::Relaxed);
            })],
            Box::new(|| {}),
        );
        assert_eq!(counter.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn one_thread_executor_completes_nested_run_all() {
        // The inner run_all's jobs can only make progress because blocked
        // waiters help; a sleeping wait would deadlock this test.
        let exec = Executor::new(1);
        let counter = Arc::new(AtomicUsize::new(0));
        let inner_exec = exec.clone();
        let c = Arc::clone(&counter);
        let outer: PoolJob = Box::new(move || {
            let c2 = Arc::clone(&c);
            inner_exec.run_all(
                vec![Box::new(move || {
                    c2.fetch_add(1, Ordering::Relaxed);
                })],
                Box::new(|| {
                    c.fetch_add(1, Ordering::Relaxed);
                }),
            );
        });
        exec.run_all(vec![outer], Box::new(|| {}));
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn dag_runs_in_dependency_order_and_reports_in_insertion_order() {
        let exec = Executor::new(4);
        let mut dag: TaskDag<u64> = TaskDag::new();
        let a = dag.add("a", &[], |_| 3);
        let b = dag.add("b", &[], |_| 4);
        let sum = dag.add("sum", &[a, b], move |ctx| {
            ctx.dep(a).copied().unwrap() + ctx.dep(b).copied().unwrap()
        });
        let reports = dag.run(&exec);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].label, "a");
        assert_eq!(reports[1].label, "b");
        assert_eq!(reports[2].label, "sum");
        assert_eq!(reports[sum].result, Some(7));
    }

    #[test]
    fn dag_inline_matches_executor_run() {
        let build = || {
            let mut dag: TaskDag<u64> = TaskDag::new();
            let roots: Vec<TaskId> = (0..6)
                .map(|i| dag.add(format!("r{i}"), &[], move |_| i))
                .collect();
            let join_deps = roots.clone();
            dag.add("join", &roots, move |ctx| {
                join_deps
                    .iter()
                    .map(|&r| ctx.dep(r).copied().unwrap())
                    .sum()
            });
            dag
        };
        let exec = Executor::new(4);
        let par: Vec<Option<u64>> = build().run(&exec).into_iter().map(|r| r.result).collect();
        let seq: Vec<Option<u64>> = build().run_inline().into_iter().map(|r| r.result).collect();
        assert_eq!(par, seq);
        assert_eq!(par.last().unwrap(), &Some(15));
    }

    #[test]
    fn panicking_task_fails_alone_and_dependents_still_run() {
        let exec = Executor::new(2);
        let mut dag: TaskDag<u64> = TaskDag::new();
        let good = dag.add("good", &[], |_| 1);
        let bad = dag.add("bad", &[], |_| -> u64 { panic!("injected") });
        let join = dag.add("join", &[good, bad], move |ctx| {
            assert!(ctx.dep(bad).is_none());
            ctx.dep(good).copied().unwrap() + 100
        });
        let reports = dag.run(&exec);
        assert_eq!(reports[good].result, Some(1));
        assert_eq!(reports[bad].result, None);
        assert_eq!(reports[join].result, Some(101));
    }

    #[test]
    fn deep_dag_on_one_thread() {
        // A chain forces strict ordering; one thread forces the helper
        // path to schedule each link.
        let exec = Executor::new(1);
        let mut dag: TaskDag<u64> = TaskDag::new();
        let mut prev = dag.add("t0", &[], |_| 0);
        for i in 1..64u64 {
            let p = prev;
            prev = dag.add(format!("t{i}"), &[p], move |ctx| {
                ctx.dep(p).copied().unwrap() + 1
            });
        }
        let reports = dag.run(&exec);
        assert_eq!(reports[prev].result, Some(63));
    }

    #[test]
    fn executor_as_worker_pool_runs_pooled_search() {
        use mutree_bnb::{
            solve_parallel_pooled, solve_sequential, ChildBuf, Problem, SearchMode, SearchOptions,
        };

        struct Bits;
        impl Problem for Bits {
            type Node = Vec<bool>;
            type Solution = Vec<bool>;
            fn root(&self) -> Vec<bool> {
                Vec::new()
            }
            fn lower_bound(&self, n: &Vec<bool>) -> f64 {
                n.iter().filter(|&&b| b).count() as f64
            }
            fn solution(&self, n: &Vec<bool>) -> Option<(Vec<bool>, f64)> {
                (n.len() == 10).then(|| (n.clone(), self.lower_bound(n)))
            }
            fn branch(&self, n: &Vec<bool>, out: &mut ChildBuf<Vec<bool>>) {
                for b in [true, false] {
                    let mut c = n.clone();
                    c.push(b);
                    out.push(c);
                }
            }
        }

        let opts = SearchOptions::new(SearchMode::BestOne);
        let seq = solve_sequential(&Bits, &opts);
        for threads in [1, 4] {
            let exec = Executor::new(threads);
            let pooled = solve_parallel_pooled(Arc::new(Bits), &opts, 4, &exec, ());
            assert_eq!(pooled.best_value, seq.best_value, "threads = {threads}");
            assert!(pooled.is_complete());
        }
    }

    #[test]
    fn queue_stats_count_submissions_and_starts() {
        let exec = Executor::new(2);
        assert_eq!(exec.queue_stats(), QueueStats::default());
        let jobs: Vec<PoolJob> = (0..12).map(|_| Box::new(|| {}) as PoolJob).collect();
        exec.run_all(jobs, Box::new(|| {}));
        let stats = exec.queue_stats();
        assert_eq!(stats.submitted, 12);
        assert_eq!(stats.started, 12);
        assert!(stats.peak_depth >= 1);
        assert!(stats.peak_depth <= 12);
    }

    #[test]
    fn dag_timings_are_recorded() {
        let exec = Executor::new(2);
        let mut dag: TaskDag<()> = TaskDag::new();
        dag.add("sleep", &[], |_| {
            std::thread::sleep(Duration::from_millis(5));
        });
        let reports = dag.run(&exec);
        assert!(reports[0].elapsed >= Duration::from_millis(4));
    }

    #[test]
    fn stress_shared_executor_across_many_dags() {
        let exec = Executor::new(4);
        let total = Arc::new(AtomicU64::new(0));
        for round in 0..25u64 {
            let mut dag: TaskDag<u64> = TaskDag::new();
            let ids: Vec<TaskId> = (0..8)
                .map(|i| dag.add(format!("w{i}"), &[], move |_| round + i))
                .collect();
            let join_deps = ids.clone();
            dag.add("join", &ids, move |ctx| {
                join_deps
                    .iter()
                    .map(|&t| ctx.dep(t).copied().unwrap())
                    .sum()
            });
            let reports = dag.run(&exec);
            total.fetch_add(reports.last().unwrap().result.unwrap(), Ordering::Relaxed);
        }
        assert!(total.load(Ordering::Relaxed) > 0);
    }
}
