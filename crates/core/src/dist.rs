//! The distance source a [`PartialTree`](crate::PartialTree) insertion
//! reads from — the seam between tree surgery and the bound layer.
//!
//! Inserting a species updates heights along its root path, and every
//! update needs one masked row maximum: `max_{y ∈ mask} M[s, y]` over
//! the leaf set of a sibling subtree. That maximum *is* the hot bound
//! arithmetic, so the search monomorphizes the insertion path over two
//! sources:
//!
//! * [`DistanceMatrix`] — the scalar reference: packed-triangle
//!   `get(s, y)` per mask bit, exactly the historical code path. Kept
//!   as the `MUTREE_FORCE_BOUND_KERNEL=scalar` baseline the
//!   differential tests compare against.
//! * [`LaneDist`] — a [`SolverMatrix`] view: each masked maximum is one
//!   call into the fixed-lane kernels of [`mutree_bnb::bound`] over a
//!   contiguous, cache-line-aligned row, with the leaf-mask words
//!   selecting lanes at the shared 64-lane-per-word stride.
//!
//! Every masked maximum within one insertion reads the *same* species'
//! row (the one being inserted), so the trait hands out a per-species
//! [`RowMax`] cursor: the insertion walk fetches it once and the
//! per-ancestor calls pay no row lookup — for the lane path that turns
//! each height update into a peel over an already-resolved `&[f64]`.
//!
//! Both sources produce bit-identical heights: a floating-point `max`
//! over the same set of values does not depend on evaluation order.

use mutree_bnb::bound;
use mutree_distmat::{DistanceMatrix, SolverMatrix};

use crate::leafset::LeafWords;

/// A resolved row cursor for one species: repeated masked maxima against
/// `M[s, ·]` with the row lookup already paid.
pub trait RowMax {
    /// `max_{y ∈ mask} M[s, y]`, floored at `0.0` (distances are
    /// non-negative; the floor matches the historical accumulator and
    /// makes the empty mask well-defined).
    fn max_to_mask<const K: usize>(&self, mask: &LeafWords<K>) -> f64;
}

/// Pairwise distances as consumed by the insertion/bound hot path.
///
/// Implementations must agree with the underlying matrix bit for bit;
/// the solver dispatches between them per
/// [`BoundKernel`](mutree_bnb::BoundKernel), and the differential suite
/// asserts the searches are indistinguishable.
pub trait DistSource {
    /// The per-species cursor [`row_max`](DistSource::row_max) resolves.
    type Row<'a>: RowMax + Copy
    where
        Self: 'a;

    /// Number of taxa.
    fn taxa(&self) -> usize;

    /// Distance between taxa `i` and `j` (zero when `i == j`).
    fn dist(&self, i: usize, j: usize) -> f64;

    /// Resolves the cursor for species `s` — fetch once per insertion,
    /// then take masked maxima per ancestor.
    fn row_max(&self, s: usize) -> Self::Row<'_>;

    /// One-shot convenience: `max_{y ∈ mask} M[s, y]` without keeping
    /// the cursor.
    #[inline]
    fn max_to_mask<const K: usize>(&self, s: usize, mask: &LeafWords<K>) -> f64 {
        self.row_max(s).max_to_mask(mask)
    }
}

/// The scalar cursor: peel mask bits lowest-first, one packed-triangle
/// lookup each — the exact loop the bound math shipped with, preserved
/// as the differential baseline.
#[derive(Debug, Clone, Copy)]
pub struct ScalarRowMax<'a> {
    m: &'a DistanceMatrix,
    s: usize,
}

impl RowMax for ScalarRowMax<'_> {
    #[inline]
    fn max_to_mask<const K: usize>(&self, mask: &LeafWords<K>) -> f64 {
        let mut best = 0.0f64;
        for y in mask.iter() {
            best = best.max(self.m.get(self.s, y));
        }
        best
    }
}

impl DistSource for DistanceMatrix {
    type Row<'a> = ScalarRowMax<'a>;

    #[inline]
    fn taxa(&self) -> usize {
        self.len()
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f64 {
        self.get(i, j)
    }

    #[inline]
    fn row_max(&self, s: usize) -> ScalarRowMax<'_> {
        ScalarRowMax { m: self, s }
    }
}

/// A [`SolverMatrix`] viewed as a [`DistSource`]: masked row maxima run
/// through the lane kernels of [`mutree_bnb::bound`].
#[derive(Debug, Clone, Copy)]
pub struct LaneDist<'a> {
    sm: &'a SolverMatrix,
}

impl<'a> LaneDist<'a> {
    /// Wraps a solver matrix (a cheap reference view; build the matrix
    /// once per solve).
    #[inline]
    pub fn new(sm: &'a SolverMatrix) -> Self {
        LaneDist { sm }
    }

    /// The underlying blocked matrix.
    #[inline]
    pub fn solver_matrix(&self) -> &'a SolverMatrix {
        self.sm
    }
}

/// The lane cursor: the species' blocked row, already resolved to one
/// contiguous aligned slice.
#[derive(Debug, Clone, Copy)]
pub struct LaneRowMax<'a> {
    row: &'a [f64],
}

impl RowMax for LaneRowMax<'_> {
    #[inline]
    fn max_to_mask<const K: usize>(&self, mask: &LeafWords<K>) -> f64 {
        bound::max_in_mask(self.row, mask.words())
    }
}

impl DistSource for LaneDist<'_> {
    type Row<'b>
        = LaneRowMax<'b>
    where
        Self: 'b;

    #[inline]
    fn taxa(&self) -> usize {
        self.sm.len()
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f64 {
        self.sm.get(i, j)
    }

    #[inline]
    fn row_max(&self, s: usize) -> LaneRowMax<'_> {
        LaneRowMax {
            row: self.sm.row(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_and_lane_sources_agree_bit_for_bit() {
        let m = DistanceMatrix::from_rows(&[
            vec![0.0, 9.0, 4.0, 6.0, 5.0],
            vec![9.0, 0.0, 7.0, 8.0, 6.0],
            vec![4.0, 7.0, 0.0, 3.0, 5.0],
            vec![6.0, 8.0, 3.0, 0.0, 5.0],
            vec![5.0, 6.0, 5.0, 5.0, 0.0],
        ])
        .unwrap();
        let sm = SolverMatrix::new(&m);
        let lanes = LaneDist::new(&sm);
        assert_eq!(lanes.taxa(), m.taxa());
        for s in 0..5 {
            let scalar_row = m.row_max(s);
            let lane_row = lanes.row_max(s);
            for bits in 0u64..32 {
                let mut mask = LeafWords::<2>::EMPTY;
                for y in 0..5 {
                    if bits & (1 << y) != 0 && y != s {
                        mask.insert(y);
                    }
                }
                let a = scalar_row.max_to_mask(&mask);
                let b = lane_row.max_to_mask(&mask);
                assert_eq!(a.to_bits(), b.to_bits(), "s = {s}, mask = {mask:?}");
                assert_eq!(a.to_bits(), m.max_to_mask(s, &mask).to_bits());
                assert_eq!(b.to_bits(), lanes.max_to_mask(s, &mask).to_bits());
            }
            for j in 0..5 {
                assert_eq!(m.get(s, j).to_bits(), lanes.dist(s, j).to_bits());
            }
        }
    }
}
