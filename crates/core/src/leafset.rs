//! Fixed-width leaf bitsets for [`PartialTree`](crate::PartialTree).
//!
//! A [`LeafWords<K>`] packs a set of leaf indices into `K` inline 64-bit
//! words, so a `PartialTree<K>` arena stays a flat `Copy` buffer and
//! cloning a search node remains a straight `memcpy` — the property the
//! kernel's allocation-free branching relies on. The solver monomorphizes
//! the search for K = 1, 2, 4 and picks the narrowest width that fits the
//! matrix (see [`leaf_words_for`](crate::leaf_words_for)), so the
//! historical single-`u64` case compiles to exactly the code it always
//! was.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign};

/// A set of leaf indices `0..64·K`, stored as `K` inline 64-bit words.
///
/// The representation is plain old data: `Copy`, no heap, word `w` holds
/// bits `64w..64(w+1)`. All operations are word-parallel loops that the
/// compiler fully unrolls for the small fixed `K`s the solver uses.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct LeafWords<const K: usize> {
    words: [u64; K],
}

impl<const K: usize> LeafWords<K> {
    /// Highest number of leaves this width can represent.
    pub const CAPACITY: usize = 64 * K;

    /// The empty set.
    pub const EMPTY: Self = LeafWords { words: [0; K] };

    /// The set containing exactly leaf `i`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when `i >= CAPACITY`.
    #[inline]
    pub fn singleton(i: usize) -> Self {
        let mut s = Self::EMPTY;
        s.insert(i);
        s
    }

    /// Adds leaf `i` to the set.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < Self::CAPACITY, "leaf {i} out of range for K = {K}");
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    /// Whether leaf `i` is in the set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < Self::CAPACITY, "leaf {i} out of range for K = {K}");
        self.words[i >> 6] & (1u64 << (i & 63)) != 0
    }

    /// The set without leaf `i` (a no-op when `i` is absent).
    #[inline]
    pub fn without(mut self, i: usize) -> Self {
        debug_assert!(i < Self::CAPACITY, "leaf {i} out of range for K = {K}");
        self.words[i >> 6] &= !(1u64 << (i & 63));
        self
    }

    /// Set union.
    #[inline]
    pub fn union(mut self, other: Self) -> Self {
        for w in 0..K {
            self.words[w] |= other.words[w];
        }
        self
    }

    /// Set intersection.
    #[inline]
    pub fn intersection(mut self, other: Self) -> Self {
        for w in 0..K {
            self.words[w] &= other.words[w];
        }
        self
    }

    /// Whether the set has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of leaves in the set (popcount over all words).
    #[inline]
    pub fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Whether the two sets share no leaf.
    #[inline]
    pub fn is_disjoint(&self, other: &Self) -> bool {
        (0..K).all(|w| self.words[w] & other.words[w] == 0)
    }

    /// Whether every member of `self` is also in `other`.
    #[inline]
    pub fn is_subset(&self, other: &Self) -> bool {
        (0..K).all(|w| self.words[w] & !other.words[w] == 0)
    }

    /// Whether the two sets share at least one leaf.
    #[inline]
    pub fn intersects(&self, other: &Self) -> bool {
        !self.is_disjoint(other)
    }

    /// The raw 64-bit words, word `w` holding bits `64w..64(w+1)` — the
    /// form the lane kernels in `mutree_bnb::bound` consume: mask word
    /// `w` selects lanes `64w..64(w+1)` of a blocked solver-matrix row,
    /// so leaf-word iteration and lane loads share one stride.
    #[inline]
    pub fn words(&self) -> &[u64; K] {
        &self.words
    }

    /// Iterates the members in ascending order: word by word, peeling the
    /// lowest set bit with `trailing_zeros` — for K = 1 this is exactly
    /// the classic single-`u64` scan.
    #[inline]
    pub fn iter(&self) -> LeafIter<K> {
        LeafIter {
            words: self.words,
            word: 0,
        }
    }
}

impl<const K: usize> Default for LeafWords<K> {
    fn default() -> Self {
        Self::EMPTY
    }
}

impl<const K: usize> BitOr for LeafWords<K> {
    type Output = Self;
    #[inline]
    fn bitor(self, rhs: Self) -> Self {
        self.union(rhs)
    }
}

impl<const K: usize> BitOrAssign for LeafWords<K> {
    #[inline]
    fn bitor_assign(&mut self, rhs: Self) {
        *self = self.union(rhs);
    }
}

impl<const K: usize> BitAnd for LeafWords<K> {
    type Output = Self;
    #[inline]
    fn bitand(self, rhs: Self) -> Self {
        self.intersection(rhs)
    }
}

impl<const K: usize> IntoIterator for LeafWords<K> {
    type Item = usize;
    type IntoIter = LeafIter<K>;
    fn into_iter(self) -> LeafIter<K> {
        self.iter()
    }
}

impl<const K: usize> fmt::Debug for LeafWords<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Ascending-order iterator over a [`LeafWords`] set.
#[derive(Clone, Debug)]
pub struct LeafIter<const K: usize> {
    words: [u64; K],
    word: usize,
}

impl<const K: usize> Iterator for LeafIter<K> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.word < K {
            let w = self.words[self.word];
            if w != 0 {
                self.words[self.word] = w & (w - 1);
                return Some((self.word << 6) | w.trailing_zeros() as usize);
            }
            self.word += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_and_contains_across_words() {
        for i in [0usize, 1, 63, 64, 65, 127] {
            let s = LeafWords::<2>::singleton(i);
            assert_eq!(s.count(), 1);
            for j in 0..128 {
                assert_eq!(s.contains(j), i == j, "bit {j} of singleton({i})");
            }
        }
    }

    #[test]
    fn union_without_and_iteration_order() {
        let mut s = LeafWords::<4>::EMPTY;
        for i in [200usize, 3, 64, 128, 63, 199] {
            s.insert(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 63, 64, 128, 199, 200]);
        let t = s.without(64).without(3);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![63, 128, 199, 200]);
        assert_eq!(s.union(t), s);
        assert!(t.intersects(&s));
        assert!(t.is_disjoint(&LeafWords::singleton(64)));
        assert!(t.is_subset(&s));
        assert!(!s.is_subset(&t));
        assert!(s.is_subset(&s));
        assert!(LeafWords::<4>::EMPTY.is_subset(&t));
    }

    #[test]
    fn k1_matches_raw_u64_semantics() {
        let mut s = LeafWords::<1>::EMPTY;
        let mut raw = 0u64;
        for i in [5usize, 0, 63, 17] {
            s.insert(i);
            raw |= 1 << i;
        }
        assert_eq!(s.count(), raw.count_ones());
        let mut bits = Vec::new();
        let mut w = raw;
        while w != 0 {
            bits.push(w.trailing_zeros() as usize);
            w &= w - 1;
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), bits);
    }
}
