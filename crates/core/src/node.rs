use mutree_tree::UltrametricTree;

use crate::dist::{DistSource, RowMax};
use crate::leafset::LeafWords;

const NONE: u32 = u32::MAX;

/// A node of the branch-and-bound tree (BBT): an ultrametric tree over the
/// first `k` species of a (maxmin-relabeled) matrix, with minimal heights.
///
/// The encoding is a flat arena sized for the complete tree so that clones
/// — the dominant cost of branching — are straight `memcpy`s:
///
/// * node ids `0..n` are the leaves (id = taxon); ids `n..2n-1` are
///   internal nodes, allocated in insertion order (inserting taxon `s`
///   creates internal node `n + s − 1`);
/// * each node stores its parent, children, height, and the
///   [`LeafWords<K>`] bitset of leaves below it. `K` fixes the taxa
///   ceiling at `64·K`; the solver monomorphizes K = 1, 2, 4 and
///   dispatches on the matrix size (see
///   [`leaf_words_for`](crate::leaf_words_for)), so the default `K = 1`
///   compiles to the historical single-`u64` arena.
///
/// Heights are kept *minimal* for the topology at all times: inserting a
/// leaf only updates heights along its root path, using the leaf masks to
/// find the cross pairs each ancestor newly separates.
#[derive(Debug)]
pub struct PartialTree<const K: usize = 1> {
    parent: Vec<u32>,
    left: Vec<u32>,
    right: Vec<u32>,
    height: Vec<f64>,
    leafset: Vec<LeafWords<K>>,
    root: u32,
    k: u32,
    n: u32,
    weight: f64,
    lb: f64,
}

impl<const K: usize> Clone for PartialTree<K> {
    fn clone(&self) -> Self {
        PartialTree {
            parent: self.parent.clone(),
            left: self.left.clone(),
            right: self.right.clone(),
            height: self.height.clone(),
            leafset: self.leafset.clone(),
            root: self.root,
            k: self.k,
            n: self.n,
            weight: self.weight,
            lb: self.lb,
        }
    }

    /// Overwrites `self` without reallocating: the arena vectors of a
    /// retired tree from the same matrix already have the right capacity,
    /// so this is five `memcpy`s. This is what makes
    /// [`insert_next_into`](PartialTree::insert_next_into) allocation-free.
    fn clone_from(&mut self, source: &Self) {
        self.parent.clone_from(&source.parent);
        self.left.clone_from(&source.left);
        self.right.clone_from(&source.right);
        self.height.clone_from(&source.height);
        self.leafset.clone_from(&source.leafset);
        self.root = source.root;
        self.k = source.k;
        self.n = source.n;
        self.weight = source.weight;
        self.lb = source.lb;
    }
}

impl<const K: usize> PartialTree<K> {
    /// Taxa ceiling of this leaf-bitset width: `64·K` leaves fit in the
    /// per-node [`LeafWords<K>`] mask.
    pub const MAX_TAXA: usize = LeafWords::<K>::CAPACITY;

    /// The root BBT node: the unique topology over taxa `{0, 1}`, with
    /// height `M[0,1] / 2`.
    ///
    /// Generic over the [`DistSource`]: pass the plain
    /// [`DistanceMatrix`](mutree_distmat::DistanceMatrix) for the scalar
    /// reference path, or a [`LaneDist`](crate::LaneDist) view of the
    /// blocked [`SolverMatrix`](mutree_distmat::SolverMatrix) for the
    /// lane-kernel path — both produce bit-identical trees.
    ///
    /// # Panics
    ///
    /// Panics when the matrix exceeds [`MAX_TAXA`](Self::MAX_TAXA) taxa
    /// (enforce via [`MutSolver`](crate::MutSolver), which dispatches to a
    /// wide-enough width and returns an error beyond the widest).
    pub fn cherry<S: DistSource>(m: &S) -> Self {
        let n = m.taxa();
        assert!(
            n <= Self::MAX_TAXA,
            "PartialTree with {K} leaf words supports at most {} taxa, got {n}",
            Self::MAX_TAXA
        );
        let cap = 2 * n - 1;
        let mut t = PartialTree {
            parent: vec![NONE; cap],
            left: vec![NONE; cap],
            right: vec![NONE; cap],
            height: vec![0.0; cap],
            leafset: vec![LeafWords::EMPTY; cap],
            root: n as u32,
            k: 2,
            n: n as u32,
            weight: 0.0,
            lb: 0.0,
        };
        for leaf in 0..n {
            t.leafset[leaf] = LeafWords::singleton(leaf);
        }
        let r = n; // first internal node
        t.left[r] = 0;
        t.right[r] = 1;
        t.parent[0] = r as u32;
        t.parent[1] = r as u32;
        t.leafset[r] = LeafWords::singleton(0).union(LeafWords::singleton(1));
        t.height[r] = m.dist(0, 1) / 2.0;
        t.weight = m.dist(0, 1);
        t
    }

    /// Number of species inserted so far.
    pub fn leaves_inserted(&self) -> usize {
        self.k as usize
    }

    /// Total number of species of the underlying matrix.
    pub fn taxon_count(&self) -> usize {
        self.n as usize
    }

    /// Whether all species are inserted.
    pub fn is_complete(&self) -> bool {
        self.k == self.n
    }

    /// Current tree weight `ω` (minimal for the topology).
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// The cached lower bound (weight plus the insertion-cost suffix;
    /// maintained by [`MutProblem`](crate::MutProblem)).
    pub fn lower_bound(&self) -> f64 {
        self.lb
    }

    pub(crate) fn set_lower_bound(&mut self, lb: f64) {
        self.lb = lb;
    }

    /// All current insertion sites: inserting "above node `v`" splits the
    /// edge from `v` to its parent (or roots a new node above the whole
    /// tree when `v` is the root). A tree over `k` leaves has `2k − 1`
    /// sites.
    pub fn insertion_sites(&self) -> impl Iterator<Item = u32> + '_ {
        let n = self.n as usize;
        let k = self.k as usize;
        (0..k).chain(n..n + k - 1).map(|v| v as u32)
    }

    /// Returns a copy of this tree with the next species (`taxon = k`)
    /// inserted above node `site`, with heights and weight updated.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when the tree is already complete or
    /// `site` is not a live node.
    pub fn insert_next<S: DistSource>(&self, m: &S, site: u32) -> PartialTree<K> {
        let mut t = self.clone();
        t.insert_in_place(m, site);
        t
    }

    /// Like [`insert_next`](PartialTree::insert_next), but writes the child
    /// into `scratch` (typically a retired sibling from the same search)
    /// instead of allocating a fresh tree. With a warmed-up scratch this is
    /// allocation-free: `clone_from` reuses the arena vectors in place.
    pub fn insert_next_into<S: DistSource>(&self, m: &S, site: u32, scratch: &mut PartialTree<K>) {
        scratch.clone_from(self);
        scratch.insert_in_place(m, site);
    }

    /// Inserts the next species above `site`, mutating `self` (which must
    /// be a copy of the parent node). The masked row maxima feeding each
    /// ancestor's height all read the inserted taxon's row, so the cursor
    /// from [`row_max`](DistSource::row_max) is fetched once up front —
    /// the bound-kernel seam.
    fn insert_in_place<S: DistSource>(&mut self, m: &S, site: u32) {
        debug_assert!(!self.is_complete(), "tree is already complete");
        let s = self.k as usize; // the taxon being inserted
        let srow = m.row_max(s);
        let n = self.n as usize;
        let e = site as usize;
        debug_assert!(
            e < s || (n..n + s - 1).contains(&e),
            "site {e} is not a live node"
        );
        let j = n + s - 1; // the new internal node
        let p = self.parent[e];
        let sbit = LeafWords::singleton(s);

        self.left[j] = e as u32;
        self.right[j] = s as u32;
        self.parent[j] = p;
        self.parent[e] = j as u32;
        self.parent[s] = j as u32;
        self.leafset[j] = self.leafset[e].union(sbit);
        let cand = srow.max_to_mask(&self.leafset[e]) / 2.0;
        self.height[j] = self.height[e].max(cand);
        if p == NONE {
            self.root = j as u32;
        } else {
            let p = p as usize;
            if self.left[p] == site {
                self.left[p] = j as u32;
            } else {
                debug_assert_eq!(self.right[p], site);
                self.right[p] = j as u32;
            }
        }

        // Walk up from the new node, folding in the pairs (s, y) newly
        // separated at each ancestor: exactly the leaves of the sibling
        // subtree at that ancestor.
        let mut child = j;
        let mut a = p;
        while a != NONE {
            let ai = a as usize;
            self.leafset[ai] |= sbit;
            let sibling = if self.left[ai] == child as u32 {
                self.right[ai]
            } else {
                self.left[ai]
            } as usize;
            let cand = srow.max_to_mask(&self.leafset[sibling]) / 2.0;
            self.height[ai] = self.height[ai].max(self.height[child]).max(cand);
            child = ai;
            a = self.parent[ai];
        }

        self.k += 1;
        self.weight = self.recompute_weight();
    }

    fn recompute_weight(&self) -> f64 {
        let n = self.n as usize;
        let k = self.k as usize;
        let mut w = 0.0;
        for v in (0..k).chain(n..n + k - 1) {
            let p = self.parent[v];
            if p != NONE {
                w += self.height[p as usize] - self.height[v];
            }
        }
        w
    }

    /// For the freshly inserted leaf `s = k − 1`, computes each earlier
    /// leaf's position along `s`'s root path: `order[y]` is `0` for leaves
    /// sharing `s`'s deepest ancestor, `1` for the next ancestor up, and so
    /// on. Two leaves share their LCA with `s` iff their orders are equal,
    /// and `LCA(y1, s)` is strictly below `LCA(y2, s)` iff
    /// `order[y1] < order[y2]` — which is all the 3-3 rule needs.
    pub fn root_path_orders(&self) -> Vec<u32> {
        let s = (self.k - 1) as usize;
        let mut order = vec![0u32; s];
        let mut level = 0u32;
        let mut child = self.parent[s]; // the joint node above s
        debug_assert_ne!(child, NONE);
        // At the joint node, the sibling subtree is everything under the
        // joint except s itself.
        let mut a = child;
        while a != NONE {
            let ai = a as usize;
            let mut sib_mask = self.leafset[ai].without(s);
            if child != a {
                let sibling = if self.left[ai] == child {
                    self.right[ai]
                } else {
                    self.left[ai]
                } as usize;
                sib_mask = self.leafset[sibling];
            }
            for y in sib_mask.iter() {
                if y < s {
                    order[y] = level;
                }
            }
            // Only count leaves not yet assigned at deeper levels: the
            // masks above are disjoint by construction (each ancestor
            // contributes exactly its sibling subtree), except the joint
            // node which contributes s's first siblings.
            child = a;
            a = self.parent[ai];
            level += 1;
        }
        order
    }

    /// Converts to a full [`UltrametricTree`] (taxa keep their ids in the
    /// matrix this tree was built against).
    pub fn to_ultrametric(&self) -> UltrametricTree {
        fn build<const K: usize>(t: &PartialTree<K>, v: usize) -> UltrametricTree {
            if v < t.n as usize {
                UltrametricTree::leaf(v)
            } else {
                let l = build(t, t.left[v] as usize);
                let r = build(t, t.right[v] as usize);
                UltrametricTree::join(l, r, t.height[v])
            }
        }
        build(self, self.root as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutree_distmat::DistanceMatrix;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn m5() -> DistanceMatrix {
        DistanceMatrix::from_rows(&[
            vec![0.0, 9.0, 4.0, 6.0, 5.0],
            vec![9.0, 0.0, 7.0, 8.0, 6.0],
            vec![4.0, 7.0, 0.0, 3.0, 5.0],
            vec![6.0, 8.0, 3.0, 0.0, 5.0],
            vec![5.0, 6.0, 5.0, 5.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn cherry_weight_and_sites() {
        let m = m5();
        let t = PartialTree::<1>::cherry(&m);
        assert_eq!(t.leaves_inserted(), 2);
        assert_eq!(t.weight(), 9.0);
        assert_eq!(t.insertion_sites().count(), 3);
        assert!(!t.is_complete());
    }

    #[test]
    fn insertion_site_count_grows_correctly() {
        let m = m5();
        let mut t = PartialTree::<1>::cherry(&m);
        for expect in [3usize, 5, 7] {
            assert_eq!(t.insertion_sites().count(), expect);
            let site = t.insertion_sites().next().unwrap();
            t = t.insert_next(&m, site);
        }
        assert!(t.is_complete());
    }

    /// Every topology reachable by insertions must have the same weight as
    /// the same topology built as an `UltrametricTree` and refit.
    #[test]
    fn weight_matches_fit_heights_everywhere() {
        let m = m5();
        // Depth-first over all insertion sequences.
        let mut stack = vec![PartialTree::<1>::cherry(&m)];
        let mut seen = 0;
        while let Some(t) = stack.pop() {
            if t.is_complete() {
                seen += 1;
                let mut ut = t.to_ultrametric();
                let w = ut.fit_heights(&m);
                assert!(
                    (w - t.weight()).abs() < 1e-9,
                    "incremental weight {} != refit {}",
                    t.weight(),
                    w
                );
                assert!(ut.is_feasible_for(&m, 1e-9));
                continue;
            }
            let sites: Vec<u32> = t.insertion_sites().collect();
            for site in sites {
                stack.push(t.insert_next(&m, site));
            }
        }
        // A(5) = 3 * 5 * 7 = 105 distinct insertion sequences/topologies.
        assert_eq!(seen, 105);
    }

    #[test]
    fn weight_never_decreases_with_insertions() {
        let m = m5();
        let t = PartialTree::<1>::cherry(&m);
        for site in t.insertion_sites().collect::<Vec<_>>() {
            let t2 = t.insert_next(&m, site);
            assert!(t2.weight() >= t.weight() - 1e-12);
            for site2 in t2.insertion_sites().collect::<Vec<_>>() {
                let t3 = t2.insert_next(&m, site2);
                assert!(t3.weight() >= t2.weight() - 1e-12);
            }
        }
    }

    #[test]
    fn to_ultrametric_is_valid() {
        let m = m5();
        let mut t = PartialTree::<1>::cherry(&m);
        while !t.is_complete() {
            let site = t.insertion_sites().last().unwrap();
            t = t.insert_next(&m, site);
        }
        let ut = t.to_ultrametric();
        assert!(ut.validate().is_ok());
        assert_eq!(ut.leaf_count(), 5);
        assert!(ut.is_feasible_for(&m, 1e-9));
    }

    /// `insert_next_into` over a dirty scratch must produce a tree
    /// bit-identical to a fresh `insert_next`.
    #[test]
    fn insert_next_into_matches_insert_next() {
        let m = m5();
        let base = PartialTree::<1>::cherry(&m).insert_next(&m, 1);
        let mut scratch = PartialTree::<1>::cherry(&m); // deliberately stale state
        for site in base.insertion_sites().collect::<Vec<_>>() {
            let fresh = base.insert_next(&m, site);
            base.insert_next_into(&m, site, &mut scratch);
            assert_eq!(format!("{fresh:?}"), format!("{scratch:?}"), "site {site}");
        }
    }

    #[test]
    fn root_path_orders_reflect_topology() {
        let m = m5();
        // Build ((0,2),1): insert 2 above leaf 0.
        let t = PartialTree::<1>::cherry(&m).insert_next(&m, 0);
        // s = 2; path: joint above {0,2}, then root. 0 shares the joint
        // (order 0); 1 hangs off the root (order 1).
        let order = t.root_path_orders();
        assert_eq!(order, vec![0, 1]);

        // Build (0,(1,2)): insert 2 above leaf 1.
        let t = PartialTree::<1>::cherry(&m).insert_next(&m, 1);
        assert_eq!(t.root_path_orders(), vec![1, 0]);

        // Insert 2 above the root: both 0 and 1 are one level up.
        let t = PartialTree::<1>::cherry(&m).insert_next(&m, 5);
        assert_eq!(t.root_path_orders(), vec![0, 0]);
    }

    #[test]
    fn heights_are_minimal_after_each_insertion() {
        let m = m5();
        let mut stack = vec![PartialTree::<1>::cherry(&m)];
        while let Some(t) = stack.pop() {
            let mut ut = t.to_ultrametric();
            let refit = ut.fit_heights(&m);
            assert!(
                (refit - t.weight()).abs() < 1e-9,
                "partial tree at k = {} not minimal",
                t.leaves_inserted()
            );
            if t.leaves_inserted() < 4 {
                for site in t.insertion_sites().collect::<Vec<_>>() {
                    stack.push(t.insert_next(&m, site));
                }
            }
        }
    }

    /// Same matrix, different widths: each insertion must produce the
    /// same topology, heights and weight regardless of K.
    #[test]
    fn widths_agree_on_every_insertion_path() {
        let m = m5();
        let mut stack = vec![(PartialTree::<1>::cherry(&m), PartialTree::<2>::cherry(&m))];
        while let Some((t1, t2)) = stack.pop() {
            assert_eq!(t1.weight(), t2.weight());
            assert_eq!(
                format!("{:?}", t1.to_ultrametric()),
                format!("{:?}", t2.to_ultrametric())
            );
            if !t1.is_complete() {
                for site in t1.insertion_sites().collect::<Vec<_>>() {
                    stack.push((t1.insert_next(&m, site), t2.insert_next(&m, site)));
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The invariant `root_path_orders` relies on (noted at the sibling
        /// walk above): after any insertion sequence, the sibling masks
        /// along the new leaf's root path are pairwise disjoint, every
        /// node's leafset is the union of its children's, and popcounts add
        /// up.
        #[test]
        fn sibling_masks_stay_disjoint(n in 4usize..12, seed in any::<u64>()) {
            use rand::Rng;
            let mut rng = StdRng::seed_from_u64(seed);
            let m = mutree_distmat::gen::uniform_metric(n, 1.0, 50.0, &mut rng);
            let mut t = PartialTree::<2>::cherry(&m);
            while !t.is_complete() {
                let sites: Vec<u32> = t.insertion_sites().collect();
                let site = sites[rng.gen_range(0..sites.len())];
                t = t.insert_next(&m, site);

                // Check the consistency invariants on the whole arena.
                let s = t.leaves_inserted() - 1;
                let live: Vec<usize> = (0..=s).chain(n..n + s).collect();
                for &v in &live {
                    if v < n {
                        prop_assert_eq!(t.leafset[v], LeafWords::singleton(v));
                        continue;
                    }
                    let l = t.leafset[t.left[v] as usize];
                    let r = t.leafset[t.right[v] as usize];
                    prop_assert!(l.is_disjoint(&r), "children of {} overlap", v);
                    prop_assert_eq!(l.union(r), t.leafset[v]);
                    prop_assert_eq!(l.count() + r.count(), t.leafset[v].count());
                }

                // Walk s's root path and collect the sibling masks the 3-3
                // order computation consumes: pairwise disjoint, union =
                // all earlier leaves.
                let mut masks: Vec<LeafWords<2>> = Vec::new();
                let joint = t.parent[s] as usize;
                masks.push(t.leafset[joint].without(s));
                let mut child = joint;
                let mut a = t.parent[joint];
                while a != NONE {
                    let ai = a as usize;
                    let sib = if t.left[ai] == child as u32 { t.right[ai] } else { t.left[ai] };
                    masks.push(t.leafset[sib as usize]);
                    child = ai;
                    a = t.parent[ai];
                }
                for (i, a) in masks.iter().enumerate() {
                    for b in &masks[i + 1..] {
                        prop_assert!(a.is_disjoint(b));
                    }
                }
                let all = masks.iter().fold(LeafWords::EMPTY, |acc, &mk| acc.union(mk));
                prop_assert_eq!(all.count() as usize, s);
            }
        }
    }
}
