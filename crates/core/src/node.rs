use mutree_bnb::bound::triple_index;
use mutree_bnb::propagate::{Arm, TripleDomains};
use mutree_tree::UltrametricTree;

use crate::dist::{DistSource, RowMax};
use crate::leafset::LeafWords;

const NONE: u32 = u32::MAX;

/// The triple-domain arm index: for every leaf pair `(s, u)` with
/// `s < u`, the partition of the earlier leaves `i < s` by the fixed arm
/// of triple `(i, s, u)` — one `[Earlier, WithLow, WithHigh]` mask trio
/// per pair, decoded once per problem from the packed
/// [`TripleDomains`]. [`prop_advance`](PartialTree::prop_advance) folds
/// constraints level by level along the new leaf's root path, and every
/// leaf at one level contributes the *same* region mask per arm, so
/// three `intersects` tests per level replace a per-triple arm decode
/// (folding a region twice is idempotent, see the laminar argument at
/// the fold).
#[derive(Debug, Clone, Default)]
pub(crate) struct ArmIndex<const K: usize> {
    masks: Vec<[LeafWords<K>; 3]>,
}

impl<const K: usize> ArmIndex<K> {
    /// Decodes the packed domain into per-pair arm masks. An empty
    /// domain yields an empty (inactive) index.
    pub(crate) fn build(n: usize, domains: &TripleDomains) -> Self {
        if domains.is_empty() {
            return ArmIndex::default();
        }
        let mut masks = vec![[LeafWords::EMPTY; 3]; n * n.saturating_sub(1) / 2];
        for u in 2..n {
            for s in 1..u {
                // triple_index is linear in its first argument, so the
                // codes for fixed (s, u) are contiguous from base.
                let base = triple_index(0, s, u);
                let slot = &mut masks[Self::pair(s, u)];
                for i in 0..s {
                    match domains.arm(base + i) {
                        Arm::Open => {}
                        Arm::Earlier => slot[0].insert(i),
                        Arm::WithLow => slot[1].insert(i),
                        Arm::WithHigh => slot[2].insert(i),
                    }
                }
            }
        }
        ArmIndex { masks }
    }

    /// Whether the index carries no pairs (propagation inactive).
    pub(crate) fn is_empty(&self) -> bool {
        self.masks.is_empty()
    }

    #[inline]
    fn pair(s: usize, u: usize) -> usize {
        debug_assert!(s < u);
        u * (u - 1) / 2 + s
    }

    /// The `[Earlier, WithLow, WithHigh]` masks of pair `(s, u)`.
    #[inline]
    fn masks(&self, s: usize, u: usize) -> &[LeafWords<K>; 3] {
        &self.masks[Self::pair(s, u)]
    }
}

/// A node of the branch-and-bound tree (BBT): an ultrametric tree over the
/// first `k` species of a (maxmin-relabeled) matrix, with minimal heights.
///
/// The encoding is a flat arena sized for the complete tree so that clones
/// — the dominant cost of branching — are straight `memcpy`s:
///
/// * node ids `0..n` are the leaves (id = taxon); ids `n..2n-1` are
///   internal nodes, allocated in insertion order (inserting taxon `s`
///   creates internal node `n + s − 1`);
/// * each node stores its parent, children, height, and the
///   [`LeafWords<K>`] bitset of leaves below it. `K` fixes the taxa
///   ceiling at `64·K`; the solver monomorphizes K = 1, 2, 4 and
///   dispatches on the matrix size (see
///   [`leaf_words_for`](crate::leaf_words_for)), so the default `K = 1`
///   compiles to the historical single-`u64` arena.
///
/// Heights are kept *minimal* for the topology at all times: inserting a
/// leaf only updates heights along its root path, using the leaf masks to
/// find the cross pairs each ancestor newly separates.
#[derive(Debug)]
pub struct PartialTree<const K: usize = 1> {
    parent: Vec<u32>,
    left: Vec<u32>,
    right: Vec<u32>,
    height: Vec<f64>,
    leafset: Vec<LeafWords<K>>,
    root: u32,
    k: u32,
    n: u32,
    weight: f64,
    lb: f64,
    /// Future-leaf confinement masks for the propagation stage, indexed
    /// by taxon: `prop_inside[u]` is the leafset of the current subtree
    /// `u` must insert into (its edge included), `prop_outside[u]` the
    /// leafset of the current subtree `u` must not insert strictly
    /// inside. `EMPTY` means unconstrained; the vectors are empty — no
    /// per-node cost at all — when propagation is off for this node.
    prop_inside: Vec<LeafWords<K>>,
    prop_outside: Vec<LeafWords<K>>,
    /// Some future leaf's confinements contradict: every completion of
    /// this node dies in a later 3-3 check, so the kernel prunes it.
    prop_wiped: bool,
    /// Per-level (sibling, ancestor) leafsets along the newest leaf's
    /// root path — scratch for [`prop_advance`](Self::prop_advance),
    /// kept on the node so a recycled tree re-fills it without
    /// allocating. Contents are meaningless between calls, so clones
    /// don't copy it (and `clone_from` leaves the capacity in place).
    prop_scratch: Vec<(LeafWords<K>, LeafWords<K>)>,
}

impl<const K: usize> Clone for PartialTree<K> {
    fn clone(&self) -> Self {
        PartialTree {
            parent: self.parent.clone(),
            left: self.left.clone(),
            right: self.right.clone(),
            height: self.height.clone(),
            leafset: self.leafset.clone(),
            root: self.root,
            k: self.k,
            n: self.n,
            weight: self.weight,
            lb: self.lb,
            prop_inside: self.prop_inside.clone(),
            prop_outside: self.prop_outside.clone(),
            prop_wiped: self.prop_wiped,
            prop_scratch: Vec::new(),
        }
    }

    /// Overwrites `self` without reallocating: the arena vectors of a
    /// retired tree from the same matrix already have the right capacity,
    /// so this is a handful of `memcpy`s — five arena vectors plus the
    /// two confinement-mask vectors when propagation is on. This is what
    /// makes [`insert_next_into`](PartialTree::insert_next_into)
    /// allocation-free.
    fn clone_from(&mut self, source: &Self) {
        self.parent.clone_from(&source.parent);
        self.left.clone_from(&source.left);
        self.right.clone_from(&source.right);
        self.height.clone_from(&source.height);
        self.leafset.clone_from(&source.leafset);
        self.root = source.root;
        self.k = source.k;
        self.n = source.n;
        self.weight = source.weight;
        self.lb = source.lb;
        self.prop_inside.clone_from(&source.prop_inside);
        self.prop_outside.clone_from(&source.prop_outside);
        self.prop_wiped = source.prop_wiped;
        // prop_scratch deliberately untouched: its contents are dead
        // between prop_advance calls and the retained capacity is the
        // point of recycling.
    }
}

impl<const K: usize> PartialTree<K> {
    /// Taxa ceiling of this leaf-bitset width: `64·K` leaves fit in the
    /// per-node [`LeafWords<K>`] mask.
    pub const MAX_TAXA: usize = LeafWords::<K>::CAPACITY;

    /// The root BBT node: the unique topology over taxa `{0, 1}`, with
    /// height `M[0,1] / 2`.
    ///
    /// Generic over the [`DistSource`]: pass the plain
    /// [`DistanceMatrix`](mutree_distmat::DistanceMatrix) for the scalar
    /// reference path, or a [`LaneDist`](crate::LaneDist) view of the
    /// blocked [`SolverMatrix`](mutree_distmat::SolverMatrix) for the
    /// lane-kernel path — both produce bit-identical trees.
    ///
    /// # Panics
    ///
    /// Panics when the matrix exceeds [`MAX_TAXA`](Self::MAX_TAXA) taxa
    /// (enforce via [`MutSolver`](crate::MutSolver), which dispatches to a
    /// wide-enough width and returns an error beyond the widest).
    pub fn cherry<S: DistSource>(m: &S) -> Self {
        let n = m.taxa();
        assert!(
            n <= Self::MAX_TAXA,
            "PartialTree with {K} leaf words supports at most {} taxa, got {n}",
            Self::MAX_TAXA
        );
        let cap = 2 * n - 1;
        let mut t = PartialTree {
            parent: vec![NONE; cap],
            left: vec![NONE; cap],
            right: vec![NONE; cap],
            height: vec![0.0; cap],
            leafset: vec![LeafWords::EMPTY; cap],
            root: n as u32,
            k: 2,
            n: n as u32,
            weight: 0.0,
            lb: 0.0,
            prop_inside: Vec::new(),
            prop_outside: Vec::new(),
            prop_wiped: false,
            prop_scratch: Vec::new(),
        };
        for leaf in 0..n {
            t.leafset[leaf] = LeafWords::singleton(leaf);
        }
        let r = n; // first internal node
        t.left[r] = 0;
        t.right[r] = 1;
        t.parent[0] = r as u32;
        t.parent[1] = r as u32;
        t.leafset[r] = LeafWords::singleton(0).union(LeafWords::singleton(1));
        t.height[r] = m.dist(0, 1) / 2.0;
        t.weight = m.dist(0, 1);
        t
    }

    /// Number of species inserted so far.
    pub fn leaves_inserted(&self) -> usize {
        self.k as usize
    }

    /// Total number of species of the underlying matrix.
    pub fn taxon_count(&self) -> usize {
        self.n as usize
    }

    /// Whether all species are inserted.
    pub fn is_complete(&self) -> bool {
        self.k == self.n
    }

    /// Current tree weight `ω` (minimal for the topology).
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// The cached lower bound (weight plus the insertion-cost suffix;
    /// maintained by [`MutProblem`](crate::MutProblem)).
    pub fn lower_bound(&self) -> f64 {
        self.lb
    }

    pub(crate) fn set_lower_bound(&mut self, lb: f64) {
        self.lb = lb;
    }

    /// All current insertion sites: inserting "above node `v`" splits the
    /// edge from `v` to its parent (or roots a new node above the whole
    /// tree when `v` is the root). A tree over `k` leaves has `2k − 1`
    /// sites.
    pub fn insertion_sites(&self) -> impl Iterator<Item = u32> + '_ {
        let n = self.n as usize;
        let k = self.k as usize;
        (0..k).chain(n..n + k - 1).map(|v| v as u32)
    }

    /// Returns a copy of this tree with the next species (`taxon = k`)
    /// inserted above node `site`, with heights and weight updated.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when the tree is already complete or
    /// `site` is not a live node.
    pub fn insert_next<S: DistSource>(&self, m: &S, site: u32) -> PartialTree<K> {
        let mut t = self.clone();
        t.insert_in_place(m, site);
        t
    }

    /// Like [`insert_next`](PartialTree::insert_next), but writes the child
    /// into `scratch` (typically a retired sibling from the same search)
    /// instead of allocating a fresh tree. With a warmed-up scratch this is
    /// allocation-free: `clone_from` reuses the arena vectors in place.
    pub fn insert_next_into<S: DistSource>(&self, m: &S, site: u32, scratch: &mut PartialTree<K>) {
        scratch.clone_from(self);
        scratch.insert_in_place(m, site);
    }

    /// Inserts the next species above `site`, mutating `self` (which must
    /// be a copy of the parent node). The masked row maxima feeding each
    /// ancestor's height all read the inserted taxon's row, so the cursor
    /// from [`row_max`](DistSource::row_max) is fetched once up front —
    /// the bound-kernel seam.
    fn insert_in_place<S: DistSource>(&mut self, m: &S, site: u32) {
        debug_assert!(!self.is_complete(), "tree is already complete");
        let s = self.k as usize; // the taxon being inserted
        let srow = m.row_max(s);
        let n = self.n as usize;
        let e = site as usize;
        debug_assert!(
            e < s || (n..n + s - 1).contains(&e),
            "site {e} is not a live node"
        );
        let j = n + s - 1; // the new internal node
        let p = self.parent[e];
        let sbit = LeafWords::singleton(s);

        self.left[j] = e as u32;
        self.right[j] = s as u32;
        self.parent[j] = p;
        self.parent[e] = j as u32;
        self.parent[s] = j as u32;
        self.leafset[j] = self.leafset[e].union(sbit);
        let cand = srow.max_to_mask(&self.leafset[e]) / 2.0;
        self.height[j] = self.height[e].max(cand);
        if p == NONE {
            self.root = j as u32;
        } else {
            let p = p as usize;
            if self.left[p] == site {
                self.left[p] = j as u32;
            } else {
                debug_assert_eq!(self.right[p], site);
                self.right[p] = j as u32;
            }
        }

        // Walk up from the new node, folding in the pairs (s, y) newly
        // separated at each ancestor: exactly the leaves of the sibling
        // subtree at that ancestor.
        let mut child = j;
        let mut a = p;
        while a != NONE {
            let ai = a as usize;
            self.leafset[ai] |= sbit;
            let sibling = if self.left[ai] == child as u32 {
                self.right[ai]
            } else {
                self.left[ai]
            } as usize;
            let cand = srow.max_to_mask(&self.leafset[sibling]) / 2.0;
            self.height[ai] = self.height[ai].max(self.height[child]).max(cand);
            child = ai;
            a = self.parent[ai];
        }

        self.k += 1;
        self.weight = self.recompute_weight();
    }

    fn recompute_weight(&self) -> f64 {
        let n = self.n as usize;
        let k = self.k as usize;
        let mut w = 0.0;
        for v in (0..k).chain(n..n + k - 1) {
            let p = self.parent[v];
            if p != NONE {
                w += self.height[p as usize] - self.height[v];
            }
        }
        w
    }

    /// For the freshly inserted leaf `s = k − 1`, computes each earlier
    /// leaf's position along `s`'s root path: `order[y]` is `0` for leaves
    /// sharing `s`'s deepest ancestor, `1` for the next ancestor up, and so
    /// on. Two leaves share their LCA with `s` iff their orders are equal,
    /// and `LCA(y1, s)` is strictly below `LCA(y2, s)` iff
    /// `order[y1] < order[y2]` — which is all the 3-3 rule needs.
    pub fn root_path_orders(&self) -> Vec<u32> {
        let s = (self.k - 1) as usize;
        let mut order = vec![0u32; s];
        let mut level = 0u32;
        let mut child = self.parent[s]; // the joint node above s
        debug_assert_ne!(child, NONE);
        // At the joint node, the sibling subtree is everything under the
        // joint except s itself.
        let mut a = child;
        while a != NONE {
            let ai = a as usize;
            let mut sib_mask = self.leafset[ai].without(s);
            if child != a {
                let sibling = if self.left[ai] == child {
                    self.right[ai]
                } else {
                    self.left[ai]
                } as usize;
                sib_mask = self.leafset[sibling];
            }
            for y in sib_mask.iter() {
                if y < s {
                    order[y] = level;
                }
            }
            // Only count leaves not yet assigned at deeper levels: the
            // masks above are disjoint by construction (each ancestor
            // contributes exactly its sibling subtree), except the joint
            // node which contributes s's first siblings.
            child = a;
            a = self.parent[ai];
            level += 1;
        }
        order
    }

    /// Height of the current root — the tallest node of the partial
    /// tree. The propagation stage compares it against the precomputed
    /// per-depth height floors.
    pub fn root_height(&self) -> f64 {
        self.height[self.root as usize]
    }

    /// Whether confinement masks are maintained on this node.
    pub(crate) fn prop_is_active(&self) -> bool {
        !self.prop_inside.is_empty()
    }

    /// Whether a confinement contradiction was detected — every
    /// completion of this node dies in a later 3-3 check, so the
    /// kernel's propagation stage prunes it.
    pub fn prop_wiped(&self) -> bool {
        self.prop_wiped
    }

    /// Starts maintaining confinement masks on this node (the search
    /// root). Masks start unset; [`prop_advance`](Self::prop_advance)
    /// fills them in as leaves insert.
    pub(crate) fn prop_activate(&mut self) {
        self.prop_inside.clear();
        self.prop_inside.resize(self.n as usize, LeafWords::EMPTY);
        self.prop_outside.clear();
        self.prop_outside.resize(self.n as usize, LeafWords::EMPTY);
        self.prop_wiped = false;
    }

    /// Whether the confinement masks of the *next* leaf to insert allow
    /// placing it above arena node `site`. By the time leaf `u` inserts,
    /// every triple `(i, j, u)` has both earlier leaves placed, so `u`'s
    /// masks are a complete fold of all its arm constraints — a rejected
    /// site is a pure look-ahead of the child's own 3-3 check, letting
    /// the branching skip the arena copy for children the filter would
    /// discard anyway. (The converse need not hold: an allowed site can
    /// still fail the check, so the filter keeps running on survivors.)
    pub(crate) fn prop_allows(&self, site: u32) -> bool {
        let u = self.k as usize;
        let lx = self.leafset[site as usize];
        // Inside: u must insert within the `ins` subtree, its top edge
        // included — the site's leafset must not escape it.
        let ins = self.prop_inside[u];
        if !ins.is_empty() && !lx.is_subset(&ins) {
            return false;
        }
        // Outside: u must not insert strictly inside the `outs`
        // subtree; its own top edge stays legal.
        let outs = self.prop_outside[u];
        !(!outs.is_empty() && lx.is_subset(&outs) && lx != outs)
    }

    /// Drops the masks — the hybrid strategy's deep tail. Descendants of
    /// this node skip domain maintenance entirely. `clear` keeps the
    /// capacity, so a recycled scratch tree flips between active and
    /// released states without reallocating.
    pub(crate) fn prop_release(&mut self) {
        self.prop_inside.clear();
        self.prop_outside.clear();
        self.prop_wiped = false;
    }

    /// Advances the confinement masks after the newest leaf's insertion:
    /// refreshes the subtree each stored mask names, then folds in the
    /// constraints of the triples `(i, s, u)` this insertion fixed —
    /// `s = k − 1` just placed, `i < s` placed earlier, `u > s` future.
    /// Sets the wiped flag the moment some `u` has no legal region left.
    ///
    /// Each mask is the leafset of a *current* node, so the family is
    /// laminar: two masks are nested or disjoint, which is what the
    /// intersection (inside) and keep-the-largest (outside) rules and
    /// the `inside ⊊ outside` wipe test rely on. On insertion of `s`
    /// above node `e`, exactly the subtrees whose leafsets contain
    /// `leafset(e)` gain the new leaf. An inside mask names "the i-side
    /// child of the triple's LCA", a node the insertion *replaces* when
    /// `e` is that child itself, so inside masks refresh on
    /// `leafset(e) ⊆ M`; an outside mask names the LCA node, whose
    /// identity survives an insertion directly above it, so outside
    /// masks refresh only on the strict `leafset(e) ⊊ M`.
    pub(crate) fn prop_advance(&mut self, arms: &ArmIndex<K>) {
        debug_assert!(self.prop_is_active() && !self.prop_wiped);
        let s = (self.k - 1) as usize;
        let n = self.n as usize;
        let joint = self.parent[s] as usize;
        let e = if self.left[joint] == s as u32 {
            self.right[joint]
        } else {
            self.left[joint]
        } as usize;
        let sb = self.leafset[e];
        let sbit = LeafWords::singleton(s);

        // The new constraints need, per root-path level of s, the
        // ancestor's leafset and its off-path child subtree: all i at
        // the same level share LCA(i, s) and therefore the same region
        // masks. The walk fills the node-recycled scratch, so after the
        // child pool warms up this whole routine allocates nothing.
        let mut levels = std::mem::take(&mut self.prop_scratch);
        levels.clear();
        levels.push((sb, self.leafset[joint]));
        let mut child = joint as u32;
        let mut a = self.parent[joint];
        while a != NONE {
            let ai = a as usize;
            let sibling = if self.left[ai] == child {
                self.right[ai]
            } else {
                self.left[ai]
            } as usize;
            levels.push((self.leafset[sibling], self.leafset[ai]));
            child = a;
            a = self.parent[ai];
        }

        // The sibling masks partition the placed leaves `0..s`, and
        // every leaf at one level contributes the same region mask per
        // arm, so three intersection tests per level fold exactly what
        // the per-triple walk would; the fold outcome is
        // order-independent (the inside chain keeps its minimum, the
        // outside chain its maximum, a disjoint pair wipes under any
        // order, and re-folding a region is idempotent).
        'future: for u in (s + 1)..n {
            let mut ins = self.prop_inside[u];
            let mut outs = self.prop_outside[u];
            // Refresh first: inserting s grew exactly the subtrees whose
            // leafsets contain `leafset(e)`. An inside mask names a node
            // the insertion may *replace* (the e-side child of the
            // triple's LCA), so it refreshes on the non-strict subset;
            // an outside mask names the LCA itself, whose identity
            // survives an insertion directly above it, so it refreshes
            // only on the strict one. Masks of already-placed leaves
            // (`u ≤ s`) are dead and deliberately skipped.
            let mut touched = false;
            if !ins.is_empty() && sb.is_subset(&ins) {
                ins |= sbit;
                touched = true;
            }
            if !outs.is_empty() && sb.is_subset(&outs) && outs != sb {
                outs |= sbit;
                touched = true;
            }

            let &[earlier, with_low, with_high] = arms.masks(s, u);
            let constrained = earlier.union(with_low).union(with_high);
            let mut folded = false;
            if !constrained.is_empty() {
                for (lvl, &(sib, anc)) in levels.iter().enumerate() {
                    if !sib.intersects(&constrained) {
                        continue;
                    }
                    // (i, s) close and both placed: u must not insert
                    // strictly inside their LCA's subtree. Keep the
                    // largest such region — it subsumes nested ones.
                    if sib.intersects(&earlier) && (outs.is_empty() || outs.is_subset(&anc)) {
                        outs = anc;
                        folded = true;
                    }
                    // (i, u) close ⇒ u inside the i-side child of
                    // LCA(i, s); (s, u) close ⇒ inside the s-side child.
                    // Inside regions intersect: laminar, so either
                    // nested (keep the smaller) or disjoint (wipeout).
                    let below = if lvl == 0 { sbit } else { levels[lvl - 1].1 };
                    let folds = [
                        sib.intersects(&with_low).then_some(sib),
                        sib.intersects(&with_high).then_some(below),
                    ];
                    for m in folds.into_iter().flatten() {
                        if ins.is_empty() || m.is_subset(&ins) {
                            ins = m;
                            folded = true;
                        } else if !ins.is_subset(&m) {
                            self.prop_wiped = true;
                            break 'future;
                        }
                    }
                }
            }
            if folded {
                // Wipe when the required region sits strictly inside
                // the forbidden one; equality still leaves the site on
                // the region's own top edge. A refresh alone cannot
                // create the strict containment, so only a fold needs
                // the test.
                if !ins.is_empty() && !outs.is_empty() && ins.is_subset(&outs) && ins != outs {
                    self.prop_wiped = true;
                    break 'future;
                }
            }
            if touched || folded {
                self.prop_inside[u] = ins;
                self.prop_outside[u] = outs;
            }
        }
        self.prop_scratch = levels;
    }

    /// Converts to a full [`UltrametricTree`] (taxa keep their ids in the
    /// matrix this tree was built against).
    pub fn to_ultrametric(&self) -> UltrametricTree {
        fn build<const K: usize>(t: &PartialTree<K>, v: usize) -> UltrametricTree {
            if v < t.n as usize {
                UltrametricTree::leaf(v)
            } else {
                let l = build(t, t.left[v] as usize);
                let r = build(t, t.right[v] as usize);
                UltrametricTree::join(l, r, t.height[v])
            }
        }
        build(self, self.root as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutree_distmat::DistanceMatrix;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn m5() -> DistanceMatrix {
        DistanceMatrix::from_rows(&[
            vec![0.0, 9.0, 4.0, 6.0, 5.0],
            vec![9.0, 0.0, 7.0, 8.0, 6.0],
            vec![4.0, 7.0, 0.0, 3.0, 5.0],
            vec![6.0, 8.0, 3.0, 0.0, 5.0],
            vec![5.0, 6.0, 5.0, 5.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn cherry_weight_and_sites() {
        let m = m5();
        let t = PartialTree::<1>::cherry(&m);
        assert_eq!(t.leaves_inserted(), 2);
        assert_eq!(t.weight(), 9.0);
        assert_eq!(t.insertion_sites().count(), 3);
        assert!(!t.is_complete());
    }

    #[test]
    fn insertion_site_count_grows_correctly() {
        let m = m5();
        let mut t = PartialTree::<1>::cherry(&m);
        for expect in [3usize, 5, 7] {
            assert_eq!(t.insertion_sites().count(), expect);
            let site = t.insertion_sites().next().unwrap();
            t = t.insert_next(&m, site);
        }
        assert!(t.is_complete());
    }

    /// Every topology reachable by insertions must have the same weight as
    /// the same topology built as an `UltrametricTree` and refit.
    #[test]
    fn weight_matches_fit_heights_everywhere() {
        let m = m5();
        // Depth-first over all insertion sequences.
        let mut stack = vec![PartialTree::<1>::cherry(&m)];
        let mut seen = 0;
        while let Some(t) = stack.pop() {
            if t.is_complete() {
                seen += 1;
                let mut ut = t.to_ultrametric();
                let w = ut.fit_heights(&m);
                assert!(
                    (w - t.weight()).abs() < 1e-9,
                    "incremental weight {} != refit {}",
                    t.weight(),
                    w
                );
                assert!(ut.is_feasible_for(&m, 1e-9));
                continue;
            }
            let sites: Vec<u32> = t.insertion_sites().collect();
            for site in sites {
                stack.push(t.insert_next(&m, site));
            }
        }
        // A(5) = 3 * 5 * 7 = 105 distinct insertion sequences/topologies.
        assert_eq!(seen, 105);
    }

    #[test]
    fn weight_never_decreases_with_insertions() {
        let m = m5();
        let t = PartialTree::<1>::cherry(&m);
        for site in t.insertion_sites().collect::<Vec<_>>() {
            let t2 = t.insert_next(&m, site);
            assert!(t2.weight() >= t.weight() - 1e-12);
            for site2 in t2.insertion_sites().collect::<Vec<_>>() {
                let t3 = t2.insert_next(&m, site2);
                assert!(t3.weight() >= t2.weight() - 1e-12);
            }
        }
    }

    #[test]
    fn to_ultrametric_is_valid() {
        let m = m5();
        let mut t = PartialTree::<1>::cherry(&m);
        while !t.is_complete() {
            let site = t.insertion_sites().last().unwrap();
            t = t.insert_next(&m, site);
        }
        let ut = t.to_ultrametric();
        assert!(ut.validate().is_ok());
        assert_eq!(ut.leaf_count(), 5);
        assert!(ut.is_feasible_for(&m, 1e-9));
    }

    /// `insert_next_into` over a dirty scratch must produce a tree
    /// bit-identical to a fresh `insert_next`.
    #[test]
    fn insert_next_into_matches_insert_next() {
        let m = m5();
        let base = PartialTree::<1>::cherry(&m).insert_next(&m, 1);
        let mut scratch = PartialTree::<1>::cherry(&m); // deliberately stale state
        for site in base.insertion_sites().collect::<Vec<_>>() {
            let fresh = base.insert_next(&m, site);
            base.insert_next_into(&m, site, &mut scratch);
            assert_eq!(format!("{fresh:?}"), format!("{scratch:?}"), "site {site}");
        }
    }

    #[test]
    fn root_path_orders_reflect_topology() {
        let m = m5();
        // Build ((0,2),1): insert 2 above leaf 0.
        let t = PartialTree::<1>::cherry(&m).insert_next(&m, 0);
        // s = 2; path: joint above {0,2}, then root. 0 shares the joint
        // (order 0); 1 hangs off the root (order 1).
        let order = t.root_path_orders();
        assert_eq!(order, vec![0, 1]);

        // Build (0,(1,2)): insert 2 above leaf 1.
        let t = PartialTree::<1>::cherry(&m).insert_next(&m, 1);
        assert_eq!(t.root_path_orders(), vec![1, 0]);

        // Insert 2 above the root: both 0 and 1 are one level up.
        let t = PartialTree::<1>::cherry(&m).insert_next(&m, 5);
        assert_eq!(t.root_path_orders(), vec![0, 0]);
    }

    #[test]
    fn heights_are_minimal_after_each_insertion() {
        let m = m5();
        let mut stack = vec![PartialTree::<1>::cherry(&m)];
        while let Some(t) = stack.pop() {
            let mut ut = t.to_ultrametric();
            let refit = ut.fit_heights(&m);
            assert!(
                (refit - t.weight()).abs() < 1e-9,
                "partial tree at k = {} not minimal",
                t.leaves_inserted()
            );
            if t.leaves_inserted() < 4 {
                for site in t.insertion_sites().collect::<Vec<_>>() {
                    stack.push(t.insert_next(&m, site));
                }
            }
        }
    }

    /// Same matrix, different widths: each insertion must produce the
    /// same topology, heights and weight regardless of K.
    #[test]
    fn widths_agree_on_every_insertion_path() {
        let m = m5();
        let mut stack = vec![(PartialTree::<1>::cherry(&m), PartialTree::<2>::cherry(&m))];
        while let Some((t1, t2)) = stack.pop() {
            assert_eq!(t1.weight(), t2.weight());
            assert_eq!(
                format!("{:?}", t1.to_ultrametric()),
                format!("{:?}", t2.to_ultrametric())
            );
            if !t1.is_complete() {
                for site in t1.insertion_sites().collect::<Vec<_>>() {
                    stack.push((t1.insert_next(&m, site), t2.insert_next(&m, site)));
                }
            }
        }
    }

    #[test]
    fn prop_masks_track_confinements_across_insertions() {
        use mutree_bnb::bound::{close_pair_table_len, CLOSE_WITH_HIGH, CLOSE_WITH_LOW};
        let m = m5();
        // Hand-built domains: only the (0, 1, u) triples constrain.
        let mut codes = vec![0u8; close_pair_table_len(5)];
        codes[triple_index(0, 1, 2)] = CLOSE_WITH_LOW; // 2 inside the 0-side of LCA(0,1)
        codes[triple_index(0, 1, 3)] = CLOSE_WITH_HIGH; // 3 inside the 1-side of LCA(0,1)
        let dom = ArmIndex::<1>::build(5, &TripleDomains::pack(&codes));

        let mut t = PartialTree::<1>::cherry(&m);
        t.prop_activate();
        t.prop_advance(&dom);
        assert!(!t.prop_wiped());
        assert_eq!(t.prop_inside[2], LeafWords::singleton(0));
        assert_eq!(t.prop_inside[3], LeafWords::singleton(1));
        assert!(t.prop_inside[4].is_empty());

        // Inserting 2 above leaf 1 replaces leaf 1 — the subtree 3 is
        // confined to — with the node {1, 2}: the mask must follow.
        let mut above_leaf = t.insert_next(&m, 1);
        above_leaf.prop_advance(&dom);
        assert!(!above_leaf.prop_wiped());
        let grown = LeafWords::singleton(1).union(LeafWords::singleton(2));
        assert_eq!(above_leaf.prop_inside[3], grown);
        assert_eq!(above_leaf.prop_inside[2], LeafWords::singleton(0));

        // Inserting 2 above the root leaves both LCA children intact:
        // no mask moves.
        let mut above_root = t.insert_next(&m, 5);
        above_root.prop_advance(&dom);
        assert!(!above_root.prop_wiped());
        assert_eq!(above_root.prop_inside[3], LeafWords::singleton(1));
        assert_eq!(above_root.prop_inside[2], LeafWords::singleton(0));
    }

    #[test]
    fn prop_wipes_on_disjoint_confinements() {
        use mutree_bnb::bound::{close_pair_table_len, CLOSE_WITH_HIGH, CLOSE_WITH_LOW};
        let m = m5();
        let mut codes = vec![0u8; close_pair_table_len(5)];
        // 3 inside the 0-side of LCA(0,1) = {0} ...
        codes[triple_index(0, 1, 3)] = CLOSE_WITH_LOW;
        // ... but also inside the 2-side of LCA(0,2), which after
        // inserting 2 above leaf 1 is the node {1, 2}: disjoint regions.
        codes[triple_index(0, 2, 3)] = CLOSE_WITH_HIGH;
        let dom = ArmIndex::<1>::build(5, &TripleDomains::pack(&codes));

        let mut t = PartialTree::<1>::cherry(&m);
        t.prop_activate();
        t.prop_advance(&dom);
        assert!(!t.prop_wiped());
        assert_eq!(t.prop_inside[3], LeafWords::singleton(0));

        let mut child = t.insert_next(&m, 1);
        child.prop_advance(&dom);
        assert!(child.prop_wiped());
    }

    #[test]
    fn prop_release_keeps_clones_cheap_and_inactive() {
        let m = m5();
        let mut t = PartialTree::<1>::cherry(&m);
        assert!(!t.prop_is_active());
        t.prop_activate();
        assert!(t.prop_is_active());
        let cloned = t.clone();
        assert!(cloned.prop_is_active());
        t.prop_release();
        assert!(!t.prop_is_active());
        assert!(!t.prop_wiped());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The invariant `root_path_orders` relies on (noted at the sibling
        /// walk above): after any insertion sequence, the sibling masks
        /// along the new leaf's root path are pairwise disjoint, every
        /// node's leafset is the union of its children's, and popcounts add
        /// up.
        #[test]
        fn sibling_masks_stay_disjoint(n in 4usize..12, seed in any::<u64>()) {
            use rand::Rng;
            let mut rng = StdRng::seed_from_u64(seed);
            let m = mutree_distmat::gen::uniform_metric(n, 1.0, 50.0, &mut rng);
            let mut t = PartialTree::<2>::cherry(&m);
            while !t.is_complete() {
                let sites: Vec<u32> = t.insertion_sites().collect();
                let site = sites[rng.gen_range(0..sites.len())];
                t = t.insert_next(&m, site);

                // Check the consistency invariants on the whole arena.
                let s = t.leaves_inserted() - 1;
                let live: Vec<usize> = (0..=s).chain(n..n + s).collect();
                for &v in &live {
                    if v < n {
                        prop_assert_eq!(t.leafset[v], LeafWords::singleton(v));
                        continue;
                    }
                    let l = t.leafset[t.left[v] as usize];
                    let r = t.leafset[t.right[v] as usize];
                    prop_assert!(l.is_disjoint(&r), "children of {} overlap", v);
                    prop_assert_eq!(l.union(r), t.leafset[v]);
                    prop_assert_eq!(l.count() + r.count(), t.leafset[v].count());
                }

                // Walk s's root path and collect the sibling masks the 3-3
                // order computation consumes: pairwise disjoint, union =
                // all earlier leaves.
                let mut masks: Vec<LeafWords<2>> = Vec::new();
                let joint = t.parent[s] as usize;
                masks.push(t.leafset[joint].without(s));
                let mut child = joint;
                let mut a = t.parent[joint];
                while a != NONE {
                    let ai = a as usize;
                    let sib = if t.left[ai] == child as u32 { t.right[ai] } else { t.left[ai] };
                    masks.push(t.leafset[sib as usize]);
                    child = ai;
                    a = t.parent[ai];
                }
                for (i, a) in masks.iter().enumerate() {
                    for b in &masks[i + 1..] {
                        prop_assert!(a.is_disjoint(b));
                    }
                }
                let all = masks.iter().fold(LeafWords::EMPTY, |acc, &mk| acc.union(mk));
                prop_assert_eq!(all.count() as usize, s);
            }
        }
    }
}
