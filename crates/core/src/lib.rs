//! Minimum ultrametric tree (MUT) construction — the primary contribution
//! of *"A Fast Technique for Constructing Evolutionary Tree with the
//! Application of Compact Sets"* (Yu et al., PaCT 2005) and its companion
//! *"Parallel Branch-and-Bound Algorithm for Constructing Evolutionary
//! Trees from Distance Matrix"* (HPC Asia 2005).
//!
//! Given an `n × n` distance matrix `M`, a *minimum ultrametric tree* is a
//! rooted, edge-weighted binary tree whose leaves are the species, whose
//! root-to-leaf paths all have equal length, whose leaf-pair distances
//! dominate `M`, and whose total edge weight is minimal. The problem is
//! NP-hard; this crate provides:
//!
//! * [`MutSolver`] — exact search via **Algorithm BBU** (Wu–Chao–Tang
//!   1999): maxmin species relabeling, UPGMM initial upper bound,
//!   branch-and-bound over leaf-insertion topologies. Three backends:
//!   sequential DFS, thread-parallel master/slave with global/local pools
//!   ([`SearchBackend::Parallel`]), and a **deterministic discrete-event
//!   cluster simulation** ([`SearchBackend::SimulatedCluster`]) that
//!   reproduces the paper's 16-node speedup experiments on any host;
//! * [`ThreeThree`] — the 3-3 relationship pruning rule (companion paper,
//!   Step 4), at the paper's initial-step strength or the proposed
//!   full-insertion extension;
//! * [`CompactPipeline`] — the PaCT 2005 technique: split `M` into small
//!   matrices along its [compact sets](mutree_graph::CompactSets), solve
//!   each exactly, and graft the subtrees back together, obtaining a
//!   near-optimal ultrametric tree orders of magnitude faster.
//!
//! ```
//! use mutree_distmat::DistanceMatrix;
//! use mutree_core::{MutSolver, SearchBackend};
//!
//! let m = DistanceMatrix::from_rows(&[
//!     vec![0.0, 2.0, 8.0, 8.0],
//!     vec![2.0, 0.0, 8.0, 8.0],
//!     vec![8.0, 8.0, 0.0, 4.0],
//!     vec![8.0, 8.0, 4.0, 0.0],
//! ]).unwrap();
//! let sol = MutSolver::new().backend(SearchBackend::Sequential).solve(&m).unwrap();
//! assert_eq!(sol.weight, 11.0);
//! assert!(sol.tree.is_feasible_for(&m, 1e-9));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod dist;
mod error;
pub mod exec;
mod leafset;
mod node;
mod pipeline;
mod problem;
mod run;
mod solver;

pub use cluster::{solve_simulated, solve_simulated_observed, SimCost, SimulatedOutcome};
pub use dist::{DistSource, LaneDist, LaneRowMax, RowMax, ScalarRowMax};
pub use error::MutError;
pub use exec::{Executor, QueueStats, TaskDag};
pub use leafset::{LeafIter, LeafWords};
pub use node::PartialTree;
pub use pipeline::{CompactPipeline, PipelineSolution};
pub use problem::MutProblem;
pub use run::{
    plan_pipeline, plan_solver, solve_plan, solve_plan_hooked, solve_request, SolveHooks,
};
pub use solver::{
    leaf_words_for, solution_newick, MutSolution, MutSolver, SearchBackend, LEAF_WIDTHS,
    MAX_EXACT_TAXA,
};

pub use mutree_bnb::{
    BoundKernel, CancelToken, CheckpointError, CheckpointFile, CheckpointPolicy, LoggingObserver,
    MemoryBudget, PruneStrategy, SearchMode, SearchStats, StopReason, Strategy, TraceLevel,
    WorkerPool,
};
// The bit-exact tree codec (checkpoints, cache payloads) and the shared
// FNV/splitmix hash primitives live downstack; re-export them at their
// historical paths.
pub use mutree_bnb::hash;
pub use mutree_tree::codec;
pub use mutree_tree::Linkage;
// The engine spine: requests, plans, reports, and the group-solve cache.
pub use mutree_engine::{
    BackendSpec, CacheOutcome, CacheProbe, CacheQuery, DegradeReason, DegradedGroup, EnvOverrides,
    GroupCache, MatrixSource, RetryPolicy, SolveKind, SolvePlan, SolveReport, SolveRequest,
    StageProvenance, StageTiming, ThreeThree,
};
