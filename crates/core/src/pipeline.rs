//! The compact-set decomposition pipeline — the PaCT 2005 contribution.
//!
//! Exact minimum-ultrametric-tree search is exponential in the number of
//! species, so the paper splits the distance matrix along its compact
//! sets: groups of species provably closer to each other than to anything
//! outside. The pipeline (paper §3):
//!
//! 1. find all compact sets (minimum spanning tree + merge test) and cut
//!    the laminar family at a size threshold, yielding a partition into
//!    small groups;
//! 2. build a *condensed* matrix over the groups under a linkage rule —
//!    the paper studies **maximum** linkage, which by Lemma 2 guarantees
//!    the merged tree is a feasible ultrametric tree; *minimum* and
//!    *average* are implemented for ablation;
//! 3. solve every group matrix and the condensed matrix exactly with the
//!    (parallel) branch-and-bound solver;
//! 4. graft each group subtree onto its group's leaf in the condensed
//!    tree and refit heights against the original matrix.
//!
//! The result is near-optimal (a few percent in the paper's experiments,
//! and measured in `EXPERIMENTS.md` here) at a tiny fraction of the
//! undecomposed search time, and the compact sets guarantee that species
//! grouped together really do share a lowest common ancestor below any
//! outside species, so the phylogenetic relations are preserved.
//!
//! # Execution as a task DAG
//!
//! Steps 3–4 are declared as a [`TaskDag`]: one task per ≥3-member group
//! solve, one task for the condensed meta-matrix (which may recurse
//! through the pipeline — on the *same* executor, never a nested pool),
//! and a merge/refit join task depending on all of them. With an
//! [`Executor`] attached ([`CompactPipeline::executor`]) the independent
//! solves run concurrently on its shared worker pool, and Parallel-backend
//! solvers borrow the same workers
//! ([`solve_parallel_pooled`](mutree_bnb::solve_parallel_pooled)) instead
//! of spawning a `thread::scope` per solve, so one `--threads` budget
//! covers both levels of parallelism. Without an executor the identical
//! DAG runs inline on the calling thread. Either way results are
//! aggregated in task order — never completion order — so the solution,
//! its degradation records and its merged statistics are deterministic.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use mutree_bnb::StopReason;
use mutree_distmat::DistanceMatrix;
use mutree_engine::{
    CacheOutcome, DegradeReason, DegradedGroup, GroupCache, RetryPolicy, StageProvenance,
    StageTiming,
};
use mutree_graph::CompactSets;
use mutree_tree::{cluster, Linkage, UltrametricTree};

use crate::exec::{Executor, TaskDag, TaskId};
use crate::{MutError, MutSolver, SearchStats};

/// A solved pipeline instance.
#[derive(Debug, Clone)]
pub struct PipelineSolution {
    /// The merged, height-refit ultrametric tree over all species.
    pub tree: UltrametricTree,
    /// Its weight (compare against [`MutSolution::weight`](crate::MutSolution::weight)
    /// for the cost penalty of decomposition).
    pub weight: f64,
    /// The species groups the compact sets induced (singletons included).
    pub groups: Vec<Vec<usize>>,
    /// Merged search statistics over the condensed and group solves.
    pub stats: SearchStats,
    /// Number of proper compact sets the matrix had.
    pub compact_sets: usize,
    /// The most severe stop reason any sub-search reported
    /// ([`StopReason::Completed`] when every search exhausted its space).
    pub stop: StopReason,
    /// Stages that fell back from a proven-optimal exact solve — truncated
    /// incumbents and agglomerative stand-ins — in pipeline order. Empty
    /// on a fully exact run.
    pub degraded: Vec<DegradedGroup>,
    /// Per-stage wall-clock times, in pipeline order (recursive condensed
    /// solves contribute their stages inline, path-qualified).
    pub timings: Vec<StageTiming>,
}

impl PipelineSolution {
    /// Whether every sub-solve ran to proven optimality with no fallback
    /// (the weight is then the pipeline's true optimum for this
    /// decomposition).
    pub fn is_complete(&self) -> bool {
        self.stop.is_complete() && self.degraded.is_empty()
    }

    /// The `count` slowest stages, most expensive first.
    pub fn slowest_stages(&self, count: usize) -> Vec<&StageTiming> {
        let mut by_time: Vec<&StageTiming> = self.timings.iter().collect();
        by_time.sort_by(|a, b| b.seconds.total_cmp(&a.seconds));
        by_time.truncate(count);
        by_time
    }
}

/// Configuration for the compact-set decomposition pipeline.
///
/// ```
/// use mutree_distmat::gen;
/// use mutree_core::CompactPipeline;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let m = gen::perturbed_ultrametric(14, 60.0, 0.05, &mut rng);
/// let sol = CompactPipeline::new().solve(&m).unwrap();
/// assert!(sol.tree.is_feasible_for(&m, 1e-9));
/// ```
#[derive(Debug, Clone)]
pub struct CompactPipeline {
    threshold: usize,
    linkage: Linkage,
    solver: MutSolver,
    max_depth: usize,
    executor: Option<Executor>,
    retry: Option<RetryPolicy>,
    cache: Option<Arc<GroupCache>>,
    /// Whether the cache was attached explicitly (builder) rather than
    /// picked up from the `MUTREE_CACHE` environment override. Only an
    /// explicit cache memoizes whole pipeline runs.
    cache_explicit: bool,
    /// Remaining pipeline-wide retry budget for the current run. Shared
    /// (via `Clone`) with the recursive meta pipelines of the same run;
    /// re-armed by [`solve`](CompactPipeline::solve).
    retry_budget: Arc<AtomicU32>,
}

impl Default for CompactPipeline {
    fn default() -> Self {
        CompactPipeline::new()
    }
}

/// `MUTREE_PIPELINE_THREADS=N` (N ≥ 1) forces every pipeline onto one
/// process-wide shared N-thread executor — CI uses it to push the whole
/// test suite through the task-graph path. The env read itself lives in
/// [`mutree_engine::plan`] with the rest of the override resolution.
fn env_executor() -> Option<Executor> {
    static FORCED: OnceLock<Option<Executor>> = OnceLock::new();
    FORCED
        .get_or_init(|| mutree_engine::plan::env_pipeline_threads().map(Executor::new))
        .clone()
}

/// `MUTREE_CACHE=1` attaches one process-wide shared [`GroupCache`] to
/// every pipeline built after the variable is set — CI uses it to replay
/// the whole test suite through the cache path. Unlike the executor the
/// variable is re-read per pipeline construction (only the cache instance
/// is shared), so tests can toggle it. An env-attached cache stays
/// *ambient*: it memoizes group solves but never whole pipeline runs
/// (see [`CompactPipeline::cache`]).
fn env_cache() -> Option<Arc<GroupCache>> {
    if mutree_engine::plan::env_cache_enabled() != Some(true) {
        return None;
    }
    static GLOBAL: OnceLock<Arc<GroupCache>> = OnceLock::new();
    Some(Arc::clone(
        GLOBAL.get_or_init(|| Arc::new(GroupCache::new())),
    ))
}

impl CompactPipeline {
    /// A pipeline cutting compact sets at 12 species, condensing under
    /// maximum linkage (the paper's studied variant) and solving pieces
    /// with a default sequential [`MutSolver`].
    pub fn new() -> Self {
        CompactPipeline {
            threshold: 12,
            linkage: Linkage::Maximum,
            solver: MutSolver::new(),
            max_depth: 8,
            executor: env_executor(),
            retry: None,
            cache: env_cache(),
            cache_explicit: false,
            retry_budget: Arc::new(AtomicU32::new(0)),
        }
    }

    /// Sets the largest group size solved exactly.
    ///
    /// # Panics
    ///
    /// Panics when `threshold < 2`.
    pub fn threshold(mut self, threshold: usize) -> Self {
        assert!(threshold >= 2, "threshold must be at least 2");
        self.threshold = threshold;
        self
    }

    /// Sets the linkage used for the condensed matrix. Only
    /// [`Linkage::Maximum`] guarantees a feasible merged tree; the others
    /// are for the ablation experiments.
    pub fn linkage(mut self, linkage: Linkage) -> Self {
        self.linkage = linkage;
        self
    }

    /// Sets the solver used for group and condensed matrices (pick a
    /// parallel backend here to mirror the paper's setup).
    pub fn solver(mut self, solver: MutSolver) -> Self {
        self.solver = solver;
        self
    }

    /// Runs the stage DAG on `exec`: group solves and the meta solve run
    /// concurrently on its worker pool, and any Parallel-backend solver
    /// without its own executor borrows the same workers, so group-level
    /// and intra-solve parallelism share one thread budget.
    pub fn executor(mut self, exec: Executor) -> Self {
        self.executor = Some(exec);
        self
    }

    /// The attached executor, if any.
    pub fn executor_handle(&self) -> Option<&Executor> {
        self.executor.as_ref()
    }

    /// Retries panicked or errored stage solves under `policy` before
    /// they degrade down the fallback ladder. Off by default: without a
    /// policy every failure degrades immediately, exactly as before.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Caps the recursive condensed-solve depth (the meta matrix recurses
    /// through the pipeline while it is larger than the threshold, up to
    /// this many levels).
    pub fn max_depth(mut self, depth: usize) -> Self {
        self.max_depth = depth;
        self
    }

    /// Attaches a content-addressed [`GroupCache`]: every cacheable group
    /// and meta solve probes it before searching (an exact hit returns
    /// the memoized optimum, a near-hit warm-seeds the search), and an
    /// explicitly attached cache additionally memoizes whole pipeline
    /// runs. Only unconstrained best-one solvers are cacheable — see
    /// [`MutSolver::cache_sig`] — so deadline/budget/checkpoint runs are
    /// never served stale answers.
    pub fn cache(mut self, cache: Arc<GroupCache>) -> Self {
        self.cache = Some(cache);
        self.cache_explicit = true;
        self
    }

    /// Detaches any cache, including one picked up from `MUTREE_CACHE`.
    pub fn no_cache(mut self) -> Self {
        self.cache = None;
        self.cache_explicit = false;
        self
    }

    /// The attached cache, if any.
    pub fn cache_handle(&self) -> Option<&Arc<GroupCache>> {
        self.cache.as_ref()
    }

    /// The solver clone handed to each stage task: when the pipeline has
    /// an executor and the solver does not, the solver borrows the
    /// pipeline's pool (a no-op for non-Parallel backends).
    fn task_solver(&self) -> MutSolver {
        match &self.executor {
            Some(exec) if self.solver.executor_handle().is_none() => {
                self.solver.clone().executor(exec.clone())
            }
            _ => self.solver.clone(),
        }
    }

    /// Runs the pipeline.
    ///
    /// # Errors
    ///
    /// [`MutError::NotDecomposable`] when even recursive decomposition
    /// cannot bring every exact solve within the engine's taxa ceiling
    /// (the solver dispatcher's [`MAX_EXACT_TAXA`](crate::MAX_EXACT_TAXA),
    /// 256 with the widest monomorphized leaf bitset), and any error from
    /// the underlying solver.
    pub fn solve(&self, m: &DistanceMatrix) -> Result<PipelineSolution, MutError> {
        // Re-arm the pipeline-wide retry budget for this run; the clone
        // shares the armed counter with every recursive meta pipeline.
        let mut run = self.clone();
        run.retry_budget = Arc::new(AtomicU32::new(
            run.retry.as_ref().map_or(0, |policy| policy.budget),
        ));
        // Whole-run memoization — explicitly attached caches only, so an
        // ambient `MUTREE_CACHE=1` can never collapse a run whose caller
        // wants real per-stage timings and statistics.
        if run.cache_explicit {
            if let (Some(cache), Some(solver_sig)) = (run.cache.clone(), run.solver.cache_sig()) {
                let sig = run.pipeline_sig(solver_sig);
                let probe = cache.probe(m, sig);
                let poisoned = probe.poisoned;
                return match probe.outcome {
                    CacheOutcome::Hit { tree, weight } => {
                        let cs = CompactSets::find(m);
                        let groups = cs.partition(run.threshold.max(2));
                        let stats = SearchStats {
                            cache_hits: 1,
                            cache_poisoned: poisoned,
                            ..Default::default()
                        };
                        Ok(PipelineSolution {
                            tree,
                            weight,
                            groups,
                            stats,
                            compact_sets: cs.len(),
                            stop: StopReason::Completed,
                            degraded: Vec::new(),
                            timings: vec![StageTiming {
                                stage: "cached".to_string(),
                                seconds: 0.0,
                                attempts: 1,
                                provenance: StageProvenance::Cached,
                            }],
                        })
                    }
                    // A near-hit cannot seed a decomposed run (the stage
                    // caches handle per-group seeding); treat it as a miss.
                    CacheOutcome::Seed { query, .. } | CacheOutcome::Miss(query) => {
                        let mut sol = run.solve_at_depth(m, 0, "")?;
                        sol.stats.cache_misses += 1;
                        sol.stats.cache_poisoned += poisoned;
                        if sol.is_complete() {
                            cache.insert(query, &sol.tree, sol.weight);
                        }
                        Ok(sol)
                    }
                };
            }
        }
        run.solve_at_depth(m, 0, "")
    }

    /// The whole-run cache signature: the solver's answer-affecting
    /// configuration extended with the pipeline knobs that shape the
    /// decomposition, and a marker separating pipeline entries from plain
    /// solver entries over the same matrix.
    fn pipeline_sig(&self, solver_sig: u64) -> u64 {
        use mutree_bnb::hash::{fnv1a, fnv1a_continue};
        let mut h = fnv1a(b"mutree-pipeline-sig-v1");
        h = fnv1a_continue(h, &solver_sig.to_le_bytes());
        h = fnv1a_continue(h, &(self.threshold as u64).to_le_bytes());
        h = fnv1a_continue(
            h,
            &[match self.linkage {
                Linkage::Maximum => 0u8,
                Linkage::Minimum => 1,
                Linkage::Average => 2,
            }],
        );
        fnv1a_continue(h, &(self.max_depth as u64).to_le_bytes())
    }

    fn solve_at_depth(
        &self,
        m: &DistanceMatrix,
        depth: usize,
        prefix: &str,
    ) -> Result<PipelineSolution, MutError> {
        let n = m.len();
        let cs = CompactSets::find(m);
        let groups = cs.partition(self.threshold.max(2));

        // When decomposition does nothing (all singletons or one group),
        // fall back to the plain exact solver.
        let effective = groups.iter().filter(|g| g.len() >= 2).count();
        if effective == 0 || groups.len() == 1 {
            let limit = self.solver.max_taxa();
            if n > limit {
                return Err(MutError::NotDecomposable {
                    groups: groups.len(),
                    max: limit,
                });
            }
            let stage = format!("{prefix}whole");
            let started = Instant::now();
            let st = solve_stage(
                &self.task_solver(),
                m,
                None,
                &stage,
                self.retry.as_ref(),
                &self.retry_budget,
                self.cache.as_deref(),
            );
            let timings = vec![StageTiming {
                stage,
                seconds: started.elapsed().as_secs_f64(),
                attempts: st.attempts,
                provenance: st.provenance,
            }];
            let mut tree = st.tree;
            let weight = tree.fit_heights(m);
            return Ok(PipelineSolution {
                tree,
                weight,
                groups,
                stats: st.stats,
                compact_sets: cs.len(),
                stop: st.stop,
                degraded: st.degraded,
                timings,
            });
        }

        // --- Declare the stage DAG: one task per nontrivial group solve,
        // one meta task, one merge join. Degradation stays per stage (one
        // stuck or broken group must not take the whole tree down) because
        // `solve_stage` absorbs every solver failure into a fallback tree.
        let g = groups.len();
        let condensed = condense(m, &groups, self.linkage)?;
        // Meta heights are refit against the *maximum*-linkage condensed
        // matrix before grafting: by Lemma 2, every attachment point then
        // sits above its subtree (Min(C, !C) > Max(C)), so grafting cannot
        // fail even when the topology came from a different linkage.
        let max_condensed = if matches!(self.linkage, Linkage::Maximum) {
            condensed.clone()
        } else {
            condense(m, &groups, Linkage::Maximum)?
        };

        let task_solver = self.task_solver();
        let mut dag: TaskDag<StageData> = TaskDag::new();
        let mut slots: Vec<MergeSlot> = Vec::with_capacity(g);
        for (gi, group) in groups.iter().enumerate() {
            match group.len() {
                1 => slots.push(MergeSlot {
                    gi,
                    task: None,
                    trivial: Some(UltrametricTree::leaf(group[0])),
                    group: group.clone(),
                    sub: None,
                }),
                2 => {
                    let h = m.get(group[0], group[1]) / 2.0;
                    slots.push(MergeSlot {
                        gi,
                        task: None,
                        trivial: Some(UltrametricTree::cherry(group[0], group[1], h)),
                        group: group.clone(),
                        sub: None,
                    });
                }
                _ => {
                    let sub = Arc::new(m.submatrix(group)?);
                    let stage = format!("{prefix}group {gi}");
                    let solver = task_solver.clone();
                    let task_sub = Arc::clone(&sub);
                    let task_group = group.clone();
                    let task_stage = stage.clone();
                    let retry = self.retry.clone();
                    let budget = Arc::clone(&self.retry_budget);
                    let task_cache = self.cache.clone();
                    let id = dag.add(stage, &[], move |_| {
                        let mut st = solve_stage(
                            &solver,
                            &task_sub,
                            Some(gi),
                            &task_stage,
                            retry.as_ref(),
                            &budget,
                            task_cache.as_deref(),
                        );
                        // Solver taxa are submatrix-relative; map back.
                        st.tree.map_taxa(|local| task_group[local]);
                        StageData::Group(st)
                    });
                    slots.push(MergeSlot {
                        gi,
                        task: Some(id),
                        trivial: None,
                        group: group.clone(),
                        sub: Some(sub),
                    });
                }
            }
        }

        // The condensed matrix is itself a (strictly smaller) instance:
        // solve it exactly when it fits under the threshold, recurse
        // through the pipeline — on the same executor — otherwise.
        // Recursion terminates because the group count strictly decreases
        // whenever any group has ≥ 2 members, and the no-structure case
        // errors out above.
        let meta_stage = format!("{prefix}meta");
        let recurse = g > self.solver.max_taxa() || (g > self.threshold && depth < self.max_depth);
        let meta_id = if recurse {
            let pipeline = self.clone();
            let child_prefix = format!("{prefix}meta[{}]/", depth + 1);
            dag.add(meta_stage, &[], move |_| {
                let rec = pipeline.solve_at_depth(&condensed, depth + 1, &child_prefix);
                StageData::Meta(rec.map(|rec| {
                    MetaOut {
                        tree: rec.tree,
                        stats: rec.stats,
                        stop: rec.stop,
                        // The recursive run's group indices refer to *its*
                        // groups, not ours; the stage path says which.
                        degraded: rec
                            .degraded
                            .into_iter()
                            .map(|mut d| {
                                d.group = None;
                                d
                            })
                            .collect(),
                        timings: rec.timings,
                        // The recursion's own stages carry their attempt
                        // counts; the wrapping meta task made one "attempt".
                        attempts: 1,
                        provenance: StageProvenance::Solved,
                    }
                }))
            })
        } else {
            let solver = task_solver.clone();
            let task_stage = meta_stage.clone();
            let retry = self.retry.clone();
            let budget = Arc::clone(&self.retry_budget);
            let task_cache = self.cache.clone();
            dag.add(meta_stage, &[], move |_| {
                let st = solve_stage(
                    &solver,
                    &condensed,
                    None,
                    &task_stage,
                    retry.as_ref(),
                    &budget,
                    task_cache.as_deref(),
                );
                StageData::Meta(Ok(MetaOut {
                    tree: st.tree,
                    stats: st.stats,
                    stop: st.stop,
                    degraded: st.degraded,
                    timings: Vec::new(),
                    attempts: st.attempts,
                    provenance: st.provenance,
                }))
            })
        };

        // Caller-side record of which task id is which group, for
        // aggregating dead task slots deterministically.
        let group_tasks: Vec<(TaskId, usize)> = slots
            .iter()
            .filter_map(|s| s.task.map(|t| (t, s.gi)))
            .collect();

        // --- Merge join: graft each group subtree onto its meta leaf and
        // refit against the original matrix (minimal feasible heights for
        // the merged topology — never worse, often better). A group slot
        // whose task died gets the agglomerative stand-in; a dead or
        // failed meta solve fails the merge, and the caller maps that to
        // the meta task's error.
        let merge_deps: Vec<TaskId> = group_tasks
            .iter()
            .map(|&(t, _)| t)
            .chain(std::iter::once(meta_id))
            .collect();
        let m_owned = m.clone();
        dag.add(format!("{prefix}merge"), &merge_deps, move |ctx| {
            let meta = match ctx.dep(meta_id) {
                Some(StageData::Meta(Ok(out))) => out,
                _ => return StageData::Merged(None),
            };
            let mut meta_tree = meta.tree.clone();
            meta_tree.fit_heights(&max_condensed);
            // Move meta taxa out of the way of original ids, then graft.
            meta_tree.map_taxa(|group| n + group);
            for slot in &slots {
                let subtree = match (&slot.trivial, slot.task) {
                    (Some(t), _) => t.clone(),
                    (None, Some(tid)) => match ctx.dep(tid) {
                        Some(StageData::Group(st)) => st.tree.clone(),
                        _ => {
                            // The task itself died (solver panics are
                            // already absorbed inside `solve_stage`, so
                            // this is the outer safety net); stand in the
                            // agglomerative tree. The caller records the
                            // degradation from the task report.
                            let sub = slot.sub.as_ref().expect("solved slot keeps its submatrix");
                            let mut t = cluster(sub, Linkage::Maximum);
                            t.map_taxa(|local| slot.group[local]);
                            t
                        }
                    },
                    (None, None) => unreachable!("slot has either a trivial tree or a task"),
                };
                if let Err(e) = meta_tree.graft(n + slot.gi, subtree) {
                    return StageData::Merged(Some(Err(e.into())));
                }
            }
            let weight = meta_tree.fit_heights(&m_owned);
            StageData::Merged(Some(Ok(MergeOut {
                tree: meta_tree,
                weight,
            })))
        });

        let reports = match &self.executor {
            Some(exec) => dag.run(exec),
            None => dag.run_inline(),
        };

        // --- Aggregate in task order (never completion order): stats,
        // stop severity, degradations and timings all come out identical
        // under any scheduling, which is the pipeline's determinism rule.
        let mut stats = SearchStats::default();
        let mut stop = StopReason::Completed;
        let mut degraded: Vec<DegradedGroup> = Vec::new();
        let mut timings: Vec<StageTiming> = Vec::with_capacity(reports.len());
        let mut meta_err: Option<MutError> = None;
        let mut merged: Option<Option<Result<MergeOut, MutError>>> = None;
        for (id, report) in reports.into_iter().enumerate() {
            timings.push(StageTiming {
                stage: report.label.clone(),
                seconds: report.elapsed.as_secs_f64(),
                attempts: 1,
                provenance: StageProvenance::Solved,
            });
            match report.result {
                Some(StageData::Group(st)) => {
                    if let Some(t) = timings.last_mut() {
                        t.attempts = st.attempts;
                        t.provenance = st.provenance;
                    }
                    stats.merge(&st.stats);
                    stop = stop.worst(st.stop);
                    degraded.extend(st.degraded);
                }
                Some(StageData::Meta(Ok(out))) => {
                    if let Some(t) = timings.last_mut() {
                        t.attempts = out.attempts;
                        t.provenance = out.provenance;
                    }
                    stats.merge(&out.stats);
                    stop = stop.worst(out.stop);
                    degraded.extend(out.degraded);
                    timings.extend(out.timings);
                }
                Some(StageData::Meta(Err(e))) => meta_err = Some(e),
                Some(StageData::Merged(result)) => merged = Some(result),
                None => {
                    // The task body died outside solve_stage's isolation.
                    stop = stop.worst(StopReason::WorkerPanicked);
                    if let Some(&(_, gi)) = group_tasks.iter().find(|&&(t, _)| t == id) {
                        degraded.push(DegradedGroup {
                            group: Some(gi),
                            stage: report.label,
                            reason: DegradeReason::Panicked,
                            attempts: 1,
                        });
                    }
                }
            }
        }

        let merge_out = match merged {
            Some(Some(Ok(out))) => out,
            // Graft/refit failure inside the merge task.
            Some(Some(Err(e))) => return Err(e),
            // The meta solve failed (recursion error) or a task died so
            // badly the merge could not run.
            Some(None) | None => {
                return Err(meta_err.unwrap_or(MutError::Interrupted {
                    reason: StopReason::WorkerPanicked,
                }))
            }
        };

        Ok(PipelineSolution {
            tree: merge_out.tree,
            weight: merge_out.weight,
            groups,
            stats,
            compact_sets: cs.len(),
            stop,
            degraded,
            timings,
        })
    }
}

/// One solved stage: a feasible tree plus its accounting.
struct StageTree {
    tree: UltrametricTree,
    stats: SearchStats,
    stop: StopReason,
    degraded: Vec<DegradedGroup>,
    attempts: u32,
    provenance: StageProvenance,
}

/// The meta stage's payload: an exact solve's [`StageTree`] fields, or a
/// recursive pipeline run flattened into them (plus its inner timings).
struct MetaOut {
    tree: UltrametricTree,
    stats: SearchStats,
    stop: StopReason,
    degraded: Vec<DegradedGroup>,
    timings: Vec<StageTiming>,
    attempts: u32,
    provenance: StageProvenance,
}

/// The merge join's payload.
struct MergeOut {
    tree: UltrametricTree,
    weight: f64,
}

/// What one DAG task returns; the variant is fixed per stage kind.
enum StageData {
    Group(StageTree),
    Meta(Result<MetaOut, MutError>),
    /// `None`: the meta dependency was dead or failed, nothing to merge.
    Merged(Option<Result<MergeOut, MutError>>),
}

/// How a group subtree reaches the merge task: either a precomputed
/// trivial tree (singleton / pair) or the [`TaskId`] of its solve task,
/// with the submatrix kept around for the dead-task fallback.
struct MergeSlot {
    gi: usize,
    task: Option<TaskId>,
    trivial: Option<UltrametricTree>,
    group: Vec<usize>,
    sub: Option<Arc<DistanceMatrix>>,
}

/// Produces a feasible ultrametric tree for one pipeline stage, degrading
/// instead of failing:
///
/// 1. exact solve, when nothing has gone wrong;
/// 2. the exact search's best incumbent, when it stopped early (budget,
///    deadline, cancellation, worker panic) — an incumbent is always a
///    feasible tree for its submatrix;
/// 3. the max-linkage agglomerative tree (UPGMM), when the deadline or
///    cancel already fired before the solve, the solver errored, or it
///    panicked — panics are contained with `catch_unwind` so one bad
///    stage cannot poison the rest of the pipeline.
///
/// Every non-exact outcome is recorded in the returned `degraded` set
/// (with `group` as the top-level group index, `None` for
/// meta/whole-matrix stages, and `stage` as the depth-qualified path) and
/// folded into the returned `stop` reason.
///
/// With a [`RetryPolicy`], a panicked or errored attempt is re-run (after
/// the policy's deterministic backoff) *before* step 3's agglomerative
/// fallback, as long as the per-stage attempt cap and the shared
/// pipeline-wide `budget` both permit. Deterministic stops — deadline,
/// cancellation, branch budget — are never retried. A retried stage that
/// eventually succeeds reports its attempt count but is **not** degraded.
///
/// With a [`GroupCache`] and a cacheable solver
/// ([`MutSolver::cache_sig`] returns `Some`), the stage probes the cache
/// first: an exact hit skips the solve entirely (provenance `Cached`), a
/// near-hit seeds the search with the cached tree as an advisory
/// incumbent (provenance `WarmSeeded`), and any solve that then completes
/// to proven optimality is inserted back. Degraded or interrupted trees
/// are never cached.
fn solve_stage(
    solver: &MutSolver,
    sub: &DistanceMatrix,
    group: Option<usize>,
    stage: &str,
    retry: Option<&RetryPolicy>,
    budget: &AtomicU32,
    cache: Option<&GroupCache>,
) -> StageTree {
    let mut stats = SearchStats::default();
    let mut stop = StopReason::Completed;
    let mut degraded = Vec::new();
    let mut attempts: u32 = 0;
    let mut provenance = StageProvenance::Solved;
    let mut pending_insert = None;
    let seeded;
    let mut solver = solver;
    if let Some(cache) = cache {
        if let Some(sig) = solver.cache_sig() {
            let probe = cache.probe(sub, sig);
            stats.cache_poisoned += probe.poisoned;
            match probe.outcome {
                CacheOutcome::Hit { tree, .. } => {
                    stats.cache_hits += 1;
                    return StageTree {
                        tree,
                        stats,
                        stop: StopReason::Completed,
                        degraded,
                        attempts: 1,
                        provenance: StageProvenance::Cached,
                    };
                }
                CacheOutcome::Seed { tree, query, .. } => {
                    stats.cache_misses += 1;
                    stats.cache_warm_seeds += 1;
                    provenance = StageProvenance::WarmSeeded;
                    seeded = solver.clone().seed_incumbent(tree);
                    solver = &seeded;
                    pending_insert = Some(query);
                }
                CacheOutcome::Miss(query) => {
                    stats.cache_misses += 1;
                    pending_insert = Some(query);
                }
            }
        }
    }
    let mut solved_weight = None;
    let tree = 'tree: loop {
        // Re-checked every attempt: a deadline or cancellation that fires
        // during backoff must not trigger another doomed solve.
        if let Some(reason) = solver.stop_requested() {
            stop = stop.worst(reason);
            degraded.push(DegradedGroup {
                group,
                stage: stage.to_string(),
                reason: DegradeReason::Stopped(reason),
                attempts: attempts.max(1),
            });
            break 'tree cluster(sub, Linkage::Maximum);
        }
        attempts += 1;
        let reason = match catch_unwind(AssertUnwindSafe(|| solver.solve(sub))) {
            Ok(Ok(sol)) => {
                stats.merge(&sol.stats);
                if !sol.stop.is_complete() {
                    stop = stop.worst(sol.stop);
                    degraded.push(DegradedGroup {
                        group,
                        stage: stage.to_string(),
                        reason: DegradeReason::Stopped(sol.stop),
                        attempts,
                    });
                } else {
                    solved_weight = Some(sol.weight);
                }
                break 'tree sol.tree;
            }
            // Stopped before any incumbent existed (UPGMM disabled):
            // same deal as an early stop, minus a usable incumbent.
            Ok(Err(MutError::Interrupted { reason })) => {
                stop = stop.worst(reason);
                DegradeReason::Stopped(reason)
            }
            Ok(Err(e)) => DegradeReason::Error(e.to_string()),
            Err(_) => DegradeReason::Panicked,
        };
        // Panics and solver errors may be transient; deterministic stops
        // are not. Retry the former — under both the per-stage cap and
        // the pipeline-wide budget — before degrading.
        if matches!(reason, DegradeReason::Panicked | DegradeReason::Error(_)) {
            if let Some(policy) = retry {
                let budgeted = || {
                    budget
                        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |b| b.checked_sub(1))
                        .is_ok()
                };
                if attempts < policy.max_attempts && budgeted() {
                    std::thread::sleep(policy.backoff(stage, attempts));
                    continue;
                }
            }
        }
        if matches!(reason, DegradeReason::Panicked) {
            stop = stop.worst(StopReason::WorkerPanicked);
        }
        degraded.push(DegradedGroup {
            group,
            stage: stage.to_string(),
            reason,
            attempts,
        });
        break 'tree cluster(sub, Linkage::Maximum);
    };
    stats.retries += u64::from(attempts.saturating_sub(1));
    // Only proven optima are worth memoizing: the insert happens while
    // the tree is still submatrix-local, matching the probe's indexing.
    if let (Some(cache), Some(query), Some(weight)) = (cache, pending_insert, solved_weight) {
        if degraded.is_empty() {
            cache.insert(query, &tree, weight);
        }
    }
    StageTree {
        tree,
        stats,
        stop,
        degraded,
        attempts: attempts.max(1),
        provenance,
    }
}

/// Builds the condensed matrix: entry `(a, b)` is the maximum / minimum /
/// size-weighted average distance between members of group `a` and group
/// `b` (the paper's three small-matrix types, §3.1).
fn condense(
    m: &DistanceMatrix,
    groups: &[Vec<usize>],
    linkage: Linkage,
) -> Result<DistanceMatrix, MutError> {
    let g = groups.len();
    let mut out = DistanceMatrix::zeros(g)?;
    for a in 1..g {
        for b in 0..a {
            let mut acc = match linkage {
                Linkage::Maximum => 0.0f64,
                Linkage::Minimum => f64::INFINITY,
                Linkage::Average => 0.0f64,
            };
            for &x in &groups[a] {
                for &y in &groups[b] {
                    let d = m.get(x, y);
                    acc = match linkage {
                        Linkage::Maximum => acc.max(d),
                        Linkage::Minimum => acc.min(d),
                        Linkage::Average => acc + d,
                    };
                }
            }
            if matches!(linkage, Linkage::Average) {
                acc /= (groups[a].len() * groups[b].len()) as f64;
            }
            out.set(a, b, acc);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutree_distmat::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::time::Duration;

    /// The 6-taxon compact-structured instance from the graph crate tests.
    fn structured6() -> DistanceMatrix {
        DistanceMatrix::from_rows(&[
            vec![0.0, 3.0, 1.0, 7.0, 4.5, 6.5],
            vec![3.0, 0.0, 3.5, 7.2, 4.2, 6.8],
            vec![1.0, 3.5, 0.0, 7.5, 4.0, 6.9],
            vec![7.0, 7.2, 7.5, 0.0, 6.0, 2.0],
            vec![4.5, 4.2, 4.0, 6.0, 0.0, 5.0],
            vec![6.5, 6.8, 6.9, 2.0, 5.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn condense_maximum_matches_paper_rule() {
        let m = structured6();
        let groups = vec![vec![0, 1, 2], vec![3, 5], vec![4]];
        let c = condense(&m, &groups, Linkage::Maximum).unwrap();
        assert_eq!(c.get(0, 1), 7.5); // max over {0,1,2}×{3,5}
        assert_eq!(c.get(0, 2), 4.5); // max over {0,1,2}×{4}
        assert_eq!(c.get(1, 2), 6.0);
        let cmin = condense(&m, &groups, Linkage::Minimum).unwrap();
        assert_eq!(cmin.get(0, 1), 6.5);
        let cavg = condense(&m, &groups, Linkage::Average).unwrap();
        assert!((cavg.get(0, 2) - (4.5 + 4.2 + 4.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn pipeline_tree_is_feasible_and_near_exact() {
        let m = structured6();
        let exact = MutSolver::new().solve(&m).unwrap();
        let pipe = CompactPipeline::new().threshold(4).solve(&m).unwrap();
        assert!(pipe.tree.is_feasible_for(&m, 1e-9));
        assert!(pipe.weight >= exact.weight - 1e-9);
        // On this strongly structured instance decomposition is lossless
        // or nearly so.
        assert!(
            pipe.weight <= exact.weight * 1.10,
            "pipeline {} vs exact {}",
            pipe.weight,
            exact.weight
        );
        assert_eq!(pipe.compact_sets, 4);
        assert!(pipe.is_complete());
    }

    #[test]
    fn pipeline_groups_partition_taxa() {
        let mut rng = StdRng::seed_from_u64(21);
        let m = gen::perturbed_ultrametric(15, 60.0, 0.08, &mut rng);
        let pipe = CompactPipeline::new().threshold(6).solve(&m).unwrap();
        let mut all: Vec<usize> = pipe.groups.concat();
        all.sort_unstable();
        assert_eq!(all, (0..15).collect::<Vec<_>>());
        assert_eq!(pipe.tree.leaf_count(), 15);
        assert!(pipe.tree.validate().is_ok());
    }

    #[test]
    fn pipeline_on_clustered_data_beats_nothing_feasibility_wise() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..3 {
            let m = gen::perturbed_ultrametric(12, 50.0, 0.1, &mut rng);
            let pipe = CompactPipeline::new().threshold(5).solve(&m).unwrap();
            assert!(pipe.tree.is_feasible_for(&m, 1e-9));
        }
    }

    #[test]
    fn all_linkages_produce_feasible_trees_after_refit() {
        let m = structured6();
        for linkage in [Linkage::Maximum, Linkage::Minimum, Linkage::Average] {
            let pipe = CompactPipeline::new()
                .threshold(4)
                .linkage(linkage)
                .solve(&m)
                .unwrap();
            assert!(
                pipe.tree.is_feasible_for(&m, 1e-9),
                "{linkage:?} produced an infeasible tree"
            );
        }
    }

    #[test]
    fn unstructured_matrix_falls_back_to_exact() {
        // Equal distances: no compact sets at all.
        let m = DistanceMatrix::from_rows(&[
            vec![0.0, 5.0, 5.0, 5.0],
            vec![5.0, 0.0, 5.0, 5.0],
            vec![5.0, 5.0, 0.0, 5.0],
            vec![5.0, 5.0, 5.0, 0.0],
        ])
        .unwrap();
        let pipe = CompactPipeline::new().solve(&m).unwrap();
        let exact = MutSolver::new().solve(&m).unwrap();
        assert!((pipe.weight - exact.weight).abs() < 1e-9);
        assert_eq!(pipe.compact_sets, 0);
        // The undecomposable path is a single "whole" stage.
        assert_eq!(pipe.timings.len(), 1);
        assert_eq!(pipe.timings[0].stage, "whole");
    }

    #[test]
    fn ultrametric_input_is_reconstructed_exactly() {
        let mut rng = StdRng::seed_from_u64(31);
        let m = gen::random_ultrametric(18, 80.0, &mut rng);
        let pipe = CompactPipeline::new().threshold(8).solve(&m).unwrap();
        // An ultrametric matrix is its own optimal tree; the pipeline must
        // recover it exactly (compact sets match the tree's clusters).
        assert_eq!(pipe.tree.distance_matrix().max_relative_deviation(&m), 0.0);
    }

    #[test]
    fn timings_name_every_stage() {
        let m = structured6();
        let pipe = CompactPipeline::new().threshold(4).solve(&m).unwrap();
        let stages: Vec<&str> = pipe.timings.iter().map(|t| t.stage.as_str()).collect();
        // At least one group solve, the meta solve and the merge join.
        assert!(stages.iter().any(|s| s.starts_with("group ")), "{stages:?}");
        assert!(stages.contains(&"meta"), "{stages:?}");
        assert!(stages.contains(&"merge"), "{stages:?}");
        assert!(pipe.timings.iter().all(|t| t.seconds >= 0.0));
        assert_eq!(
            pipe.slowest_stages(2).len(),
            2.min(pipe.timings.len()),
            "slowest_stages truncates to the requested count"
        );
    }

    #[test]
    fn expired_deadline_degrades_to_feasible_agglomerative_tree() {
        use std::time::{Duration, Instant};
        let mut rng = StdRng::seed_from_u64(17);
        let m = gen::perturbed_ultrametric(16, 70.0, 0.06, &mut rng);
        let solver = MutSolver::new().deadline(Instant::now() - Duration::from_millis(1));
        let pipe = CompactPipeline::new()
            .threshold(6)
            .solver(solver)
            .solve(&m)
            .unwrap();
        // Degraded, not dead: the merged tree is still a feasible
        // ultrametric tree over every species.
        assert!(pipe.tree.is_feasible_for(&m, 1e-9));
        assert_eq!(pipe.tree.leaf_count(), 16);
        assert_eq!(pipe.stop, mutree_bnb::StopReason::DeadlineExpired);
        assert!(!pipe.is_complete());
        assert!(
            !pipe.degraded.is_empty(),
            "expired deadline must report the degraded stages"
        );
        for d in &pipe.degraded {
            assert_eq!(
                d.reason,
                DegradeReason::Stopped(mutree_bnb::StopReason::DeadlineExpired)
            );
            assert!(!d.stage.is_empty());
            if let Some(gi) = d.group {
                assert!(gi < pipe.groups.len());
            }
        }
    }

    #[test]
    fn cancelled_pipeline_reports_cancellation_per_group() {
        let mut rng = StdRng::seed_from_u64(23);
        let m = gen::perturbed_ultrametric(14, 60.0, 0.05, &mut rng);
        let token = mutree_bnb::CancelToken::new();
        token.cancel();
        let pipe = CompactPipeline::new()
            .threshold(5)
            .solver(MutSolver::new().cancel_token(token))
            .solve(&m)
            .unwrap();
        assert!(pipe.tree.is_feasible_for(&m, 1e-9));
        assert_eq!(pipe.stop, mutree_bnb::StopReason::Cancelled);
        assert!(!pipe.degraded.is_empty());
    }

    #[test]
    fn budget_exhausted_stages_fall_back_and_are_reported() {
        let mut rng = StdRng::seed_from_u64(29);
        let m = gen::perturbed_ultrametric(16, 70.0, 0.08, &mut rng);
        // Zero branch budget *and* no UPGMM incumbent: every nontrivial
        // exact solve stops with nothing, forcing the agglomerative
        // fallback for each degraded stage.
        let pipe = CompactPipeline::new()
            .threshold(6)
            .solver(MutSolver::new().without_upgmm().max_branches(0))
            .solve(&m)
            .unwrap();
        assert!(pipe.tree.is_feasible_for(&m, 1e-9));
        assert_eq!(pipe.tree.leaf_count(), 16);
        assert!(pipe.weight.is_finite());
        assert_eq!(pipe.stop, mutree_bnb::StopReason::BudgetExhausted);
        assert!(!pipe.is_complete());
        assert!(!pipe.degraded.is_empty());
        assert!(pipe
            .degraded
            .iter()
            .all(|d| d.reason == DegradeReason::Stopped(mutree_bnb::StopReason::BudgetExhausted)));
    }

    #[test]
    fn deep_threshold_recursion_terminates() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = gen::random_ultrametric(30, 100.0, &mut rng);
        // Tiny threshold forces many groups and a recursive condensed
        // solve.
        let pipe = CompactPipeline::new().threshold(3).solve(&m).unwrap();
        assert_eq!(pipe.tree.leaf_count(), 30);
        assert!(pipe.tree.is_feasible_for(&m, 1e-9));
    }

    #[test]
    fn recursive_degradations_carry_depth_qualified_stage_paths() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = gen::random_ultrametric(30, 100.0, &mut rng);
        // Tiny threshold forces recursion; zero budget without UPGMM
        // degrades every exact stage, including recursive ones.
        let pipe = CompactPipeline::new()
            .threshold(3)
            .solver(MutSolver::new().without_upgmm().max_branches(0))
            .solve(&m)
            .unwrap();
        assert!(pipe.tree.is_feasible_for(&m, 1e-9));
        let nested: Vec<&DegradedGroup> = pipe
            .degraded
            .iter()
            .filter(|d| d.stage.starts_with("meta[1]/"))
            .collect();
        assert!(
            !nested.is_empty(),
            "recursive degradations must be stage-qualified: {:?}",
            pipe.degraded
        );
        // Anything below the recursion reports no (ambiguous) group index.
        assert!(nested.iter().all(|d| d.group.is_none()));
        // And the recursion's stage timings are flattened into ours.
        assert!(pipe.timings.iter().any(|t| t.stage.starts_with("meta[1]/")));
    }

    #[test]
    fn retried_stage_that_recovers_is_not_degraded() {
        let m = structured6();
        // threshold(4) splits structured6 into {0,1,2,4} and {3,5}: only
        // the 4-taxon group solve hits the fueled fault. Two units of
        // fuel, three attempts per stage: both panics are retried away
        // and the third attempt succeeds.
        let solver = MutSolver::new().panic_on_taxa_times(4, 2);
        let pipe = CompactPipeline::new()
            .threshold(4)
            .solver(solver)
            .retry(RetryPolicy::new().base_backoff(Duration::from_micros(100)))
            .solve(&m)
            .unwrap();
        assert!(pipe.is_complete(), "degraded: {:?}", pipe.degraded);
        assert_eq!(pipe.stop, StopReason::Completed);
        assert!(pipe.tree.is_feasible_for(&m, 1e-9));
        assert_eq!(pipe.stats.retries, 2, "both injected panics retried");
        let extra: u32 = pipe.timings.iter().map(|t| t.attempts - 1).sum();
        assert_eq!(extra, 2, "timings carry the attempt counts");
        // And the result matches a fault-free run.
        let clean = CompactPipeline::new().threshold(4).solve(&m).unwrap();
        assert!((pipe.weight - clean.weight).abs() < 1e-9);
    }

    #[test]
    fn exhausted_attempts_degrade_exactly_like_no_retry() {
        let m = structured6();
        let faulty = || MutSolver::new().panic_on_taxa(4);
        let with_retry = CompactPipeline::new()
            .threshold(4)
            .solver(faulty())
            .retry(
                RetryPolicy::new()
                    .max_attempts(2)
                    .base_backoff(Duration::from_micros(100)),
            )
            .solve(&m)
            .unwrap();
        let without = CompactPipeline::new()
            .threshold(4)
            .solver(faulty())
            .solve(&m)
            .unwrap();
        // Same fallback trees, same degradation records (bar the attempt
        // counts), same worst stop.
        assert!((with_retry.weight - without.weight).abs() < 1e-9);
        assert_eq!(with_retry.stop, StopReason::WorkerPanicked);
        assert_eq!(with_retry.degraded.len(), without.degraded.len());
        for (a, b) in with_retry.degraded.iter().zip(&without.degraded) {
            assert_eq!(a.stage, b.stage);
            assert_eq!(a.reason, b.reason);
            assert_eq!(a.attempts, 2, "retry policy spent its attempt cap");
            assert_eq!(b.attempts, 1, "no policy means a single attempt");
        }
        assert!(with_retry.tree.is_feasible_for(&m, 1e-9));
    }

    #[test]
    fn retry_budget_caps_total_pipeline_retries() {
        let m = structured6();
        // Permanent fault, generous per-stage cap, but only one retry in
        // the whole pipeline's budget.
        let pipe = CompactPipeline::new()
            .threshold(4)
            .solver(MutSolver::new().panic_on_taxa(4))
            .retry(
                RetryPolicy::new()
                    .max_attempts(5)
                    .budget(1)
                    .base_backoff(Duration::from_micros(100)),
            )
            .solve(&m)
            .unwrap();
        assert_eq!(pipe.stats.retries, 1, "budget bounds retries, not stages");
        assert!(pipe.tree.is_feasible_for(&m, 1e-9));
    }

    #[test]
    fn retry_runs_are_deterministic() {
        let m = structured6();
        let run = || {
            CompactPipeline::new()
                .threshold(4)
                .solver(MutSolver::new().panic_on_taxa(4))
                .retry(
                    RetryPolicy::new()
                        .seed(42)
                        .base_backoff(Duration::from_micros(100)),
                )
                .solve(&m)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert!((a.weight - b.weight).abs() < 1e-12);
        assert_eq!(a.degraded, b.degraded);
        assert_eq!(a.stats.retries, b.stats.retries);
    }

    #[test]
    fn stopped_outcomes_are_never_retried() {
        let mut rng = StdRng::seed_from_u64(29);
        let m = gen::perturbed_ultrametric(16, 70.0, 0.08, &mut rng);
        // Budget exhaustion is deterministic: re-running would stop at the
        // same branch count, so the policy must not burn retries on it.
        let pipe = CompactPipeline::new()
            .threshold(6)
            .solver(MutSolver::new().without_upgmm().max_branches(0))
            .retry(RetryPolicy::new())
            .solve(&m)
            .unwrap();
        assert_eq!(pipe.stats.retries, 0);
        assert!(pipe
            .degraded
            .iter()
            .all(|d| d.attempts == 1 && matches!(d.reason, DegradeReason::Stopped(_))));
    }

    #[test]
    fn backoff_is_deterministic_and_exponential() {
        let p = RetryPolicy::new()
            .seed(7)
            .base_backoff(Duration::from_millis(2));
        assert_eq!(p.backoff("group 1", 1), p.backoff("group 1", 1));
        assert_ne!(p.backoff("group 1", 1), p.backoff("group 2", 1));
        for attempt in 1..4 {
            let d = p.backoff("meta", attempt);
            let base = Duration::from_millis(2) * (1 << (attempt - 1));
            assert!(d >= base / 2 && d <= base, "attempt {attempt}: {d:?}");
        }
    }

    #[test]
    fn executor_pipeline_matches_inline_pipeline() {
        let mut rng = StdRng::seed_from_u64(77);
        let m = gen::perturbed_ultrametric(18, 80.0, 0.06, &mut rng);
        let inline = CompactPipeline::new().threshold(5).solve(&m).unwrap();
        let pooled = CompactPipeline::new()
            .threshold(5)
            .executor(Executor::new(4))
            .solve(&m)
            .unwrap();
        assert!((inline.weight - pooled.weight).abs() < 1e-9);
        assert_eq!(inline.groups, pooled.groups);
        assert_eq!(inline.degraded, pooled.degraded);
        assert!(pooled.tree.is_feasible_for(&m, 1e-9));
    }
}
