//! The compact-set decomposition pipeline — the PaCT 2005 contribution.
//!
//! Exact minimum-ultrametric-tree search is exponential in the number of
//! species, so the paper splits the distance matrix along its compact
//! sets: groups of species provably closer to each other than to anything
//! outside. The pipeline (paper §3):
//!
//! 1. find all compact sets (minimum spanning tree + merge test) and cut
//!    the laminar family at a size threshold, yielding a partition into
//!    small groups;
//! 2. build a *condensed* matrix over the groups under a linkage rule —
//!    the paper studies **maximum** linkage, which by Lemma 2 guarantees
//!    the merged tree is a feasible ultrametric tree; *minimum* and
//!    *average* are implemented for ablation;
//! 3. solve every group matrix and the condensed matrix exactly with the
//!    (parallel) branch-and-bound solver;
//! 4. graft each group subtree onto its group's leaf in the condensed
//!    tree and refit heights against the original matrix.
//!
//! The result is near-optimal (a few percent in the paper's experiments,
//! and measured in `EXPERIMENTS.md` here) at a tiny fraction of the
//! undecomposed search time, and the compact sets guarantee that species
//! grouped together really do share a lowest common ancestor below any
//! outside species, so the phylogenetic relations are preserved.

use std::panic::{catch_unwind, AssertUnwindSafe};

use mutree_bnb::StopReason;
use mutree_distmat::DistanceMatrix;
use mutree_graph::CompactSets;
use mutree_tree::{cluster, Linkage, UltrametricTree};

use crate::{MutError, MutSolver, SearchStats};

/// Why a pipeline stage fell short of a proven-optimal exact solve.
#[derive(Debug, Clone, PartialEq)]
pub enum DegradeReason {
    /// The exact solve stopped early (budget, deadline, cancellation or a
    /// worker panic) and its best incumbent — still a feasible subtree —
    /// was used.
    Stopped(StopReason),
    /// The exact solve returned an error; the max-linkage agglomerative
    /// fallback tree was used instead.
    Error(String),
    /// The exact solve panicked; the max-linkage agglomerative fallback
    /// tree was used instead.
    Panicked,
}

impl std::fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradeReason::Stopped(r) => write!(f, "search stopped early: {r}"),
            DegradeReason::Error(e) => write!(f, "solver error: {e}"),
            DegradeReason::Panicked => f.write_str("solver panicked"),
        }
    }
}

/// A pipeline stage that did not run to proven optimality.
///
/// The merged tree is still feasible — Lemma 2 guarantees any feasible
/// subtree over a compact group merges under the max-linkage attachment —
/// but the affected piece is a heuristic, not an optimum.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedGroup {
    /// Index into [`PipelineSolution::groups`], or `None` when the
    /// condensed meta-matrix solve (or an undecomposable whole-matrix
    /// solve) was the degraded stage.
    pub group: Option<usize>,
    /// What happened.
    pub reason: DegradeReason,
}

/// A solved pipeline instance.
#[derive(Debug, Clone)]
pub struct PipelineSolution {
    /// The merged, height-refit ultrametric tree over all species.
    pub tree: UltrametricTree,
    /// Its weight (compare against [`MutSolution::weight`](crate::MutSolution::weight)
    /// for the cost penalty of decomposition).
    pub weight: f64,
    /// The species groups the compact sets induced (singletons included).
    pub groups: Vec<Vec<usize>>,
    /// Merged search statistics over the condensed and group solves.
    pub stats: SearchStats,
    /// Number of proper compact sets the matrix had.
    pub compact_sets: usize,
    /// The most severe stop reason any sub-search reported
    /// ([`StopReason::Completed`] when every search exhausted its space).
    pub stop: StopReason,
    /// Stages that fell back from a proven-optimal exact solve — truncated
    /// incumbents and agglomerative stand-ins — in pipeline order. Empty
    /// on a fully exact run.
    pub degraded: Vec<DegradedGroup>,
}

impl PipelineSolution {
    /// Whether every sub-solve ran to proven optimality with no fallback
    /// (the weight is then the pipeline's true optimum for this
    /// decomposition).
    pub fn is_complete(&self) -> bool {
        self.stop.is_complete() && self.degraded.is_empty()
    }
}

/// Configuration for the compact-set decomposition pipeline.
///
/// ```
/// use mutree_distmat::gen;
/// use mutree_core::CompactPipeline;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let m = gen::perturbed_ultrametric(14, 60.0, 0.05, &mut rng);
/// let sol = CompactPipeline::new().solve(&m).unwrap();
/// assert!(sol.tree.is_feasible_for(&m, 1e-9));
/// ```
#[derive(Debug, Clone)]
pub struct CompactPipeline {
    threshold: usize,
    linkage: Linkage,
    solver: MutSolver,
    max_depth: usize,
}

impl Default for CompactPipeline {
    fn default() -> Self {
        CompactPipeline::new()
    }
}

impl CompactPipeline {
    /// A pipeline cutting compact sets at 12 species, condensing under
    /// maximum linkage (the paper's studied variant) and solving pieces
    /// with a default sequential [`MutSolver`].
    pub fn new() -> Self {
        CompactPipeline {
            threshold: 12,
            linkage: Linkage::Maximum,
            solver: MutSolver::new(),
            max_depth: 8,
        }
    }

    /// Sets the largest group size solved exactly.
    ///
    /// # Panics
    ///
    /// Panics when `threshold < 2`.
    pub fn threshold(mut self, threshold: usize) -> Self {
        assert!(threshold >= 2, "threshold must be at least 2");
        self.threshold = threshold;
        self
    }

    /// Sets the linkage used for the condensed matrix. Only
    /// [`Linkage::Maximum`] guarantees a feasible merged tree; the others
    /// are for the ablation experiments.
    pub fn linkage(mut self, linkage: Linkage) -> Self {
        self.linkage = linkage;
        self
    }

    /// Sets the solver used for group and condensed matrices (pick a
    /// parallel backend here to mirror the paper's setup).
    pub fn solver(mut self, solver: MutSolver) -> Self {
        self.solver = solver;
        self
    }

    /// Runs the pipeline.
    ///
    /// # Errors
    ///
    /// [`MutError::NotDecomposable`] when even recursive decomposition
    /// cannot bring every exact solve within the 64-taxon engine limit,
    /// and any error from the underlying solver.
    pub fn solve(&self, m: &DistanceMatrix) -> Result<PipelineSolution, MutError> {
        self.solve_at_depth(m, 0)
    }

    fn solve_at_depth(
        &self,
        m: &DistanceMatrix,
        depth: usize,
    ) -> Result<PipelineSolution, MutError> {
        let n = m.len();
        let cs = CompactSets::find(m);
        let groups = cs.partition(self.threshold.max(2));

        // When decomposition does nothing (all singletons or one group),
        // fall back to the plain exact solver.
        let effective = groups.iter().filter(|g| g.len() >= 2).count();
        if effective == 0 || groups.len() == 1 {
            if n > 64 {
                return Err(MutError::NotDecomposable {
                    groups: groups.len(),
                    max: 64,
                });
            }
            let mut stats = SearchStats::default();
            let mut stop = StopReason::Completed;
            let mut degraded = Vec::new();
            let mut tree = self.stage_tree(m, None, &mut stats, &mut stop, &mut degraded);
            let weight = tree.fit_heights(m);
            return Ok(PipelineSolution {
                tree,
                weight,
                groups,
                stats,
                compact_sets: cs.len(),
                stop,
                degraded,
            });
        }

        let mut stats = SearchStats::default();
        let mut stop = StopReason::Completed;
        let mut degraded: Vec<DegradedGroup> = Vec::new();

        // --- Solve each group exactly (degrading per group, not per run:
        // one stuck or broken group must not take the whole tree down).
        let mut subtrees: Vec<UltrametricTree> = Vec::with_capacity(groups.len());
        for (gi, group) in groups.iter().enumerate() {
            match group.len() {
                1 => subtrees.push(UltrametricTree::leaf(group[0])),
                2 => {
                    let h = m.get(group[0], group[1]) / 2.0;
                    subtrees.push(UltrametricTree::cherry(group[0], group[1], h));
                }
                _ => {
                    let sub = m.submatrix(group)?;
                    let mut tree =
                        self.stage_tree(&sub, Some(gi), &mut stats, &mut stop, &mut degraded);
                    // Solver taxa are submatrix-relative; map back.
                    tree.map_taxa(|local| group[local]);
                    subtrees.push(tree);
                }
            }
        }

        // --- Condensed matrix over the groups, under the chosen linkage.
        let g = groups.len();
        let condensed = condense(m, &groups, self.linkage)?;
        // The condensed matrix is itself a (strictly smaller) instance:
        // solve it exactly when it fits under the threshold, recurse
        // through the pipeline otherwise. Recursion terminates because the
        // group count strictly decreases whenever any group has ≥ 2
        // members, and the no-structure case errors out above.
        let mut meta_tree: UltrametricTree;
        if g > 64 || (g > self.threshold && depth < self.max_depth) {
            let rec = self.solve_at_depth(&condensed, depth + 1)?;
            stats.merge(&rec.stats);
            stop = stop.worst(rec.stop);
            // The recursive run's group indices refer to *its* groups, not
            // ours; report its degradations as meta-solve degradations.
            degraded.extend(rec.degraded.into_iter().map(|d| DegradedGroup {
                group: None,
                reason: d.reason,
            }));
            meta_tree = rec.tree;
        } else {
            meta_tree = self.stage_tree(&condensed, None, &mut stats, &mut stop, &mut degraded);
        }

        // --- Merge: graft each group subtree onto its meta leaf.
        // Meta heights are refit against the *maximum*-linkage condensed
        // matrix first: by Lemma 2, every attachment point then sits above
        // its subtree (Min(C, !C) > Max(C)), so grafting cannot fail even
        // when the topology came from a different linkage.
        let max_condensed = if matches!(self.linkage, Linkage::Maximum) {
            condensed
        } else {
            condense(m, &groups, Linkage::Maximum)?
        };
        meta_tree.fit_heights(&max_condensed);
        // Move meta taxa out of the way of original ids, then graft.
        meta_tree.map_taxa(|group| n + group);
        for (gi, sub) in subtrees.into_iter().enumerate() {
            meta_tree.graft(n + gi, sub)?;
        }
        // Final refit against the original matrix: minimal feasible
        // heights for the merged topology (never worse, often better).
        let weight = meta_tree.fit_heights(m);

        Ok(PipelineSolution {
            tree: meta_tree,
            weight,
            groups,
            stats,
            compact_sets: cs.len(),
            stop,
            degraded,
        })
    }

    /// Produces a feasible ultrametric tree for one pipeline stage,
    /// degrading instead of failing:
    ///
    /// 1. exact solve, when nothing has gone wrong;
    /// 2. the exact search's best incumbent, when it stopped early
    ///    (budget, deadline, cancellation, worker panic) — an incumbent is
    ///    always a feasible tree for its submatrix;
    /// 3. the max-linkage agglomerative tree (UPGMM), when the deadline or
    ///    cancel already fired before the solve, the solver errored, or it
    ///    panicked — panics are contained with `catch_unwind` so one bad
    ///    stage cannot poison the rest of the pipeline.
    ///
    /// Every non-exact outcome is recorded in `degraded` (with `gi` as
    /// the group index, `None` for meta/whole-matrix stages) and folded
    /// into the merged `stop` reason.
    fn stage_tree(
        &self,
        sub: &DistanceMatrix,
        gi: Option<usize>,
        stats: &mut SearchStats,
        stop: &mut StopReason,
        degraded: &mut Vec<DegradedGroup>,
    ) -> UltrametricTree {
        if let Some(reason) = self.solver.stop_requested() {
            *stop = stop.worst(reason);
            degraded.push(DegradedGroup {
                group: gi,
                reason: DegradeReason::Stopped(reason),
            });
            return cluster(sub, Linkage::Maximum);
        }
        let reason = match catch_unwind(AssertUnwindSafe(|| self.solver.solve(sub))) {
            Ok(Ok(sol)) => {
                stats.merge(&sol.stats);
                if !sol.stop.is_complete() {
                    *stop = stop.worst(sol.stop);
                    degraded.push(DegradedGroup {
                        group: gi,
                        reason: DegradeReason::Stopped(sol.stop),
                    });
                }
                return sol.tree;
            }
            // Stopped before any incumbent existed (UPGMM disabled):
            // same deal as an early stop, minus a usable incumbent.
            Ok(Err(MutError::Interrupted { reason })) => {
                *stop = stop.worst(reason);
                DegradeReason::Stopped(reason)
            }
            Ok(Err(e)) => DegradeReason::Error(e.to_string()),
            Err(_) => {
                *stop = stop.worst(StopReason::WorkerPanicked);
                DegradeReason::Panicked
            }
        };
        degraded.push(DegradedGroup { group: gi, reason });
        cluster(sub, Linkage::Maximum)
    }
}

/// Builds the condensed matrix: entry `(a, b)` is the maximum / minimum /
/// size-weighted average distance between members of group `a` and group
/// `b` (the paper's three small-matrix types, §3.1).
fn condense(
    m: &DistanceMatrix,
    groups: &[Vec<usize>],
    linkage: Linkage,
) -> Result<DistanceMatrix, MutError> {
    let g = groups.len();
    let mut out = DistanceMatrix::zeros(g)?;
    for a in 1..g {
        for b in 0..a {
            let mut acc = match linkage {
                Linkage::Maximum => 0.0f64,
                Linkage::Minimum => f64::INFINITY,
                Linkage::Average => 0.0f64,
            };
            for &x in &groups[a] {
                for &y in &groups[b] {
                    let d = m.get(x, y);
                    acc = match linkage {
                        Linkage::Maximum => acc.max(d),
                        Linkage::Minimum => acc.min(d),
                        Linkage::Average => acc + d,
                    };
                }
            }
            if matches!(linkage, Linkage::Average) {
                acc /= (groups[a].len() * groups[b].len()) as f64;
            }
            out.set(a, b, acc);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutree_distmat::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The 6-taxon compact-structured instance from the graph crate tests.
    fn structured6() -> DistanceMatrix {
        DistanceMatrix::from_rows(&[
            vec![0.0, 3.0, 1.0, 7.0, 4.5, 6.5],
            vec![3.0, 0.0, 3.5, 7.2, 4.2, 6.8],
            vec![1.0, 3.5, 0.0, 7.5, 4.0, 6.9],
            vec![7.0, 7.2, 7.5, 0.0, 6.0, 2.0],
            vec![4.5, 4.2, 4.0, 6.0, 0.0, 5.0],
            vec![6.5, 6.8, 6.9, 2.0, 5.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn condense_maximum_matches_paper_rule() {
        let m = structured6();
        let groups = vec![vec![0, 1, 2], vec![3, 5], vec![4]];
        let c = condense(&m, &groups, Linkage::Maximum).unwrap();
        assert_eq!(c.get(0, 1), 7.5); // max over {0,1,2}×{3,5}
        assert_eq!(c.get(0, 2), 4.5); // max over {0,1,2}×{4}
        assert_eq!(c.get(1, 2), 6.0);
        let cmin = condense(&m, &groups, Linkage::Minimum).unwrap();
        assert_eq!(cmin.get(0, 1), 6.5);
        let cavg = condense(&m, &groups, Linkage::Average).unwrap();
        assert!((cavg.get(0, 2) - (4.5 + 4.2 + 4.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn pipeline_tree_is_feasible_and_near_exact() {
        let m = structured6();
        let exact = MutSolver::new().solve(&m).unwrap();
        let pipe = CompactPipeline::new().threshold(4).solve(&m).unwrap();
        assert!(pipe.tree.is_feasible_for(&m, 1e-9));
        assert!(pipe.weight >= exact.weight - 1e-9);
        // On this strongly structured instance decomposition is lossless
        // or nearly so.
        assert!(
            pipe.weight <= exact.weight * 1.10,
            "pipeline {} vs exact {}",
            pipe.weight,
            exact.weight
        );
        assert_eq!(pipe.compact_sets, 4);
        assert!(pipe.is_complete());
    }

    #[test]
    fn pipeline_groups_partition_taxa() {
        let mut rng = StdRng::seed_from_u64(21);
        let m = gen::perturbed_ultrametric(15, 60.0, 0.08, &mut rng);
        let pipe = CompactPipeline::new().threshold(6).solve(&m).unwrap();
        let mut all: Vec<usize> = pipe.groups.concat();
        all.sort_unstable();
        assert_eq!(all, (0..15).collect::<Vec<_>>());
        assert_eq!(pipe.tree.leaf_count(), 15);
        assert!(pipe.tree.validate().is_ok());
    }

    #[test]
    fn pipeline_on_clustered_data_beats_nothing_feasibility_wise() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..3 {
            let m = gen::perturbed_ultrametric(12, 50.0, 0.1, &mut rng);
            let pipe = CompactPipeline::new().threshold(5).solve(&m).unwrap();
            assert!(pipe.tree.is_feasible_for(&m, 1e-9));
        }
    }

    #[test]
    fn all_linkages_produce_feasible_trees_after_refit() {
        let m = structured6();
        for linkage in [Linkage::Maximum, Linkage::Minimum, Linkage::Average] {
            let pipe = CompactPipeline::new()
                .threshold(4)
                .linkage(linkage)
                .solve(&m)
                .unwrap();
            assert!(
                pipe.tree.is_feasible_for(&m, 1e-9),
                "{linkage:?} produced an infeasible tree"
            );
        }
    }

    #[test]
    fn unstructured_matrix_falls_back_to_exact() {
        // Equal distances: no compact sets at all.
        let m = DistanceMatrix::from_rows(&[
            vec![0.0, 5.0, 5.0, 5.0],
            vec![5.0, 0.0, 5.0, 5.0],
            vec![5.0, 5.0, 0.0, 5.0],
            vec![5.0, 5.0, 5.0, 0.0],
        ])
        .unwrap();
        let pipe = CompactPipeline::new().solve(&m).unwrap();
        let exact = MutSolver::new().solve(&m).unwrap();
        assert!((pipe.weight - exact.weight).abs() < 1e-9);
        assert_eq!(pipe.compact_sets, 0);
    }

    #[test]
    fn ultrametric_input_is_reconstructed_exactly() {
        let mut rng = StdRng::seed_from_u64(31);
        let m = gen::random_ultrametric(18, 80.0, &mut rng);
        let pipe = CompactPipeline::new().threshold(8).solve(&m).unwrap();
        // An ultrametric matrix is its own optimal tree; the pipeline must
        // recover it exactly (compact sets match the tree's clusters).
        assert_eq!(pipe.tree.distance_matrix().max_relative_deviation(&m), 0.0);
    }

    #[test]
    fn expired_deadline_degrades_to_feasible_agglomerative_tree() {
        use std::time::{Duration, Instant};
        let mut rng = StdRng::seed_from_u64(17);
        let m = gen::perturbed_ultrametric(16, 70.0, 0.06, &mut rng);
        let solver = MutSolver::new().deadline(Instant::now() - Duration::from_millis(1));
        let pipe = CompactPipeline::new()
            .threshold(6)
            .solver(solver)
            .solve(&m)
            .unwrap();
        // Degraded, not dead: the merged tree is still a feasible
        // ultrametric tree over every species.
        assert!(pipe.tree.is_feasible_for(&m, 1e-9));
        assert_eq!(pipe.tree.leaf_count(), 16);
        assert_eq!(pipe.stop, mutree_bnb::StopReason::DeadlineExpired);
        assert!(!pipe.is_complete());
        assert!(
            !pipe.degraded.is_empty(),
            "expired deadline must report the degraded stages"
        );
        for d in &pipe.degraded {
            assert_eq!(
                d.reason,
                DegradeReason::Stopped(mutree_bnb::StopReason::DeadlineExpired)
            );
            if let Some(gi) = d.group {
                assert!(gi < pipe.groups.len());
            }
        }
    }

    #[test]
    fn cancelled_pipeline_reports_cancellation_per_group() {
        let mut rng = StdRng::seed_from_u64(23);
        let m = gen::perturbed_ultrametric(14, 60.0, 0.05, &mut rng);
        let token = mutree_bnb::CancelToken::new();
        token.cancel();
        let pipe = CompactPipeline::new()
            .threshold(5)
            .solver(MutSolver::new().cancel_token(token))
            .solve(&m)
            .unwrap();
        assert!(pipe.tree.is_feasible_for(&m, 1e-9));
        assert_eq!(pipe.stop, mutree_bnb::StopReason::Cancelled);
        assert!(!pipe.degraded.is_empty());
    }

    #[test]
    fn budget_exhausted_stages_fall_back_and_are_reported() {
        let mut rng = StdRng::seed_from_u64(29);
        let m = gen::perturbed_ultrametric(16, 70.0, 0.08, &mut rng);
        // Zero branch budget *and* no UPGMM incumbent: every nontrivial
        // exact solve stops with nothing, forcing the agglomerative
        // fallback for each degraded stage.
        let pipe = CompactPipeline::new()
            .threshold(6)
            .solver(MutSolver::new().without_upgmm().max_branches(0))
            .solve(&m)
            .unwrap();
        assert!(pipe.tree.is_feasible_for(&m, 1e-9));
        assert_eq!(pipe.tree.leaf_count(), 16);
        assert!(pipe.weight.is_finite());
        assert_eq!(pipe.stop, mutree_bnb::StopReason::BudgetExhausted);
        assert!(!pipe.is_complete());
        assert!(!pipe.degraded.is_empty());
        assert!(pipe
            .degraded
            .iter()
            .all(|d| d.reason == DegradeReason::Stopped(mutree_bnb::StopReason::BudgetExhausted)));
    }

    #[test]
    fn deep_threshold_recursion_terminates() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = gen::random_ultrametric(30, 100.0, &mut rng);
        // Tiny threshold forces many groups and a recursive condensed
        // solve.
        let pipe = CompactPipeline::new().threshold(3).solve(&m).unwrap();
        assert_eq!(pipe.tree.leaf_count(), 30);
        assert!(pipe.tree.is_feasible_for(&m, 1e-9));
    }
}
