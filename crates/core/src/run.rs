//! The spine's final leg: executing a [`SolveRequest`] / [`SolvePlan`]
//! and folding either solve path's outcome into one [`SolveReport`].
//!
//! ```text
//! SolveRequest ──resolve(env)──▶ SolvePlan ──solve_plan──▶ SolveReport
//! ```
//!
//! [`solve_request`] resolves the live environment
//! ([`EnvOverrides::capture`]) and runs the plan; [`solve_plan`] runs an
//! already-resolved plan, so tests can pin the environment to
//! [`EnvOverrides::none`] and exercise precedence deterministically. The
//! `From` conversions below are the only place the exact solver's
//! [`MutSolution`] and the pipeline's [`PipelineSolution`] are reconciled
//! into the shared report shape.

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use mutree_clustersim::ClusterSpec;
use mutree_distmat::DistanceMatrix;
use mutree_engine::{
    BackendSpec, CacheOutcome, GroupCache, MatrixSource, SolveKind, SolvePlan, SolveReport,
    SolveRequest, StageProvenance, StageTiming,
};

use crate::pipeline::{CompactPipeline, PipelineSolution};
use crate::solver::{MutSolution, MutSolver, SearchBackend, LEAF_WIDTHS};
use crate::{CancelToken, Executor, MutError};

impl From<MutSolution> for SolveReport {
    /// An exact solve's report. The caller owns wall-clock measurement:
    /// `timings` starts empty ([`solve_plan`] adds the synthetic `exact`
    /// entry with the measured seconds).
    fn from(sol: MutSolution) -> Self {
        SolveReport {
            tree: sol.tree,
            weight: sol.weight,
            trees: sol.trees,
            stats: sol.stats,
            stop: sol.stop,
            degraded: Vec::new(),
            timings: Vec::new(),
            groups: None,
            compact_sets: None,
            sim: sol.sim,
            leaf_words: None,
            bound_kernel: None,
            prune: None,
        }
    }
}

impl From<PipelineSolution> for SolveReport {
    fn from(sol: PipelineSolution) -> Self {
        SolveReport {
            trees: vec![sol.tree.clone()],
            tree: sol.tree,
            weight: sol.weight,
            stats: sol.stats,
            stop: sol.stop,
            degraded: sol.degraded,
            timings: sol.timings,
            groups: Some(sol.groups),
            compact_sets: Some(sol.compact_sets),
            sim: None,
            leaf_words: None,
            bound_kernel: None,
            prune: None,
        }
    }
}

/// The process-wide cache used by plan execution whenever a plan enables
/// caching. One shared instance keyed by content means repeated
/// [`solve_plan`] calls in the same process (benches replaying a batch,
/// a long-lived service) hit each other's entries; distinct
/// configurations cannot collide because the solver signature is part of
/// every cache key.
fn shared_cache() -> Arc<GroupCache> {
    static GLOBAL: OnceLock<Arc<GroupCache>> = OnceLock::new();
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(GroupCache::new())))
}

/// Supervision hooks a serving front end layers onto a plan's execution.
///
/// A [`SolveRequest`] is deliberately env-free and serializable, so it
/// cannot carry process-local live objects: the `mutree serve` daemon's
/// per-request [`CancelToken`] (wired to client disconnect), the
/// admission controller's *absolute* deadline (queue wait must count
/// against a request's budget, so the daemon converts the request's
/// relative `timeout` to an instant at admission), the shared
/// [`Executor`] every connection's solves run on, and the chaos-test
/// fault injection. [`solve_plan_hooked`] threads these into the solver
/// after plan translation; `SolveHooks::default()` makes it equivalent
/// to [`solve_plan`].
#[derive(Debug, Clone, Default)]
pub struct SolveHooks {
    /// Absolute wall-clock deadline. Overrides the request's relative
    /// `timeout` (which [`plan_solver`] measures from solver build time,
    /// not admission time).
    pub deadline: Option<Instant>,
    /// Cancel token observed by the search; sticky and level-triggered.
    pub cancel: Option<CancelToken>,
    /// Shared worker pool for the solve (and the pipeline, for
    /// decomposed requests) instead of a per-solve `Executor::new`.
    pub executor: Option<Executor>,
    /// Fault-injection test hook: panic on subproblems of exactly this
    /// many taxa (see [`MutSolver::panic_on_taxa`]).
    pub panic_on_taxa: Option<usize>,
}

impl SolveHooks {
    fn is_empty(&self) -> bool {
        self.deadline.is_none()
            && self.cancel.is_none()
            && self.executor.is_none()
            && self.panic_on_taxa.is_none()
    }

    fn apply(&self, mut s: MutSolver) -> MutSolver {
        if let Some(d) = self.deadline {
            s = s.deadline(d);
        }
        if let Some(token) = &self.cancel {
            s = s.cancel_token(token.clone());
        }
        if let Some(exec) = &self.executor {
            s = s.executor(exec.clone());
        }
        if let Some(n) = self.panic_on_taxa {
            s = s.panic_on_taxa(n);
        }
        s
    }
}

/// Loads the request's matrix: inline matrices are cloned, PHYLIP paths
/// are read and parsed.
fn load_matrix(source: &MatrixSource) -> Result<DistanceMatrix, MutError> {
    match source {
        MatrixSource::Inline(m) => Ok(m.clone()),
        MatrixSource::PhylipPath(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| MutError::Input {
                message: format!("cannot read {}: {e}", path.display()),
            })?;
            mutree_distmat::io::parse_phylip(&text).map_err(|e| MutError::Input {
                message: format!("cannot parse {}: {e}", path.display()),
            })
        }
    }
}

/// Builds the solver a plan prescribes. Pure plan-to-builder translation:
/// every environment override was already folded in by
/// [`SolvePlan::resolve`], so nothing here reads the environment. Public
/// so front ends that need a builder tweak the plan cannot express (the
/// CLI's fault-injection test hook) can still construct through the
/// spine.
pub fn plan_solver(plan: &SolvePlan) -> MutSolver {
    let req = &plan.request;
    let mut s = MutSolver::new()
        .backend(match req.backend {
            BackendSpec::Sequential => SearchBackend::Sequential,
            BackendSpec::Parallel { workers } => SearchBackend::Parallel { workers },
            BackendSpec::SimulatedCluster { slaves } => SearchBackend::SimulatedCluster {
                spec: ClusterSpec::with_slaves(slaves),
            },
        })
        .mode(req.mode)
        .strategy(req.strategy)
        .three_three(req.three_three)
        .max_branches(req.max_branches);
    if !req.use_maxmin {
        s = s.without_maxmin();
    }
    if !req.use_upgmm {
        s = s.without_upgmm();
    }
    if let Some(t) = req.timeout {
        s = s.timeout(t);
    }
    // An unsupported forced width behaves as unset, same as the solver's
    // own treatment of the environment hook.
    if let Some(w) = plan.leaf_words.filter(|w| LEAF_WIDTHS.contains(w)) {
        s = s.leaf_words(w);
    }
    if let Some(k) = plan.bound_kernel {
        s = s.bound_kernel(k);
    }
    if let Some(p) = plan.prune {
        s = s.prune(p);
    }
    if let Some(shards) = plan.frontier_shards {
        s = s.frontier_shards(shards);
    }
    if let Some(budget) = req.memory {
        s = s.memory_budget(budget);
    }
    if let Some(cp) = &req.checkpoint {
        s = s.checkpoint_to(&cp.path).checkpoint_interval(cp.interval);
    }
    if let Some(path) = &req.resume {
        s = s.resume_from(path);
    }
    if let Some(level) = req.trace {
        s = s.trace(crate::LoggingObserver::new(level));
    }
    // For an exact solve, `threads` means "run the search itself on a
    // shared pool" (the pipeline owns the pool for decomposed solves, so
    // attaching one here too would double the budget).
    if req.kind == SolveKind::Exact {
        if let Some(t) = plan.threads {
            s = s.executor(Executor::new(t));
        }
    }
    s
}

/// Builds the pipeline a plan prescribes around [`plan_solver`]'s solver.
/// See [`plan_solver`] for why this is public.
pub fn plan_pipeline(plan: &SolvePlan) -> CompactPipeline {
    pipeline_with_solver(plan, plan_solver(plan), None)
}

/// [`plan_pipeline`] with an already-tweaked solver and an optional
/// shared pool in place of the plan's own `Executor::new`.
fn pipeline_with_solver(
    plan: &SolvePlan,
    solver: MutSolver,
    shared: Option<&Executor>,
) -> CompactPipeline {
    let req = &plan.request;
    let mut p = CompactPipeline::new()
        .threshold(req.threshold.max(2))
        .linkage(req.linkage)
        .max_depth(req.max_depth)
        .solver(solver);
    if let Some(policy) = &req.retry {
        p = p.retry(policy.clone());
    }
    if let Some(exec) = shared {
        p = p.executor(exec.clone());
    } else if let Some(threads) = plan.threads {
        p = p.executor(Executor::new(threads));
    }
    if plan.cache_enabled {
        if plan.cache_explicit {
            // Explicitly requested: attach the shared cache, which also
            // arms whole-run memoization.
            p = p.cache(shared_cache());
        }
        // Environment-enabled: `CompactPipeline::new()` already picked up
        // the ambient cache (stage-level only).
    } else if plan.cache_explicit {
        // Explicitly disabled: shed even an ambient environment cache.
        p = p.no_cache();
    }
    p
}

/// Executes a resolved plan and reports the outcome.
///
/// # Errors
///
/// [`MutError::Input`] when a PHYLIP source cannot be read or parsed,
/// plus anything the underlying solver or pipeline returns.
pub fn solve_plan(plan: &SolvePlan) -> Result<SolveReport, MutError> {
    solve_plan_hooked(plan, &SolveHooks::default())
}

/// [`solve_plan`] with [`SolveHooks`] threaded into the solver — the
/// serving daemon's entry point. Two deliberate differences from the
/// bare path:
///
/// * The whole-solve memo gate relaxes from
///   [`MutSolver::cache_sig`] to
///   [`MutSolver::cache_sig_interruptible`]: a daemon wires a cancel
///   token into *every* request, and strict gating would silently turn
///   the shared cache off for all of them. Sound because entries are
///   only filed from completed solves and a hit returns the stored
///   proven optimum (see `cache_sig_interruptible`'s contract).
/// * The hooks' executor replaces any per-solve `Executor::new`, so all
///   requests share one pool.
///
/// # Errors
///
/// See [`solve_plan`].
pub fn solve_plan_hooked(plan: &SolvePlan, hooks: &SolveHooks) -> Result<SolveReport, MutError> {
    let req = &plan.request;
    let m = load_matrix(&req.source)?;
    match req.kind {
        SolveKind::Exact => {
            let solver = hooks.apply(plan_solver(plan));
            let leaf_words = solver.dispatch_leaf_words(m.len());
            let bound_kernel = solver.dispatch_bound_kernel();
            let prune = solver.dispatch_prune();
            // Whole-solve memoization for explicitly cache-enabled exact
            // requests; the signature gate keeps constrained solves live.
            let sig = if hooks.is_empty() {
                solver.cache_sig()
            } else {
                solver.cache_sig_interruptible()
            };
            let cache = (plan.cache_enabled && plan.cache_explicit)
                .then(shared_cache)
                .zip(sig);
            let started = Instant::now();
            let mut pending = None;
            let mut solver = solver;
            let mut stats_extra = crate::SearchStats::default();
            let mut provenance = StageProvenance::Solved;
            if let Some((cache, sig)) = &cache {
                let probe = cache.probe(&m, *sig);
                stats_extra.cache_poisoned += probe.poisoned;
                match probe.outcome {
                    CacheOutcome::Hit { tree, weight } => {
                        let mut stats = stats_extra;
                        stats.cache_hits = 1;
                        return Ok(SolveReport {
                            trees: vec![tree.clone()],
                            tree,
                            weight,
                            stats,
                            stop: crate::StopReason::Completed,
                            degraded: Vec::new(),
                            timings: vec![StageTiming {
                                stage: "cached".to_string(),
                                seconds: started.elapsed().as_secs_f64(),
                                attempts: 1,
                                provenance: StageProvenance::Cached,
                            }],
                            groups: None,
                            compact_sets: None,
                            sim: None,
                            leaf_words,
                            bound_kernel: Some(bound_kernel),
                            prune: Some(prune),
                        });
                    }
                    CacheOutcome::Seed { tree, query, .. } => {
                        stats_extra.cache_misses += 1;
                        stats_extra.cache_warm_seeds += 1;
                        provenance = StageProvenance::WarmSeeded;
                        solver = solver.seed_incumbent(tree);
                        pending = Some(query);
                    }
                    CacheOutcome::Miss(query) => {
                        stats_extra.cache_misses += 1;
                        pending = Some(query);
                    }
                }
            }
            let sol = solver.solve(&m)?;
            if let (Some((cache, _)), Some(query)) = (&cache, pending) {
                if sol.stop.is_complete() {
                    cache.insert(query, &sol.tree, sol.weight);
                }
            }
            let mut report = SolveReport::from(sol);
            report.stats.cache_hits += stats_extra.cache_hits;
            report.stats.cache_misses += stats_extra.cache_misses;
            report.stats.cache_warm_seeds += stats_extra.cache_warm_seeds;
            report.stats.cache_poisoned += stats_extra.cache_poisoned;
            report.timings = vec![StageTiming {
                stage: "exact".to_string(),
                seconds: started.elapsed().as_secs_f64(),
                attempts: 1,
                provenance,
            }];
            report.leaf_words = leaf_words;
            report.bound_kernel = Some(bound_kernel);
            report.prune = Some(prune);
            Ok(report)
        }
        SolveKind::Decompose => {
            let solver = hooks.apply(plan_solver(plan));
            let pipeline = pipeline_with_solver(plan, solver, hooks.executor.as_ref());
            Ok(SolveReport::from(pipeline.solve(&m)?))
        }
    }
}

/// Resolves `request` against the live process environment and executes
/// it: the whole spine in one call. Equivalent to
/// `solve_plan(&SolvePlan::resolve_from_env(request))`.
///
/// # Errors
///
/// See [`solve_plan`].
pub fn solve_request(request: SolveRequest) -> Result<SolveReport, MutError> {
    solve_plan(&SolvePlan::resolve_from_env(request))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutree_distmat::gen;
    use mutree_engine::EnvOverrides;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn matrix(n: usize, seed: u64) -> DistanceMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        gen::perturbed_ultrametric(n, 60.0, 0.05, &mut rng)
    }

    #[test]
    fn exact_request_matches_direct_solver() {
        let m = matrix(10, 5);
        let report = solve_plan(&SolvePlan::resolve(
            SolveRequest::exact(m.clone()),
            &EnvOverrides::none(),
        ))
        .unwrap();
        let direct = MutSolver::new().solve(&m).unwrap();
        assert_eq!(report.weight.to_bits(), direct.weight.to_bits());
        assert!(report.is_complete());
        assert_eq!(report.timings.len(), 1);
        assert_eq!(report.timings[0].stage, "exact");
        // The report records what actually ran; with no plan override
        // that is whatever an unconstrained solver dispatches to, so
        // the assert stays valid under the forced-env CI legs.
        assert_eq!(
            report.bound_kernel,
            Some(MutSolver::new().dispatch_bound_kernel())
        );
        assert_eq!(report.prune, Some(MutSolver::new().dispatch_prune()));
        assert!(report.leaf_words.is_some());
        assert!(report.groups.is_none());
    }

    #[test]
    fn decompose_request_matches_direct_pipeline() {
        let m = matrix(16, 7);
        let report = solve_plan(&SolvePlan::resolve(
            SolveRequest::decompose(m.clone()),
            &EnvOverrides::none(),
        ))
        .unwrap();
        let direct = CompactPipeline::new().no_cache().solve(&m).unwrap();
        assert_eq!(report.weight.to_bits(), direct.weight.to_bits());
        assert_eq!(report.groups.as_deref(), Some(direct.groups.as_slice()));
        assert_eq!(report.compact_sets, Some(direct.compact_sets));
        assert!(!report.timings.is_empty());
    }

    #[test]
    fn explicit_cache_replays_exact_solves_bit_identically() {
        let m = matrix(9, 11);
        let req = || SolveRequest::exact(m.clone()).cache(true);
        let plan = SolvePlan::resolve(req(), &EnvOverrides::none());
        let cold = solve_plan(&plan).unwrap();
        let warm = solve_plan(&plan).unwrap();
        assert_eq!(warm.weight.to_bits(), cold.weight.to_bits());
        assert_eq!(warm.stats.cache_hits, 1);
        assert_eq!(warm.timings[0].provenance, StageProvenance::Cached);
        assert_eq!(
            mutree_tree::compare::robinson_foulds(&warm.tree, &cold.tree).unwrap(),
            0
        );
    }

    #[test]
    fn missing_phylip_file_is_an_input_error() {
        let req = SolveRequest::new(MatrixSource::PhylipPath(
            "/nonexistent/mutree-test.phy".into(),
        ));
        let err = solve_plan(&SolvePlan::resolve(req, &EnvOverrides::none())).unwrap_err();
        assert!(matches!(err, MutError::Input { .. }), "{err}");
    }

    #[test]
    fn hooked_solve_matches_bare_solve_bit_identically() {
        let m = matrix(10, 17);
        let plan = SolvePlan::resolve(SolveRequest::exact(m.clone()), &EnvOverrides::none());
        let bare = solve_plan(&plan).unwrap();
        let hooks = SolveHooks {
            cancel: Some(CancelToken::new()),
            executor: Some(Executor::new(2)),
            deadline: Some(Instant::now() + std::time::Duration::from_secs(600)),
            panic_on_taxa: None,
        };
        let hooked = solve_plan_hooked(&plan, &hooks).unwrap();
        assert_eq!(hooked.weight.to_bits(), bare.weight.to_bits());
        assert!(hooked.is_complete());
    }

    #[test]
    fn hooked_cancel_token_stops_the_solve() {
        let m = matrix(12, 19);
        let plan = SolvePlan::resolve(SolveRequest::exact(m), &EnvOverrides::none());
        let token = CancelToken::new();
        token.cancel();
        let hooks = SolveHooks {
            cancel: Some(token),
            ..SolveHooks::default()
        };
        let report = solve_plan_hooked(&plan, &hooks).unwrap();
        assert_eq!(report.stop, crate::StopReason::Cancelled);
    }

    #[test]
    fn hooked_requests_still_share_the_whole_solve_memo() {
        // A daemon attaches a cancel token to every request; the relaxed
        // signature gate must keep the cache live for them, and a replay
        // must come back `Cached` with the identical optimum.
        let m = matrix(9, 23);
        let plan = SolvePlan::resolve(
            SolveRequest::exact(m.clone()).cache(true),
            &EnvOverrides::none(),
        );
        let hooks = SolveHooks {
            cancel: Some(CancelToken::new()),
            ..SolveHooks::default()
        };
        let cold = solve_plan_hooked(&plan, &hooks).unwrap();
        let warm = solve_plan_hooked(&plan, &hooks).unwrap();
        assert_eq!(warm.weight.to_bits(), cold.weight.to_bits());
        assert_eq!(warm.stats.cache_hits, 1);
        assert_eq!(warm.timings[0].provenance, StageProvenance::Cached);
    }

    #[test]
    fn constrained_requests_are_never_served_from_cache() {
        let m = matrix(9, 13);
        // Same matrix as a cacheable request may have filed, but with a
        // branch budget: the signature gate must force a live solve.
        let mut req = SolveRequest::exact(m.clone()).cache(true);
        req.max_branches = 10;
        let report = solve_plan(&SolvePlan::resolve(req, &EnvOverrides::none())).unwrap();
        assert_eq!(report.stats.cache_hits + report.stats.cache_misses, 0);
    }
}
