//! Deterministic discrete-event simulation of the paper's cluster runs.
//!
//! The papers time their parallel branch-and-bound on a 16-node Linux PC
//! cluster. To reproduce those experiments without the hardware (and
//! deterministically, on any host), this module replays the master/slave
//! protocol on a simulated cluster: every branch operation consumes
//! virtual compute time, and every message — upper-bound broadcasts, work
//! requests, work transfers and pool donations — pays the
//! [`NetworkModel`](mutree_clustersim::NetworkModel)'s
//! `latency + bytes/bandwidth`.
//!
//! The search logic is *identical* to the real drivers — both the master's
//! seeding phase and the slaves' node processing run the shared
//! [expansion kernel](mutree_bnb::kernel) (same nodes, same bounds, same
//! pruning), so the simulated optimum always matches the sequential one;
//! only the timeline is modeled. Super-linear speedup emerges naturally: a
//! slave that stumbles on a good incumbent early broadcasts it, and every
//! other slave skips work the sequential search would have performed.
//!
//! Protocol, one virtual step per BBT node (the paper's Step 7 loop):
//!
//! * a slave pops from its local pool depth-first, prunes against its
//!   *current view* of the global upper bound, branches otherwise;
//! * an improving solution updates the slave's view immediately and is
//!   broadcast to the master and all other slaves;
//! * after every few branches a loaded slave donates its most promising
//!   pending node to the master's global pool (the paper's "send the last
//!   UT in sorted LP to GP"), which serves waiting slaves;
//! * a slave with an empty pool sends a work request to the master and
//!   waits;
//! * the run ends when every slave is waiting, the global pool is empty
//!   and no message is in flight.

use std::collections::VecDeque;

use mutree_bnb::kernel::{
    sanitize_lb, BreadthFirstFrontier, DepthFirstFrontier, Expander, Frontier, IncumbentSink,
    LocalBudget, Step, StopPoller,
};
use mutree_bnb::{
    Incumbents, Problem, SearchMode, SearchObserver, SearchOptions, SearchOutcome, SearchStats,
    StopReason,
};
use mutree_clustersim::{ClusterSpec, EventQueue, NodeMetrics, SimReport};

use crate::MutProblem;

/// Cost-model hooks the simulation needs on top of [`Problem`].
pub trait SimCost: Problem {
    /// Work units consumed by branching `node` (child generation plus
    /// bound evaluation).
    fn branch_ops(&self, node: &Self::Node) -> f64;

    /// Serialized size of `node` in bytes, for work-transfer messages.
    fn node_bytes(&self, node: &Self::Node) -> u64;
}

impl<const K: usize> SimCost for MutProblem<K> {
    fn branch_ops(&self, node: &Self::Node) -> f64 {
        // 2k−1 children, each an O(k) height-path update.
        let k = node.leaves_inserted() as f64;
        (2.0 * k - 1.0) * k
    }

    fn node_bytes(&self, node: &Self::Node) -> u64 {
        // Parent/children/height arrays plus K leafset words over 2n−1
        // arena slots (28 bytes/slot at the historical K = 1).
        (2 * node.taxon_count() as u64 - 1) * (20 + 8 * K as u64)
    }
}

/// Result of a simulated run: the search outcome plus the virtual-time
/// report.
#[derive(Debug, Clone)]
pub struct SimulatedOutcome<S> {
    /// What the search found (identical in value to the real drivers).
    pub outcome: SearchOutcome<S>,
    /// Virtual-time measurements: makespan, per-slave busy time, message
    /// and byte counts.
    pub report: SimReport,
}

/// Control-message payload size (an upper bound value or a request).
const CTRL_BYTES: u64 = 16;
/// Work units charged for popping-and-pruning or accepting a solution.
const TOUCH_OPS: f64 = 1.0;
/// A slave donates to the global pool every this many branches…
const DONATE_EVERY: u64 = 4;
/// …as long as it keeps at least this many nodes for itself.
const MIN_KEEP: usize = 3;

enum Ev<N> {
    /// Slave `i` is ready to process its next pool node.
    Ready(usize),
    /// A message arrives at slave `i`.
    AtSlave(usize, SlaveMsg<N>),
    /// A message from slave `i` arrives at the master.
    AtMaster(usize, MasterMsg<N>),
}

enum SlaveMsg<N> {
    Ub(f64),
    Work(Vec<N>),
}

enum MasterMsg<N> {
    Request,
    Donate(N),
    /// Bound broadcasts also reach the master (it only observes them, but
    /// the message still costs wire time).
    Ub,
}

struct Slave<N, S> {
    lp: DepthFirstFrontier<N>,
    ub: f64,
    waiting: bool,
    branches_since_donate: u64,
    found: Vec<(f64, S)>,
    metrics: NodeMetrics,
}

/// A simulated slave's sink: its *delayed view* of the global upper bound
/// (updated only when a broadcast arrives), plus a local list of found
/// solutions gathered by the master at the end.
struct SlaveSink<'a, S> {
    ub: &'a mut f64,
    found: &'a mut Vec<(f64, S)>,
    opts: &'a SearchOptions,
}

impl<S> IncumbentSink<S> for SlaveSink<'_, S> {
    fn current_ub(&self) -> f64 {
        *self.ub
    }

    fn accept(&mut self, value: f64, solution: S) -> bool {
        let eps = self.opts.eps(*self.ub);
        let improved = value < *self.ub - eps;
        let keep = match self.opts.mode {
            SearchMode::BestOne => improved,
            SearchMode::AllOptimal => value <= *self.ub + eps,
        };
        if keep {
            self.found.push((value, solution));
        }
        if improved {
            *self.ub = value;
        }
        improved
    }
}

/// Runs the search on a simulated cluster. See the module docs for the
/// protocol. Deterministic: same inputs, same outcome, same timings.
pub fn solve_simulated<P: SimCost>(
    problem: &P,
    opts: &SearchOptions,
    spec: &ClusterSpec,
) -> SimulatedOutcome<P::Solution> {
    solve_simulated_observed(problem, opts, spec, &mut ())
}

/// [`solve_simulated`] with a [`SearchObserver`] receiving the kernel's
/// structured events (the whole simulation runs on one thread, so a
/// single observer sees every event in deterministic order).
pub fn solve_simulated_observed<P: SimCost, O: SearchObserver>(
    problem: &P,
    opts: &SearchOptions,
    spec: &ClusterSpec,
    observer: &mut O,
) -> SimulatedOutcome<P::Solution> {
    let p = spec.slave_count();
    // One kernel instance carries the counters for the whole simulated
    // cluster (per-slave sums and pool peaks commute with the merge the
    // real parallel driver performs).
    let mut exp = Expander::new(problem, opts);
    let mut master_inc: Incumbents<P::Solution> = Incumbents::new(opts);
    exp.offer_initial(&mut master_inc);
    // The branch budget spans seeding and the event loop, like the real
    // parallel driver's shared counter.
    let mut budget = LocalBudget::new(opts.max_branches);

    // --- Master seeding (the paper's Steps 1–5), charged to the master.
    // Under strong pruning this loop can drain the whole search, so it
    // honors (real-world) cancellation and deadlines like the event loop.
    let mut seed_ops = 0.0;
    let target = 2 * p;
    let mut frontier = BreadthFirstFrontier::new();
    exp.push_root(&mut frontier);
    let mut seed_stop: Option<StopReason> = None;
    while frontier.len() < target {
        if let Some(reason) = exp.poll_stop(observer) {
            seed_stop = Some(reason);
            break;
        }
        let Some(node) = frontier.pop() else {
            break;
        };
        match exp.expand(&node, &mut master_inc, &mut budget, &mut frontier, observer) {
            Step::Stopped(reason) => {
                seed_stop = Some(reason);
                break;
            }
            Step::Branched { .. } => {
                seed_ops += problem.branch_ops(&node);
                exp.recycle(node);
            }
            _ => {
                seed_ops += TOUCH_OPS;
                exp.recycle(node);
            }
        }
    }

    let t0 = seed_ops / spec.master_ops_per_sec();
    if let Some(reason) = seed_stop {
        return gather(
            master_inc,
            exp.stats(),
            reason,
            SimReport {
                makespan: t0,
                per_node: vec![NodeMetrics::default(); p],
            },
            Vec::new(),
        );
    }
    if frontier.is_empty() {
        return gather(
            master_inc,
            exp.stats(),
            StopReason::Completed,
            SimReport {
                makespan: t0,
                per_node: vec![NodeMetrics::default(); p],
            },
            Vec::new(),
        );
    }

    // --- Sort seeds by lower bound and deal cyclically (Step 6).
    let mut seeds: Vec<(f64, P::Node)> = frontier
        .into_vec()
        .into_iter()
        .map(|n| (sanitize_lb(problem.lower_bound(&n)), n))
        .collect();
    seeds.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut deals: Vec<Vec<P::Node>> = (0..p).map(|_| Vec::new()).collect();
    for (i, (_, node)) in seeds.into_iter().enumerate() {
        deals[i % p].push(node);
    }

    let seed_ub = master_inc.ub;
    let mut slaves: Vec<Slave<P::Node, P::Solution>> = (0..p)
        .map(|_| Slave {
            lp: DepthFirstFrontier::new(),
            ub: seed_ub,
            waiting: false,
            branches_since_donate: 0,
            found: Vec::new(),
            metrics: NodeMetrics::default(),
        })
        .collect();

    let mut q: EventQueue<Ev<P::Node>> = EventQueue::new();
    let mut master_metrics = NodeMetrics::default();
    master_metrics.record_busy(t0, seed_ops as u64);
    for (i, mut batch) in deals.into_iter().enumerate() {
        // Local pools are stacks: reverse so the best bound pops first.
        batch.reverse();
        let bytes: u64 = CTRL_BYTES + batch.iter().map(|n| problem.node_bytes(n)).sum::<u64>();
        master_metrics.record_send(bytes);
        let arrival = t0 + spec.master_slave_delay(i, bytes);
        if batch.is_empty() {
            q.schedule(arrival, Ev::Ready(i));
        } else {
            q.schedule(arrival, Ev::AtSlave(i, SlaveMsg::Work(batch)));
        }
    }

    // --- Event loop.
    let mut gp: Vec<P::Node> = Vec::new();
    let mut pending_requests: VecDeque<usize> = VecDeque::new();
    let mut stop = StopReason::Completed;
    let mut makespan = t0;
    // Fresh cadence for the event loop (events, not nodes, are the tick
    // unit here — many events process no node at all).
    let mut poller = StopPoller::new();

    while let Some((now, ev)) = q.pop() {
        makespan = makespan.max(now);
        if !stop.is_complete() {
            continue; // drain remaining events
        }
        // The simulation advances virtual time, but the *host* running it
        // still honors real-world deadlines and cancellation: a simulated
        // experiment that explodes combinatorially must stay interruptible.
        if let Some(reason) = poller.poll(opts) {
            stop = reason;
            continue;
        }
        match ev {
            Ev::AtSlave(i, SlaveMsg::Ub(v)) => {
                let s = &mut slaves[i];
                if v < s.ub {
                    s.ub = v;
                }
            }
            Ev::AtSlave(i, SlaveMsg::Work(batch)) => {
                // Work arrives either as the initial seeding delivery (the
                // slave has no Ready event yet) or in response to a
                // request (the slave is waiting); either way it can start.
                let s = &mut slaves[i];
                for n in batch {
                    s.lp.push(n);
                }
                s.waiting = false;
                q.schedule(now, Ev::Ready(i));
            }
            Ev::AtMaster(i, MasterMsg::Request) => {
                pending_requests.push_back(i);
                serve_requests(
                    now,
                    spec,
                    &mut q,
                    &mut gp,
                    &mut pending_requests,
                    &mut master_metrics,
                    |n| problem.node_bytes(n),
                );
            }
            Ev::AtMaster(_, MasterMsg::Donate(node)) => {
                gp.push(node);
                serve_requests(
                    now,
                    spec,
                    &mut q,
                    &mut gp,
                    &mut pending_requests,
                    &mut master_metrics,
                    |n| problem.node_bytes(n),
                );
            }
            Ev::AtMaster(_, MasterMsg::Ub) => {
                // The master only observes; slaves broadcast directly.
            }
            Ev::Ready(i) => {
                let Some(node) = slaves[i].lp.pop() else {
                    let s = &mut slaves[i];
                    if !s.waiting {
                        s.waiting = true;
                        s.metrics.record_send(CTRL_BYTES);
                        q.schedule(
                            now + spec.master_slave_delay(i, CTRL_BYTES),
                            Ev::AtMaster(i, MasterMsg::Request),
                        );
                    }
                    continue;
                };
                let step = {
                    let Slave { lp, ub, found, .. } = &mut slaves[i];
                    let mut sink = SlaveSink { ub, found, opts };
                    exp.expand(&node, &mut sink, &mut budget, lp, observer)
                };
                match step {
                    Step::Pruned => {
                        let s = &mut slaves[i];
                        let dt = spec.compute_time(i, TOUCH_OPS);
                        s.metrics.record_busy(dt, TOUCH_OPS as u64);
                        q.schedule(now + dt, Ev::Ready(i));
                        exp.recycle(node);
                    }
                    Step::Solution { value, improved } => {
                        {
                            let s = &mut slaves[i];
                            let dt = spec.compute_time(i, TOUCH_OPS);
                            s.metrics.record_busy(dt, TOUCH_OPS as u64);
                            q.schedule(now + dt, Ev::Ready(i));
                        }
                        if improved {
                            // Broadcast the new bound to everyone.
                            for other in 0..p {
                                if other != i {
                                    slaves[i].metrics.record_send(CTRL_BYTES);
                                    q.schedule(
                                        now + spec.slave_slave_delay(i, other, CTRL_BYTES),
                                        Ev::AtSlave(other, SlaveMsg::Ub(value)),
                                    );
                                }
                            }
                            slaves[i].metrics.record_send(CTRL_BYTES);
                            q.schedule(
                                now + spec.master_slave_delay(i, CTRL_BYTES),
                                Ev::AtMaster(i, MasterMsg::Ub),
                            );
                        }
                        exp.recycle(node);
                    }
                    Step::Branched { .. } => {
                        let ops = problem.branch_ops(&node);
                        let dt = spec.compute_time(i, ops);
                        let s = &mut slaves[i];
                        s.metrics.record_busy(dt, ops as u64);
                        s.branches_since_donate += 1;
                        // Keep the global pool stocked (the paper's
                        // donation rule).
                        if s.branches_since_donate >= DONATE_EVERY && s.lp.len() > MIN_KEEP {
                            s.branches_since_donate = 0;
                            if let Some(donated) = s.lp.steal_oldest() {
                                let bytes = CTRL_BYTES + problem.node_bytes(&donated);
                                s.metrics.record_send(bytes);
                                q.schedule(
                                    now + dt + spec.master_slave_delay(i, bytes),
                                    Ev::AtMaster(i, MasterMsg::Donate(donated)),
                                );
                            }
                        }
                        q.schedule(now + dt, Ev::Ready(i));
                        exp.recycle(node);
                    }
                    Step::Stopped(reason) => {
                        stop = reason;
                    }
                }
            }
        }
    }

    let report = SimReport {
        makespan,
        per_node: slaves.iter().map(|s| s.metrics).collect(),
    };
    let mut found = Vec::new();
    for s in slaves {
        found.extend(s.found);
    }
    gather(master_inc, exp.stats(), stop, report, found)
}

fn serve_requests<N>(
    now: f64,
    spec: &ClusterSpec,
    q: &mut EventQueue<Ev<N>>,
    gp: &mut Vec<N>,
    pending: &mut VecDeque<usize>,
    master_metrics: &mut NodeMetrics,
    node_bytes: impl Fn(&N) -> u64,
) {
    while !pending.is_empty() && !gp.is_empty() {
        let req = pending.pop_front().expect("checked non-empty");
        let node = gp.pop().expect("checked non-empty");
        let bytes = CTRL_BYTES + node_bytes(&node);
        master_metrics.record_send(bytes);
        q.schedule(
            now + spec.master_slave_delay(req, bytes),
            Ev::AtSlave(req, SlaveMsg::Work(vec![node])),
        );
    }
}

fn gather<S: Clone>(
    mut inc: Incumbents<S>,
    stats: SearchStats,
    stop: StopReason,
    report: SimReport,
    found: Vec<(f64, S)>,
) -> SimulatedOutcome<S> {
    for (v, s) in found {
        inc.offer(v, s);
    }
    SimulatedOutcome {
        outcome: inc.into_outcome(stats, stop),
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreeThree;
    use mutree_bnb::{solve_parallel, solve_sequential, ChildBuf};
    use mutree_distmat::{gen, DistanceMatrix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn m6() -> DistanceMatrix {
        let mut rng = StdRng::seed_from_u64(77);
        gen::uniform_metric(6, 0.0, 100.0, &mut rng)
    }

    #[test]
    fn simulated_matches_sequential_value() {
        let m = m6();
        let pm = m.maxmin_permutation().apply(&m);
        let p = MutProblem::<1>::new(&pm, ThreeThree::Off, true);
        let opts = SearchOptions::new(SearchMode::BestOne);
        let seq = solve_sequential(&p, &opts);
        for slaves in [1, 2, 4, 16] {
            let sim = solve_simulated(&p, &opts, &ClusterSpec::with_slaves(slaves));
            assert_eq!(seq.best_value, sim.outcome.best_value, "slaves = {slaves}");
            assert!(sim.outcome.is_complete());
            assert!(sim.report.makespan > 0.0);
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let m = m6();
        let pm = m.maxmin_permutation().apply(&m);
        let p = MutProblem::<1>::new(&pm, ThreeThree::Off, true);
        let opts = SearchOptions::new(SearchMode::BestOne);
        let spec = ClusterSpec::with_slaves(4);
        let a = solve_simulated(&p, &opts, &spec);
        let b = solve_simulated(&p, &opts, &spec);
        assert_eq!(a.report, b.report);
        assert_eq!(a.outcome.best_value, b.outcome.best_value);
    }

    #[test]
    fn more_slaves_do_not_change_the_answer() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = gen::perturbed_ultrametric(8, 40.0, 0.1, &mut rng);
        let pm = m.maxmin_permutation().apply(&m);
        let p = MutProblem::<1>::new(&pm, ThreeThree::Off, true);
        let opts = SearchOptions::new(SearchMode::BestOne);
        let base = solve_simulated(&p, &opts, &ClusterSpec::with_slaves(1));
        for slaves in [3, 8] {
            let sim = solve_simulated(&p, &opts, &ClusterSpec::with_slaves(slaves));
            assert_eq!(base.outcome.best_value, sim.outcome.best_value);
        }
    }

    #[test]
    fn parallelism_reduces_makespan_on_nontrivial_instances() {
        let mut rng = StdRng::seed_from_u64(123);
        let m = gen::uniform_metric(10, 0.0, 100.0, &mut rng);
        let pm = m.maxmin_permutation().apply(&m);
        // Without the UPGMM hint the search cannot collapse during the
        // master's seeding phase, so the slaves really run.
        let p = MutProblem::<1>::new(&pm, ThreeThree::Off, false);
        let opts = SearchOptions::new(SearchMode::BestOne);
        let t1 = solve_simulated(&p, &opts, &ClusterSpec::with_slaves(1))
            .report
            .makespan;
        let t8 = solve_simulated(&p, &opts, &ClusterSpec::with_slaves(8))
            .report
            .makespan;
        assert!(
            t8 < t1,
            "8 slaves ({t8:.6}s) should beat 1 slave ({t1:.6}s)"
        );
    }

    #[test]
    fn metrics_account_messages() {
        let m = m6();
        let pm = m.maxmin_permutation().apply(&m);
        let p = MutProblem::<1>::new(&pm, ThreeThree::Off, false);
        let opts = SearchOptions::new(SearchMode::BestOne);
        let sim = solve_simulated(&p, &opts, &ClusterSpec::with_slaves(4));
        // Slaves at least request more work once they drain.
        assert!(sim.report.total_messages() > 0);
        assert!(sim.report.total_ops() > 0);
        assert_eq!(sim.report.per_node.len(), 4);
    }

    #[test]
    fn budget_abort_reports_incomplete() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = gen::uniform_metric(12, 0.0, 100.0, &mut rng);
        let pm = m.maxmin_permutation().apply(&m);
        let p = MutProblem::<1>::new(&pm, ThreeThree::Off, false);
        let opts = SearchOptions::new(SearchMode::BestOne).max_branches(20);
        let sim = solve_simulated(&p, &opts, &ClusterSpec::with_slaves(4));
        assert_eq!(sim.outcome.stop, StopReason::BudgetExhausted);
        assert!(!sim.outcome.is_complete());
    }

    #[test]
    fn pre_cancelled_token_stops_the_simulation() {
        let m = m6();
        let pm = m.maxmin_permutation().apply(&m);
        let p = MutProblem::<1>::new(&pm, ThreeThree::Off, true);
        let token = mutree_bnb::CancelToken::new();
        token.cancel();
        let opts = SearchOptions::new(SearchMode::BestOne).cancel_token(token);
        let sim = solve_simulated(&p, &opts, &ClusterSpec::with_slaves(4));
        assert_eq!(sim.outcome.stop, StopReason::Cancelled);
        // The UPGMM incumbent survives the interruption.
        assert!(sim.outcome.best_value.is_some());
    }

    #[test]
    fn all_optimal_set_matches_sequential() {
        let m = DistanceMatrix::from_rows(&[
            vec![0.0, 6.0, 6.0],
            vec![6.0, 0.0, 6.0],
            vec![6.0, 6.0, 0.0],
        ])
        .unwrap();
        let p = MutProblem::<1>::new(&m, ThreeThree::Off, false);
        let opts = SearchOptions::new(SearchMode::AllOptimal);
        let seq = solve_sequential(&p, &opts);
        let sim = solve_simulated(&p, &opts, &ClusterSpec::with_slaves(2));
        assert_eq!(seq.best_value, sim.outcome.best_value);
        assert_eq!(seq.solutions.len(), sim.outcome.solutions.len());
    }

    /// Wraps a problem but reports NaN for every lower bound. The kernel's
    /// NaN→−∞ policy must make this equivalent to "no pruning", never to
    /// "prune everything", in the simulated driver too.
    struct NanLb(MutProblem);

    impl Problem for NanLb {
        type Node = <MutProblem as Problem>::Node;
        type Solution = <MutProblem as Problem>::Solution;

        fn root(&self) -> Self::Node {
            self.0.root()
        }
        fn lower_bound(&self, _: &Self::Node) -> f64 {
            f64::NAN
        }
        fn solution(&self, n: &Self::Node) -> Option<(Self::Solution, f64)> {
            self.0.solution(n)
        }
        fn branch(&self, n: &Self::Node, out: &mut ChildBuf<Self::Node>) {
            self.0.branch(n, out)
        }
    }

    impl SimCost for NanLb {
        fn branch_ops(&self, node: &Self::Node) -> f64 {
            self.0.branch_ops(node)
        }
        fn node_bytes(&self, node: &Self::Node) -> u64 {
            self.0.node_bytes(node)
        }
    }

    #[test]
    fn nan_lower_bounds_never_prune_in_the_simulated_driver() {
        let m = m6();
        let pm = m.maxmin_permutation().apply(&m);
        let exact = MutProblem::<1>::new(&pm, ThreeThree::Off, false);
        let nan = NanLb(MutProblem::<1>::new(&pm, ThreeThree::Off, false));
        let opts = SearchOptions::new(SearchMode::BestOne);
        let reference = solve_sequential(&exact, &opts);
        let sim = solve_simulated(&nan, &opts, &ClusterSpec::with_slaves(3));
        assert_eq!(reference.best_value, sim.outcome.best_value);
        assert!(sim.outcome.is_complete());
        // With no usable bounds nothing may be pruned at all.
        assert_eq!(sim.outcome.stats.pruned, 0);
    }

    #[test]
    fn all_three_drivers_agree_on_the_optimum() {
        for seed in [11u64, 42, 99] {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = gen::uniform_metric(7, 0.0, 50.0, &mut rng);
            let pm = m.maxmin_permutation().apply(&m);
            let p = MutProblem::<1>::new(&pm, ThreeThree::Off, true);
            let opts = SearchOptions::new(SearchMode::BestOne);
            let seq = solve_sequential(&p, &opts);
            let par = solve_parallel(&p, &opts, 4);
            let sim = solve_simulated(&p, &opts, &ClusterSpec::with_slaves(4));
            assert_eq!(seq.best_value, par.best_value, "seed {seed} (parallel)");
            assert_eq!(
                seq.best_value, sim.outcome.best_value,
                "seed {seed} (simulated)"
            );
            assert!(par.is_complete() && sim.outcome.is_complete());
        }
    }
}
