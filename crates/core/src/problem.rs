use mutree_bnb::bound::{
    self, triple_index, CLOSE_EARLIER, CLOSE_NONE, CLOSE_WITH_HIGH, CLOSE_WITH_LOW,
};
use mutree_bnb::kernel::prunable;
use mutree_bnb::propagate::floor_table;
use mutree_bnb::{
    sanitize_lb, BoundKernel, ChildBuf, Problem, PruneStrategy, SearchOptions, TripleDomains,
};
use mutree_distmat::{DistanceMatrix, SolverMatrix};
use mutree_tree::{cluster, triples, Linkage, UltrametricTree};

use mutree_engine::ThreeThree;

use crate::dist::{DistSource, LaneDist};
use crate::node::ArmIndex;
use crate::PartialTree;

/// The metric minimum ultrametric tree problem as a branch-and-bound
/// [`Problem`], following Wu–Chao–Tang's Algorithm BBU.
///
/// The matrix **must already be maxmin-relabeled** for the lower bound to
/// prune well (the bound stays admissible for any species order);
/// [`MutSolver`](crate::MutSolver) handles the relabeling.
///
/// * **Nodes** — [`PartialTree`]s over the first `k` species, with minimal
///   heights for their topology.
/// * **Branching** — insert species `k` at each of the `2k − 1` sites,
///   optionally filtered by the [`ThreeThree`] rule.
/// * **Lower bound** — `ω(partial) + ½ Σ_{t>k} min_{i<t} M[i,t]`: each
///   remaining species `t` eventually hangs from an ancestor of height at
///   least `½ min_{i<t} M[i,t]` (its parent separates it from some earlier
///   species), and those pendant edges are pairwise disjoint. The suffix
///   sums are precomputed.
/// * **Initial incumbent** — the UPGMM tree (complete-linkage
///   agglomeration) with its own linkage heights, whose distances
///   dominate the matrix — exactly the paper's Step 3 upper bound.
///
/// The bound arithmetic itself runs through a [`BoundKernel`]: `Scalar`
/// keeps the historical packed-triangle loops as the differential
/// baseline; `Lanes` (the default) reads a blocked, cache-line-aligned
/// [`SolverMatrix`] copy through the fixed-lane kernels in
/// [`mutree_bnb::bound`]. Both produce bit-identical lower bounds — the
/// only reordered operations are floating-point `min`/`max` reductions,
/// and the one summation (the pendant-edge suffix) uses the shared
/// [`bound::pendant_suffix`] accumulation order.
pub struct MutProblem<const K: usize = 1> {
    /// Owned so a problem can be `Arc`-shared across executor tasks whose
    /// lifetimes outlive the caller's stack frame (see `mutree_core::exec`).
    m: DistanceMatrix,
    /// Blocked row-major copy of `m` (padded rows, cache-line-aligned,
    /// stride shared with the `LeafWords` mask words) — built once per
    /// solve, read by the `Lanes` kernel on every insertion.
    sm: SolverMatrix,
    /// Which bound arithmetic the searches dispatch through.
    kernel: BoundKernel,
    /// `suffix[k]` = Σ_{t=k}^{n−1} min_{i<t} M[i,t] / 2; `suffix[n]` = 0.
    suffix: Vec<f64>,
    /// Memoized 3-3 close pairs, one byte per triple `i < j < s` at index
    /// `C(s,3) + C(j,2) + i` (see [`triple_index`]); empty when the rule
    /// is [`ThreeThree::Off`]. The matrix never changes after
    /// construction, so `close_pair_in_matrix` is pure — one `O(n³)`
    /// precompute here replaces a distance-comparison triple per checked
    /// topology per node expansion.
    close_pairs: Vec<u8>,
    three_three: ThreeThree,
    use_upgmm: bool,
    /// Which prune stages the expansion kernel runs for this problem.
    prune: PruneStrategy,
    /// Per-pair `[Earlier, WithLow, WithHigh]` arm masks for the
    /// propagation stage's future-leaf confinements, decoded from the
    /// packed 2-bit [`TripleDomains`] at construction — the form
    /// [`PartialTree::prop_advance`] folds with three intersection tests
    /// per root-path level instead of a per-triple decode. Empty unless
    /// the strategy propagates *and* the 3-3 rule is
    /// [`ThreeThree::Full`] — only then is the arm set part of the
    /// problem semantics, making a confinement wipeout a pure look-ahead
    /// of checks the filter applies anyway.
    arms: ArmIndex<K>,
    /// Per-depth height floors `H[k]` (see
    /// [`floor_table`]): a sound lower-bound tightening in every
    /// configuration, so it runs whenever the strategy propagates.
    /// Empty under [`PruneStrategy::WeightOnly`].
    floors: Vec<f64>,
    /// Permuted-index → original-index taxon map for checkpoint payloads;
    /// `None` means the identity (no maxmin relabeling was applied).
    /// Checkpoints always store original indexing so a resumed run is
    /// independent of the relabeling that produced the snapshot.
    taxon_map: Option<Vec<usize>>,
    /// A warm-start incumbent recovered from a checkpoint, already in
    /// *permuted* indexing. Competes with the UPGMM tree in
    /// [`initial_incumbent`](Problem::initial_incumbent); the better
    /// bound wins.
    resume: Option<(UltrametricTree, f64)>,
}

impl<const K: usize> MutProblem<K> {
    /// Wraps a (relabeled) matrix. `use_upgmm` controls whether the UPGMM
    /// heuristic seeds the upper bound (disable to ablate Step 3).
    ///
    /// # Panics
    ///
    /// Panics when the matrix exceeds the `64·K` taxa this width's leaf
    /// bitsets can hold ([`MutSolver`](crate::MutSolver) dispatches to a
    /// wide-enough width automatically).
    pub fn new(m: &DistanceMatrix, three_three: ThreeThree, use_upgmm: bool) -> Self {
        let kernel = mutree_engine::plan::env_forced_bound_kernel().unwrap_or_default();
        let prune = mutree_engine::plan::env_forced_prune().unwrap_or_default();
        Self::with_config(m, three_three, use_upgmm, kernel, prune)
    }

    /// Like [`new`](Self::new) but with an explicit [`BoundKernel`],
    /// bypassing the `MUTREE_FORCE_BOUND_KERNEL` environment hook —
    /// the entry point the differential tests use. The prune strategy
    /// stays at its default.
    pub fn with_kernel(
        m: &DistanceMatrix,
        three_three: ThreeThree,
        use_upgmm: bool,
        kernel: BoundKernel,
    ) -> Self {
        Self::with_config(m, three_three, use_upgmm, kernel, PruneStrategy::default())
    }

    /// The fully explicit constructor: bound kernel *and* prune strategy,
    /// bypassing every environment hook — what the solver's builder
    /// resolves to.
    pub fn with_config(
        m: &DistanceMatrix,
        three_three: ThreeThree,
        use_upgmm: bool,
        kernel: BoundKernel,
        prune: PruneStrategy,
    ) -> Self {
        let n = m.len();
        assert!(
            n <= PartialTree::<K>::MAX_TAXA,
            "MutProblem with {K} leaf words supports at most {} taxa, got {n}",
            PartialTree::<K>::MAX_TAXA
        );
        let sm = SolverMatrix::new(m);
        // minrow[t] = min_{i<t} M[i,t]; entries below t = 2 stay 0 and are
        // never read by the suffix recurrence.
        let mut minrow = vec![0.0; n];
        for (t, slot) in minrow.iter_mut().enumerate().skip(2) {
            *slot = match kernel {
                BoundKernel::Scalar => (0..t).map(|i| m.get(i, t)).fold(f64::INFINITY, f64::min),
                BoundKernel::Lanes => bound::min_prefix(sm.row(t), t),
            };
        }
        let suffix = bound::pendant_suffix(&minrow);
        let close_pairs = if matches!(three_three, ThreeThree::Off) {
            Vec::new()
        } else {
            let mut table = vec![CLOSE_NONE; bound::close_pair_table_len(n)];
            match kernel {
                BoundKernel::Scalar => {
                    for s in 2..n {
                        for j in 1..s {
                            for i in 0..j {
                                table[triple_index(i, j, s)] =
                                    match triples::close_pair_in_matrix(m, i, j, s) {
                                        None => CLOSE_NONE,
                                        Some(cp) if cp == (i, j) => CLOSE_EARLIER,
                                        Some(cp) if cp == (i, s) => CLOSE_WITH_LOW,
                                        Some(_) => CLOSE_WITH_HIGH,
                                    };
                            }
                        }
                    }
                }
                BoundKernel::Lanes => {
                    // triple_index is linear in i, so the codes for a fixed
                    // (j, s) land in one contiguous slice of the table.
                    for s in 2..n {
                        let row_s = sm.row(s);
                        for j in 1..s {
                            let base = triple_index(0, j, s);
                            bound::close_pair_row(
                                sm.row(j),
                                row_s,
                                row_s[j],
                                &mut table[base..base + j],
                            );
                        }
                    }
                }
            }
            table
        };
        // The confinement domains reuse the close-pair table verbatim —
        // they are the same arm codes, packed — but only under the Full
        // rule is pruning on them answer-preserving.
        let domains = if prune.propagates() && matches!(three_three, ThreeThree::Full) {
            TripleDomains::pack(&close_pairs)
        } else {
            TripleDomains::default()
        };
        let arms = ArmIndex::build(n, &domains);
        let floors = if prune.propagates() {
            match kernel {
                BoundKernel::Scalar => floor_table(n, |i, j, u| m.triple_med(i, j, u)),
                BoundKernel::Lanes => floor_table(n, |i, j, u| sm.triple_med(i, j, u)),
            }
        } else {
            Vec::new()
        };
        MutProblem {
            m: m.clone(),
            sm,
            kernel,
            suffix,
            close_pairs,
            three_three,
            use_upgmm,
            prune,
            arms,
            floors,
            taxon_map: None,
            resume: None,
        }
    }

    /// The matrix this problem searches over.
    pub fn matrix(&self) -> &DistanceMatrix {
        &self.m
    }

    /// The blocked solver-matrix copy the `Lanes` kernel reads.
    pub fn solver_matrix(&self) -> &SolverMatrix {
        &self.sm
    }

    /// Which bound arithmetic this problem dispatches through.
    pub fn bound_kernel(&self) -> BoundKernel {
        self.kernel
    }

    /// Which prune stages the expansion kernel runs for this problem.
    pub fn prune_strategy(&self) -> PruneStrategy {
        self.prune
    }

    /// The precomputed bound tables `(suffix, close_pairs)` — exposed for
    /// the differential suite to assert kernel-independence bit for bit.
    #[doc(hidden)]
    pub fn bound_tables(&self) -> (&[f64], &[u8]) {
        (&self.suffix, &self.close_pairs)
    }

    /// Sets the permuted→original taxon map applied when encoding
    /// checkpoint payloads (see [`Problem::encode_solution`]). Without it,
    /// payloads use the problem's own (permuted) indexing.
    pub fn set_taxon_map(&mut self, map: Vec<usize>) {
        self.taxon_map = Some(map);
    }

    /// Injects a checkpoint-recovered incumbent (in this problem's own,
    /// i.e. permuted, indexing). It competes with the UPGMM heuristic in
    /// [`Problem::initial_incumbent`]; whichever bound is lower seeds the
    /// search, so a resume can only tighten the warm start, never loosen
    /// it.
    pub fn set_resume_incumbent(&mut self, tree: UltrametricTree, weight: f64) {
        self.resume = Some((tree, weight));
    }

    fn bound_of(&self, t: &PartialTree<K>) -> f64 {
        t.weight() + self.suffix[t.leaves_inserted()]
    }

    /// Checks the 3-3 rule for the species inserted last: every triple
    /// `(i, j, s)` with a strict matrix close pair must be resolved the
    /// same way by the topology. `O(k²)` table lookups via the root-path
    /// orders of `s` — the close pairs themselves were memoized at
    /// construction, so no distance comparison runs per node expansion.
    fn three_three_ok(&self, t: &PartialTree<K>) -> bool {
        let s = t.leaves_inserted() - 1;
        let order = t.root_path_orders();
        for i in 0..s {
            for j in (i + 1)..s {
                let ok = match self.close_pairs[triple_index(i, j, s)] {
                    CLOSE_NONE => continue,
                    CLOSE_EARLIER => order[i] == order[j],
                    CLOSE_WITH_LOW => order[i] < order[j],
                    _ => order[j] < order[i],
                };
                if !ok {
                    return false;
                }
            }
        }
        true
    }

    /// The branching body, monomorphized over the distance source so the
    /// insertion hot path inlines the chosen kernel's masked maxima with
    /// no per-call dispatch.
    fn branch_with<S: DistSource>(
        &self,
        m: &S,
        node: &PartialTree<K>,
        out: &mut ChildBuf<PartialTree<K>>,
    ) {
        let filter = match self.three_three {
            ThreeThree::Off => false,
            ThreeThree::InitialOnly => node.leaves_inserted() == 2,
            ThreeThree::Full => true,
        };
        // With live confinement masks, the next leaf's fold is complete
        // (every triple it joins has both earlier leaves placed), so a
        // mask-rejected site's child is guaranteed to fail its own 3-3
        // check — skip it before paying for the arena copy.
        let confine = filter && node.prop_is_active() && !node.prop_wiped();
        for site in node.insertion_sites() {
            if confine && !node.prop_allows(site) {
                continue;
            }
            // Overwrite a retired sibling when one is available: after the
            // pool warms up, branching allocates nothing.
            let mut child = match out.recycle() {
                Some(mut scratch) => {
                    node.insert_next_into(m, site, &mut scratch);
                    scratch
                }
                None => node.insert_next(m, site),
            };
            if filter && !self.three_three_ok(&child) {
                out.retire(child);
                continue;
            }
            let lb = self.bound_of(&child);
            child.set_lower_bound(lb);
            if child.prop_is_active() {
                if self
                    .prune
                    .propagates_at(child.leaves_inserted(), self.m.len())
                {
                    child.prop_advance(&self.arms);
                } else {
                    // The hybrid deep tail: drop the masks; descendants
                    // skip domain maintenance entirely.
                    child.prop_release();
                }
            }
            out.push(child);
        }
    }
}

impl<const K: usize> Problem for MutProblem<K> {
    type Node = PartialTree<K>;
    type Solution = UltrametricTree;

    fn root(&self) -> PartialTree<K> {
        let mut t = match self.kernel {
            BoundKernel::Scalar => PartialTree::<K>::cherry(&self.m),
            BoundKernel::Lanes => PartialTree::<K>::cherry(&LaneDist::new(&self.sm)),
        };
        let lb = self.bound_of(&t);
        t.set_lower_bound(lb);
        if !self.arms.is_empty() && self.prune.propagates_at(2, self.m.len()) {
            t.prop_activate();
            t.prop_advance(&self.arms);
        }
        t
    }

    fn lower_bound(&self, node: &PartialTree<K>) -> f64 {
        node.lower_bound()
    }

    fn solution(&self, node: &PartialTree<K>) -> Option<(UltrametricTree, f64)> {
        node.is_complete()
            .then(|| (node.to_ultrametric(), node.weight()))
    }

    fn branch(&self, node: &PartialTree<K>, out: &mut ChildBuf<PartialTree<K>>) {
        match self.kernel {
            BoundKernel::Scalar => self.branch_with(&self.m, node, out),
            BoundKernel::Lanes => self.branch_with(&LaneDist::new(&self.sm), node, out),
        }
    }

    fn propagate(&self, node: &PartialTree<K>, ub: f64, opts: &SearchOptions) -> bool {
        // A confinement wipeout is ub-independent: every completion of
        // the node dies in a later 3-3 check, so pruning it now only
        // skips work, never a solution.
        if node.prop_wiped() {
            return true;
        }
        if self.floors.is_empty() {
            return false;
        }
        // The height-floor tightening: some ancestor of the partial root
        // must reach H[k], so any completion pays the raise on top of
        // the weight bound. `-∞` sentinels (k < 2, k = n) and a NaN from
        // a degenerate height both land in the no-prune arm.
        let lift = self.floors[node.leaves_inserted()] - node.root_height();
        if lift.is_nan() || lift <= 0.0 {
            return false;
        }
        prunable(sanitize_lb(node.lower_bound() + lift), ub, opts)
    }

    fn initial_incumbent(&self) -> Option<(UltrametricTree, f64)> {
        // Paper-faithful: the UPGMM tree with its complete-linkage heights
        // (Wu–Chao–Tang Step 3 uses the heuristic's own cost as UB; the
        // search quickly re-derives the minimal heights for good
        // topologies anyway).
        let upgmm = self.use_upgmm.then(|| {
            let t = cluster(&self.m, Linkage::Maximum);
            let w = t.weight();
            (t, w)
        });
        // A checkpoint-recovered incumbent competes with the heuristic:
        // the lower bound wins, so resuming never weakens the warm start.
        match (upgmm, self.resume.clone()) {
            (Some(u), Some(r)) => Some(if r.1 < u.1 { r } else { u }),
            (u, r) => u.or(r),
        }
    }

    fn encode_solution(&self, solution: &UltrametricTree) -> Option<Vec<u8>> {
        // Checkpoints store original taxon indexing: remap before
        // serializing when the matrix was maxmin-relabeled.
        match &self.taxon_map {
            Some(map) => {
                let mut t = solution.clone();
                t.map_taxa(|permuted| map[permuted]);
                Some(crate::codec::encode_tree(&t))
            }
            None => Some(crate::codec::encode_tree(solution)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutree_bnb::{solve_sequential, SearchMode, SearchOptions};

    fn m5() -> DistanceMatrix {
        DistanceMatrix::from_rows(&[
            vec![0.0, 9.0, 4.0, 6.0, 5.0],
            vec![9.0, 0.0, 7.0, 8.0, 6.0],
            vec![4.0, 7.0, 0.0, 3.0, 5.0],
            vec![6.0, 8.0, 3.0, 0.0, 5.0],
            vec![5.0, 6.0, 5.0, 5.0, 0.0],
        ])
        .unwrap()
    }

    /// Brute force: minimal weight over all 105 topologies.
    fn brute_force(m: &DistanceMatrix) -> f64 {
        let p = MutProblem::<1>::new(m, ThreeThree::Off, false);
        let mut best = f64::INFINITY;
        let mut stack = vec![p.root()];
        while let Some(t) = stack.pop() {
            if t.is_complete() {
                best = best.min(t.weight());
                continue;
            }
            for site in t.insertion_sites().collect::<Vec<_>>() {
                stack.push(t.insert_next(m, site));
            }
        }
        best
    }

    #[test]
    fn bbu_finds_the_brute_force_optimum() {
        let m = m5();
        let p = MutProblem::<1>::new(&m, ThreeThree::Off, true);
        let out = solve_sequential(&p, &SearchOptions::new(SearchMode::BestOne));
        assert!((out.best_value.unwrap() - brute_force(&m)).abs() < 1e-9);
        let tree = &out.solutions[0];
        assert!(tree.is_feasible_for(&m, 1e-9));
        assert!((tree.weight() - out.best_value.unwrap()).abs() < 1e-9);
    }

    #[test]
    fn lower_bound_is_admissible_along_paths() {
        let m = m5();
        let p = MutProblem::<1>::new(&m, ThreeThree::Off, false);
        // For every partial tree, LB must not exceed the weight of any
        // completion reachable from it.
        fn walk(p: &MutProblem, t: &PartialTree) -> f64 {
            if t.is_complete() {
                return t.weight();
            }
            let mut best = f64::INFINITY;
            let mut kids = ChildBuf::new();
            p.branch(t, &mut kids);
            for k in kids.as_slice() {
                let completion = walk(p, k);
                assert!(
                    k.lower_bound() <= completion + 1e-9,
                    "LB {} exceeds a completion of weight {}",
                    k.lower_bound(),
                    completion
                );
                best = best.min(completion);
            }
            best
        }
        let root = p.root();
        let best = walk(&p, &root);
        assert!(root.lower_bound() <= best + 1e-9);
    }

    #[test]
    fn upgmm_incumbent_upper_bounds_optimum() {
        let m = m5();
        let p = MutProblem::<1>::new(&m, ThreeThree::Off, true);
        let (tree, w) = p.initial_incumbent().unwrap();
        assert!(tree.is_feasible_for(&m, 1e-9));
        assert!(w >= brute_force(&m) - 1e-9);
    }

    #[test]
    fn three_three_preserves_the_optimum_here() {
        let m = m5();
        let base = solve_sequential(
            &MutProblem::<1>::new(&m, ThreeThree::Off, true),
            &SearchOptions::new(SearchMode::BestOne),
        );
        for mode in [ThreeThree::InitialOnly, ThreeThree::Full] {
            let constrained = solve_sequential(
                &MutProblem::<1>::new(&m, mode, true),
                &SearchOptions::new(SearchMode::BestOne),
            );
            assert_eq!(base.best_value, constrained.best_value, "{mode:?}");
        }
    }

    #[test]
    fn three_three_reduces_branching() {
        let m = m5();
        let p_off = MutProblem::<1>::new(&m, ThreeThree::Off, false);
        let p_full = MutProblem::<1>::new(&m, ThreeThree::Full, false);
        let node = p_off.root();
        let mut kids_off = ChildBuf::new();
        let mut kids_full = ChildBuf::new();
        // Expand two levels and compare the generated child counts.
        p_off.branch(&node, &mut kids_off);
        p_full.branch(&node, &mut kids_full);
        let count = |kids: &ChildBuf<PartialTree>, p: &MutProblem| -> usize {
            let mut total = kids.len();
            let mut grand = ChildBuf::new();
            for k in kids.as_slice() {
                grand.clear();
                p.branch(k, &mut grand);
                total += grand.len();
            }
            total
        };
        assert!(count(&kids_full, &p_full) < count(&kids_off, &p_off));
    }

    #[test]
    fn all_optimal_enumerates_distinct_cooptima() {
        // An ultrametric matrix with a tie: leaves 2 and 3 are symmetric,
        // so at least... actually symmetric taxa still give one topology.
        // Use a matrix with genuinely tied resolutions instead: equidistant
        // triple.
        let m = DistanceMatrix::from_rows(&[
            vec![0.0, 6.0, 6.0],
            vec![6.0, 0.0, 6.0],
            vec![6.0, 6.0, 0.0],
        ])
        .unwrap();
        let p = MutProblem::<1>::new(&m, ThreeThree::Off, false);
        let out = solve_sequential(&p, &SearchOptions::new(SearchMode::AllOptimal));
        // All three resolutions of the triple cost the same: both internal
        // nodes sit at height 3, so ω = 3 + 3 + 3 + 0.
        assert_eq!(out.solutions.len(), 3);
        assert!((out.best_value.unwrap() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn close_pair_table_matches_direct_computation() {
        // Include a matrix with ties so the CLOSE_NONE arm is exercised.
        let tied = DistanceMatrix::from_rows(&[
            vec![0.0, 6.0, 6.0, 2.0],
            vec![6.0, 0.0, 6.0, 7.0],
            vec![6.0, 6.0, 0.0, 4.0],
            vec![2.0, 7.0, 4.0, 0.0],
        ])
        .unwrap();
        for m in [m5(), tied] {
            let p = MutProblem::<1>::new(&m, ThreeThree::Full, false);
            for s in 2..m.len() {
                for j in 1..s {
                    for i in 0..j {
                        let expected = match triples::close_pair_in_matrix(&m, i, j, s) {
                            None => CLOSE_NONE,
                            Some(cp) if cp == (i, j) => CLOSE_EARLIER,
                            Some(cp) if cp == (i, s) => CLOSE_WITH_LOW,
                            Some(_) => CLOSE_WITH_HIGH,
                        };
                        assert_eq!(
                            p.close_pairs[triple_index(i, j, s)],
                            expected,
                            "triple ({i},{j},{s})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn suffix_bound_matches_definition() {
        let m = m5();
        let p = MutProblem::<1>::new(&m, ThreeThree::Off, false);
        // minrow[2] = min(4,7) = 4; minrow[3] = min(6,8,3) = 3;
        // minrow[4] = min(5,6,5,5) = 5. suffix[2] = (4+3+5)/2 = 6.
        assert!((p.suffix[2] - 6.0).abs() < 1e-12);
        assert!((p.suffix[4] - 2.5).abs() < 1e-12);
        assert_eq!(p.suffix[5], 0.0);
        // Root LB = 9 + 6.
        assert!((p.root().lower_bound() - 15.0).abs() < 1e-12);
    }
}
