//! Property suite for the const-generic [`LeafWords`] bitset: set-algebra
//! identities, popcount consistency, and iteration order. The companion
//! invariant — disjointness of sibling masks after `insert_next_into` —
//! lives next to the arena code in `node.rs`, where the private leafset
//! arrays are visible.

use mutree_core::LeafWords;
use proptest::prelude::*;

/// Builds a `LeafWords<2>` plus a mirror `Vec<usize>` of its sorted
/// members from an arbitrary 128-bit pattern (two raw words).
fn set2(lo: u64, hi: u64) -> (LeafWords<2>, Vec<usize>) {
    let mut s = LeafWords::<2>::EMPTY;
    let mut members = Vec::new();
    for (w, word) in [lo, hi].into_iter().enumerate() {
        for b in 0..64 {
            if word & (1 << b) != 0 {
                s.insert(64 * w + b);
                members.push(64 * w + b);
            }
        }
    }
    (s, members)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn union_intersection_identities(a_lo in any::<u64>(), a_hi in any::<u64>(),
                                     b_lo in any::<u64>(), b_hi in any::<u64>()) {
        let (a, _) = set2(a_lo, a_hi);
        let (b, _) = set2(b_lo, b_hi);
        // Commutativity, idempotence, absorption, identity elements.
        prop_assert_eq!(a.union(b), b.union(a));
        prop_assert_eq!(a.intersection(b), b.intersection(a));
        prop_assert_eq!(a.union(a), a);
        prop_assert_eq!(a.intersection(a), a);
        prop_assert_eq!(a.union(a.intersection(b)), a);
        prop_assert_eq!(a.intersection(a.union(b)), a);
        prop_assert_eq!(a.union(LeafWords::EMPTY), a);
        prop_assert_eq!(a.intersection(LeafWords::EMPTY), LeafWords::EMPTY);
        // Operator sugar matches the named methods.
        prop_assert_eq!(a | b, a.union(b));
        prop_assert_eq!(a & b, a.intersection(b));
        // Disjointness is empty intersection, intersects its negation.
        prop_assert_eq!(a.is_disjoint(&b), a.intersection(b).is_empty());
        prop_assert_eq!(a.intersects(&b), !a.is_disjoint(&b));
    }

    #[test]
    fn popcount_is_consistent(a_lo in any::<u64>(), a_hi in any::<u64>(),
                              b_lo in any::<u64>(), b_hi in any::<u64>()) {
        let (a, am) = set2(a_lo, a_hi);
        let (b, _) = set2(b_lo, b_hi);
        prop_assert_eq!(a.count() as usize, am.len());
        prop_assert_eq!(a.count(), a_lo.count_ones() + a_hi.count_ones());
        // Inclusion–exclusion.
        prop_assert_eq!(
            a.union(b).count() + a.intersection(b).count(),
            a.count() + b.count()
        );
        prop_assert_eq!(a.is_empty(), a.count() == 0);
    }

    #[test]
    fn iteration_is_sorted_membership(lo in any::<u64>(), hi in any::<u64>()) {
        let (s, members) = set2(lo, hi);
        // Iteration yields exactly the member list, already sorted.
        let via_iter: Vec<usize> = s.iter().collect();
        prop_assert_eq!(&via_iter, &members);
        let mut sorted = members.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&via_iter, &sorted);
        // `contains` agrees with iteration on every index.
        for i in 0..128 {
            prop_assert_eq!(s.contains(i), members.binary_search(&i).is_ok());
        }
        // IntoIterator sugar matches `iter`.
        prop_assert_eq!(s.into_iter().collect::<Vec<_>>(), via_iter);
    }

    #[test]
    fn insert_without_roundtrip(lo in any::<u64>(), hi in any::<u64>(), i in 0usize..128) {
        let (s, _) = set2(lo, hi);
        let mut with = s;
        with.insert(i);
        prop_assert!(with.contains(i));
        prop_assert_eq!(with.without(i).contains(i), false);
        prop_assert_eq!(with.without(i), s.without(i));
        prop_assert_eq!(with.count(), s.count() + u32::from(!s.contains(i)));
        // Singleton is insert-into-empty.
        prop_assert_eq!(LeafWords::<2>::singleton(i), LeafWords::EMPTY.union(LeafWords::singleton(i)));
    }
}
