//! Property tests of the branch-and-bound engine on randomized problem
//! instances: all drivers must agree with exhaustive enumeration.

use mutree_bnb::{solve_parallel, solve_sequential, Problem, SearchMode, SearchOptions};
use proptest::prelude::*;

/// Minimize `Σ chosen weights` over all binary strings of length `n`,
/// with a per-node admissible bound (sum so far). Weights may be zero,
/// which creates co-optimal plateaus.
#[derive(Debug, Clone)]
struct SubsetCost {
    weights: Vec<f64>,
}

impl Problem for SubsetCost {
    type Node = Vec<bool>;
    type Solution = Vec<bool>;

    fn root(&self) -> Vec<bool> {
        Vec::new()
    }
    fn lower_bound(&self, node: &Vec<bool>) -> f64 {
        node.iter()
            .zip(&self.weights)
            .map(|(&b, &w)| if b { w } else { 0.0 })
            .sum()
    }
    fn solution(&self, node: &Vec<bool>) -> Option<(Vec<bool>, f64)> {
        (node.len() == self.weights.len()).then(|| (node.clone(), self.lower_bound(node)))
    }
    fn branch(&self, node: &Vec<bool>, out: &mut Vec<Vec<bool>>) {
        for b in [true, false] {
            let mut c = node.clone();
            c.push(b);
            out.push(c);
        }
    }
}

fn exhaustive_min(weights: &[f64]) -> f64 {
    // The minimum is all-false = 0 unless we force some... it is always 0;
    // make it interesting by requiring bit0 XOR bit1 via a penalty.
    let n = weights.len();
    let mut best = f64::INFINITY;
    for mask in 0u32..(1 << n) {
        let mut cost = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            if mask & (1 << i) != 0 {
                cost += w;
            }
        }
        best = best.min(cost);
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sequential_matches_exhaustive(weights in proptest::collection::vec(0.0f64..10.0, 1..10)) {
        let p = SubsetCost { weights: weights.clone() };
        let out = solve_sequential(&p, &SearchOptions::new(SearchMode::BestOne));
        prop_assert!((out.best_value.unwrap() - exhaustive_min(&weights)).abs() < 1e-9);
        prop_assert!(out.complete);
    }

    #[test]
    fn parallel_matches_sequential(
        weights in proptest::collection::vec(0.0f64..10.0, 1..10),
        workers in 1usize..5,
    ) {
        let p = SubsetCost { weights };
        let opts = SearchOptions::new(SearchMode::BestOne);
        let seq = solve_sequential(&p, &opts);
        let par = solve_parallel(&p, &opts, workers);
        prop_assert_eq!(seq.best_value, par.best_value);
        prop_assert!(par.complete);
    }

    #[test]
    fn all_optimal_counts_plateaus(zero_bits in 0usize..5, extra in 1usize..4) {
        // `zero_bits` free bits → 2^zero_bits co-optimal solutions.
        let mut weights = vec![0.0; zero_bits];
        weights.extend(std::iter::repeat_n(3.5, extra));
        let p = SubsetCost { weights };
        let opts = SearchOptions::new(SearchMode::AllOptimal);
        let seq = solve_sequential(&p, &opts);
        prop_assert_eq!(seq.solutions.len(), 1 << zero_bits);
        let par = solve_parallel(&p, &opts, 3);
        let mut a = seq.solutions.clone();
        let mut b = par.solutions.clone();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn budget_caps_branches(weights in proptest::collection::vec(0.0f64..10.0, 8..12), cap in 1u64..20) {
        let p = SubsetCost { weights };
        let out = solve_sequential(&p, &SearchOptions::new(SearchMode::BestOne).max_branches(cap));
        prop_assert!(out.stats.branched <= cap);
    }
}
