//! Property tests of the branch-and-bound engine on randomized problem
//! instances: all drivers must agree with exhaustive enumeration, and the
//! sequential driver must reproduce a recorded expansion-order oracle.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use mutree_bnb::{
    kernel::prunable, sanitize_lb, solve_parallel, solve_sequential, CancelToken, ChildBuf,
    Problem, SearchMode, SearchOptions, StopReason, Strategy,
};
use proptest::prelude::*;

/// Minimize `Σ chosen weights` over all binary strings of length `n`,
/// with a per-node admissible bound (sum so far). Weights may be zero,
/// which creates co-optimal plateaus.
#[derive(Debug, Clone)]
struct SubsetCost {
    weights: Vec<f64>,
}

impl Problem for SubsetCost {
    type Node = Vec<bool>;
    type Solution = Vec<bool>;

    fn root(&self) -> Vec<bool> {
        Vec::new()
    }
    fn lower_bound(&self, node: &Vec<bool>) -> f64 {
        node.iter()
            .zip(&self.weights)
            .map(|(&b, &w)| if b { w } else { 0.0 })
            .sum()
    }
    fn solution(&self, node: &Vec<bool>) -> Option<(Vec<bool>, f64)> {
        (node.len() == self.weights.len()).then(|| (node.clone(), self.lower_bound(node)))
    }
    fn branch(&self, node: &Vec<bool>, out: &mut ChildBuf<Vec<bool>>) {
        for b in [true, false] {
            let mut c = node.clone();
            c.push(b);
            out.push(c);
        }
    }
}

/// `SubsetCost` with an expansion log: `branch` records the node it was
/// called on, fingerprinting the exact node-visit order.
struct Logged {
    weights: Vec<f64>,
    log: Mutex<Vec<String>>,
}

impl Problem for Logged {
    type Node = Vec<bool>;
    type Solution = Vec<bool>;

    fn root(&self) -> Vec<bool> {
        Vec::new()
    }
    fn lower_bound(&self, node: &Vec<bool>) -> f64 {
        node.iter()
            .zip(&self.weights)
            .map(|(&b, &w)| if b { w } else { 0.0 })
            .sum()
    }
    fn solution(&self, node: &Vec<bool>) -> Option<(Vec<bool>, f64)> {
        (node.len() == self.weights.len()).then(|| (node.clone(), self.lower_bound(node)))
    }
    fn branch(&self, node: &Vec<bool>, out: &mut ChildBuf<Vec<bool>>) {
        let s: String = node.iter().map(|&b| if b { '1' } else { '0' }).collect();
        self.log.lock().unwrap().push(s);
        for b in [true, false] {
            let mut c = node.clone();
            c.push(b);
            out.push(c);
        }
    }
}

/// SplitMix-ish deterministic weights in `[0, 8)`.
fn oracle_weights(seed: u64, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let mut z = seed.wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            ((z >> 40) % 64) as f64 / 8.0
        })
        .collect()
}

/// The sequential driver's exact behavior, recorded before the expansion
/// loop moved into the shared kernel: per-(seed, mode, strategy) counters
/// plus an FNV-1a hash of the comma-joined expansion order. Any change to
/// pop order, child staging order, pruning policy, or stats accounting
/// shows up here as a diff against a known-good trace.
#[test]
fn sequential_driver_matches_recorded_oracle() {
    // (seed, mode, strategy, branched, pruned, seen, updates, peak, hash)
    #[rustfmt::skip]
    #[allow(clippy::type_complexity)]
    let oracle: &[(u64, SearchMode, Strategy, u64, u64, u64, u64, u64, u64)] = &[
        (1, SearchMode::BestOne,    Strategy::DepthFirst, 89, 68, 22, 22, 10, 0xbcd4_7df4_5d10_975a),
        (1, SearchMode::BestOne,    Strategy::BestFirst,   9,  9,  1,  1, 10, 0xc581_ae17_b3d0_0855),
        (1, SearchMode::AllOptimal, Strategy::DepthFirst, 89, 68, 22, 22, 10, 0xbcd4_7df4_5d10_975a),
        (2, SearchMode::BestOne,    Strategy::DepthFirst, 89, 67, 23, 23, 10, 0xb676_1cd7_989b_0d6c),
        (2, SearchMode::BestOne,    Strategy::BestFirst,   9,  9,  1,  1, 10, 0xc581_ae17_b3d0_0855),
        (2, SearchMode::AllOptimal, Strategy::DepthFirst, 89, 67, 23, 23, 10, 0xb676_1cd7_989b_0d6c),
        (3, SearchMode::BestOne,    Strategy::DepthFirst, 84, 43, 42, 42, 10, 0x86ee_7384_84e4_7cb7),
        (3, SearchMode::BestOne,    Strategy::BestFirst,   9,  9,  1,  1, 10, 0xc581_ae17_b3d0_0855),
        (3, SearchMode::AllOptimal, Strategy::DepthFirst, 89, 41, 49, 42, 10, 0x28b4_756d_cace_1f62),
    ];
    for &(seed, mode, strat, branched, pruned, seen, updates, peak, hash) in oracle {
        let p = Logged {
            weights: oracle_weights(seed, 9),
            log: Mutex::new(Vec::new()),
        };
        let out = solve_sequential(&p, &SearchOptions::new(mode).strategy(strat));
        let ctx = format!("seed={seed} mode={mode:?} strat={strat:?}");
        assert_eq!(out.stats.branched, branched, "{ctx}");
        assert_eq!(out.stats.pruned, pruned, "{ctx}");
        assert_eq!(out.stats.solutions_seen, seen, "{ctx}");
        assert_eq!(out.stats.incumbent_updates, updates, "{ctx}");
        assert_eq!(out.stats.peak_pool, peak, "{ctx}");
        assert_eq!(out.best_value, Some(0.0), "{ctx}");
        let joined = p.log.lock().unwrap().join(",");
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in joined.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        assert_eq!(h, hash, "{ctx}: expansion order diverged from oracle");
    }
}

/// A problem whose lower bound is always NaN: under the NaN→−∞ sanitize
/// policy *nothing* may ever be pruned, in any driver.
struct NanBound(SubsetCost);

impl Problem for NanBound {
    type Node = Vec<bool>;
    type Solution = Vec<bool>;

    fn root(&self) -> Vec<bool> {
        self.0.root()
    }
    fn lower_bound(&self, _: &Vec<bool>) -> f64 {
        f64::NAN
    }
    fn solution(&self, n: &Vec<bool>) -> Option<(Vec<bool>, f64)> {
        self.0.solution(n)
    }
    fn branch(&self, n: &Vec<bool>, out: &mut ChildBuf<Vec<bool>>) {
        self.0.branch(n, out)
    }
}

#[test]
fn nan_lower_bounds_never_prune_in_any_driver() {
    let weights = vec![1.0, 2.0, 3.0, 1.5, 0.5, 2.5];
    let optimum = exhaustive_min(&weights);
    for strat in [Strategy::DepthFirst, Strategy::BestFirst] {
        let p = NanBound(SubsetCost {
            weights: weights.clone(),
        });
        let out = solve_sequential(&p, &SearchOptions::new(SearchMode::BestOne).strategy(strat));
        assert_eq!(out.best_value, Some(optimum), "{strat:?}");
        assert!(out.is_complete(), "{strat:?}");
        assert_eq!(out.stats.pruned, 0, "{strat:?}: NaN bound pruned a node");
        // With no pruning the search is exhaustive: every internal node of
        // the full binary tree branches.
        assert_eq!(out.stats.branched, (1 << weights.len()) - 1, "{strat:?}");
    }
    let p = NanBound(SubsetCost { weights });
    let par = solve_parallel(&p, &SearchOptions::new(SearchMode::BestOne), 4);
    assert_eq!(par.best_value, Some(optimum), "parallel");
    assert!(par.is_complete(), "parallel");
    assert_eq!(par.stats.pruned, 0, "parallel: NaN bound pruned a node");
}

/// `NanBound` plus a propagation hook following the engine recipe —
/// lift the node bound, sanitize, compare via [`prunable`]. With both
/// the bound and the lift NaN, the NaN→−∞ policy must flow through the
/// *second* prune stage exactly as it does through the first: a
/// NaN-lifted bound sanitizes to −∞ and can never reach the incumbent,
/// so nothing is pruned and the search stays exhaustive in every driver.
struct NanLiftPropagate(SubsetCost);

impl Problem for NanLiftPropagate {
    type Node = Vec<bool>;
    type Solution = Vec<bool>;

    fn root(&self) -> Vec<bool> {
        self.0.root()
    }
    fn lower_bound(&self, _: &Vec<bool>) -> f64 {
        f64::NAN
    }
    fn solution(&self, n: &Vec<bool>) -> Option<(Vec<bool>, f64)> {
        self.0.solution(n)
    }
    fn branch(&self, n: &Vec<bool>, out: &mut ChildBuf<Vec<bool>>) {
        self.0.branch(n, out)
    }
    fn propagate(&self, n: &Vec<bool>, ub: f64, opts: &SearchOptions) -> bool {
        prunable(sanitize_lb(self.lower_bound(n) + f64::NAN), ub, opts)
    }
}

#[test]
fn nan_propagation_lifts_never_prune_in_any_driver() {
    let weights = vec![1.0, 2.0, 3.0, 1.5, 0.5, 2.5];
    let optimum = exhaustive_min(&weights);
    for strat in [Strategy::DepthFirst, Strategy::BestFirst] {
        let p = NanLiftPropagate(SubsetCost {
            weights: weights.clone(),
        });
        let out = solve_sequential(&p, &SearchOptions::new(SearchMode::BestOne).strategy(strat));
        assert_eq!(out.best_value, Some(optimum), "{strat:?}");
        assert!(out.is_complete(), "{strat:?}");
        assert_eq!(
            out.stats.propagation_pruned, 0,
            "{strat:?}: NaN lift pruned a node"
        );
        assert_eq!(out.stats.branched, (1 << weights.len()) - 1, "{strat:?}");
    }
    let p = NanLiftPropagate(SubsetCost { weights });
    let par = solve_parallel(&p, &SearchOptions::new(SearchMode::BestOne), 4);
    assert_eq!(par.best_value, Some(optimum), "parallel");
    assert_eq!(
        par.stats.propagation_pruned, 0,
        "parallel: NaN lift pruned a node"
    );
}

/// Choose exactly `m` of the weights, minimizing their sum. The node
/// bound is the chosen-so-far sum; the propagation hook adds the sound
/// look-ahead the bound omits — the cheapest completion of the remaining
/// quota — so it prunes nodes the weight stage keeps. With `lift` off
/// the hook is inert, giving a same-problem baseline.
struct PickM {
    weights: Vec<f64>,
    m: usize,
    lift: bool,
}

impl Problem for PickM {
    type Node = Vec<bool>;
    type Solution = Vec<bool>;

    fn root(&self) -> Vec<bool> {
        Vec::new()
    }
    fn lower_bound(&self, n: &Vec<bool>) -> f64 {
        n.iter()
            .zip(&self.weights)
            .map(|(&b, &w)| if b { w } else { 0.0 })
            .sum()
    }
    fn solution(&self, n: &Vec<bool>) -> Option<(Vec<bool>, f64)> {
        (n.len() == self.weights.len() && n.iter().filter(|&&b| b).count() == self.m)
            .then(|| (n.clone(), self.lower_bound(n)))
    }
    fn branch(&self, n: &Vec<bool>, out: &mut ChildBuf<Vec<bool>>) {
        if n.len() == self.weights.len() {
            return;
        }
        for b in [true, false] {
            let mut c = n.clone();
            c.push(b);
            out.push(c);
        }
    }
    fn propagate(&self, n: &Vec<bool>, ub: f64, opts: &SearchOptions) -> bool {
        if !self.lift {
            return false;
        }
        let chosen = n.iter().filter(|&&b| b).count();
        let Some(need) = self.m.checked_sub(chosen) else {
            return false;
        };
        let mut rest: Vec<f64> = self.weights[n.len()..].to_vec();
        if rest.len() < need {
            return false;
        }
        rest.sort_by(f64::total_cmp);
        let lift: f64 = rest[..need].iter().sum();
        prunable(sanitize_lb(self.lower_bound(n) + lift), ub, opts)
    }
}

#[test]
fn propagation_prunes_are_counted_and_sound() {
    // Cheap pair up front, expensive tail: depth-first exploration finds
    // an expensive incumbent first, so the lifted bound has prefixes to
    // cut (cheap-so-far, forced into the expensive tail) that the plain
    // weight bound keeps.
    let weights = vec![1.0, 2.0, 10.0, 10.0, 10.0];
    let mk = |lift| PickM {
        weights: weights.clone(),
        m: 2,
        lift,
    };
    let with = solve_sequential(&mk(true), &SearchOptions::new(SearchMode::BestOne));
    let without = solve_sequential(&mk(false), &SearchOptions::new(SearchMode::BestOne));
    assert_eq!(with.best_value, Some(3.0));
    assert_eq!(without.best_value, Some(3.0));
    assert!(with.is_complete() && without.is_complete());
    assert!(
        with.stats.propagation_pruned > 0,
        "the hook must have fired: {:?}",
        with.stats
    );
    assert!(
        with.stats.propagation_pruned <= with.stats.pruned,
        "propagation prunes are a subset of all prunes: {:?}",
        with.stats
    );
    assert_eq!(without.stats.propagation_pruned, 0);
    assert!(
        with.stats.branched < without.stats.branched,
        "propagation must shrink the search: {} vs {}",
        with.stats.branched,
        without.stats.branched
    );
}

fn exhaustive_min(weights: &[f64]) -> f64 {
    // The minimum is all-false = 0 unless we force some... it is always 0;
    // make it interesting by requiring bit0 XOR bit1 via a penalty.
    let n = weights.len();
    let mut best = f64::INFINITY;
    for mask in 0u32..(1 << n) {
        let mut cost = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            if mask & (1 << i) != 0 {
                cost += w;
            }
        }
        best = best.min(cost);
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sequential_matches_exhaustive(weights in proptest::collection::vec(0.0f64..10.0, 1..10)) {
        let p = SubsetCost { weights: weights.clone() };
        let out = solve_sequential(&p, &SearchOptions::new(SearchMode::BestOne));
        prop_assert!((out.best_value.unwrap() - exhaustive_min(&weights)).abs() < 1e-9);
        prop_assert!(out.is_complete());
    }

    #[test]
    fn parallel_matches_sequential(
        weights in proptest::collection::vec(0.0f64..10.0, 1..10),
        workers in 1usize..5,
    ) {
        let p = SubsetCost { weights };
        let opts = SearchOptions::new(SearchMode::BestOne);
        let seq = solve_sequential(&p, &opts);
        let par = solve_parallel(&p, &opts, workers);
        prop_assert_eq!(seq.best_value, par.best_value);
        prop_assert!(par.is_complete());
    }

    #[test]
    fn all_optimal_counts_plateaus(zero_bits in 0usize..5, extra in 1usize..4) {
        // `zero_bits` free bits → 2^zero_bits co-optimal solutions.
        let mut weights = vec![0.0; zero_bits];
        weights.extend(std::iter::repeat_n(3.5, extra));
        let p = SubsetCost { weights };
        let opts = SearchOptions::new(SearchMode::AllOptimal);
        let seq = solve_sequential(&p, &opts);
        prop_assert_eq!(seq.solutions.len(), 1 << zero_bits);
        let par = solve_parallel(&p, &opts, 3);
        let mut a = seq.solutions.clone();
        let mut b = par.solutions.clone();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn budget_caps_branches(weights in proptest::collection::vec(0.0f64..10.0, 8..12), cap in 1u64..20) {
        let p = SubsetCost { weights };
        let out = solve_sequential(&p, &SearchOptions::new(SearchMode::BestOne).max_branches(cap));
        prop_assert!(out.stats.branched <= cap);
        prop_assert!(!out.is_complete());
        prop_assert_eq!(out.stop, StopReason::BudgetExhausted);
    }

    // --- Anytime properties: cancellation and deadlines. -----------------

    #[test]
    fn cancel_mid_search_never_hangs_and_reports_accurately(
        weights in proptest::collection::vec(0.0f64..10.0, 10..14),
        workers in 1usize..5,
        delay_us in 0u64..500,
    ) {
        // Cancel from another thread at a random point during the search;
        // the solve must return (the test harness itself is the hang
        // detector), the incumbent must be a real solution value, and the
        // stop reason must be either Cancelled or — when the search beat
        // the cancel to the finish line — Completed. Nothing else.
        let p = SubsetCost { weights };
        let token = CancelToken::new();
        let canceller = token.clone();
        let opts = SearchOptions::new(SearchMode::BestOne).cancel_token(token);
        let out = std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(Duration::from_micros(delay_us));
                canceller.cancel();
            });
            solve_parallel(&p, &opts, workers)
        });
        prop_assert!(matches!(out.stop, StopReason::Cancelled | StopReason::Completed));
        if let Some(v) = out.best_value {
            // Any reported incumbent must be feasible: a finite sum of
            // non-negative weights.
            prop_assert!(v.is_finite() && v >= 0.0);
            prop_assert!(!out.solutions.is_empty());
        }
    }

    #[test]
    fn expired_deadline_returns_initial_incumbent(
        weights in proptest::collection::vec(0.0f64..10.0, 8..12),
        workers in 1usize..4,
    ) {
        /// The wrapped problem, plus a deliberately bad (but feasible)
        /// initial incumbent: all bits set.
        struct Hinted(SubsetCost);
        impl Problem for Hinted {
            type Node = Vec<bool>;
            type Solution = Vec<bool>;
            fn root(&self) -> Vec<bool> { self.0.root() }
            fn lower_bound(&self, n: &Vec<bool>) -> f64 { self.0.lower_bound(n) }
            fn solution(&self, n: &Vec<bool>) -> Option<(Vec<bool>, f64)> { self.0.solution(n) }
            fn branch(&self, n: &Vec<bool>, out: &mut ChildBuf<Vec<bool>>) { self.0.branch(n, out) }
            fn initial_incumbent(&self) -> Option<(Vec<bool>, f64)> {
                let all = vec![true; self.0.weights.len()];
                let v = self.0.weights.iter().sum();
                Some((all, v))
            }
        }
        let total: f64 = weights.iter().sum();
        let p = Hinted(SubsetCost { weights });
        // Deadline already in the past: with zero time budget the search
        // must hand back exactly the initial incumbent, untouched.
        let opts = SearchOptions::new(SearchMode::BestOne)
            .deadline(Instant::now() - Duration::from_millis(1));
        let seq = solve_sequential(&p, &opts);
        prop_assert_eq!(seq.stop, StopReason::DeadlineExpired);
        prop_assert_eq!(seq.best_value, Some(total));
        prop_assert_eq!(seq.stats.branched, 0);
        let par = solve_parallel(&p, &opts, workers);
        prop_assert_eq!(par.stop, StopReason::DeadlineExpired);
        prop_assert_eq!(par.best_value, Some(total));
    }
}
