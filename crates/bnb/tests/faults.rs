//! Fault-injection integration tests: the search drivers must survive
//! panicking, lying, and slow [`Problem`] implementations without
//! hanging, losing incumbents, or reporting a wrong stop reason.

use std::time::{Duration, Instant};

use mutree_bnb::fault::{FaultSpec, FaultyProblem};
use mutree_bnb::{
    solve_parallel, solve_sequential, ChildBuf, MemoryBudget, Problem, SearchMode, SearchOptions,
    StopReason,
};

/// Minimize the weighted ones-count over binary strings; the all-false
/// string (value 0) is always optimal, and an initial incumbent (all-true)
/// guarantees a feasible answer exists before the search starts.
struct WeightedBits {
    weights: Vec<f64>,
}

impl WeightedBits {
    fn new(n: usize) -> Self {
        WeightedBits {
            weights: (0..n).map(|i| 1.0 + (i % 3) as f64).collect(),
        }
    }
}

impl Problem for WeightedBits {
    type Node = Vec<bool>;
    type Solution = Vec<bool>;

    fn root(&self) -> Vec<bool> {
        Vec::new()
    }
    fn lower_bound(&self, node: &Vec<bool>) -> f64 {
        node.iter()
            .zip(&self.weights)
            .map(|(&b, &w)| if b { w } else { 0.0 })
            .sum()
    }
    fn solution(&self, node: &Vec<bool>) -> Option<(Vec<bool>, f64)> {
        (node.len() == self.weights.len()).then(|| (node.clone(), self.lower_bound(node)))
    }
    fn branch(&self, node: &Vec<bool>, out: &mut ChildBuf<Vec<bool>>) {
        for b in [true, false] {
            let mut c = node.clone();
            c.push(b);
            out.push(c);
        }
    }
    fn initial_incumbent(&self) -> Option<(Vec<bool>, f64)> {
        Some((vec![true; self.weights.len()], self.weights.iter().sum()))
    }
}

/// A panicking worker must not deadlock the pool, the outcome must say
/// `WorkerPanicked`, and the initial incumbent (at minimum) must survive.
#[test]
fn worker_panic_reports_and_keeps_incumbent() {
    let total: f64 = WeightedBits::new(14).weights.iter().sum();
    let mut saw_panic = false;
    for seed in 0..20u64 {
        let p = FaultyProblem::new(WeightedBits::new(14), FaultSpec::new(seed).panic_rate(0.05));
        let start = Instant::now();
        let out = solve_parallel(&p, &SearchOptions::new(SearchMode::BestOne), 4);
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "seed {seed}: search took pathologically long"
        );
        let v = out
            .best_value
            .expect("the initial incumbent can never be lost");
        assert!(v <= total + 1e-9, "seed {seed}: incumbent worse than hint");
        assert!(!out.solutions.is_empty(), "seed {seed}: no solution kept");
        match out.stop {
            StopReason::WorkerPanicked => {
                saw_panic = true;
                // Early stop: value is an upper bound, not a certificate.
            }
            StopReason::Completed => assert_eq!(v, 0.0, "seed {seed}"),
            other => panic!("seed {seed}: unexpected stop reason {other:?}"),
        }
    }
    assert!(saw_panic, "5% panic rate never fired across 20 seeds");
}

/// Panic rate 1: the very first branch (in master seeding) panics; the
/// caller still gets a clean outcome carrying the initial incumbent.
#[test]
fn certain_panic_in_seeding_degrades_cleanly() {
    let p = FaultyProblem::new(WeightedBits::new(10), FaultSpec::new(3).panic_rate(1.0));
    let out = solve_parallel(&p, &SearchOptions::new(SearchMode::BestOne), 4);
    assert_eq!(out.stop, StopReason::WorkerPanicked);
    let total: f64 = WeightedBits::new(10).weights.iter().sum();
    assert_eq!(out.best_value, Some(total));
}

/// NaN and +∞ lower bounds are injected at a high rate; the search must
/// still terminate and never prune the optimum away on garbage bounds
/// (NaN is normalized to -∞ = "no information"). ∞ bounds *can* wrongly
/// prune (the problem is lying), so only feasibility is asserted there.
#[test]
fn nan_bounds_never_lose_the_optimum() {
    for seed in 0..10u64 {
        let p = FaultyProblem::new(
            WeightedBits::new(10),
            FaultSpec::new(seed).nan_bound_rate(0.3),
        );
        let seq = solve_sequential(&p, &SearchOptions::new(SearchMode::BestOne));
        assert_eq!(seq.best_value, Some(0.0), "seed {seed} (sequential)");
        assert!(seq.is_complete());
        let par = solve_parallel(&p, &SearchOptions::new(SearchMode::BestOne), 4);
        assert_eq!(par.best_value, Some(0.0), "seed {seed} (parallel)");
        assert!(par.is_complete());
    }
}

#[test]
fn inf_bounds_still_terminate_with_feasible_output() {
    let total: f64 = WeightedBits::new(10).weights.iter().sum();
    for seed in 0..10u64 {
        let p = FaultyProblem::new(
            WeightedBits::new(10),
            FaultSpec::new(seed).inf_bound_rate(0.3),
        );
        let out = solve_parallel(&p, &SearchOptions::new(SearchMode::BestOne), 4);
        let v = out.best_value.expect("initial incumbent survives");
        assert!(
            (0.0..=total + 1e-9).contains(&v),
            "seed {seed}: infeasible value {v}"
        );
    }
}

/// Slow branches + a short deadline: the search must respect the deadline
/// within a small overshoot, not run to exhaustion.
#[test]
fn deadline_interrupts_slow_branches() {
    let p = FaultyProblem::new(
        WeightedBits::new(22),
        FaultSpec::new(9).slow_branches(0.5, Duration::from_millis(2)),
    );
    let start = Instant::now();
    let opts = SearchOptions::new(SearchMode::BestOne).timeout(Duration::from_millis(50));
    let out = solve_parallel(&p, &opts, 4);
    let elapsed = start.elapsed();
    assert!(
        matches!(
            out.stop,
            StopReason::DeadlineExpired | StopReason::Completed
        ),
        "unexpected stop reason {:?}",
        out.stop
    );
    // Generous overshoot allowance: one slow branch per worker past the
    // deadline check plus scheduling noise.
    assert!(
        elapsed < Duration::from_secs(10),
        "deadline ignored: ran {elapsed:?}"
    );
    assert!(out.best_value.is_some());
}

/// A worker killed mid-search (every branch call from #k on panics) must
/// not hang the pool: the survivors drain or the pool unwinds, the stop
/// reason says `WorkerPanicked`, and the incumbent survives.
#[test]
fn killed_worker_does_not_hang_the_pool() {
    let total: f64 = WeightedBits::new(14).weights.iter().sum();
    for kill_at in [0u64, 1, 5, 50] {
        let p = FaultyProblem::new(WeightedBits::new(14), FaultSpec::new(7).kill_after(kill_at));
        let start = Instant::now();
        let out = solve_parallel(&p, &SearchOptions::new(SearchMode::BestOne), 4);
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "kill at #{kill_at}: hang"
        );
        assert_eq!(out.stop, StopReason::WorkerPanicked, "kill at #{kill_at}");
        let v = out.best_value.expect("incumbent lost");
        assert!((0.0..=total + 1e-9).contains(&v), "kill at #{kill_at}: {v}");
    }
}

/// Memory-pressure injection (duplicated child sets) against the
/// open-node watchdog: the frontier is inflated on purpose, the budget
/// forces shedding, and the outcome must say so — with a feasible
/// incumbent and a nonzero shed counter — instead of ballooning.
#[test]
fn memory_pressure_trips_the_watchdog() {
    let total: f64 = WeightedBits::new(16).weights.iter().sum();
    let p = FaultyProblem::new(
        WeightedBits::new(16),
        FaultSpec::new(11).memory_pressure(0.9, 3),
    );
    let opts = SearchOptions::new(SearchMode::BestOne).memory_budget(MemoryBudget::new(8));
    let out = solve_parallel(&p, &opts, 4);
    assert_eq!(out.stop, StopReason::MemoryExhausted);
    assert!(out.stats.nodes_shed > 0, "shedding must be accounted");
    let v = out.best_value.expect("incumbent lost");
    assert!((0.0..=total + 1e-9).contains(&v), "infeasible value {v}");
}

/// Duplicated children are correctness-preserving: without a budget the
/// pressured search still finds the true optimum, sequentially and in
/// parallel.
#[test]
fn memory_pressure_alone_preserves_the_optimum() {
    for seed in 0..5u64 {
        let p = FaultyProblem::new(
            WeightedBits::new(10),
            FaultSpec::new(seed).memory_pressure(0.5, 2),
        );
        let seq = solve_sequential(&p, &SearchOptions::new(SearchMode::BestOne));
        assert_eq!(seq.best_value, Some(0.0), "seed {seed} (sequential)");
        assert!(seq.is_complete());
        let par = solve_parallel(&p, &SearchOptions::new(SearchMode::BestOne), 4);
        assert_eq!(par.best_value, Some(0.0), "seed {seed} (parallel)");
        assert!(par.is_complete());
    }
}

/// Long injected sleeps must not blow through a deadline: `FaultSpec`
/// sleeps in slices and polls its deadline, so a 300 ms stall under a
/// 50 ms budget returns in far less than one full sleep.
#[test]
fn sliced_sleeps_respect_the_deadline_under_a_driver() {
    let deadline = Instant::now() + Duration::from_millis(50);
    let p = FaultyProblem::new(
        WeightedBits::new(22),
        FaultSpec::new(13)
            .slow_branches(1.0, Duration::from_millis(300))
            .deadline(deadline),
    );
    let opts = SearchOptions::new(SearchMode::BestOne).deadline(deadline);
    let start = Instant::now();
    let out = solve_parallel(&p, &opts, 4);
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_millis(5_000),
        "sleeps ignored the deadline: {elapsed:?}"
    );
    assert!(matches!(
        out.stop,
        StopReason::DeadlineExpired | StopReason::Completed
    ));
    assert!(out.best_value.is_some());
}

/// All faults at once, many seeds: the search must always return, always
/// with a feasible incumbent and an accurate stop reason.
#[test]
fn combined_fault_storm_never_hangs_or_loses_incumbents() {
    let total: f64 = WeightedBits::new(12).weights.iter().sum();
    for seed in 0..15u64 {
        let p = FaultyProblem::new(
            WeightedBits::new(12),
            FaultSpec::new(seed)
                .panic_rate(0.02)
                .nan_bound_rate(0.1)
                .inf_bound_rate(0.05)
                .slow_branches(0.01, Duration::from_micros(200)),
        );
        let opts = SearchOptions::new(SearchMode::BestOne).timeout(Duration::from_secs(5));
        let start = Instant::now();
        let out = solve_parallel(&p, &opts, 4);
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "seed {seed}: hang"
        );
        let v = out.best_value.expect("incumbent lost");
        assert!(
            (0.0..=total + 1e-9).contains(&v),
            "seed {seed}: infeasible value {v}"
        );
        assert!(
            matches!(
                out.stop,
                StopReason::Completed | StopReason::WorkerPanicked | StopReason::DeadlineExpired
            ),
            "seed {seed}: unexpected stop reason {:?}",
            out.stop
        );
    }
}
