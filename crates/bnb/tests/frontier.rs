//! Work-stealing conservation properties: steal-half must never lose or
//! duplicate a node, with and without a panicking worker in the pool.
//!
//! The oracle is a counting wrapper that records every node handed to
//! [`Problem::branch`] in a shared map. On a tree where nothing prunes
//! (all weights zero, `AllOptimal` mode), a correct driver branches each
//! internal node exactly once and sees each leaf exactly once — any lost
//! batch shows up as a missing count, any duplicated batch as a count of
//! two.

use std::collections::HashMap;
use std::sync::Mutex;

use mutree_bnb::fault::{FaultSpec, FaultyProblem};
use mutree_bnb::{solve_parallel, ChildBuf, Problem, SearchMode, SearchOptions, StopReason};

/// A full binary tree of the given depth; every complete string has
/// value 0, so under `AllOptimal` no node is ever pruned.
struct ZeroTree {
    depth: usize,
}

impl Problem for ZeroTree {
    type Node = Vec<bool>;
    type Solution = Vec<bool>;

    fn root(&self) -> Vec<bool> {
        Vec::new()
    }
    fn lower_bound(&self, _node: &Vec<bool>) -> f64 {
        0.0
    }
    fn solution(&self, node: &Vec<bool>) -> Option<(Vec<bool>, f64)> {
        (node.len() == self.depth).then(|| (node.clone(), 0.0))
    }
    fn branch(&self, node: &Vec<bool>, out: &mut ChildBuf<Vec<bool>>) {
        for b in [false, true] {
            let mut c = node.clone();
            c.push(b);
            out.push(c);
        }
    }
}

/// Records every node passed to `branch` so the test can assert each was
/// expanded exactly once.
struct Counting<P: Problem> {
    inner: P,
    branched: Mutex<HashMap<Vec<bool>, u32>>,
}

impl<P: Problem> Counting<P> {
    fn new(inner: P) -> Self {
        Counting {
            inner,
            branched: Mutex::new(HashMap::new()),
        }
    }
}

impl<P: Problem<Node = Vec<bool>>> Problem for Counting<P> {
    type Node = Vec<bool>;
    type Solution = P::Solution;

    fn root(&self) -> Vec<bool> {
        self.inner.root()
    }
    fn lower_bound(&self, node: &Vec<bool>) -> f64 {
        self.inner.lower_bound(node)
    }
    fn solution(&self, node: &Vec<bool>) -> Option<(P::Solution, f64)> {
        self.inner.solution(node)
    }
    fn branch(&self, node: &Vec<bool>, out: &mut ChildBuf<Vec<bool>>) {
        *self
            .branched
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(node.clone())
            .or_insert(0) += 1;
        self.inner.branch(node, out);
    }
}

#[test]
fn steal_half_never_loses_or_duplicates_a_node() {
    let depth = 11usize;
    let opts = SearchOptions::new(SearchMode::AllOptimal);
    for workers in [2, 4, 8] {
        let p = Counting::new(ZeroTree { depth });
        let out = solve_parallel(&p, &opts, workers);
        assert!(out.is_complete(), "workers = {workers}");
        // Every leaf seen exactly once…
        assert_eq!(
            out.stats.solutions_seen,
            1u64 << depth,
            "workers = {workers}"
        );
        let branched = p.branched.lock().unwrap();
        // …and every internal node branched exactly once: counts prove
        // no duplication, the total proves no loss.
        assert_eq!(branched.len(), (1usize << depth) - 1, "workers = {workers}");
        assert!(
            branched.values().all(|&c| c == 1),
            "a node was expanded more than once at {workers} workers"
        );
    }
}

#[test]
fn conservation_holds_with_a_panicking_worker() {
    // Inject deterministic panics into ~0.2% of callbacks: the search
    // must stop with WorkerPanicked, never hang, and — the conservation
    // half — still never hand the same node to two workers, panics and
    // steals notwithstanding.
    let depth = 11usize;
    let opts = SearchOptions::new(SearchMode::AllOptimal);
    let mut saw_panic = false;
    for seed in 0..6u64 {
        let p = Counting::new(FaultyProblem::new(
            ZeroTree { depth },
            FaultSpec::new(seed).panic_rate(0.002),
        ));
        let out = solve_parallel(&p, &opts, 8);
        let branched = p.branched.lock().unwrap_or_else(|e| e.into_inner());
        assert!(
            branched.values().all(|&c| c == 1),
            "a node was expanded more than once under faults (seed {seed})"
        );
        match out.stop {
            StopReason::WorkerPanicked => {
                saw_panic = true;
                // Partial run: nothing can exceed the full tree.
                assert!(branched.len() < (1usize << depth));
            }
            StopReason::Completed => {
                // The injected rate happened to miss every call slot the
                // run used; the run must then be a perfect enumeration.
                assert_eq!(branched.len(), (1usize << depth) - 1);
                assert_eq!(out.stats.solutions_seen, 1u64 << depth);
            }
            other => panic!("unexpected stop reason {other:?} (seed {seed})"),
        }
    }
    assert!(saw_panic, "no seed triggered a panic; raise the rate");
}

#[test]
fn contention_counters_reach_the_outcome() {
    // A tree deep enough that 8 workers on few cores must steal at least
    // once; the steal/donate/park counters must surface in the merged
    // stats (and are all zero for a 1-worker run, which never shares).
    let depth = 13usize;
    let opts = SearchOptions::new(SearchMode::AllOptimal);
    let p = ZeroTree { depth };
    let solo = solve_parallel(&p, &opts, 1);
    assert_eq!(solo.stats.donations, 0);
    assert_eq!(solo.stats.steals, 0);
    let crowd = solve_parallel(&p, &opts, 8);
    assert!(crowd.is_complete());
    // Workers 1..7 start with ~2 seeds each and drain them quickly; they
    // can only have kept busy via the frontier.
    assert!(
        crowd.stats.steals > 0,
        "8 workers finished a 2^13 tree without a single steal"
    );
}
