//! Small dependency-free hashing shared across the workspace.
//!
//! Three call sites historically grew private copies of the same FNV-1a
//! loop: the checkpoint checksum ([`crate::checkpoint`]), the pipeline's
//! retry-jitter hash, and — the reason they finally merged — the
//! content-addressed group-solve cache key, which must hash canonical
//! matrix bytes with the *same* function everywhere or cache lookups
//! would silently depend on which layer computed the key. One
//! implementation now lives here; `mutree-core` re-exports this module
//! as `mutree_core::hash`.

/// FNV-1a offset basis (64-bit).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a prime (64-bit).
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of `bytes` — small, dependency-free, and plenty
/// for checksums, cache keys and deterministic jitter. Not
/// collision-resistant against adversaries; never use it for security.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_continue(FNV_OFFSET, bytes)
}

/// Folds `bytes` into an existing FNV-1a state, so multi-part keys
/// (shape ‖ config ‖ payload) hash incrementally without concatenating
/// into a scratch buffer first. Start from [`FNV_OFFSET`] (or use
/// [`fnv1a`]).
#[must_use]
pub fn fnv1a_continue(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// SplitMix64 finalizer: scrambles `x` into a well-mixed 64-bit value.
/// FNV-1a alone mixes low bits poorly for short inputs; running its
/// output through this finalizer makes the result usable as a jitter
/// fraction or bucket index.
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a 64-bit value to a uniform fraction in `[0, 1)` using the top
/// 53 bits (the full precision of an `f64` mantissa).
#[must_use]
pub fn unit_fraction(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn continuation_equals_one_shot() {
        let whole = fnv1a(b"hello world");
        let split = fnv1a_continue(fnv1a(b"hello "), b"world");
        assert_eq!(whole, split);
    }

    #[test]
    fn splitmix_is_a_bijection_sample() {
        // Distinct inputs must keep distinct outputs (spot check).
        let outs: std::collections::HashSet<u64> = (0..1000u64).map(splitmix64).collect();
        assert_eq!(outs.len(), 1000);
    }

    #[test]
    fn unit_fraction_stays_in_range() {
        for x in [0, 1, u64::MAX, 0x8000_0000_0000_0000] {
            let f = unit_fraction(splitmix64(x));
            assert!((0.0..1.0).contains(&f), "{f}");
        }
    }
}
