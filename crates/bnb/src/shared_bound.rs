use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically decreasing, lock-free shared upper bound.
///
/// Values must be non-negative (or `+∞`); for such floats the IEEE-754 bit
/// pattern orders exactly like the number, so the bound can live in an
/// `AtomicU64` and improve with a single `fetch_min`. This is the
/// "broadcast the global upper bound" of the paper's parallel algorithm:
/// every worker reads the freshest bound with one atomic load.
#[derive(Debug)]
pub struct SharedBound {
    bits: AtomicU64,
}

impl SharedBound {
    /// Creates the bound at `value`.
    ///
    /// # Panics
    ///
    /// Panics when `value` is negative or NaN.
    pub fn new(value: f64) -> Self {
        assert!(value >= 0.0, "bound must be non-negative");
        SharedBound {
            bits: AtomicU64::new(value.to_bits()),
        }
    }

    /// Creates the bound at `+∞` (no incumbent yet).
    pub fn unbounded() -> Self {
        SharedBound::new(f64::INFINITY)
    }

    /// The current bound.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Acquire))
    }

    /// Lowers the bound to `value` if it improves on the current one.
    /// Returns whether `value` became the new bound.
    ///
    /// # Panics
    ///
    /// Panics when `value` is negative or NaN.
    pub fn try_improve(&self, value: f64) -> bool {
        assert!(value >= 0.0, "bound must be non-negative");
        let old = self.bits.fetch_min(value.to_bits(), Ordering::AcqRel);
        value.to_bits() < old
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn starts_unbounded() {
        let b = SharedBound::unbounded();
        assert_eq!(b.get(), f64::INFINITY);
    }

    #[test]
    fn improves_monotonically() {
        let b = SharedBound::unbounded();
        assert!(b.try_improve(10.0));
        assert!(!b.try_improve(11.0));
        assert_eq!(b.get(), 10.0);
        assert!(b.try_improve(3.5));
        assert_eq!(b.get(), 3.5);
        assert!(!b.try_improve(3.5));
    }

    #[test]
    fn zero_is_a_valid_bound() {
        let b = SharedBound::new(1.0);
        assert!(b.try_improve(0.0));
        assert_eq!(b.get(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative() {
        SharedBound::new(-1.0);
    }

    #[test]
    fn concurrent_improvements_settle_at_min() {
        let b = Arc::new(SharedBound::unbounded());
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for k in (0..1000).rev() {
                        b.try_improve((i * 1000 + k) as f64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.get(), 0.0);
    }
}
