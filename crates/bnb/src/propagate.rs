//! Constraint propagation over unresolved leaf-triple relations — the
//! second prune stage of the expansion kernel.
//!
//! The Wu–Chao–Tang search prunes on a weight lower bound (partial
//! weight + pendant suffix) and, optionally, the 3-3 close-pair checks.
//! Moore & Prosser's ultrametric-constraint model observes that every
//! leaf triple of an ultrametric tree resolves to a *(low, low, high)*
//! pattern — the two deepest-LCA distances are equal and dominate the
//! third — and that fixing one triple's relation forces others
//! transitively, long before any weight arithmetic notices. This module
//! packages the pieces of that idea that are independent of the tree
//! arena:
//!
//! * [`PruneStrategy`] — the stage selector (`WeightOnly`, `Propagate`,
//!   `Hybrid`), resolved builder > request > `MUTREE_FORCE_PRUNE`
//!   exactly like the bound kernel.
//! * [`TripleDomains`] — the matrix-derived triple-relation domain:
//!   packed 2-bit states over the same triangular index as the 3-3
//!   close-pair table, reusing
//!   [`close_pair_code`](crate::bound::close_pair_code)'s arm encoding.
//! * [`floor_table`] — the *height-floor* propagation: a per-depth
//!   vector of root-height floors implied by triples that straddle the
//!   inserted prefix, turned into a provably sound lower-bound
//!   tightening (see below).
//!
//! # The height-floor bound
//!
//! Leaves enter the search in a fixed (maxmin) order, so a node at depth
//! `k` has inserted exactly the prefix `0..k`. For any triple `(i, j, u)`
//! with `i < j < k ≤ u`, the final tree's triple top — the LCA of the
//! two *(high)* pairs — satisfies
//!
//! ```text
//! 2 · h(top(i, j, u)) ≥ med(d(i,j), d(i,u), d(j,u))
//! ```
//!
//! because two of the three tree distances equal `2·h(top)`, each tree
//! distance dominates its matrix entry, and whichever pair turns out to
//! be the *(low)* one, the second-largest matrix entry is covered by a
//! *(high)* pair. The top is an ancestor of `i`, hence comparable to the
//! partial tree's root, and a telescoping argument over the restricted
//! tree plus the pendant charges shows the final weight is at least
//!
//! ```text
//! ω(partial) + suffix[k] + max(0, H[k] − h(root))
//! ```
//!
//! where `H[k]` is the maximum such floor over all prefix-straddling
//! triples. `H` depends only on the matrix and the insertion order, so
//! it is precomputed once per problem ([`floor_table`], `O(n³)` — the
//! same class as the close-pair table) and each node pays one compare.
//! Because the tightened value is still a true lower bound, pruning with
//! it can never change which solutions the search visits: optima stay
//! bit-identical in every mode, strategy and driver.
//!
//! The *arm* side of the propagation — confining a future leaf to a
//! subtree when its triple relations are fixed, and wiping out when two
//! confinements contradict — needs the leaf-bitset arena and therefore
//! lives with the tree (`mutree-core`); the [`Arm`] decoding here is the
//! shared vocabulary.

use crate::bound::{CLOSE_EARLIER, CLOSE_NONE, CLOSE_WITH_HIGH, CLOSE_WITH_LOW};

/// Which prune stages the expansion kernel runs.
///
/// Resolved like [`BoundKernel`](crate::BoundKernel): builder >
/// `SolveRequest` field > `MUTREE_FORCE_PRUNE` (read only at plan
/// resolution) > this default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PruneStrategy {
    /// Weight lower bound only — the papers' original configuration.
    WeightOnly,
    /// Weight bound plus full-depth constraint propagation: the
    /// height-floor bound at every node, and (under
    /// `ThreeThree::Full`, where the arm set is part of the problem
    /// semantics) triple-domain wipeout over future-leaf confinements,
    /// with the confinement masks also pre-filtering insertion sites.
    /// The `exp_propagate` bench picks this as the default: the deep
    /// levels have the most insertion sites, so the site filter pays
    /// for the domain maintenance many times over exactly where
    /// `Hybrid` switches it off.
    #[default]
    Propagate,
    /// Weight bound plus propagation gated to the shallow three
    /// quarters of the insertion order; the deep tail skips the
    /// per-node domain maintenance. This was the presumed winner
    /// before mask-driven site filtering existed — kept as an
    /// ablation point showing what the gate costs.
    Hybrid,
}

impl PruneStrategy {
    /// Parses a strategy name as used by `--prune` and
    /// `MUTREE_FORCE_PRUNE`: `weight`, `propagate` or `hybrid`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim() {
            "weight" => Some(PruneStrategy::WeightOnly),
            "propagate" => Some(PruneStrategy::Propagate),
            "hybrid" => Some(PruneStrategy::Hybrid),
            _ => None,
        }
    }

    /// The canonical name (`parse`'s inverse).
    pub fn name(self) -> &'static str {
        match self {
            PruneStrategy::WeightOnly => "weight",
            PruneStrategy::Propagate => "propagate",
            PruneStrategy::Hybrid => "hybrid",
        }
    }

    /// Whether any propagation stage runs at all under this strategy.
    pub fn propagates(self) -> bool {
        !matches!(self, PruneStrategy::WeightOnly)
    }

    /// Whether the per-node domain maintenance runs at depth `k` of an
    /// `n`-leaf insertion order: always for [`PruneStrategy::Propagate`],
    /// the shallow `3n/4` prefix for [`PruneStrategy::Hybrid`], never
    /// for [`PruneStrategy::WeightOnly`].
    pub fn propagates_at(self, k: usize, n: usize) -> bool {
        match self {
            PruneStrategy::WeightOnly => false,
            PruneStrategy::Propagate => true,
            PruneStrategy::Hybrid => 4 * k <= 3 * n,
        }
    }
}

impl std::fmt::Display for PruneStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A fixed triple relation, decoded from the 2-bit domain state.
///
/// For a triple `(i, j, s)` with `i < j < s`, the arm names which pair
/// is the *(low)* — deepest-LCA — pair of the ultrametric pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arm {
    /// Unresolved: the matrix has no strict minimum pair, so all three
    /// resolutions remain in the domain.
    Open,
    /// `(i, j)` is the close pair (`CLOSE_EARLIER`).
    Earlier,
    /// `(i, s)` is the close pair (`CLOSE_WITH_LOW`).
    WithLow,
    /// `(j, s)` is the close pair (`CLOSE_WITH_HIGH`).
    WithHigh,
}

/// The triple-relation domain: one packed 2-bit state per leaf triple,
/// over the same triangular index as the 3-3 close-pair table
/// ([`triple_index`](crate::bound::triple_index)), reusing
/// [`close_pair_code`](crate::bound::close_pair_code)'s arm encoding
/// (`CLOSE_NONE`/`EARLIER`/`WITH_LOW`/`WITH_HIGH`).
///
/// Packing four states per byte quarters the table against the unpacked
/// close-pair bytes: at the 256-taxon engine ceiling the full
/// `C(256,3)` domain is ~690 KiB instead of ~2.7 MiB, and the search
/// walks it read-only — the per-node mutable state is the future-leaf
/// confinement masks, which live in the tree arena and ride the
/// `ChildBuf` spare pool.
#[derive(Debug, Clone, Default)]
pub struct TripleDomains {
    words: Vec<u8>,
    len: usize,
}

impl TripleDomains {
    /// Packs an unpacked arm table (one byte per triple, as built by the
    /// 3-3 sweep) into 2-bit states. `codes.len()` must be
    /// [`close_pair_table_len`](crate::bound::close_pair_table_len)`(n)`
    /// for some `n`.
    pub fn pack(codes: &[u8]) -> Self {
        let mut words = vec![0u8; codes.len().div_ceil(4)];
        for (t, &code) in codes.iter().enumerate() {
            debug_assert!(code <= CLOSE_WITH_HIGH, "arm code out of range");
            words[t >> 2] |= (code & 0b11) << ((t & 3) * 2);
        }
        TripleDomains {
            words,
            len: codes.len(),
        }
    }

    /// Number of triples in the domain.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the domain covers no triples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The raw 2-bit state of triple `t` (a
    /// [`triple_index`](crate::bound::triple_index) value).
    #[inline]
    pub fn code(&self, t: usize) -> u8 {
        debug_assert!(t < self.len);
        (self.words[t >> 2] >> ((t & 3) * 2)) & 0b11
    }

    /// The decoded arm of triple `t`.
    #[inline]
    pub fn arm(&self, t: usize) -> Arm {
        match self.code(t) {
            CLOSE_NONE => Arm::Open,
            CLOSE_EARLIER => Arm::Earlier,
            CLOSE_WITH_LOW => Arm::WithLow,
            CLOSE_WITH_HIGH => Arm::WithHigh,
            _ => unreachable!("2-bit state"),
        }
    }
}

/// Precomputes the height-floor vector `H` for an `n`-leaf problem whose
/// leaves insert in index order, reading each triple's median pairwise
/// distance through `med` (for `i < j < u`, already relabeled — the
/// `triple_med` accessor of either distance backend).
///
/// `H[k]` is the largest `med(i, j, u) / 2` over triples with
/// `i < j < k ≤ u`: a floor some ancestor of leaf `i` must reach in
/// any completion of a depth-`k` partial tree (see the module docs for
/// the soundness argument). `H[k]` is `-∞` where no such triple exists
/// (`k < 2` or `k = n`), so the `max(0, H[k] − h(root))` adjustment
/// degenerates to zero and NaN can never enter the comparison from this
/// side.
pub fn floor_table(n: usize, med: impl Fn(usize, usize, usize) -> f64) -> Vec<f64> {
    let mut h = vec![f64::NEG_INFINITY; n + 1];
    if n < 3 {
        return h;
    }
    // g[u] accumulates the best floor over pairs inside the prefix as it
    // grows.
    let mut g = vec![f64::NEG_INFINITY; n];
    for k in 1..n {
        // The prefix grows from k to k+1: leaf k joins, adding pairs
        // (i, k) for every i < k to each still-future u > k.
        for (u, gu) in g.iter_mut().enumerate().skip(k + 1) {
            for i in 0..k {
                let floor = med(i, k, u) / 2.0;
                if floor > *gu {
                    *gu = floor;
                }
            }
        }
        let mut best = f64::NEG_INFINITY;
        for &gu in g.iter().skip(k + 1) {
            if gu > best {
                best = gu;
            }
        }
        h[k + 1] = best;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bound::{close_pair_code, close_pair_table_len, triple_index};

    #[test]
    fn strategy_parses_and_displays_round_trip() {
        for s in [
            PruneStrategy::WeightOnly,
            PruneStrategy::Propagate,
            PruneStrategy::Hybrid,
        ] {
            assert_eq!(PruneStrategy::parse(s.name()), Some(s));
            assert_eq!(format!("{s}"), s.name());
        }
        assert_eq!(
            PruneStrategy::parse(" hybrid "),
            Some(PruneStrategy::Hybrid)
        );
        assert_eq!(PruneStrategy::parse("weights"), None);
        assert_eq!(PruneStrategy::parse(""), None);
        assert_eq!(PruneStrategy::default(), PruneStrategy::Propagate);
    }

    #[test]
    fn hybrid_gates_the_deep_quarter() {
        let n = 16;
        assert!(PruneStrategy::Hybrid.propagates_at(12, n));
        assert!(!PruneStrategy::Hybrid.propagates_at(13, n));
        assert!(PruneStrategy::Propagate.propagates_at(n, n));
        assert!(!PruneStrategy::WeightOnly.propagates_at(0, n));
    }

    #[test]
    fn domains_pack_and_decode_every_arm() {
        // An asymmetric toy matrix: d(i,j) = |i-j| + 10*min(i,j) gives a
        // strict minimum pair for most triples.
        let n = 7;
        let d = |i: usize, j: usize| (i.abs_diff(j)) as f64 + 10.0 * i.min(j) as f64;
        let mut codes = vec![0u8; close_pair_table_len(n)];
        for s in 2..n {
            for j in 1..s {
                for i in 0..j {
                    codes[triple_index(i, j, s)] = close_pair_code(d(i, j), d(i, s), d(j, s));
                }
            }
        }
        let dom = TripleDomains::pack(&codes);
        assert_eq!(dom.len(), codes.len());
        for (t, &code) in codes.iter().enumerate() {
            assert_eq!(dom.code(t), code, "triple {t}");
            let arm = match code {
                CLOSE_NONE => Arm::Open,
                CLOSE_EARLIER => Arm::Earlier,
                CLOSE_WITH_LOW => Arm::WithLow,
                _ => Arm::WithHigh,
            };
            assert_eq!(dom.arm(t), arm, "triple {t}");
        }
    }

    #[test]
    fn empty_domain_is_empty() {
        let dom = TripleDomains::default();
        assert!(dom.is_empty());
        assert_eq!(dom.len(), 0);
    }

    #[test]
    fn floor_table_matches_brute_force() {
        let n = 8;
        let d = |i: usize, j: usize| {
            let (i, j) = (i.min(j), i.max(j));
            ((i * 31 + j * 17) % 23) as f64 + 1.0
        };
        let med = |i: usize, j: usize, u: usize| {
            let (a, b, c) = (d(i, j), d(i, u), d(j, u));
            a.max(b).min(a.max(c)).min(b.max(c))
        };
        let h = floor_table(n, med);
        assert_eq!(h.len(), n + 1);
        for (k, &hk) in h.iter().enumerate() {
            let mut best = f64::NEG_INFINITY;
            for u in k..n {
                for j in 1..k {
                    for i in 0..j {
                        best = best.max(med(i, j, u) / 2.0);
                    }
                }
            }
            assert_eq!(hk, best, "H[{k}]");
        }
        // Degenerate depths carry the -inf sentinel.
        assert_eq!(h[0], f64::NEG_INFINITY);
        assert_eq!(h[1], f64::NEG_INFINITY);
        assert_eq!(h[n], f64::NEG_INFINITY);
    }

    #[test]
    fn floor_table_is_monotone_under_an_ultrametric_spread() {
        // Two tight clusters far apart: as soon as the prefix holds a
        // pair and the future holds a cross-cluster leaf, the floor
        // jumps to the inter-cluster distance — the exact shape the
        // clustered bench exploits.
        let n = 6;
        let d = |i: usize, j: usize| -> f64 {
            if i == j {
                0.0
            } else if (i < 3) == (j < 3) {
                1.0
            } else {
                100.0
            }
        };
        let h = floor_table(n, |i, j, u| {
            let (a, b, c) = (d(i, j), d(i, u), d(j, u));
            a.max(b).min(a.max(c)).min(b.max(c))
        });
        // With leaves 0,1 inserted (both cluster A) and 2..6 future, the
        // triple (0, 1, u) for a cluster-B u has distances (1, 100, 100):
        // med = 100, floor 50.
        assert_eq!(h[2], 50.0);
        assert_eq!(h[3], 50.0);
        assert_eq!(h[4], 50.0);
        // At k = n every leaf is inserted; nothing straddles.
        assert_eq!(h[n], f64::NEG_INFINITY);
    }
}
