//! Borrowed-worker abstraction for the thread-parallel driver.
//!
//! [`solve_parallel`](crate::solve_parallel) owns its threads: every call
//! spawns a fresh `thread::scope` and tears it down on return. That is the
//! right shape for a standalone solve, but wasteful when a scheduling layer
//! above the solver (the compact-set pipeline) already runs many solves
//! concurrently on a shared pool — nested scopes oversubscribe the machine
//! and pay spawn/teardown per call.
//!
//! [`WorkerPool`] inverts the ownership: the *caller* owns the threads and
//! lends them out. [`solve_parallel_pooled`](crate::solve_parallel_pooled)
//! submits its worker loops as jobs, runs one loop on the calling thread,
//! and relies on the pool's [`run_all`](WorkerPool::run_all) contract to
//! help execute queued work while waiting — so a pool of any size (even
//! one thread) completes the search without deadlocking.
//!
//! `mutree_core::exec::Executor` is the canonical implementation; the
//! trait lives here so the solver crate does not depend on the pipeline
//! crate.

/// An owned unit of work submitted to a [`WorkerPool`].
///
/// Jobs are `'static`: they must own (or `Arc`-share) everything they
/// touch, because the pool's threads outlive the submitting stack frame.
pub type PoolJob = Box<dyn FnOnce() + Send + 'static>;

/// A pool of worker threads that can execute owned jobs on behalf of a
/// caller.
pub trait WorkerPool {
    /// Number of threads serving the pool (at least 1).
    fn threads(&self) -> usize;

    /// Submits `jobs` for concurrent execution, runs `main` on the calling
    /// thread, and returns only after **every** submitted job has finished.
    ///
    /// Contract, required for deadlock-freedom when jobs coordinate with
    /// `main` (as the pooled search driver's worker loops do):
    ///
    /// * `jobs` are made available to the pool's threads *before* `main`
    ///   runs, so they can proceed in parallel with it;
    /// * while waiting for stragglers after `main` returns, the calling
    ///   thread executes queued work itself ("help-while-wait") instead of
    ///   sleeping, so progress is guaranteed even on a one-thread pool
    ///   whose only worker is the caller;
    /// * a panicking job must not take down a pool thread or abort the
    ///   wait: the pool isolates it and still counts the job as finished.
    fn run_all(&self, jobs: Vec<PoolJob>, main: Box<dyn FnOnce() + '_>);
}
