use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shareable cancellation flag for cooperative search shutdown.
///
/// Clone the token, hand one copy to [`SearchOptions`](crate::SearchOptions)
/// and keep the other; calling [`cancel`](CancelToken::cancel) from any
/// thread (a signal handler, a supervising thread, a UI) makes the search
/// stop at its next check and return the best incumbent found so far with
/// [`StopReason::Cancelled`](crate::StopReason::Cancelled).
///
/// Cancellation is level-triggered and sticky: once cancelled, a token
/// stays cancelled forever, so a token must not be reused across runs that
/// should not share a fate.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled());
        assert!(!b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled());
        assert!(b.is_cancelled());
        // Sticky and idempotent.
        a.cancel();
        assert!(a.is_cancelled());
    }

    #[test]
    fn cancel_crosses_threads() {
        let token = CancelToken::new();
        let remote = token.clone();
        std::thread::scope(|s| {
            s.spawn(move || remote.cancel());
        });
        assert!(token.is_cancelled());
    }
}
