//! Structured search tracing: a [`SearchObserver`] that logs kernel
//! events to stderr.
//!
//! Every driver (sequential, thread-parallel, pooled, simulated cluster)
//! emits the same [`SearchEvent`] stream from the shared expansion kernel;
//! [`LoggingObserver`] turns that stream into one `key=value` line per
//! event, cheap enough to leave compiled in and gated at runtime by a
//! [`TraceLevel`]. The CLI exposes it as `--trace-search`.
//!
//! Lines are written with `eprintln!`, which locks stderr per line, so
//! concurrent workers interleave whole lines, never fragments.

use crate::kernel::{PruneReason, SearchEvent, SearchObserver};

/// How much of the event stream to log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Only incumbent improvements and early stops — a few lines per
    /// search, enough to watch bound convergence.
    Incumbents,
    /// Every kernel event, including per-node expansions and prunes.
    /// High-volume: a full trace of a hard instance is millions of lines.
    All,
}

impl TraceLevel {
    /// Parses a CLI verbosity value.
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s {
            "incumbents" | "1" => Some(TraceLevel::Incumbents),
            "all" | "full" | "2" => Some(TraceLevel::All),
            _ => None,
        }
    }
}

/// A [`SearchObserver`] writing one structured line per event to stderr.
///
/// Clone one observer per worker: the struct is two words, and cloning
/// keeps the observer trait's `&mut self` contract without locking.
#[derive(Debug, Clone, Copy)]
pub struct LoggingObserver {
    level: TraceLevel,
}

impl LoggingObserver {
    /// An observer logging at `level`.
    pub fn new(level: TraceLevel) -> Self {
        LoggingObserver { level }
    }

    /// The configured verbosity.
    pub fn level(&self) -> TraceLevel {
        self.level
    }
}

fn prune_reason_str(reason: PruneReason) -> &'static str {
    match reason {
        PruneReason::Node => "node",
        PruneReason::Child => "child",
        PruneReason::NanObjective => "nan-objective",
        PruneReason::Propagation => "propagation",
    }
}

impl SearchObserver for LoggingObserver {
    fn on_event(&mut self, event: SearchEvent) {
        match event {
            SearchEvent::NodeExpanded { children, kept } => {
                if self.level >= TraceLevel::All {
                    eprintln!("trace: event=expand children={children} kept={kept}");
                }
            }
            SearchEvent::Pruned { reason } => {
                if self.level >= TraceLevel::All {
                    eprintln!("trace: event=prune reason={}", prune_reason_str(reason));
                }
            }
            SearchEvent::IncumbentImproved { value } => {
                eprintln!("trace: event=incumbent value={value}");
            }
            SearchEvent::Stopped { reason } => {
                eprintln!("trace: event=stop reason={reason:?}");
            }
            SearchEvent::Stolen { nodes } => {
                if self.level >= TraceLevel::All {
                    eprintln!("trace: event=steal nodes={nodes}");
                }
            }
            SearchEvent::Donated { nodes } => {
                if self.level >= TraceLevel::All {
                    eprintln!("trace: event=donate nodes={nodes}");
                }
            }
            SearchEvent::Parked => {
                if self.level >= TraceLevel::All {
                    eprintln!("trace: event=park");
                }
            }
            // Shed and checkpoint events are rare and operationally
            // significant (memory pressure, durability), so they log at
            // every level, like incumbents and stops.
            SearchEvent::Shed { nodes } => {
                eprintln!("trace: event=shed nodes={nodes}");
            }
            SearchEvent::Checkpointed { open } => {
                eprintln!("trace: event=checkpoint open={open}");
            }
        }
    }
}

/// `Option<LoggingObserver>` is the "maybe tracing" observer the solver
/// threads through every backend: `None` is a no-op.
impl SearchObserver for Option<LoggingObserver> {
    fn on_event(&mut self, event: SearchEvent) {
        if let Some(obs) = self {
            obs.on_event(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StopReason;

    #[test]
    fn trace_level_parses_cli_values() {
        assert_eq!(
            TraceLevel::parse("incumbents"),
            Some(TraceLevel::Incumbents)
        );
        assert_eq!(TraceLevel::parse("1"), Some(TraceLevel::Incumbents));
        assert_eq!(TraceLevel::parse("all"), Some(TraceLevel::All));
        assert_eq!(TraceLevel::parse("full"), Some(TraceLevel::All));
        assert_eq!(TraceLevel::parse("2"), Some(TraceLevel::All));
        assert_eq!(TraceLevel::parse("verbose"), None);
    }

    #[test]
    fn optional_observer_accepts_events() {
        // Smoke-test both arms; output goes to stderr and is not captured.
        let mut none: Option<LoggingObserver> = None;
        none.on_event(SearchEvent::IncumbentImproved { value: 1.0 });
        let mut some = Some(LoggingObserver::new(TraceLevel::Incumbents));
        some.on_event(SearchEvent::Stopped {
            reason: StopReason::Cancelled,
        });
        some.on_event(SearchEvent::NodeExpanded {
            children: 3,
            kept: 2,
        });
        assert_eq!(some.unwrap().level(), TraceLevel::Incumbents);
    }
}
