//! Lane-oriented bound kernels for the Wu–Chao–Tang lower bound and the
//! 3-3 close-pair tables.
//!
//! Historically this arithmetic lived inline in the minimum-ultrametric
//! problem implementation, reading the packed-triangle `DistanceMatrix`
//! one branchy `get(i, j)` at a time. Profiles put it at the top of node
//! expansion, so it now lives here as free functions over raw rows:
//!
//! * the **solver matrix** (`mutree_distmat::SolverMatrix`) supplies each
//!   taxon's distances as one contiguous, padded, cache-line-aligned
//!   `&[f64]` row, and
//! * the kernels below walk those rows in fixed-width `[f64; LANES]`
//!   blocks the autovectorizer can keep in vector registers, with 64-bit
//!   leaf-mask words selecting lanes — mask word `w` covers row lanes
//!   `64w..64(w+1)`, so leaf-word iteration and lane loads share one
//!   stride at every monomorphized leaf-bitset width.
//!
//! Everything here is *exact*: the kernels only reorder `min`/`max`
//! reductions and comparisons, never additions, so results are
//! bit-identical to the scalar reference path (floating-point min/max
//! over a fixed set of values is order-insensitive; the one summation,
//! [`pendant_suffix`], keeps the reference accumulation order). The
//! scalar path survives behind [`BoundKernel::Scalar`] for the
//! differential tests and the `MUTREE_FORCE_BOUND_KERNEL` CI matrix.
//!
//! Padding discipline: rows may be longer than the taxon count, and the
//! padding lanes are NaN-poisoned in debug builds. Every kernel selects
//! lanes through the mask (or an explicit prefix length) *before* they
//! touch an accumulator, so poison can never reach a bound — a property
//! the `mutree-distmat` property tests assert.

/// Fixed lane width of the inner loops: 8 `f64`s, one 64-byte cache
/// line, one lane block of the solver matrix.
pub const LANES: usize = 8;

/// Which implementation of the bound arithmetic a solve runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoundKernel {
    /// Scalar reference: packed-triangle `get(i, j)` per mask bit — the
    /// historical code path, kept as the differential baseline.
    Scalar,
    /// Lane kernels over the blocked solver-matrix rows (the default).
    #[default]
    Lanes,
}

impl BoundKernel {
    /// Parses a kernel name: `scalar` or `lanes` (whitespace trimmed).
    /// Unrecognized values mean no kernel. This is the pure half of the
    /// `MUTREE_FORCE_BOUND_KERNEL` override, whose environment read lives
    /// with every other env hook in the engine crate's plan resolution.
    pub fn parse(spec: &str) -> Option<BoundKernel> {
        match spec.trim() {
            "scalar" => Some(BoundKernel::Scalar),
            "lanes" => Some(BoundKernel::Lanes),
            _ => None,
        }
    }

    /// Stable lowercase name, for stats lines and experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            BoundKernel::Scalar => "scalar",
            BoundKernel::Lanes => "lanes",
        }
    }
}

impl std::fmt::Display for BoundKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A mask word with at least this many set bits takes the dense
/// branch-free lane path in [`max_in_mask`]; sparser words peel bits
/// instead. At 32 set lanes the eight select-and-max vector blocks cost
/// about the same as the peel's serial max chain; below that the peel's
/// "touch only set lanes" economy wins — and partial subtree masks in
/// the search are sparse far more often than not.
const DENSE_WORD_BITS: u32 = 32;

/// Maximum of `row[y]` over the leaf indices `y` set in `words`, floored
/// at `0.0` — the pendant-height candidate `max_{y ∈ mask} M[s, y]` of
/// the insertion walk (distances are non-negative, and the caller takes
/// a running max against existing heights, so the floor matches the
/// scalar reference's `0.0` accumulator exactly).
///
/// Mask word `w` selects lanes `64w..64(w+1)` of `row`; zero words are
/// skipped without touching the row, so a mask word can only be non-zero
/// where the row has valid lanes. Per word the kernel is adaptive:
/// sparse words peel set bits (`w & (w - 1)`) with one contiguous row
/// load each — no packed-triangle index math, which is where the scalar
/// path spends itself — while words at `DENSE_WORD_BITS` or more run a
/// branch-free 8-lane select-and-max over the word's whole lane range.
/// The sparse peel indexes `row` directly rather than through a
/// fixed-size word view: partial subtree masks are one-to-eight bits far
/// more often than not, and the view's slice-and-convert preamble costs
/// more than the handful of checked loads it would save. Both shapes
/// compute the same order-insensitive `max`, so the choice is invisible
/// in the result bits.
///
/// # Panics
///
/// Debug builds panic when a non-zero mask word indexes past `row`.
#[inline(always)]
pub fn max_in_mask(row: &[f64], words: &[u64]) -> f64 {
    let mut best = 0.0f64;
    for (w, &word) in words.iter().enumerate() {
        if word == 0 {
            continue;
        }
        debug_assert!((w + 1) * 64 <= row.len(), "mask word {w} beyond the row");
        if word.count_ones() < DENSE_WORD_BITS {
            let base = w * 64;
            let mut bits = word;
            while bits != 0 {
                let v = row[base + bits.trailing_zeros() as usize];
                bits &= bits - 1;
                best = if v > best { v } else { best };
            }
        } else {
            // One fixed-size view for the dense path: its select-and-max
            // blocks touch every lane of the word, so hoisting the bounds
            // check into a single slice-and-convert pays for itself here.
            let lanes64: &[f64; 64] = row[w * 64..(w + 1) * 64]
                .try_into()
                .expect("mask word beyond the row");
            let mut acc = [f64::NEG_INFINITY; LANES];
            for c in 0..8 {
                let byte = (word >> (c * 8)) & 0xff;
                if byte == 0 {
                    continue;
                }
                for l in 0..LANES {
                    let v = if byte & (1 << l) != 0 {
                        lanes64[c * LANES + l]
                    } else {
                        f64::NEG_INFINITY
                    };
                    acc[l] = if v > acc[l] { v } else { acc[l] };
                }
            }
            for v in acc {
                best = if v > best { v } else { best };
            }
        }
    }
    best
}

/// Minimum over `row[0..len]` — the per-taxon pendant term
/// `min_{i<t} M[i, t]` of the Wu–Chao–Tang bound. Returns `+∞` when
/// `len == 0`, matching the scalar reference's fold seed.
///
/// # Panics
///
/// Debug builds panic when `len > row.len()`.
#[inline]
pub fn min_prefix(row: &[f64], len: usize) -> f64 {
    debug_assert!(len <= row.len());
    let mut acc = [f64::INFINITY; LANES];
    let blocks = len / LANES;
    for b in 0..blocks {
        let lanes = &row[b * LANES..(b + 1) * LANES];
        for l in 0..LANES {
            acc[l] = if lanes[l] < acc[l] { lanes[l] } else { acc[l] };
        }
    }
    let mut best = f64::INFINITY;
    for v in acc {
        best = if v < best { v } else { best };
    }
    for &v in &row[blocks * LANES..len] {
        best = if v < best { v } else { best };
    }
    best
}

/// `suffix[t] = Σ_{u ≥ t} minrow[u] / 2` with `suffix[n] = 0`, summed
/// from the back exactly like the scalar reference (`minrow[t]` is
/// `min_{i<t} M[i, t]`; entries `0` and `1` are never read and stay at
/// the reference's `0.0`). Addition order is preserved, so the suffix
/// table — the only *summation* in the bound — is bit-identical whichever
/// kernel produced the minima.
pub fn pendant_suffix(minrow: &[f64]) -> Vec<f64> {
    let n = minrow.len();
    let mut suffix = vec![0.0; n + 1];
    for t in (2..n).rev() {
        suffix[t] = suffix[t + 1] + minrow[t] / 2.0;
    }
    suffix
}

/// No strict close pair: the triple constrains nothing.
pub const CLOSE_NONE: u8 = 0;
/// The close pair is `(i, j)` — the earlier two species.
pub const CLOSE_EARLIER: u8 = 1;
/// The close pair is `(i, s)` — the newest species with the lower one.
pub const CLOSE_WITH_LOW: u8 = 2;
/// The close pair is `(j, s)` — the newest species with the higher one.
pub const CLOSE_WITH_HIGH: u8 = 3;

/// Flat index of the sorted triple `i < j < s`: triples with maximum
/// element `< s` occupy the first `C(s,3)` slots, those with maximum `s`
/// and middle `< j` the next `C(j,2)`, then `i` picks the slot.
#[inline]
pub fn triple_index(i: usize, j: usize, s: usize) -> usize {
    debug_assert!(i < j && j < s);
    s * (s - 1) * (s - 2) / 6 + j * (j - 1) / 2 + i
}

/// Number of entries a close-pair table over `n` taxa needs: `C(n,3)`.
#[inline]
pub fn close_pair_table_len(n: usize) -> usize {
    n * n.saturating_sub(1) * n.saturating_sub(2) / 6
}

/// Classifies the triple with distances `d_ij`, `d_is`, `d_js` (for
/// `i < j < s`): the code of the pair whose distance is strictly smaller
/// than both others, or [`CLOSE_NONE`] on ties — the matrix then does
/// not constrain the triple. Matches
/// `mutree_tree::triples::close_pair_in_matrix` decision for decision.
#[inline]
pub fn close_pair_code(d_ij: f64, d_is: f64, d_js: f64) -> u8 {
    if d_ij < d_is && d_ij < d_js {
        CLOSE_EARLIER
    } else if d_is < d_ij && d_is < d_js {
        CLOSE_WITH_LOW
    } else if d_js < d_ij && d_js < d_is {
        CLOSE_WITH_HIGH
    } else {
        CLOSE_NONE
    }
}

/// Fills `out[i] = close_pair_code(M[i,j], M[i,s], d_js)` for all
/// `i < j`, from the two solver-matrix rows of `j` and `s`: one linear
/// sweep over both rows replaces `2j` packed-triangle lookups, and the
/// three comparisons per lane vectorize. Writes exactly `out.len()`
/// codes (callers pass the `i < j` slice of the flat triple table).
///
/// # Panics
///
/// Debug builds panic when either row is shorter than `out`.
#[inline]
pub fn close_pair_row(row_j: &[f64], row_s: &[f64], d_js: f64, out: &mut [u8]) {
    debug_assert!(out.len() <= row_j.len() && out.len() <= row_s.len());
    for (i, code) in out.iter_mut().enumerate() {
        *code = close_pair_code(row_j[i], row_s[i], d_js);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The scalar reference the lane kernel must reproduce bit for bit.
    fn max_in_mask_scalar(row: &[f64], words: &[u64]) -> f64 {
        let mut best = 0.0f64;
        for (w, &word) in words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let y = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                best = best.max(row[y]);
            }
        }
        best
    }

    /// Deterministic pseudo-random f64 in [0, 100) and u64, no external
    /// crates needed at this layer.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn rand_row(state: &mut u64, n: usize, stride: usize) -> Vec<f64> {
        let mut row = vec![f64::NAN; stride];
        for lane in row.iter_mut().take(n) {
            *lane = (splitmix(state) % 10_000) as f64 / 100.0;
        }
        row
    }

    #[test]
    fn max_in_mask_matches_scalar_reference() {
        let mut st = 0xfeed_u64;
        for n in [1usize, 7, 63, 64, 65, 100, 128, 200] {
            let stride = n.div_ceil(64) * 64;
            let row = rand_row(&mut st, n, stride);
            let words = stride / 64;
            for _trial in 0..50 {
                let mut mask = vec![0u64; words];
                for (w, word) in mask.iter_mut().enumerate() {
                    let lo = w * 64;
                    if lo >= n {
                        continue;
                    }
                    let valid = (n - lo).min(64);
                    let all = if valid == 64 { !0 } else { (1u64 << valid) - 1 };
                    *word = splitmix(&mut st) & splitmix(&mut st) & all;
                }
                let got = max_in_mask(&row, &mask);
                let want = max_in_mask_scalar(&row, &mask);
                assert_eq!(got.to_bits(), want.to_bits(), "n = {n}, mask = {mask:?}");
                assert!(!got.is_nan(), "padding leaked at n = {n}");
            }
        }
    }

    #[test]
    fn max_in_mask_empty_mask_is_zero() {
        let row = [f64::NAN; 64];
        assert_eq!(max_in_mask(&row, &[0]), 0.0);
        assert_eq!(max_in_mask(&row, &[]), 0.0);
    }

    #[test]
    fn min_prefix_matches_fold() {
        let mut st = 0xbead_u64;
        for n in [0usize, 1, 5, 8, 9, 31, 64, 100] {
            let stride = n.max(1).div_ceil(64) * 64;
            let row = rand_row(&mut st, n, stride);
            let want = row[..n].iter().copied().fold(f64::INFINITY, f64::min);
            assert_eq!(min_prefix(&row, n).to_bits(), want.to_bits(), "n = {n}");
        }
    }

    #[test]
    fn pendant_suffix_matches_reference_recurrence() {
        // minrow for the 5-taxon matrix used across the problem tests:
        // minrow[2] = 4, minrow[3] = 3, minrow[4] = 5.
        let suffix = pendant_suffix(&[0.0, 0.0, 4.0, 3.0, 5.0]);
        assert_eq!(suffix.len(), 6);
        assert!((suffix[2] - 6.0).abs() < 1e-12);
        assert!((suffix[4] - 2.5).abs() < 1e-12);
        assert_eq!(suffix[5], 0.0);
    }

    #[test]
    fn close_pair_codes_cover_all_arms() {
        assert_eq!(close_pair_code(1.0, 5.0, 5.0), CLOSE_EARLIER);
        assert_eq!(close_pair_code(5.0, 1.0, 5.0), CLOSE_WITH_LOW);
        assert_eq!(close_pair_code(5.0, 5.0, 1.0), CLOSE_WITH_HIGH);
        assert_eq!(close_pair_code(5.0, 5.0, 5.0), CLOSE_NONE);
        assert_eq!(close_pair_code(1.0, 1.0, 5.0), CLOSE_NONE);
    }

    #[test]
    fn triple_index_is_a_bijection_onto_the_table() {
        let n = 9;
        let mut seen = vec![false; close_pair_table_len(n)];
        for s in 2..n {
            for j in 1..s {
                for i in 0..j {
                    let idx = triple_index(i, j, s);
                    assert!(!seen[idx], "({i},{j},{s}) collides");
                    seen[idx] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn kernel_names_parse_known_values_only() {
        assert_eq!(BoundKernel::parse("scalar"), Some(BoundKernel::Scalar));
        assert_eq!(BoundKernel::parse(" lanes\n"), Some(BoundKernel::Lanes));
        assert_eq!(BoundKernel::parse("simd512"), None);
        assert_eq!(BoundKernel::parse(""), None);
    }
}
