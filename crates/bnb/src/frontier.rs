//! The sharded work-stealing frontier behind the thread-parallel drivers.
//!
//! The first-generation parallel driver kept every open node in one
//! `Mutex<Vec<N>>` guarded by a single condvar: every donation and every
//! starved worker serialized on the same lock, and a worker that found
//! the pool empty fell back to a fixed 25 ms timed poll. This module
//! replaces that with the scheme the HPC Asia 2005 master/slave design
//! points at — keep work local, touch shared state only at batch
//! boundaries:
//!
//! * each worker owns a **local LIFO stack** ([`WorkerFrontier`], a
//!   [`Frontier`] impl) and dives depth-first on its own children, so the
//!   per-node expansion fast path acquires **no mutex at all**;
//! * surplus nodes are **donated in batches** to one of `S` sharded
//!   overflow pools (`S` chosen from the worker count, overridable via
//!   [`SearchOptions::frontier_shards`](crate::SearchOptions::frontier_shards),
//!   which callers resolve from the `MUTREE_FRONTIER_SHARDS` environment
//!   hook), and only when a peer is actually parked waiting for work;
//! * a starved worker sweeps the shards in a **randomized victim order**
//!   (seeded deterministically from its worker ordinal) and **steals half
//!   a victim's batch** in one lock acquisition;
//! * **termination** is an atomic *in-flight* node counter — queued plus
//!   currently-expanding nodes — that hits zero exactly when the search
//!   tree is exhausted, replacing the old `idle == alive` condvar dance;
//! * a worker that finds every shard empty **parks on an eventcount**
//!   (an atomic generation counter plus a condvar) instead of polling.
//!
//! # The parking protocol has no missed wakeups
//!
//! The old 25 ms poll existed to bound the cost of a lost notification.
//! The eventcount removes the race entirely, so the missed-wakeup bound
//! is **zero** and no timed wait remains anywhere in the driver. Proof
//! sketch (all four accesses are `SeqCst`, so they have one total order):
//!
//! 1. a parker loads the generation `e = events`, re-sweeps every shard,
//!    and only then sleeps — and it re-checks `events == e` *under the
//!    park mutex* before every wait;
//! 2. a donor publishes its batch (shard mutex), *then* increments
//!    `events`, *then* reads `sleepers` and notifies under the park mutex
//!    if anyone is registered.
//!
//! If the donor's increment lands before the parker's final check, the
//! parker observes `events != e` and never sleeps. If it lands after,
//! then in the `SeqCst` total order the parker's earlier
//! `sleepers += 1` precedes the donor's `sleepers` read, so the donor
//! sees a sleeper and takes the park mutex to notify — and since the
//! parker only releases that mutex atomically with going to sleep, the
//! notification cannot fall between check and wait. Either way the
//! parker wakes, re-sweeps, and finds the donated batch.
//!
//! Termination is live for the same reason: if `in_flight > 0` and every
//! worker is parked, the outstanding node must sit in a shard (a local
//! stack or an in-progress expansion implies a non-parked worker), and
//! whichever donor put it there either prevented a sleep or woke a
//! sleeper. When `in_flight` reaches zero the last decrement closes the
//! frontier and wakes everyone.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

use crate::kernel::{shed_worst_from_stack, Frontier, SearchEvent, SearchObserver};

/// Hard ceiling on the shard count (also the cap for the
/// [`SearchOptions::frontier_shards`](crate::SearchOptions::frontier_shards)
/// override). More shards than this buys nothing: steals sweep every
/// shard, so the sweep cost is linear in it.
const MAX_SHARDS: usize = 64;

/// A worker only donates when its local stack holds at least this many
/// nodes, so it always keeps a meaningful depth-first runway for itself.
const DONATE_MIN_LOCAL: usize = 4;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panicking worker holds no broken invariant: every structure here
    // is a plain work list, safe to keep using after poison.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The shared half of the work-stealing frontier: sharded overflow
/// pools, the in-flight termination counter and the eventcount parking
/// lot. One instance is shared by all workers of one search.
pub struct ShardedFrontier<N> {
    /// Overflow pools. Donors append batches at the back; thieves drain
    /// from the front, so within a shard the oldest (most promising,
    /// shallowest) donations leave first.
    shards: Vec<Mutex<Vec<N>>>,
    /// Open nodes anywhere (shards + local stacks) plus nodes currently
    /// being expanded. Zero ⇔ the search tree is exhausted.
    in_flight: AtomicU64,
    /// Nodes currently sitting in the overflow shards. Donors use this to
    /// throttle: once a batch is available for the parked workers, nobody
    /// donates again until it has been consumed. Without the throttle a
    /// single slow-to-wake sleeper (common when threads outnumber cores)
    /// draws a donation from every running worker on every expansion.
    pooled: AtomicU64,
    /// Set once: either `in_flight` hit zero or a stop was requested.
    closed: AtomicBool,
    /// Eventcount generation, bumped by every donation, seed and close.
    events: AtomicU64,
    /// Workers currently inside [`park`](ShardedFrontier::park).
    sleepers: AtomicU64,
    park_lock: Mutex<()>,
    park_cv: Condvar,
    /// Worker-ordinal allocator; seeds each worker's victim-order RNG.
    next_worker: AtomicU64,
}

impl<N> ShardedFrontier<N> {
    /// A frontier with exactly `shards` overflow pools (clamped to
    /// `1..=MAX_SHARDS`).
    pub fn new(shards: usize) -> Self {
        let shards = shards.clamp(1, MAX_SHARDS);
        ShardedFrontier {
            shards: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            in_flight: AtomicU64::new(0),
            pooled: AtomicU64::new(0),
            closed: AtomicBool::new(false),
            events: AtomicU64::new(0),
            sleepers: AtomicU64::new(0),
            park_lock: Mutex::new(()),
            park_cv: Condvar::new(),
            next_worker: AtomicU64::new(0),
        }
    }

    /// A frontier sized for `workers` threads: the next power of two ≥
    /// `workers`, capped at 16 — enough that donors rarely collide on a
    /// shard, small enough that a steal sweep stays cheap.
    pub fn for_workers(workers: usize) -> Self {
        ShardedFrontier::for_workers_with(workers, None)
    }

    /// [`for_workers`](Self::for_workers) with an explicit shard-count
    /// override (clamped to `1..=64`; zero means no override). Drivers
    /// pass [`SearchOptions::frontier_shards`](crate::SearchOptions::frontier_shards)
    /// here, which CI forces to the maximum to stress sharding.
    pub fn for_workers_with(workers: usize, shards: Option<usize>) -> Self {
        ShardedFrontier::new(shard_count_with(shards, workers))
    }

    /// Number of overflow shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Open nodes anywhere right now: queued in shards, on workers'
    /// local stacks, or mid-expansion. The memory watchdog compares this
    /// against the configured [`MemoryBudget`](crate::MemoryBudget) cap.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Charges `n` nodes to the in-flight counter *without* queueing them
    /// anywhere — used by the scoped driver, whose seeds are pre-dealt to
    /// the workers' local stacks. Must happen before any worker starts,
    /// so the counter can never transiently read zero mid-search.
    pub fn charge(&self, n: u64) {
        self.in_flight.fetch_add(n, Ordering::SeqCst);
    }

    /// Seeds the shards round-robin with `nodes` (already sorted most
    /// promising first, so each shard's front holds its best seed) and
    /// charges them in flight. Used by the pooled driver, whose workers
    /// start with empty local stacks and steal their first batch.
    pub fn seed(&self, nodes: Vec<N>) {
        if nodes.is_empty() {
            return;
        }
        self.charge(nodes.len() as u64);
        self.pooled.fetch_add(nodes.len() as u64, Ordering::SeqCst);
        for (i, node) in nodes.into_iter().enumerate() {
            lock(&self.shards[i % self.shards.len()]).push(node);
        }
        self.events.fetch_add(1, Ordering::SeqCst);
    }

    /// Marks one in-flight node finished (its expansion is done and its
    /// surviving children, if any, were charged separately). The worker
    /// whose decrement reaches zero closes the frontier and wakes every
    /// parked peer: the search is over.
    pub fn finish_node(&self) {
        if self.in_flight.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.close();
        }
    }

    /// Atomically converts one finished parent's in-flight unit into
    /// `kept` child units — the netted form of `charge(kept)` followed by
    /// [`finish_node`](Self::finish_node). The counter moves in a single
    /// transition, so it still can never transiently read zero under a
    /// live expansion, and in the common tight-search case of exactly one
    /// surviving child the fast path touches no shared state at all.
    pub fn settle(&self, kept: u64) {
        match kept {
            1 => {}
            0 => self.finish_node(),
            k => {
                self.in_flight.fetch_add(k - 1, Ordering::SeqCst);
            }
        }
    }

    /// Closes the frontier (idempotent) and wakes all parked workers.
    /// Called on natural exhaustion and on every early stop — including a
    /// worker panic, which is why the in-flight counter never needs
    /// repairing on the unwind path.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.events.fetch_add(1, Ordering::SeqCst);
        let _g = lock(&self.park_lock);
        self.park_cv.notify_all();
    }

    /// Whether the search is over (exhausted or stopped).
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Appends a donated batch to shard `shard` and wakes a parked worker
    /// if any is registered. The sleeper check keeps the fast path cheap:
    /// when nobody is parked, a donation is one shard lock plus one
    /// atomic increment.
    fn donate(&self, shard: usize, batch: Vec<N>) {
        self.pooled.fetch_add(batch.len() as u64, Ordering::SeqCst);
        lock(&self.shards[shard]).extend(batch);
        self.events.fetch_add(1, Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _g = lock(&self.park_lock);
            self.park_cv.notify_all();
        }
    }

    /// Blocks until the eventcount generation moves past `seen` or the
    /// frontier closes. See the module docs for why this cannot miss a
    /// wakeup (and therefore needs no timeout).
    fn park(&self, seen: u64) {
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        {
            let mut g = lock(&self.park_lock);
            while self.events.load(Ordering::SeqCst) == seen && !self.is_closed() {
                g = self.park_cv.wait(g).unwrap_or_else(|e| e.into_inner());
            }
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Shard count policy: an explicit override (clamped to `1..=64`; zero
/// ignored), else the next power of two ≥ `workers`, capped at 16. Pure:
/// the `MUTREE_FRONTIER_SHARDS` environment hook is resolved into the
/// override by the engine crate's plan resolution, never here.
fn shard_count_with(override_shards: Option<usize>, workers: usize) -> usize {
    if let Some(n) = override_shards {
        if n >= 1 {
            return n.min(MAX_SHARDS);
        }
    }
    workers.clamp(1, 16).next_power_of_two()
}

/// One worker's view of a [`ShardedFrontier`]: the local LIFO stack (a
/// [`Frontier`], so [`Expander::expand`](crate::kernel::Expander::expand)
/// absorbs children straight into it) plus the steal/donate/park
/// machinery and this worker's contention counters.
pub struct WorkerFrontier<'a, N> {
    shared: &'a ShardedFrontier<N>,
    /// Depth-first stack; the top is the most recently staged child.
    local: Vec<N>,
    /// The shard this worker donates to (its ordinal modulo the count).
    home: usize,
    /// SplitMix64 state for the randomized victim order; seeded from the
    /// worker ordinal so runs are reproducible thread-for-thread.
    rng: u64,
    /// Children absorbed since the last [`settle`](Self::settle) — their
    /// in-flight charge is netted against the parent's release there.
    pending: u64,
    /// Batches stolen from overflow shards.
    pub steals: u64,
    /// Surplus batches donated to the home shard.
    pub donations: u64,
    /// Times this worker parked with every shard empty.
    pub parks: u64,
}

impl<'a, N> WorkerFrontier<'a, N> {
    /// Registers a worker with `shared`, starting from the pre-dealt
    /// `local` stack (empty for pooled workers, which steal their first
    /// batch instead). The nodes in `local` must already be charged in
    /// flight via [`ShardedFrontier::charge`].
    pub fn new(shared: &'a ShardedFrontier<N>, local: Vec<N>) -> Self {
        let ordinal = shared.next_worker.fetch_add(1, Ordering::Relaxed);
        WorkerFrontier {
            shared,
            local,
            home: (ordinal as usize) % shared.shards.len(),
            // Any non-degenerate per-ordinal seed works; the golden-ratio
            // stride keeps consecutive ordinals' victim orders unrelated.
            rng: ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
            pending: 0,
            steals: 0,
            donations: 0,
            parks: 0,
        }
    }

    /// SplitMix64 step — cheap, deterministic, and good enough to
    /// decorrelate victim orders across workers.
    fn next_rand(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Blocks until a node is available (steal) or the search is over
    /// (`None`). Call only when the local stack is empty.
    pub fn acquire<O: SearchObserver>(&mut self, observer: &mut O) -> Option<N> {
        loop {
            if self.shared.is_closed() {
                return None;
            }
            if let Some(n) = self.try_steal(observer) {
                return Some(n);
            }
            // Record the generation, then sweep once more: any donation
            // that the sweep misses must have bumped `events` past
            // `seen`, so the park below will not sleep on it.
            let seen = self.shared.events.load(Ordering::SeqCst);
            if self.shared.is_closed() {
                return None;
            }
            if let Some(n) = self.try_steal(observer) {
                return Some(n);
            }
            self.parks += 1;
            observer.on_event(SearchEvent::Parked);
            self.shared.park(seen);
        }
    }

    /// Sweeps the shards in this worker's randomized order and steals
    /// half the first non-empty one (at least one node) in a single lock
    /// acquisition. The batch lands on the local stack with the victim's
    /// oldest (most promising) node on top.
    fn try_steal<O: SearchObserver>(&mut self, observer: &mut O) -> Option<N> {
        let nshards = self.shared.shards.len();
        let start = (self.next_rand() as usize) % nshards;
        for k in 0..nshards {
            let shard = &self.shared.shards[(start + k) % nshards];
            let mut pool = lock(shard);
            let len = pool.len();
            if len == 0 {
                continue;
            }
            let take = len.div_ceil(2);
            let batch: Vec<N> = pool.drain(..take).collect();
            drop(pool);
            self.shared.pooled.fetch_sub(take as u64, Ordering::SeqCst);
            self.steals += 1;
            observer.on_event(SearchEvent::Stolen { nodes: take });
            // Reverse so batch[0] — the shard's oldest entry — ends on
            // top of the stack and is expanded first.
            self.local.extend(batch.into_iter().rev());
            return self.local.pop();
        }
        None
    }

    /// Donates the bottom half of the local stack — the shallowest nodes,
    /// i.e. the largest subtrees — to the home shard, but only when a
    /// peer is actually parked, the overflow pools are dry (one batch at
    /// a time is enough: a parker swept every shard before sleeping, so
    /// anything pooled is already spoken for) and this worker keeps at
    /// least `DONATE_MIN_LOCAL / 2` nodes of runway. Call at the batch
    /// boundary after an expansion; the checks are plain atomic loads, so
    /// the per-node fast path stays lock-free.
    pub fn maybe_donate<O: SearchObserver>(&mut self, observer: &mut O) {
        if self.local.len() < DONATE_MIN_LOCAL {
            return;
        }
        if self.shared.sleepers.load(Ordering::SeqCst) == 0
            || self.shared.pooled.load(Ordering::SeqCst) > 0
        {
            return;
        }
        let half = self.local.len() / 2;
        let batch: Vec<N> = self.local.drain(..half).collect();
        self.donations += 1;
        observer.on_event(SearchEvent::Donated { nodes: half });
        self.shared.donate(self.home, batch);
    }

    /// Settles the just-finished expansion with the shared in-flight
    /// counter: the parent's unit converts into the children absorbed
    /// since the last settle, in one atomic transition (or none, when
    /// exactly one child survived). Call once per expanded node, before
    /// [`maybe_donate`](Self::maybe_donate) — a child must be counted
    /// before it can reach a shard where a thief could finish it.
    pub fn settle(&mut self) {
        let kept = self.pending;
        self.pending = 0;
        self.shared.settle(kept);
    }

    /// Nodes currently on the local stack.
    pub fn local_len(&self) -> usize {
        self.local.len()
    }

    /// Memory-watchdog shedding: drops up to `excess` worst-bound nodes
    /// from the *local* stack and releases their in-flight units. Each
    /// worker trims its own stack when it notices a budget breach, so
    /// the global count converges back under the cap without any
    /// cross-worker coordination; nodes parked in overflow shards are
    /// trimmed by whichever worker steals them next. Call only between
    /// expansions (after [`settle`](Self::settle)) — the released units
    /// may close the frontier if nothing else is in flight.
    pub fn shed_local(&mut self, excess: usize, lb: &mut dyn FnMut(&N) -> f64) -> usize {
        debug_assert_eq!(self.pending, 0, "shed_local called mid-expansion");
        let dropped = shed_worst_from_stack(&mut self.local, excess, lb);
        for _ in 0..dropped {
            self.shared.finish_node();
        }
        dropped
    }
}

impl<N> Frontier<N> for WorkerFrontier<'_, N> {
    fn pop(&mut self) -> Option<N> {
        self.local.pop()
    }

    fn absorb(&mut self, staged: &mut Vec<(f64, N)>) {
        // Record the children locally; the shared counter is updated in
        // one netted transition by `settle`, while the parent's own
        // in-flight unit is still outstanding — the counter cannot dip
        // to zero under a live expansion, and the per-node fast path
        // pays at most one atomic RMW.
        self.pending += staged.len() as u64;
        // Reverse branch order so the first child — the one the problem
        // tuned to find good incumbents early — pops first.
        for (_, node) in staged.drain(..).rev() {
            self.local.push(node);
        }
    }

    fn len(&self) -> usize {
        self.local.len()
    }

    fn shed(&mut self, excess: usize, lb: &mut dyn FnMut(&N) -> f64) -> usize {
        self.shed_local(excess, lb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn shard_count_policy() {
        assert_eq!(shard_count_with(None, 1), 1);
        assert_eq!(shard_count_with(None, 3), 4);
        assert_eq!(shard_count_with(None, 8), 8);
        assert_eq!(shard_count_with(None, 100), 16);
        assert_eq!(shard_count_with(Some(6), 100), 6);
        assert_eq!(shard_count_with(Some(9999), 1), MAX_SHARDS);
        assert_eq!(shard_count_with(Some(0), 3), 4);
        assert_eq!(ShardedFrontier::<u32>::new(0).shard_count(), 1);
        assert_eq!(ShardedFrontier::<u32>::new(1000).shard_count(), 64);
    }

    #[test]
    fn in_flight_zero_closes() {
        let f: ShardedFrontier<u32> = ShardedFrontier::new(2);
        f.seed(vec![1, 2, 3]);
        assert!(!f.is_closed());
        f.finish_node();
        f.finish_node();
        assert!(!f.is_closed());
        f.finish_node();
        assert!(f.is_closed());
    }

    #[test]
    fn steal_half_takes_the_front() {
        let f: ShardedFrontier<u32> = ShardedFrontier::new(1);
        f.seed(vec![10, 11, 12, 13]);
        let mut w = WorkerFrontier::new(&f, Vec::new());
        // 4 queued: the thief takes ⌈4/2⌉ = 2 from the front and returns
        // the oldest first.
        assert_eq!(w.try_steal(&mut ()), Some(10));
        assert_eq!(w.pop(), Some(11));
        assert_eq!(w.pop(), None);
        assert_eq!(w.steals, 1);
        // The remaining half is still in the shard.
        assert_eq!(lock(&f.shards[0]).len(), 2);
    }

    #[test]
    fn steal_conserves_nodes_across_workers() {
        let f: ShardedFrontier<u64> = ShardedFrontier::new(4);
        let total: u64 = 100;
        f.seed((0..total).collect());
        let seen_sum = AtomicU64::new(0);
        let seen_count = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut w = WorkerFrontier::new(&f, Vec::new());
                    let mut obs = ();
                    loop {
                        let node = match w.pop() {
                            Some(n) => n,
                            None => match w.acquire(&mut obs) {
                                Some(n) => n,
                                None => break,
                            },
                        };
                        seen_sum.fetch_add(node, Ordering::Relaxed);
                        seen_count.fetch_add(1, Ordering::Relaxed);
                        f.finish_node();
                    }
                });
            }
        });
        // Every seeded node consumed exactly once: count and checksum
        // both match, so nothing was lost or duplicated.
        assert_eq!(seen_count.load(Ordering::Relaxed) as u64, total);
        assert_eq!(seen_sum.load(Ordering::Relaxed), total * (total - 1) / 2);
        assert!(f.is_closed());
    }

    #[test]
    fn park_wakes_on_close() {
        let f: ShardedFrontier<u32> = ShardedFrontier::new(1);
        std::thread::scope(|s| {
            let h = s.spawn(|| {
                let mut w = WorkerFrontier::new(&f, Vec::new());
                // Blocks until close; must return None, not hang.
                w.acquire(&mut ())
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            f.close();
            assert_eq!(h.join().unwrap(), None);
        });
    }

    #[test]
    fn park_wakes_on_donation() {
        let f: ShardedFrontier<u32> = ShardedFrontier::new(2);
        // One phantom in-flight unit keeps the frontier open while the
        // consumer below waits for the late donation.
        f.charge(1);
        std::thread::scope(|s| {
            let h = s.spawn(|| {
                let mut w = WorkerFrontier::new(&f, Vec::new());
                w.acquire(&mut ())
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            let mut donor = WorkerFrontier::new(&f, vec![7, 8, 9, 10]);
            // The sleeper registered; a donation must hand it work.
            while f.sleepers.load(Ordering::SeqCst) == 0 {
                std::thread::yield_now();
            }
            donor.maybe_donate(&mut ());
            assert_eq!(donor.donations, 1);
            let got = h.join().unwrap();
            assert!(got.is_some());
            f.close();
        });
    }
}
