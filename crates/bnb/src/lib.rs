//! A generic branch-and-bound engine.
//!
//! Branch-and-bound explores a tree of partial solutions (*nodes*), pruning
//! every subtree whose [lower bound](Problem::lower_bound) cannot beat the
//! best complete solution found so far (the *upper bound* or *incumbent*).
//! This crate separates the search machinery from the problem:
//!
//! * implement [`Problem`] for your optimization problem;
//! * every driver runs the same audited per-node expansion sequence,
//!   owned once by the [`kernel`] module ([`kernel::Expander`]) and
//!   parameterized by a frontier (node-selection order), an incumbent
//!   sink and a branch budget — drivers are thin schedulers around it;
//! * run [`solve_sequential`] for the classic depth-first search, or
//!   [`solve_parallel`] for the master/slave scheme of the PaCT 2005 /
//!   HPC Asia 2005 papers — a shared atomic upper bound every worker sees
//!   immediately, per-worker *local stacks* searched depth-first, and a
//!   [sharded work-stealing frontier](frontier) for load balancing: the
//!   master pre-branches until `2 × workers` open nodes exist, sorts them
//!   by lower bound and deals them cyclically; a worker whose stack
//!   drains steals half a batch from a sharded overflow pool, and a
//!   loaded worker donates its shallowest nodes in batches whenever a
//!   peer is parked waiting. The per-node expansion fast path acquires
//!   no lock, and termination is an atomic in-flight node counter with
//!   eventcount parking — no timed polling anywhere.
//!
//! Because a better incumbent found by *any* worker immediately tightens
//! pruning in *all* workers, the parallel search can visit strictly fewer
//! nodes than the sequential one — the super-linear speedups reported in
//! the paper. [`SearchOutcome::stats`] exposes node counts so experiments
//! can observe exactly that effect.
//!
//! # Anytime operation and fault isolation
//!
//! Both drivers are *anytime*: they can be stopped by a branch budget, a
//! wall-clock deadline ([`SearchOptions::deadline`]) or a [`CancelToken`],
//! and always return the best incumbent found with an accurate
//! [`StopReason`] in [`SearchOutcome::stop`]. The parallel driver also
//! isolates panics raised inside [`Problem`] callbacks: a panicking worker
//! closes the frontier on its way out, waking every parked peer, so the
//! run drains without deadlocking and reports
//! [`StopReason::WorkerPanicked`] while keeping
//! all previously published incumbents. The [`fault`] module provides a
//! deterministic fault-injection wrapper used to test exactly these
//! properties.
//!
//! # Example: subset-sum as branch-and-bound
//!
//! ```
//! use mutree_bnb::{ChildBuf, Problem, SearchMode, SearchOptions, solve_sequential};
//!
//! /// Choose a subset of `items` minimizing |sum - target|.
//! struct Closest { items: Vec<f64>, target: f64 }
//!
//! #[derive(Clone)]
//! struct Pick { taken: Vec<bool>, sum: f64 }
//!
//! impl Problem for Closest {
//!     type Node = Pick;
//!     type Solution = Vec<bool>;
//!
//!     fn root(&self) -> Pick { Pick { taken: vec![], sum: 0.0 } }
//!     fn lower_bound(&self, n: &Pick) -> f64 {
//!         // Remaining items can only add weight: if sum already exceeds
//!         // the target the gap can only grow.
//!         if n.sum > self.target { n.sum - self.target } else { 0.0 }
//!     }
//!     fn solution(&self, n: &Pick) -> Option<(Vec<bool>, f64)> {
//!         (n.taken.len() == self.items.len())
//!             .then(|| (n.taken.clone(), (n.sum - self.target).abs()))
//!     }
//!     fn branch(&self, n: &Pick, out: &mut ChildBuf<Pick>) {
//!         let i = n.taken.len();
//!         for take in [false, true] {
//!             let mut c = n.clone();
//!             c.taken.push(take);
//!             if take { c.sum += self.items[i]; }
//!             out.push(c);
//!         }
//!     }
//! }
//!
//! let p = Closest { items: vec![3.0, 5.0, 9.0, 14.0], target: 17.0 };
//! let out = solve_sequential(&p, &SearchOptions::new(SearchMode::BestOne));
//! assert_eq!(out.best_value.unwrap(), 0.0); // 3 + 14 = 17
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bound;
mod cancel;
pub mod checkpoint;
pub mod fault;
pub mod frontier;
pub mod hash;
pub mod kernel;
mod parallel;
mod pool;
mod problem;
pub mod propagate;
mod sequential;
mod shared_bound;
mod trace;

pub use bound::BoundKernel;
pub use cancel::CancelToken;
pub use checkpoint::{CheckpointError, CheckpointFile, CheckpointPolicy};
pub use frontier::{ShardedFrontier, WorkerFrontier};
pub use kernel::{sanitize_lb, ChildBuf, Incumbents, PruneReason, SearchEvent, SearchObserver};
pub use parallel::{
    solve_parallel, solve_parallel_global, solve_parallel_observed, solve_parallel_pooled,
};
pub use pool::{PoolJob, WorkerPool};
pub use problem::{
    MemoryBudget, Problem, SearchMode, SearchOptions, SearchOutcome, SearchStats, StopReason,
    Strategy,
};
pub use propagate::{PruneStrategy, TripleDomains};
pub use sequential::{solve_sequential, solve_sequential_observed};
pub use shared_bound::SharedBound;
pub use trace::{LoggingObserver, TraceLevel};
