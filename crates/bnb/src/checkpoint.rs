//! Crash-safe checkpoint files: versioned, checksummed, atomically
//! replaced snapshots of a search's best incumbent.
//!
//! A checkpoint records the best objective value seen so far, an opaque
//! solution payload produced by
//! [`Problem::encode_solution`](crate::Problem::encode_solution), and a
//! compact frontier summary (open-node and branched counters) for
//! observability. Drivers write snapshots periodically — every
//! [`CheckpointPolicy::interval`] branch operations — through the shared
//! expansion kernel, so every driver (sequential, thread-parallel,
//! pooled, simulated cluster) gets the same behavior.
//!
//! # On-disk format (version 1)
//!
//! All integers little-endian:
//!
//! ```text
//! magic     8 bytes  "MUTCKPT\0"
//! version   u32      1
//! value     f64      best incumbent objective (IEEE-754 bits)
//! open      u64      open nodes at snapshot time (frontier summary)
//! branched  u64      branch operations at snapshot time
//! length    u64      payload length in bytes
//! payload   [u8]     opaque solution encoding
//! checksum  u64      FNV-1a over every preceding byte
//! ```
//!
//! Writes go to a uniquely named sibling temporary file first and are
//! published with an atomic `rename`, so a reader (or a resumed run)
//! never observes a torn file; a crash mid-write leaves the previous
//! snapshot intact. Reads verify magic, version and checksum and fail
//! loudly on any mismatch — a corrupt checkpoint is an error, never a
//! silently wrong warm start.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::hash::fnv1a;

/// File magic for checkpoint files.
const MAGIC: [u8; 8] = *b"MUTCKPT\0";

/// Current (and only) format version.
const VERSION: u32 = 1;

/// When and where a search writes incumbent snapshots.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Destination file. The parent directory must exist.
    pub path: PathBuf,
    /// Branch operations between snapshot attempts (per driver thread;
    /// clamped up to 1).
    pub interval: u64,
}

impl CheckpointPolicy {
    /// A policy writing to `path` every 512 branch operations.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointPolicy {
            path: path.into(),
            interval: 512,
        }
    }

    /// Sets the snapshot cadence in branch operations.
    pub fn interval(mut self, every: u64) -> Self {
        self.interval = every.max(1);
        self
    }
}

/// The decoded contents of a checkpoint file.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointFile {
    /// Best objective value at snapshot time.
    pub best_value: f64,
    /// Open nodes at snapshot time (frontier summary; informational).
    pub open_nodes: u64,
    /// Branch operations performed by the snapshotting driver thread.
    pub branched: u64,
    /// Opaque solution payload (see
    /// [`Problem::encode_solution`](crate::Problem::encode_solution)).
    pub payload: Vec<u8>,
}

/// Why a checkpoint could not be read.
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying filesystem operation failed.
    Io(io::Error),
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The file's format version is not supported by this build.
    UnsupportedVersion(u32),
    /// The file ends before the declared payload and checksum.
    Truncated,
    /// The stored checksum does not match the contents.
    ChecksumMismatch,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a mutree checkpoint file"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::Truncated => write!(f, "checkpoint file is truncated"),
            CheckpointError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Serializes a checkpoint into its on-disk byte layout.
pub fn encode(file: &CheckpointFile) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 4 + 8 * 4 + file.payload.len() + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&file.best_value.to_bits().to_le_bytes());
    out.extend_from_slice(&file.open_nodes.to_le_bytes());
    out.extend_from_slice(&file.branched.to_le_bytes());
    out.extend_from_slice(&(file.payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&file.payload);
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Parses the on-disk byte layout, verifying magic, version and checksum.
pub fn decode(bytes: &[u8]) -> Result<CheckpointFile, CheckpointError> {
    let take = |off: usize, len: usize| -> Result<&[u8], CheckpointError> {
        off.checked_add(len)
            .and_then(|end| bytes.get(off..end))
            .ok_or(CheckpointError::Truncated)
    };
    if bytes.len() < 8 {
        return Err(CheckpointError::Truncated);
    }
    if bytes[..8] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let u32le = |s: &[u8]| u32::from_le_bytes(s.try_into().expect("4-byte slice"));
    let u64le = |s: &[u8]| u64::from_le_bytes(s.try_into().expect("8-byte slice"));
    let version = u32le(take(8, 4)?);
    if version != VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let best_value = f64::from_bits(u64le(take(12, 8)?));
    let open_nodes = u64le(take(20, 8)?);
    let branched = u64le(take(28, 8)?);
    let len = u64le(take(36, 8)?) as usize;
    let payload = take(44, len)?.to_vec();
    let stored = u64le(take(44 + len, 8)?);
    if fnv1a(&bytes[..44 + len]) != stored {
        return Err(CheckpointError::ChecksumMismatch);
    }
    Ok(CheckpointFile {
        best_value,
        open_nodes,
        branched,
        payload,
    })
}

/// Writes `file` to `path` atomically: the bytes land in a uniquely named
/// sibling temporary first and are published with `rename`, so concurrent
/// writers (parallel workers sharing one path) interleave to
/// last-writer-wins whole files, never torn ones.
pub fn write_atomic(path: &Path, file: &CheckpointFile) -> io::Result<()> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
    tmp_name.push(format!(".tmp.{}.{n}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, encode(file))?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Reads and verifies the checkpoint at `path`.
pub fn read(path: &Path) -> Result<CheckpointFile, CheckpointError> {
    decode(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckpointFile {
        CheckpointFile {
            best_value: 42.5,
            open_nodes: 17,
            branched: 1234,
            payload: vec![1, 2, 3, 4, 5],
        }
    }

    #[test]
    fn round_trips_through_bytes() {
        let f = sample();
        assert_eq!(decode(&encode(&f)).unwrap(), f);
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("mutree-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.ckpt");
        write_atomic(&path, &sample()).unwrap();
        assert_eq!(read(&path).unwrap(), sample());
        // A second write replaces, never appends.
        let mut second = sample();
        second.best_value = 40.0;
        write_atomic(&path, &second).unwrap();
        assert_eq!(read(&path).unwrap(), second);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = encode(&sample());
        // Flip a payload byte: checksum must catch it.
        bytes[45] ^= 0xFF;
        assert!(matches!(
            decode(&bytes),
            Err(CheckpointError::ChecksumMismatch)
        ));
        // Truncation.
        let short = &encode(&sample())[..20];
        assert!(matches!(decode(short), Err(CheckpointError::Truncated)));
        // Wrong magic.
        let mut bad = encode(&sample());
        bad[0] = b'X';
        assert!(matches!(decode(&bad), Err(CheckpointError::BadMagic)));
        // Future version.
        let mut vers = encode(&sample());
        vers[8] = 9;
        assert!(matches!(
            decode(&vers),
            Err(CheckpointError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn empty_payload_is_valid() {
        let f = CheckpointFile {
            best_value: f64::INFINITY,
            open_nodes: 0,
            branched: 0,
            payload: Vec::new(),
        };
        assert_eq!(decode(&encode(&f)).unwrap(), f);
    }
}
