use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::{Condvar, Mutex};

use crate::sequential::Incumbents;
use crate::{Problem, SearchMode, SearchOptions, SearchOutcome, SearchStats, SharedBound};

struct PoolState<N> {
    global: Vec<N>,
    idle: usize,
    done: bool,
}

struct Shared<N> {
    state: Mutex<PoolState<N>>,
    cv: Condvar,
    bound: SharedBound,
    branches: AtomicU64,
    aborted: AtomicBool,
    workers: usize,
}

impl<N> Shared<N> {
    /// Blocks until global work is available or the search has finished.
    fn fetch_global(&self) -> Option<N> {
        let mut st = self.state.lock();
        loop {
            if st.done {
                return None;
            }
            if let Some(n) = st.global.pop() {
                return Some(n);
            }
            st.idle += 1;
            if st.idle == self.workers {
                // Everyone is out of work: the search is over.
                st.done = true;
                self.cv.notify_all();
                return None;
            }
            self.cv.wait(&mut st);
            if st.done {
                return None;
            }
            st.idle -= 1;
        }
    }

    /// Ends the search early (branch budget exhausted).
    fn abort(&self) {
        self.aborted.store(true, Ordering::Release);
        let mut st = self.state.lock();
        st.done = true;
        self.cv.notify_all();
    }
}

/// Master/slave parallel branch-and-bound (the paper's Table 1 algorithm,
/// with threads standing in for cluster nodes):
///
/// 1. the master applies the initial incumbent (Step 3) and pre-branches
///    the tree breadth-first until at least `2 × workers` open nodes exist
///    (Step 5);
/// 2. open nodes are sorted by lower bound and dealt cyclically to the
///    workers' local pools (Step 6);
/// 3. every worker runs depth-first on its local pool (Step 7), pruning
///    against the *shared* upper bound, which any improvement updates
///    atomically — the thread analogue of broadcasting the global UB;
/// 4. a worker whose local pool drains pulls from the global pool; when
///    the global pool is empty, loaded workers donate their most promising
///    pending node, so nobody idles while work remains;
/// 5. when all workers are idle and the global pool is empty the search
///    terminates and the master gathers solutions (Step 8).
///
/// With `workers == 1` this degenerates to (slightly buffered) sequential
/// search; results are always identical in optimum value to
/// [`solve_sequential`](crate::solve_sequential).
pub fn solve_parallel<P: Problem>(
    problem: &P,
    opts: &SearchOptions,
    workers: usize,
) -> SearchOutcome<P::Solution> {
    assert!(workers >= 1, "need at least one worker");
    let mut master_stats = SearchStats::default();
    let mut master_inc = Incumbents::new(opts);
    let bound = SharedBound::unbounded();
    if let Some((s, v)) = problem.initial_incumbent() {
        master_inc.offer(v, s);
        master_stats.incumbent_updates += 1;
        bound.try_improve(v);
    }

    // --- Master seeding phase: breadth-first until 2×workers open nodes.
    let target = 2 * workers;
    let mut frontier: VecDeque<P::Node> = VecDeque::new();
    frontier.push_back(problem.root());
    let mut kids = Vec::new();
    while frontier.len() < target {
        let Some(node) = frontier.pop_front() else {
            break;
        };
        let ub = bound.get();
        let lb = problem.lower_bound(&node);
        if Incumbents::<P::Solution>::prunable(lb, ub, opts) {
            master_stats.pruned += 1;
            continue;
        }
        if let Some((s, v)) = problem.solution(&node) {
            master_stats.solutions_seen += 1;
            if master_inc.offer(v, s) {
                master_stats.incumbent_updates += 1;
                bound.try_improve(v);
            }
            continue;
        }
        master_stats.branched += 1;
        kids.clear();
        problem.branch(&node, &mut kids);
        let ub = bound.get();
        for k in kids.drain(..) {
            if Incumbents::<P::Solution>::prunable(problem.lower_bound(&k), ub, opts) {
                master_stats.pruned += 1;
            } else {
                frontier.push_back(k);
            }
        }
        master_stats.peak_pool = master_stats.peak_pool.max(frontier.len() as u64);
    }

    if frontier.is_empty() {
        // The whole tree collapsed during seeding.
        let best = master_inc
            .solutions
            .iter()
            .map(|(v, _)| *v)
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.min(v)))
            });
        return SearchOutcome {
            best_value: best,
            solutions: best.map(|b| master_inc.finish(b)).unwrap_or_default(),
            stats: master_stats,
            complete: true,
        };
    }

    // --- Sort by lower bound, deal cyclically (Step 6).
    let mut seeds: Vec<(f64, P::Node)> = frontier
        .into_iter()
        .map(|n| (problem.lower_bound(&n), n))
        .collect();
    seeds.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("bounds are finite"));
    let mut locals: Vec<Vec<P::Node>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, (_, node)) in seeds.into_iter().enumerate() {
        locals[i % workers].push(node);
    }
    // Local pools are stacks: reverse so the most promising node pops first.
    for lp in &mut locals {
        lp.reverse();
    }

    let shared = Shared {
        state: Mutex::new(PoolState {
            global: Vec::new(),
            idle: 0,
            done: false,
        }),
        cv: Condvar::new(),
        bound,
        branches: AtomicU64::new(master_stats.branched),
        aborted: AtomicBool::new(false),
        workers,
    };

    // --- Worker phase.
    type WorkerHarvest<S> = Vec<(Vec<(f64, S)>, SearchStats)>;
    let results: WorkerHarvest<P::Solution> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = locals
            .into_iter()
            .map(|lp| {
                let shared = &shared;
                scope.spawn(move |_| run_worker(problem, opts, shared, lp))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("scope panicked");

    // --- Gather (Step 8).
    let mut stats = master_stats;
    let mut all: Vec<(f64, P::Solution)> = master_inc.solutions;
    for (found, wstats) in results {
        stats.merge(&wstats);
        all.extend(found);
    }
    let best = all
        .iter()
        .map(|(v, _)| *v)
        .fold(None, |acc: Option<f64>, v| {
            Some(acc.map_or(v, |a| a.min(v)))
        });
    let complete = !shared.aborted.load(Ordering::Acquire);
    match best {
        Some(bv) => {
            let eps = opts.eps(bv);
            let mut solutions: Vec<P::Solution> = all
                .into_iter()
                .filter(|(v, _)| *v <= bv + eps)
                .map(|(_, s)| s)
                .collect();
            if matches!(opts.mode, SearchMode::BestOne) {
                solutions.truncate(1);
            }
            SearchOutcome {
                best_value: Some(bv),
                solutions,
                stats,
                complete,
            }
        }
        None => SearchOutcome {
            best_value: None,
            solutions: Vec::new(),
            stats,
            complete,
        },
    }
}

fn run_worker<P: Problem>(
    problem: &P,
    opts: &SearchOptions,
    shared: &Shared<P::Node>,
    mut lp: Vec<P::Node>,
) -> (Vec<(f64, P::Solution)>, SearchStats) {
    let mut stats = SearchStats::default();
    let mut found: Vec<(f64, P::Solution)> = Vec::new();
    let mut kids = Vec::new();
    loop {
        let node = match lp.pop() {
            Some(n) => n,
            None => match shared.fetch_global() {
                Some(n) => n,
                None => break,
            },
        };
        let ub = shared.bound.get();
        let lb = problem.lower_bound(&node);
        if Incumbents::<P::Solution>::prunable(lb, ub, opts) {
            stats.pruned += 1;
            continue;
        }
        if let Some((s, v)) = problem.solution(&node) {
            stats.solutions_seen += 1;
            match opts.mode {
                SearchMode::BestOne => {
                    if shared.bound.try_improve(v) {
                        stats.incumbent_updates += 1;
                        found.push((v, s));
                    }
                }
                SearchMode::AllOptimal => {
                    if v <= ub + opts.eps(ub) {
                        found.push((v, s));
                        if shared.bound.try_improve(v) {
                            stats.incumbent_updates += 1;
                        }
                    }
                }
            }
            continue;
        }
        if shared.branches.fetch_add(1, Ordering::Relaxed) >= opts.max_branches {
            shared.abort();
            lp.clear();
            continue;
        }
        stats.branched += 1;
        kids.clear();
        problem.branch(&node, &mut kids);
        let ub = shared.bound.get();
        for k in kids.drain(..).rev() {
            if Incumbents::<P::Solution>::prunable(problem.lower_bound(&k), ub, opts) {
                stats.pruned += 1;
            } else {
                lp.push(k);
            }
        }
        stats.peak_pool = stats.peak_pool.max(lp.len() as u64);

        // Load balancing: keep the global pool stocked while we have spare
        // work (the paper's "send the last UT in sorted LP to GP").
        if lp.len() > 1 {
            let mut st = shared.state.lock();
            if st.global.is_empty() && !st.done && st.idle > 0 {
                let donated = lp.remove(0);
                st.global.push(donated);
                shared.cv.notify_one();
            }
        }
    }
    (found, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve_sequential;

    /// Minimize the weighted ones-count over binary strings, with values
    /// crafted so the tree is big enough to exercise the pools.
    struct WeightedBits {
        weights: Vec<f64>,
    }

    impl Problem for WeightedBits {
        type Node = Vec<bool>;
        type Solution = Vec<bool>;

        fn root(&self) -> Vec<bool> {
            Vec::new()
        }
        fn lower_bound(&self, node: &Vec<bool>) -> f64 {
            node.iter()
                .zip(&self.weights)
                .map(|(&b, &w)| if b { w } else { 0.0 })
                .sum()
        }
        fn solution(&self, node: &Vec<bool>) -> Option<(Vec<bool>, f64)> {
            (node.len() == self.weights.len()).then(|| (node.clone(), self.lower_bound(node)))
        }
        fn branch(&self, node: &Vec<bool>, out: &mut Vec<Vec<bool>>) {
            for b in [true, false] {
                let mut c = node.clone();
                c.push(b);
                out.push(c);
            }
        }
    }

    fn problem(n: usize) -> WeightedBits {
        WeightedBits {
            weights: (0..n).map(|i| 1.0 + (i % 3) as f64).collect(),
        }
    }

    #[test]
    fn matches_sequential_optimum() {
        let p = problem(10);
        for workers in [1, 2, 4] {
            let opts = SearchOptions::new(SearchMode::BestOne);
            let seq = solve_sequential(&p, &opts);
            let par = solve_parallel(&p, &opts, workers);
            assert_eq!(seq.best_value, par.best_value, "workers = {workers}");
            assert_eq!(par.solutions.len(), 1);
            assert!(par.complete);
        }
    }

    #[test]
    fn all_optimal_matches_sequential_set() {
        // Two zero-weight bits → 4 co-optimal solutions.
        let p = WeightedBits {
            weights: vec![0.0, 1.0, 0.0, 2.0, 1.0],
        };
        let opts = SearchOptions::new(SearchMode::AllOptimal);
        let seq = solve_sequential(&p, &opts);
        let par = solve_parallel(&p, &opts, 3);
        let norm = |mut v: Vec<Vec<bool>>| {
            v.sort();
            v.dedup();
            v
        };
        assert_eq!(seq.best_value, par.best_value);
        let par_sols = norm(par.solutions);
        assert_eq!(norm(seq.solutions), par_sols);
        assert_eq!(par_sols.len(), 4);
    }

    #[test]
    fn single_worker_agrees() {
        let p = problem(8);
        let opts = SearchOptions::new(SearchMode::AllOptimal);
        let seq = solve_sequential(&p, &opts);
        let par = solve_parallel(&p, &opts, 1);
        assert_eq!(seq.best_value, par.best_value);
        assert_eq!(seq.solutions.len(), par.solutions.len());
    }

    #[test]
    fn more_workers_than_nodes() {
        let p = problem(2);
        let opts = SearchOptions::new(SearchMode::BestOne);
        let par = solve_parallel(&p, &opts, 16);
        assert_eq!(par.best_value, Some(0.0));
    }

    #[test]
    fn budget_abort_is_reported() {
        let p = problem(18);
        let opts = SearchOptions::new(SearchMode::BestOne).max_branches(10);
        let par = solve_parallel(&p, &opts, 4);
        assert!(!par.complete);
    }

    #[test]
    fn tree_that_collapses_during_seeding() {
        struct Hinted(WeightedBits);
        impl Problem for Hinted {
            type Node = Vec<bool>;
            type Solution = Vec<bool>;
            fn root(&self) -> Vec<bool> {
                Vec::new()
            }
            fn lower_bound(&self, n: &Vec<bool>) -> f64 {
                self.0.lower_bound(n)
            }
            fn solution(&self, n: &Vec<bool>) -> Option<(Vec<bool>, f64)> {
                self.0.solution(n)
            }
            fn branch(&self, n: &Vec<bool>, out: &mut Vec<Vec<bool>>) {
                self.0.branch(n, out)
            }
            fn initial_incumbent(&self) -> Option<(Vec<bool>, f64)> {
                Some((vec![false; self.0.weights.len()], 0.0))
            }
        }
        let p = Hinted(problem(6));
        let out = solve_parallel(&p, &SearchOptions::new(SearchMode::BestOne), 4);
        assert_eq!(out.best_value, Some(0.0));
        assert_eq!(out.solutions.len(), 1);
        assert!(out.complete);
    }

    #[test]
    fn stress_many_runs_no_deadlock() {
        let p = problem(9);
        for _ in 0..25 {
            let out = solve_parallel(&p, &SearchOptions::new(SearchMode::BestOne), 4);
            assert_eq!(out.best_value, Some(0.0));
        }
    }
}
