use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::frontier::{ShardedFrontier, WorkerFrontier};
use crate::kernel::{
    sanitize_lb, AtomicBudget, BreadthFirstFrontier, DepthFirstFrontier, Expander, Frontier,
    IncumbentSink, Incumbents, SearchObserver, Step,
};
use crate::pool::{PoolJob, WorkerPool};
use crate::{
    Problem, SearchMode, SearchOptions, SearchOutcome, SearchStats, SharedBound, StopReason,
};

/// Compact first-wins encoding of the early-stop reason; `0` = running.
const STOP_NONE: u8 = 0;

fn encode_stop(r: StopReason) -> u8 {
    match r {
        StopReason::Completed => STOP_NONE,
        StopReason::BudgetExhausted => 1,
        StopReason::DeadlineExpired => 2,
        StopReason::Cancelled => 3,
        StopReason::WorkerPanicked => 4,
        StopReason::MemoryExhausted => 5,
    }
}

fn decode_stop(v: u8) -> StopReason {
    match v {
        1 => StopReason::BudgetExhausted,
        2 => StopReason::DeadlineExpired,
        3 => StopReason::Cancelled,
        4 => StopReason::WorkerPanicked,
        5 => StopReason::MemoryExhausted,
        _ => StopReason::Completed,
    }
}

/// Everything one parallel search shares between its workers: the
/// work-stealing frontier, the atomic bound, the global branch budget,
/// the stop flag and the publish-immediately solution list.
struct Shared<N, S> {
    frontier: ShardedFrontier<N>,
    bound: SharedBound,
    branches: AtomicU64,
    /// First early-stop reason to fire, `STOP_NONE` while running.
    stop: AtomicU8,
    /// Set once any worker sheds nodes for the memory watchdog: the
    /// search keeps draining the capped frontier, but a "natural"
    /// exhaustion afterwards is no longer a proof of optimality, so the
    /// final stop reason becomes [`StopReason::MemoryExhausted`].
    shed: AtomicBool,
    /// Incumbents are published here the moment they are accepted, so a
    /// worker that later panics loses none of its finds.
    found: Mutex<Vec<(f64, S)>>,
}

impl<N, S> Shared<N, S> {
    fn new(frontier: ShardedFrontier<N>, bound: SharedBound, branches: AtomicU64) -> Self {
        Shared {
            frontier,
            bound,
            branches,
            stop: AtomicU8::new(STOP_NONE),
            shed: AtomicBool::new(false),
            found: Mutex::new(Vec::new()),
        }
    }

    /// Records `reason` if no earlier stop fired, then closes the
    /// frontier, which wakes every parked worker. Safe to call from a
    /// panic's unwind path: the frontier's in-flight counter needs no
    /// repair, because closing overrides it.
    fn request_stop(&self, reason: StopReason) {
        let _ = self.stop.compare_exchange(
            STOP_NONE,
            encode_stop(reason),
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        self.frontier.close();
    }

    /// The final stop reason: the first explicit stop to fire, except
    /// that a run which shed nodes can no longer claim `Completed`.
    fn stop_reason(&self) -> StopReason {
        let stop = decode_stop(self.stop.load(Ordering::Acquire));
        if matches!(stop, StopReason::Completed) && self.shed.load(Ordering::Acquire) {
            StopReason::MemoryExhausted
        } else {
            stop
        }
    }

    fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire) != STOP_NONE
    }

    /// Marks that the memory watchdog dropped open nodes somewhere.
    fn note_shed(&self) {
        self.shed.store(true, Ordering::Release);
    }

    fn publish(&self, value: f64, solution: S) {
        self.found
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((value, solution));
    }

    fn take_found(&self) -> Vec<(f64, S)> {
        std::mem::take(&mut self.found.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

/// The master's seeding-phase sink: a local [`Incumbents`] plus the shared
/// atomic bound that workers will later prune against.
struct SeedSink<'a, S> {
    inc: &'a mut Incumbents<S>,
    bound: &'a SharedBound,
}

impl<S: Clone> IncumbentSink<S> for SeedSink<'_, S> {
    fn current_ub(&self) -> f64 {
        self.bound.get()
    }

    fn accept(&mut self, value: f64, solution: S) -> bool {
        let improved = self.inc.offer(value, solution);
        if improved {
            self.bound.try_improve(value);
        }
        improved
    }
}

/// A worker's sink: prunes against a shared atomic bound and publishes
/// accepted solutions immediately, so a later panic loses nothing. Used
/// by both the sharded driver and the global-pool baseline, which share
/// the bound/publish half of the machinery.
struct WorkerSink<'a, S, F: Fn(f64, S)> {
    bound: &'a SharedBound,
    publish: F,
    opts: &'a SearchOptions,
    _marker: std::marker::PhantomData<S>,
}

impl<'a, S, F: Fn(f64, S)> WorkerSink<'a, S, F> {
    fn new(bound: &'a SharedBound, opts: &'a SearchOptions, publish: F) -> Self {
        WorkerSink {
            bound,
            publish,
            opts,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<S, F: Fn(f64, S)> IncumbentSink<S> for WorkerSink<'_, S, F> {
    fn current_ub(&self) -> f64 {
        self.bound.get()
    }

    fn accept(&mut self, value: f64, solution: S) -> bool {
        match self.opts.mode {
            SearchMode::BestOne => {
                if self.bound.try_improve(value) {
                    (self.publish)(value, solution);
                    true
                } else {
                    false
                }
            }
            SearchMode::AllOptimal => {
                let ub = self.bound.get();
                if value <= ub + self.opts.eps(ub) {
                    (self.publish)(value, solution);
                    self.bound.try_improve(value)
                } else {
                    false
                }
            }
        }
    }
}

/// Master/slave parallel branch-and-bound (the paper's Table 1 algorithm,
/// with threads standing in for cluster nodes):
///
/// 1. the master applies the initial incumbent (Step 3) and pre-branches
///    the tree breadth-first until at least `2 × workers` open nodes exist
///    (Step 5);
/// 2. open nodes are sorted by lower bound and dealt cyclically to the
///    workers' local stacks (Step 6);
/// 3. every worker runs depth-first on its local stack (Step 7), pruning
///    against the *shared* upper bound, which any improvement updates
///    atomically — the thread analogue of broadcasting the global UB;
/// 4. load balancing is work stealing over a
///    [sharded frontier](crate::frontier): a worker whose stack drains
///    steals half a batch from a sharded overflow pool, and a loaded
///    worker donates its shallowest nodes in batches whenever a peer is
///    parked — nobody idles while work remains, and the per-node fast
///    path never touches a lock;
/// 5. when the frontier's in-flight node counter reaches zero the search
///    is exhausted; the last worker closes the frontier and the master
///    gathers solutions (Step 8).
///
/// Both the seeding phase and the workers run the shared
/// [expansion kernel](crate::kernel); only the scheduling around it (the
/// frontier, the shared bound, the stop flags) lives here.
///
/// With `workers == 1` this degenerates to (slightly buffered) sequential
/// search; results are always identical in optimum value to
/// [`solve_sequential`](crate::solve_sequential).
///
/// # Robustness
///
/// The search is anytime and fault-isolated:
///
/// * deadline and cancellation (see [`SearchOptions`]) are checked
///   cooperatively by every worker; the first to notice stops the whole
///   search, and the outcome keeps the best incumbent published so far;
/// * a panic in one worker (i.e. in the [`Problem`] implementation) is
///   caught; the worker closes the frontier on its way out, which wakes
///   every parked peer, and the run drains cleanly with
///   [`StopReason::WorkerPanicked`] — never a deadlock, and never losing
///   incumbents already published, because workers publish each accepted
///   solution immediately;
/// * NaN lower bounds never prune (they are treated as `-∞`) and NaN
///   objective values are rejected, so a numerically degenerate problem
///   degrades to extra work instead of wrong answers.
pub fn solve_parallel<P: Problem>(
    problem: &P,
    opts: &SearchOptions,
    workers: usize,
) -> SearchOutcome<P::Solution> {
    solve_parallel_observed(problem, opts, workers, ())
}

/// [`solve_parallel`] with a [`SearchObserver`]. The observer is cloned
/// once per worker (plus once for the master's seeding phase), so each
/// thread owns its copy and no locking is added to the hot path.
pub fn solve_parallel_observed<P, O>(
    problem: &P,
    opts: &SearchOptions,
    workers: usize,
    observer: O,
) -> SearchOutcome<P::Solution>
where
    P: Problem,
    O: SearchObserver + Clone + Send,
{
    assert!(workers >= 1, "need at least one worker");
    let mut master_inc = Incumbents::new(opts);
    let bound = SharedBound::unbounded();
    // One budget counter spans seeding and the worker phase, so the global
    // branch limit holds across both.
    let branches = AtomicU64::new(0);
    let mut master_obs = observer.clone();
    let seed = seed_phase(
        problem,
        opts,
        workers,
        &mut master_inc,
        &bound,
        &branches,
        &mut master_obs,
    );

    if seed.frontier.is_empty() || seed.early_stop.is_some() {
        // The whole tree collapsed during seeding, or seeding was stopped
        // early — either way there is nothing to hand to workers.
        return gather(
            opts,
            seed.stats,
            master_inc.solutions,
            seed.early_stop.unwrap_or(StopReason::Completed),
        );
    }

    // --- Sort by lower bound, deal cyclically (Step 6).
    let mut seeds: Vec<(f64, P::Node)> = seed
        .frontier
        .into_vec()
        .into_iter()
        .map(|n| (sanitize_lb(problem.lower_bound(&n)), n))
        .collect();
    seeds.sort_by(|a, b| a.0.total_cmp(&b.0));
    let seed_count = seeds.len() as u64;
    let mut locals: Vec<Vec<P::Node>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, (_, node)) in seeds.into_iter().enumerate() {
        locals[i % workers].push(node);
    }
    // Local pools are stacks: reverse so the most promising node pops first.
    for lp in &mut locals {
        lp.reverse();
    }

    let shared: Shared<P::Node, P::Solution> = Shared::new(
        ShardedFrontier::for_workers_with(workers, opts.frontier_shards),
        bound,
        branches,
    );
    // Charge the pre-dealt seeds before any worker starts, so the
    // in-flight counter can never transiently read zero mid-search.
    shared.frontier.charge(seed_count);

    // --- Worker phase.
    let worker_stats: Vec<Option<SearchStats>> = std::thread::scope(|scope| {
        let handles: Vec<_> = locals
            .into_iter()
            .map(|lp| {
                let shared = &shared;
                let mut obs = observer.clone();
                scope.spawn(move || {
                    match catch_unwind(AssertUnwindSafe(|| {
                        run_worker(problem, opts, shared, lp, &mut obs)
                    })) {
                        Ok(stats) => Some(stats),
                        Err(_) => {
                            // The panic payload is intentionally dropped:
                            // isolation means the search result reports the
                            // fault, it does not re-raise it.
                            shared.request_stop(StopReason::WorkerPanicked);
                            None
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or(None))
            .collect()
    });

    // --- Gather (Step 8).
    let mut stats = seed.stats;
    for wstats in worker_stats.into_iter().flatten() {
        stats.merge(&wstats);
    }
    let mut all = master_inc.solutions;
    all.append(&mut shared.take_found());
    gather(opts, stats, all, shared.stop_reason())
}

/// [`solve_parallel`] on borrowed workers: the same master/slave search,
/// but instead of spawning a fresh `thread::scope` per call, the worker
/// loops run as jobs on a caller-supplied [`WorkerPool`], and the calling
/// thread always serves as one of the workers.
///
/// This is the backend the compact-set pipeline uses so that group-level
/// task parallelism and intra-solve B&B parallelism share one thread
/// budget instead of oversubscribing the machine with nested scopes.
///
/// Differences from the scoped driver, none observable in the outcome:
///
/// * the problem is `Arc`-shared because pool jobs are `'static` and may
///   outlive this stack frame (they self-terminate once the search ends);
/// * seeds are dealt round-robin into the frontier's overflow shards
///   (sorted so each shard's front holds its most promising node) rather
///   than into per-worker local stacks — pool jobs start at staggered
///   times and steal their first batch when they arrive, so a job that
///   never runs orphans nothing;
/// * termination needs no worker registration at all: the frontier's
///   in-flight counter reaches zero when the tree is exhausted, whether
///   one thread drained it or eight did, so the search completes even if
///   the pool is too busy to ever run some jobs (the calling thread alone
///   suffices) and a job arriving after the search drained exits
///   immediately on the closed frontier.
///
/// The optimum value is identical to [`solve_sequential`] /
/// [`solve_parallel`] for completed runs, as always with a shared exact
/// bound.
///
/// [`solve_sequential`]: crate::solve_sequential
pub fn solve_parallel_pooled<P, O>(
    problem: Arc<P>,
    opts: &SearchOptions,
    workers: usize,
    pool: &dyn WorkerPool,
    observer: O,
) -> SearchOutcome<P::Solution>
where
    P: Problem + Send + Sync + 'static,
    O: SearchObserver + Clone + Send + 'static,
{
    assert!(workers >= 1, "need at least one worker");
    let mut master_inc = Incumbents::new(opts);
    let bound = SharedBound::unbounded();
    let branches = AtomicU64::new(0);
    let mut master_obs = observer.clone();
    let seed = seed_phase(
        &*problem,
        opts,
        workers,
        &mut master_inc,
        &bound,
        &branches,
        &mut master_obs,
    );

    if seed.frontier.is_empty() || seed.early_stop.is_some() {
        return gather(
            opts,
            seed.stats,
            master_inc.solutions,
            seed.early_stop.unwrap_or(StopReason::Completed),
        );
    }

    // Seeds go to the overflow shards, most promising first, so the first
    // steal each worker performs grabs the best available batch.
    let mut seeds: Vec<(f64, P::Node)> = seed
        .frontier
        .into_vec()
        .into_iter()
        .map(|n| (sanitize_lb(problem.lower_bound(&n)), n))
        .collect();
    seeds.sort_by(|a, b| a.0.total_cmp(&b.0));

    let shared: Arc<Shared<P::Node, P::Solution>> = Arc::new(Shared::new(
        ShardedFrontier::for_workers_with(workers, opts.frontier_shards),
        bound,
        branches,
    ));
    shared
        .frontier
        .seed(seeds.into_iter().map(|(_, n)| n).collect());

    let opts_shared = Arc::new(opts.clone());
    let pooled_stats: Arc<Mutex<Vec<SearchStats>>> = Arc::new(Mutex::new(Vec::new()));
    let jobs: Vec<PoolJob> = (1..workers)
        .map(|_| {
            let problem = Arc::clone(&problem);
            let shared = Arc::clone(&shared);
            let opts = Arc::clone(&opts_shared);
            let stats = Arc::clone(&pooled_stats);
            let mut obs = observer.clone();
            Box::new(move || {
                // A late starter skips a search that already drained.
                if shared.frontier.is_closed() {
                    return;
                }
                match catch_unwind(AssertUnwindSafe(|| {
                    run_worker(&*problem, &opts, &shared, Vec::new(), &mut obs)
                })) {
                    Ok(st) => stats.lock().unwrap_or_else(|e| e.into_inner()).push(st),
                    Err(_) => shared.request_stop(StopReason::WorkerPanicked),
                }
            }) as PoolJob
        })
        .collect();

    let mut caller_stats: Option<SearchStats> = None;
    let mut caller_obs = observer;
    pool.run_all(
        jobs,
        Box::new(|| {
            caller_stats = match catch_unwind(AssertUnwindSafe(|| {
                run_worker(&*problem, opts, &shared, Vec::new(), &mut caller_obs)
            })) {
                Ok(st) => Some(st),
                Err(_) => {
                    shared.request_stop(StopReason::WorkerPanicked);
                    None
                }
            };
        }),
    );

    let mut stats = seed.stats;
    if let Some(cs) = &caller_stats {
        stats.merge(cs);
    }
    for ws in pooled_stats
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
    {
        stats.merge(ws);
    }
    let mut all = master_inc.solutions;
    all.append(&mut shared.take_found());
    gather(opts, stats, all, shared.stop_reason())
}

/// What the master's seeding phase hands to the worker phase.
struct SeedOutcome<N> {
    frontier: BreadthFirstFrontier<N>,
    early_stop: Option<StopReason>,
    stats: SearchStats,
}

/// Master seeding phase: breadth-first until `2 × workers` open nodes.
/// The problem's callbacks run on the calling thread, so the phase gets
/// the same panic isolation as the workers: a panic mid-seeding yields
/// whatever incumbent exists with `WorkerPanicked` instead of unwinding
/// through the caller.
fn seed_phase<P: Problem, O: SearchObserver>(
    problem: &P,
    opts: &SearchOptions,
    workers: usize,
    master_inc: &mut Incumbents<P::Solution>,
    bound: &SharedBound,
    branches: &AtomicU64,
    observer: &mut O,
) -> SeedOutcome<P::Node> {
    let mut exp = Expander::new(problem, opts);
    {
        let mut sink = SeedSink {
            inc: master_inc,
            bound,
        };
        exp.offer_initial(&mut sink);
    }
    let mut frontier = BreadthFirstFrontier::new();
    let mut early_stop: Option<StopReason> = None;
    let seeding = catch_unwind(AssertUnwindSafe(|| {
        let target = 2 * workers;
        exp.push_root(&mut frontier);
        while frontier.len() < target {
            if let Some(reason) = exp.poll_stop(observer) {
                early_stop = Some(reason);
                break;
            }
            let Some(node) = frontier.pop() else {
                break;
            };
            let mut sink = SeedSink {
                inc: master_inc,
                bound,
            };
            let mut budget = AtomicBudget::new(branches, opts.max_branches);
            match exp.expand(&node, &mut sink, &mut budget, &mut frontier, observer) {
                Step::Stopped(reason) => {
                    early_stop = Some(reason);
                    break;
                }
                _ => exp.recycle(node),
            }
        }
    }));
    if seeding.is_err() {
        early_stop = Some(StopReason::WorkerPanicked);
        frontier = BreadthFirstFrontier::new();
    }
    SeedOutcome {
        frontier,
        early_stop,
        stats: exp.stats(),
    }
}

/// Reduces collected `(value, solution)` pairs to the final outcome.
fn gather<S>(
    opts: &SearchOptions,
    stats: SearchStats,
    all: Vec<(f64, S)>,
    stop: StopReason,
) -> SearchOutcome<S> {
    let best = all
        .iter()
        .map(|(v, _)| *v)
        .fold(None, |acc: Option<f64>, v| {
            Some(acc.map_or(v, |a| a.min(v)))
        });
    match best {
        Some(bv) => {
            let eps = opts.eps(bv);
            let mut solutions: Vec<S> = all
                .into_iter()
                .filter(|(v, _)| *v <= bv + eps)
                .map(|(_, s)| s)
                .collect();
            if matches!(opts.mode, SearchMode::BestOne) {
                solutions.truncate(1);
            }
            SearchOutcome {
                best_value: Some(bv),
                solutions,
                stats,
                stop,
            }
        }
        None => SearchOutcome {
            best_value: None,
            solutions: Vec::new(),
            stats,
            stop,
        },
    }
}

/// One worker's scheduling loop around the expansion kernel: dive
/// depth-first on the local stack; when it drains, steal from the
/// frontier's overflow shards or park; after every expansion, donate
/// surplus if a peer is parked. The per-node fast path (pop → expand →
/// finish) performs no mutex acquisition — shared state is touched only
/// at steal/donate batch boundaries.
fn run_worker<P: Problem, O: SearchObserver>(
    problem: &P,
    opts: &SearchOptions,
    shared: &Shared<P::Node, P::Solution>,
    lp: Vec<P::Node>,
    observer: &mut O,
) -> SearchStats {
    let mut exp = Expander::new(problem, opts);
    let mut frontier = WorkerFrontier::new(&shared.frontier, lp);
    let mut budget = AtomicBudget::new(&shared.branches, opts.max_branches);
    let mut sink = WorkerSink::new(&shared.bound, opts, |v, s| shared.publish(v, s));
    loop {
        if shared.stopping() {
            break;
        }
        if let Some(reason) = exp.poll_stop(observer) {
            shared.request_stop(reason);
            break;
        }
        let node = match frontier.pop() {
            Some(n) => n,
            None => match frontier.acquire(observer) {
                Some(n) => n,
                None => break,
            },
        };
        let step = exp.expand(&node, &mut sink, &mut budget, &mut frontier, observer);
        // The node's expansion is complete: convert its in-flight unit
        // into the absorbed children's, in one netted atomic transition.
        // The worker whose settle takes the counter to zero ends the
        // whole search.
        frontier.settle();
        match step {
            Step::Stopped(reason) => {
                shared.request_stop(reason);
                break;
            }
            Step::Branched { .. } => {
                exp.recycle(node);
                // Memory watchdog: the frontier's in-flight counter is the
                // exact global open-node count, so checking it here — after
                // settle, before donating — bounds any overshoot to the
                // children of one expansion batch per worker. Shedding
                // drops this worker's worst-bound local nodes; the search
                // continues on the capped frontier and the incumbent is
                // untouched, but optimality can no longer be certified.
                if let Some(mb) = &opts.memory {
                    let open = shared.frontier.in_flight();
                    if open > mb.max_open_nodes {
                        let excess = (open - mb.max_open_nodes) as usize;
                        let dropped = frontier.shed_local(excess, &mut |n| problem.lower_bound(n));
                        if dropped > 0 {
                            exp.note_shed(dropped, observer);
                            shared.note_shed();
                        }
                    }
                }
                frontier.maybe_donate(observer);
            }
            _ => exp.recycle(node),
        }
    }
    let mut stats = exp.stats();
    stats.steals = frontier.steals;
    stats.donations = frontier.donations;
    stats.parks = frontier.parks;
    stats
}

// ---------------------------------------------------------------------------
// Global-mutex baseline
// ---------------------------------------------------------------------------

/// State of the baseline's single global pool.
struct GlobalPool<N> {
    global: Vec<N>,
    /// Workers currently blocked waiting for global work.
    idle: usize,
    /// Workers still running (panicked workers deregister themselves so
    /// the `idle == alive` termination test stays reachable).
    alive: usize,
    done: bool,
}

/// The first-generation driver's shared state: one mutex-guarded pool,
/// one condvar. Every donation and every starved worker serializes here —
/// which is exactly what the `exp_frontier` benchmark measures against.
struct GlobalShared<N, S> {
    state: Mutex<GlobalPool<N>>,
    cv: Condvar,
    bound: SharedBound,
    branches: AtomicU64,
    stop: AtomicU8,
    found: Mutex<Vec<(f64, S)>>,
}

impl<N, S> GlobalShared<N, S> {
    fn lock_state(&self) -> MutexGuard<'_, GlobalPool<N>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn request_stop(&self, reason: StopReason) {
        let _ = self.stop.compare_exchange(
            STOP_NONE,
            encode_stop(reason),
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        let mut st = self.lock_state();
        st.done = true;
        self.cv.notify_all();
    }

    fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire) != STOP_NONE
    }

    /// Blocks until global work is available or the search has finished.
    /// The wait is untimed: every transition that could end the wait
    /// (donation, stop, panic deregistration) mutates the state and
    /// notifies *while holding the state mutex*, so no wakeup can be
    /// missed and no poll interval is needed.
    fn fetch_global(&self) -> Option<N> {
        let mut st = self.lock_state();
        loop {
            if st.done {
                return None;
            }
            if let Some(n) = st.global.pop() {
                return Some(n);
            }
            st.idle += 1;
            if st.idle >= st.alive {
                // Everyone still alive is out of work: the search is over.
                st.done = true;
                self.cv.notify_all();
                return None;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            if st.done {
                return None;
            }
            st.idle -= 1;
        }
    }

    /// Deregisters a panicked worker and wakes all waiters so the idle
    /// count converges without it.
    fn abandon_worker(&self) {
        let mut st = self.lock_state();
        st.alive = st.alive.saturating_sub(1);
        if st.idle >= st.alive {
            st.done = true;
        }
        self.cv.notify_all();
    }

    fn publish(&self, value: f64, solution: S) {
        self.found
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((value, solution));
    }
}

/// The retired first-generation parallel driver: one global
/// `Mutex<Vec<N>>` pool with per-node donation and a condvar for starved
/// workers. Kept (with the old timed poll replaced by a correctly
/// synchronized untimed wait) **only** as the contention baseline for the
/// `exp_frontier` benchmark and the agreement tests; production callers
/// should use [`solve_parallel`], which runs the sharded work-stealing
/// frontier instead.
pub fn solve_parallel_global<P: Problem>(
    problem: &P,
    opts: &SearchOptions,
    workers: usize,
) -> SearchOutcome<P::Solution> {
    assert!(workers >= 1, "need at least one worker");
    let mut master_inc = Incumbents::new(opts);
    let bound = SharedBound::unbounded();
    let branches = AtomicU64::new(0);
    let seed = seed_phase(
        problem,
        opts,
        workers,
        &mut master_inc,
        &bound,
        &branches,
        &mut (),
    );

    if seed.frontier.is_empty() || seed.early_stop.is_some() {
        return gather(
            opts,
            seed.stats,
            master_inc.solutions,
            seed.early_stop.unwrap_or(StopReason::Completed),
        );
    }

    let mut seeds: Vec<(f64, P::Node)> = seed
        .frontier
        .into_vec()
        .into_iter()
        .map(|n| (sanitize_lb(problem.lower_bound(&n)), n))
        .collect();
    seeds.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut locals: Vec<Vec<P::Node>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, (_, node)) in seeds.into_iter().enumerate() {
        locals[i % workers].push(node);
    }
    for lp in &mut locals {
        lp.reverse();
    }

    let shared: GlobalShared<P::Node, P::Solution> = GlobalShared {
        state: Mutex::new(GlobalPool {
            global: Vec::new(),
            idle: 0,
            alive: workers,
            done: false,
        }),
        cv: Condvar::new(),
        bound,
        branches,
        stop: AtomicU8::new(STOP_NONE),
        found: Mutex::new(Vec::new()),
    };

    let worker_stats: Vec<Option<SearchStats>> = std::thread::scope(|scope| {
        let handles: Vec<_> = locals
            .into_iter()
            .map(|lp| {
                let shared = &shared;
                scope.spawn(move || {
                    match catch_unwind(AssertUnwindSafe(|| {
                        run_global_worker(problem, opts, shared, lp)
                    })) {
                        Ok(stats) => Some(stats),
                        Err(_) => {
                            shared.request_stop(StopReason::WorkerPanicked);
                            shared.abandon_worker();
                            None
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or(None))
            .collect()
    });

    let mut stats = seed.stats;
    for wstats in worker_stats.into_iter().flatten() {
        stats.merge(&wstats);
    }
    let mut all = master_inc.solutions;
    all.append(&mut shared.found.lock().unwrap_or_else(|e| e.into_inner()));
    gather(
        opts,
        stats,
        all,
        decode_stop(shared.stop.load(Ordering::Acquire)),
    )
}

/// The baseline worker loop: depth-first on the local stack, global-pool
/// fetch when it drains, one-node donation under the global mutex — the
/// pre-sharding hot path, with a mutex acquisition per expansion whenever
/// any peer is idle.
fn run_global_worker<P: Problem>(
    problem: &P,
    opts: &SearchOptions,
    shared: &GlobalShared<P::Node, P::Solution>,
    lp: Vec<P::Node>,
) -> SearchStats {
    let mut exp = Expander::new(problem, opts);
    let mut frontier = DepthFirstFrontier::from_vec(lp);
    let mut budget = AtomicBudget::new(&shared.branches, opts.max_branches);
    let mut sink = WorkerSink::new(&shared.bound, opts, |v, s| shared.publish(v, s));
    loop {
        if shared.stopping() {
            break;
        }
        if let Some(reason) = exp.poll_stop(&mut ()) {
            shared.request_stop(reason);
            break;
        }
        let node = match frontier.pop() {
            Some(n) => n,
            None => match shared.fetch_global() {
                Some(n) => n,
                None => break,
            },
        };
        match exp.expand(&node, &mut sink, &mut budget, &mut frontier, &mut ()) {
            Step::Stopped(reason) => {
                shared.request_stop(reason);
                break;
            }
            Step::Branched { .. } => {
                exp.recycle(node);
                // Load balancing: keep the global pool stocked while we
                // have spare work (the paper's "send the last UT in sorted
                // LP to GP").
                if frontier.len() > 1 {
                    let mut st = shared.lock_state();
                    if st.global.is_empty() && !st.done && st.idle > 0 {
                        if let Some(donated) = frontier.steal_oldest() {
                            st.global.push(donated);
                            shared.cv.notify_one();
                        }
                    }
                }
            }
            _ => exp.recycle(node),
        }
    }
    exp.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ChildBuf;
    use crate::{solve_sequential, CancelToken};
    use std::time::Instant;

    /// Minimize the weighted ones-count over binary strings, with values
    /// crafted so the tree is big enough to exercise the pools.
    struct WeightedBits {
        weights: Vec<f64>,
    }

    impl Problem for WeightedBits {
        type Node = Vec<bool>;
        type Solution = Vec<bool>;

        fn root(&self) -> Vec<bool> {
            Vec::new()
        }
        fn lower_bound(&self, node: &Vec<bool>) -> f64 {
            node.iter()
                .zip(&self.weights)
                .map(|(&b, &w)| if b { w } else { 0.0 })
                .sum()
        }
        fn solution(&self, node: &Vec<bool>) -> Option<(Vec<bool>, f64)> {
            (node.len() == self.weights.len()).then(|| (node.clone(), self.lower_bound(node)))
        }
        fn branch(&self, node: &Vec<bool>, out: &mut ChildBuf<Vec<bool>>) {
            for b in [true, false] {
                let mut c = node.clone();
                c.push(b);
                out.push(c);
            }
        }
    }

    fn problem(n: usize) -> WeightedBits {
        WeightedBits {
            weights: (0..n).map(|i| 1.0 + (i % 3) as f64).collect(),
        }
    }

    #[test]
    fn matches_sequential_optimum() {
        let p = problem(10);
        for workers in [1, 2, 4] {
            let opts = SearchOptions::new(SearchMode::BestOne);
            let seq = solve_sequential(&p, &opts);
            let par = solve_parallel(&p, &opts, workers);
            assert_eq!(seq.best_value, par.best_value, "workers = {workers}");
            assert_eq!(par.solutions.len(), 1);
            assert!(par.is_complete());
        }
    }

    #[test]
    fn global_baseline_matches_sequential_optimum() {
        let p = problem(10);
        for workers in [1, 2, 4] {
            let opts = SearchOptions::new(SearchMode::BestOne);
            let seq = solve_sequential(&p, &opts);
            let par = solve_parallel_global(&p, &opts, workers);
            assert_eq!(seq.best_value, par.best_value, "workers = {workers}");
            assert!(par.is_complete());
        }
    }

    #[test]
    fn all_optimal_matches_sequential_set() {
        // Two zero-weight bits → 4 co-optimal solutions.
        let p = WeightedBits {
            weights: vec![0.0, 1.0, 0.0, 2.0, 1.0],
        };
        let opts = SearchOptions::new(SearchMode::AllOptimal);
        let seq = solve_sequential(&p, &opts);
        let par = solve_parallel(&p, &opts, 3);
        let norm = |mut v: Vec<Vec<bool>>| {
            v.sort();
            v.dedup();
            v
        };
        assert_eq!(seq.best_value, par.best_value);
        let par_sols = norm(par.solutions);
        assert_eq!(norm(seq.solutions), par_sols);
        assert_eq!(par_sols.len(), 4);
    }

    #[test]
    fn single_worker_agrees() {
        let p = problem(8);
        let opts = SearchOptions::new(SearchMode::AllOptimal);
        let seq = solve_sequential(&p, &opts);
        let par = solve_parallel(&p, &opts, 1);
        assert_eq!(seq.best_value, par.best_value);
        assert_eq!(seq.solutions.len(), par.solutions.len());
    }

    #[test]
    fn more_workers_than_nodes() {
        let p = problem(2);
        let opts = SearchOptions::new(SearchMode::BestOne);
        let par = solve_parallel(&p, &opts, 16);
        assert_eq!(par.best_value, Some(0.0));
    }

    #[test]
    fn budget_abort_is_reported() {
        let p = problem(18);
        let opts = SearchOptions::new(SearchMode::BestOne).max_branches(10);
        let par = solve_parallel(&p, &opts, 4);
        assert_eq!(par.stop, StopReason::BudgetExhausted);
        assert!(!par.is_complete());
    }

    #[test]
    fn expired_deadline_returns_quickly() {
        let p = problem(20);
        let opts = SearchOptions::new(SearchMode::BestOne).deadline(Instant::now());
        let par = solve_parallel(&p, &opts, 4);
        assert_eq!(par.stop, StopReason::DeadlineExpired);
    }

    #[test]
    fn pre_cancelled_token_stops_immediately() {
        let p = problem(20);
        let token = CancelToken::new();
        token.cancel();
        let opts = SearchOptions::new(SearchMode::BestOne).cancel_token(token);
        let par = solve_parallel(&p, &opts, 4);
        assert_eq!(par.stop, StopReason::Cancelled);
    }

    #[test]
    fn tree_that_collapses_during_seeding() {
        struct Hinted(WeightedBits);
        impl Problem for Hinted {
            type Node = Vec<bool>;
            type Solution = Vec<bool>;
            fn root(&self) -> Vec<bool> {
                Vec::new()
            }
            fn lower_bound(&self, n: &Vec<bool>) -> f64 {
                self.0.lower_bound(n)
            }
            fn solution(&self, n: &Vec<bool>) -> Option<(Vec<bool>, f64)> {
                self.0.solution(n)
            }
            fn branch(&self, n: &Vec<bool>, out: &mut ChildBuf<Vec<bool>>) {
                self.0.branch(n, out)
            }
            fn initial_incumbent(&self) -> Option<(Vec<bool>, f64)> {
                Some((vec![false; self.0.weights.len()], 0.0))
            }
        }
        let p = Hinted(problem(6));
        let out = solve_parallel(&p, &SearchOptions::new(SearchMode::BestOne), 4);
        assert_eq!(out.best_value, Some(0.0));
        assert_eq!(out.solutions.len(), 1);
        assert!(out.is_complete());
    }

    #[test]
    fn stress_many_runs_no_deadlock() {
        let p = problem(9);
        for _ in 0..25 {
            let out = solve_parallel(&p, &SearchOptions::new(SearchMode::BestOne), 4);
            assert_eq!(out.best_value, Some(0.0));
        }
    }

    #[test]
    fn eight_worker_stress_conserves_the_tree() {
        // With every weight zero and AllOptimal pruning (`lb > ub + ε`
        // never fires at lb = ub = 0), nothing prunes: the driver must
        // expand the complete binary tree, so the counters give an exact
        // conservation oracle across steals and donations — no node
        // lost, none expanded twice.
        let depth = 12u32;
        let p = WeightedBits {
            weights: vec![0.0; depth as usize],
        };
        let opts = SearchOptions::new(SearchMode::AllOptimal);
        for _ in 0..5 {
            let out = solve_parallel(&p, &opts, 8);
            assert!(out.is_complete());
            assert_eq!(out.stats.solutions_seen, 1u64 << depth);
            assert_eq!(out.stats.branched, (1u64 << depth) - 1);
            assert_eq!(out.solutions.len(), 1 << depth);
        }
    }

    #[test]
    fn nan_lower_bounds_do_not_break_the_search() {
        /// Wraps `WeightedBits` but reports NaN bounds for half the nodes;
        /// the optimum must still be found (NaN = "no information").
        struct NanBounds(WeightedBits);
        impl Problem for NanBounds {
            type Node = Vec<bool>;
            type Solution = Vec<bool>;
            fn root(&self) -> Vec<bool> {
                Vec::new()
            }
            fn lower_bound(&self, n: &Vec<bool>) -> f64 {
                if n.len() % 2 == 1 {
                    f64::NAN
                } else {
                    self.0.lower_bound(n)
                }
            }
            fn solution(&self, n: &Vec<bool>) -> Option<(Vec<bool>, f64)> {
                self.0.solution(n)
            }
            fn branch(&self, n: &Vec<bool>, out: &mut ChildBuf<Vec<bool>>) {
                self.0.branch(n, out)
            }
        }
        let p = NanBounds(problem(8));
        let opts = SearchOptions::new(SearchMode::BestOne);
        let seq = solve_sequential(&p, &opts);
        let par = solve_parallel(&p, &opts, 4);
        assert_eq!(seq.best_value, Some(0.0));
        assert_eq!(par.best_value, Some(0.0));
        assert!(par.is_complete());
    }
}
