use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use crate::kernel::{
    sanitize_lb, AtomicBudget, BreadthFirstFrontier, DepthFirstFrontier, Expander, Frontier,
    IncumbentSink, Incumbents, SearchObserver, Step,
};
use crate::pool::{PoolJob, WorkerPool};
use crate::{
    Problem, SearchMode, SearchOptions, SearchOutcome, SearchStats, SharedBound, StopReason,
};

/// How long a starved worker sleeps on the condvar before re-checking the
/// stop flags. A missed wakeup (e.g. a peer that panicked before its
/// `notify_all`) therefore delays termination by at most this much instead
/// of hanging forever.
const IDLE_WAIT: Duration = Duration::from_millis(25);

/// Compact first-wins encoding of the early-stop reason; `0` = running.
const STOP_NONE: u8 = 0;

fn encode_stop(r: StopReason) -> u8 {
    match r {
        StopReason::Completed => STOP_NONE,
        StopReason::BudgetExhausted => 1,
        StopReason::DeadlineExpired => 2,
        StopReason::Cancelled => 3,
        StopReason::WorkerPanicked => 4,
    }
}

fn decode_stop(v: u8) -> StopReason {
    match v {
        1 => StopReason::BudgetExhausted,
        2 => StopReason::DeadlineExpired,
        3 => StopReason::Cancelled,
        4 => StopReason::WorkerPanicked,
        _ => StopReason::Completed,
    }
}

struct PoolState<N> {
    global: Vec<N>,
    /// Workers currently blocked waiting for global work.
    idle: usize,
    /// Workers still running (panicked workers deregister themselves so
    /// the `idle == alive` termination test stays reachable).
    alive: usize,
    done: bool,
}

struct Shared<N, S> {
    state: Mutex<PoolState<N>>,
    cv: Condvar,
    bound: SharedBound,
    branches: AtomicU64,
    /// First early-stop reason to fire, `STOP_NONE` while running.
    stop: AtomicU8,
    /// Incumbents are published here the moment they are accepted, so a
    /// worker that later panics loses none of its finds.
    found: Mutex<Vec<(f64, S)>>,
}

impl<N, S> Shared<N, S> {
    /// Locks the pool state, tolerating poison: a panicking worker runs
    /// its unwind path while holding no invariant broken — the state is a
    /// plain work list, safe to keep using.
    fn lock_state(&self) -> MutexGuard<'_, PoolState<N>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records `reason` if no earlier stop fired, then wakes everyone.
    fn request_stop(&self, reason: StopReason) {
        let _ = self.stop.compare_exchange(
            STOP_NONE,
            encode_stop(reason),
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        let mut st = self.lock_state();
        st.done = true;
        self.cv.notify_all();
    }

    fn stop_reason(&self) -> StopReason {
        decode_stop(self.stop.load(Ordering::Acquire))
    }

    fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire) != STOP_NONE
    }

    /// Blocks until global work is available or the search has finished.
    fn fetch_global(&self) -> Option<N> {
        let mut st = self.lock_state();
        loop {
            if st.done {
                return None;
            }
            if let Some(n) = st.global.pop() {
                return Some(n);
            }
            st.idle += 1;
            if st.idle >= st.alive {
                // Everyone still alive is out of work: the search is over.
                st.done = true;
                self.cv.notify_all();
                return None;
            }
            // Bounded wait so a missed notification (worker panic between
            // its last donation and its unwind) degrades to a short poll,
            // never a hang.
            let (g, _) = self
                .cv
                .wait_timeout(st, IDLE_WAIT)
                .unwrap_or_else(|e| e.into_inner());
            st = g;
            if st.done {
                return None;
            }
            st.idle -= 1;
        }
    }

    /// Registers a late-starting worker (pooled driver only; the scoped
    /// driver knows its worker count up front). Returns `false` when the
    /// search has already finished — the worker must exit without touching
    /// the pool, because the `idle == alive` termination test has already
    /// fired without it.
    fn register_worker(&self) -> bool {
        let mut st = self.lock_state();
        if st.done {
            return false;
        }
        st.alive += 1;
        true
    }

    /// Deregisters a panicked worker and wakes all waiters so the idle
    /// count converges without it.
    fn abandon_worker(&self) {
        let mut st = self.lock_state();
        st.alive = st.alive.saturating_sub(1);
        if st.idle >= st.alive {
            st.done = true;
        }
        self.cv.notify_all();
    }

    fn publish(&self, value: f64, solution: S) {
        self.found
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((value, solution));
    }
}

/// The master's seeding-phase sink: a local [`Incumbents`] plus the shared
/// atomic bound that workers will later prune against.
struct SeedSink<'a, S> {
    inc: &'a mut Incumbents<S>,
    bound: &'a SharedBound,
}

impl<S: Clone> IncumbentSink<S> for SeedSink<'_, S> {
    fn current_ub(&self) -> f64 {
        self.bound.get()
    }

    fn accept(&mut self, value: f64, solution: S) -> bool {
        let improved = self.inc.offer(value, solution);
        if improved {
            self.bound.try_improve(value);
        }
        improved
    }
}

/// A worker's sink: prunes against the shared atomic bound and publishes
/// accepted solutions immediately, so a later panic loses nothing.
struct WorkerSink<'a, N, S> {
    shared: &'a Shared<N, S>,
    opts: &'a SearchOptions,
}

impl<N, S> IncumbentSink<S> for WorkerSink<'_, N, S> {
    fn current_ub(&self) -> f64 {
        self.shared.bound.get()
    }

    fn accept(&mut self, value: f64, solution: S) -> bool {
        match self.opts.mode {
            SearchMode::BestOne => {
                if self.shared.bound.try_improve(value) {
                    self.shared.publish(value, solution);
                    true
                } else {
                    false
                }
            }
            SearchMode::AllOptimal => {
                let ub = self.shared.bound.get();
                if value <= ub + self.opts.eps(ub) {
                    self.shared.publish(value, solution);
                    self.shared.bound.try_improve(value)
                } else {
                    false
                }
            }
        }
    }
}

/// Master/slave parallel branch-and-bound (the paper's Table 1 algorithm,
/// with threads standing in for cluster nodes):
///
/// 1. the master applies the initial incumbent (Step 3) and pre-branches
///    the tree breadth-first until at least `2 × workers` open nodes exist
///    (Step 5);
/// 2. open nodes are sorted by lower bound and dealt cyclically to the
///    workers' local pools (Step 6);
/// 3. every worker runs depth-first on its local pool (Step 7), pruning
///    against the *shared* upper bound, which any improvement updates
///    atomically — the thread analogue of broadcasting the global UB;
/// 4. a worker whose local pool drains pulls from the global pool; when
///    the global pool is empty, loaded workers donate their most promising
///    pending node, so nobody idles while work remains;
/// 5. when all workers are idle and the global pool is empty the search
///    terminates and the master gathers solutions (Step 8).
///
/// Both the seeding phase and the workers run the shared
/// [expansion kernel](crate::kernel); only the scheduling around it (the
/// pools, the shared bound, the stop flags) lives here.
///
/// With `workers == 1` this degenerates to (slightly buffered) sequential
/// search; results are always identical in optimum value to
/// [`solve_sequential`](crate::solve_sequential).
///
/// # Robustness
///
/// The search is anytime and fault-isolated:
///
/// * deadline and cancellation (see [`SearchOptions`]) are checked
///   cooperatively by every worker; the first to notice stops the whole
///   search, and the outcome keeps the best incumbent published so far;
/// * a panic in one worker (i.e. in the [`Problem`] implementation) is
///   caught, the worker deregisters itself and wakes all waiters, and the
///   run drains cleanly with [`StopReason::WorkerPanicked`] — never a
///   deadlock, and never losing incumbents already published, because
///   workers publish each accepted solution immediately;
/// * NaN lower bounds never prune (they are treated as `-∞`) and NaN
///   objective values are rejected, so a numerically degenerate problem
///   degrades to extra work instead of wrong answers.
pub fn solve_parallel<P: Problem>(
    problem: &P,
    opts: &SearchOptions,
    workers: usize,
) -> SearchOutcome<P::Solution> {
    solve_parallel_observed(problem, opts, workers, ())
}

/// [`solve_parallel`] with a [`SearchObserver`]. The observer is cloned
/// once per worker (plus once for the master's seeding phase), so each
/// thread owns its copy and no locking is added to the hot path.
pub fn solve_parallel_observed<P, O>(
    problem: &P,
    opts: &SearchOptions,
    workers: usize,
    observer: O,
) -> SearchOutcome<P::Solution>
where
    P: Problem,
    O: SearchObserver + Clone + Send,
{
    assert!(workers >= 1, "need at least one worker");
    let mut master_inc = Incumbents::new(opts);
    let bound = SharedBound::unbounded();
    // One budget counter spans seeding and the worker phase, so the global
    // branch limit holds across both.
    let branches = AtomicU64::new(0);
    let mut master_obs = observer.clone();
    let seed = seed_phase(
        problem,
        opts,
        workers,
        &mut master_inc,
        &bound,
        &branches,
        &mut master_obs,
    );

    if seed.frontier.is_empty() || seed.early_stop.is_some() {
        // The whole tree collapsed during seeding, or seeding was stopped
        // early — either way there is nothing to hand to workers.
        return gather(
            opts,
            seed.stats,
            master_inc.solutions,
            seed.early_stop.unwrap_or(StopReason::Completed),
        );
    }

    // --- Sort by lower bound, deal cyclically (Step 6).
    let mut seeds: Vec<(f64, P::Node)> = seed
        .frontier
        .into_vec()
        .into_iter()
        .map(|n| (sanitize_lb(problem.lower_bound(&n)), n))
        .collect();
    seeds.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut locals: Vec<Vec<P::Node>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, (_, node)) in seeds.into_iter().enumerate() {
        locals[i % workers].push(node);
    }
    // Local pools are stacks: reverse so the most promising node pops first.
    for lp in &mut locals {
        lp.reverse();
    }

    let shared: Shared<P::Node, P::Solution> = Shared {
        state: Mutex::new(PoolState {
            global: Vec::new(),
            idle: 0,
            alive: workers,
            done: false,
        }),
        cv: Condvar::new(),
        bound,
        branches,
        stop: AtomicU8::new(STOP_NONE),
        found: Mutex::new(Vec::new()),
    };

    // --- Worker phase.
    let worker_stats: Vec<Option<SearchStats>> = std::thread::scope(|scope| {
        let handles: Vec<_> = locals
            .into_iter()
            .map(|lp| {
                let shared = &shared;
                let mut obs = observer.clone();
                scope.spawn(move || {
                    match catch_unwind(AssertUnwindSafe(|| {
                        run_worker(problem, opts, shared, lp, &mut obs)
                    })) {
                        Ok(stats) => Some(stats),
                        Err(_) => {
                            // The panic payload is intentionally dropped:
                            // isolation means the search result reports the
                            // fault, it does not re-raise it.
                            shared.request_stop(StopReason::WorkerPanicked);
                            shared.abandon_worker();
                            None
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or(None))
            .collect()
    });

    // --- Gather (Step 8).
    let mut stats = seed.stats;
    for wstats in worker_stats.into_iter().flatten() {
        stats.merge(&wstats);
    }
    let mut all = master_inc.solutions;
    all.append(&mut shared.found.lock().unwrap_or_else(|e| e.into_inner()));
    gather(opts, stats, all, shared.stop_reason())
}

/// [`solve_parallel`] on borrowed workers: the same master/slave search,
/// but instead of spawning a fresh `thread::scope` per call, the worker
/// loops run as jobs on a caller-supplied [`WorkerPool`], and the calling
/// thread always serves as one of the workers.
///
/// This is the backend the compact-set pipeline uses so that group-level
/// task parallelism and intra-solve B&B parallelism share one thread
/// budget instead of oversubscribing the machine with nested scopes.
///
/// Differences from the scoped driver, none observable in the outcome:
///
/// * the problem is `Arc`-shared because pool jobs are `'static` and may
///   outlive this stack frame (they self-terminate once the search ends);
/// * seeds all go to the global pool (sorted so the most promising pops
///   first) rather than being dealt to per-worker local pools — pool jobs
///   start at staggered times, and a pre-dealt local pool whose job never
///   ran before the search drained would orphan its nodes;
/// * workers register themselves on start and the termination test counts
///   only registered workers, so the search completes even if the pool is
///   too busy to ever run some jobs (the calling thread alone suffices).
///
/// The optimum value is identical to [`solve_sequential`] /
/// [`solve_parallel`] for completed runs, as always with a shared exact
/// bound.
///
/// [`solve_sequential`]: crate::solve_sequential
pub fn solve_parallel_pooled<P, O>(
    problem: Arc<P>,
    opts: &SearchOptions,
    workers: usize,
    pool: &dyn WorkerPool,
    observer: O,
) -> SearchOutcome<P::Solution>
where
    P: Problem + Send + Sync + 'static,
    O: SearchObserver + Clone + Send + 'static,
{
    assert!(workers >= 1, "need at least one worker");
    let mut master_inc = Incumbents::new(opts);
    let bound = SharedBound::unbounded();
    let branches = AtomicU64::new(0);
    let mut master_obs = observer.clone();
    let seed = seed_phase(
        &*problem,
        opts,
        workers,
        &mut master_inc,
        &bound,
        &branches,
        &mut master_obs,
    );

    if seed.frontier.is_empty() || seed.early_stop.is_some() {
        return gather(
            opts,
            seed.stats,
            master_inc.solutions,
            seed.early_stop.unwrap_or(StopReason::Completed),
        );
    }

    // All seeds go straight to the global pool; sort descending so the
    // most promising (lowest bound) node pops first off the stack.
    let mut seeds: Vec<(f64, P::Node)> = seed
        .frontier
        .into_vec()
        .into_iter()
        .map(|n| (sanitize_lb(problem.lower_bound(&n)), n))
        .collect();
    seeds.sort_by(|a, b| b.0.total_cmp(&a.0));
    let global: Vec<P::Node> = seeds.into_iter().map(|(_, n)| n).collect();

    let shared: Arc<Shared<P::Node, P::Solution>> = Arc::new(Shared {
        state: Mutex::new(PoolState {
            global,
            idle: 0,
            // Dynamic registration: workers count themselves in as their
            // jobs actually start (see `register_worker`).
            alive: 0,
            done: false,
        }),
        cv: Condvar::new(),
        bound,
        branches,
        stop: AtomicU8::new(STOP_NONE),
        found: Mutex::new(Vec::new()),
    });

    // The calling thread is always a worker; register it before any pool
    // job can observe the state, so `alive` is never 0 mid-search.
    let registered = shared.register_worker();
    debug_assert!(registered, "fresh pool cannot be done");

    let opts_shared = Arc::new(opts.clone());
    let pooled_stats: Arc<Mutex<Vec<SearchStats>>> = Arc::new(Mutex::new(Vec::new()));
    let jobs: Vec<PoolJob> = (1..workers)
        .map(|_| {
            let problem = Arc::clone(&problem);
            let shared = Arc::clone(&shared);
            let opts = Arc::clone(&opts_shared);
            let stats = Arc::clone(&pooled_stats);
            let mut obs = observer.clone();
            Box::new(move || {
                // A late starter skips a search that already drained.
                if !shared.register_worker() {
                    return;
                }
                match catch_unwind(AssertUnwindSafe(|| {
                    run_worker(&*problem, &opts, &shared, Vec::new(), &mut obs)
                })) {
                    Ok(st) => stats.lock().unwrap_or_else(|e| e.into_inner()).push(st),
                    Err(_) => {
                        shared.request_stop(StopReason::WorkerPanicked);
                        shared.abandon_worker();
                    }
                }
            }) as PoolJob
        })
        .collect();

    let mut caller_stats: Option<SearchStats> = None;
    let mut caller_obs = observer;
    pool.run_all(
        jobs,
        Box::new(|| {
            caller_stats = match catch_unwind(AssertUnwindSafe(|| {
                run_worker(&*problem, opts, &shared, Vec::new(), &mut caller_obs)
            })) {
                Ok(st) => Some(st),
                Err(_) => {
                    shared.request_stop(StopReason::WorkerPanicked);
                    shared.abandon_worker();
                    None
                }
            };
        }),
    );

    let mut stats = seed.stats;
    if let Some(cs) = &caller_stats {
        stats.merge(cs);
    }
    for ws in pooled_stats
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
    {
        stats.merge(ws);
    }
    let mut all = master_inc.solutions;
    all.append(&mut shared.found.lock().unwrap_or_else(|e| e.into_inner()));
    gather(opts, stats, all, shared.stop_reason())
}

/// What the master's seeding phase hands to the worker phase.
struct SeedOutcome<N> {
    frontier: BreadthFirstFrontier<N>,
    early_stop: Option<StopReason>,
    stats: SearchStats,
}

/// Master seeding phase: breadth-first until `2 × workers` open nodes.
/// The problem's callbacks run on the calling thread, so the phase gets
/// the same panic isolation as the workers: a panic mid-seeding yields
/// whatever incumbent exists with `WorkerPanicked` instead of unwinding
/// through the caller.
fn seed_phase<P: Problem, O: SearchObserver>(
    problem: &P,
    opts: &SearchOptions,
    workers: usize,
    master_inc: &mut Incumbents<P::Solution>,
    bound: &SharedBound,
    branches: &AtomicU64,
    observer: &mut O,
) -> SeedOutcome<P::Node> {
    let mut exp = Expander::new(problem, opts);
    {
        let mut sink = SeedSink {
            inc: master_inc,
            bound,
        };
        exp.offer_initial(&mut sink);
    }
    let mut frontier = BreadthFirstFrontier::new();
    let mut early_stop: Option<StopReason> = None;
    let seeding = catch_unwind(AssertUnwindSafe(|| {
        let target = 2 * workers;
        exp.push_root(&mut frontier);
        while frontier.len() < target {
            if let Some(reason) = exp.poll_stop(observer) {
                early_stop = Some(reason);
                break;
            }
            let Some(node) = frontier.pop() else {
                break;
            };
            let mut sink = SeedSink {
                inc: master_inc,
                bound,
            };
            let mut budget = AtomicBudget::new(branches, opts.max_branches);
            match exp.expand(&node, &mut sink, &mut budget, &mut frontier, observer) {
                Step::Stopped(reason) => {
                    early_stop = Some(reason);
                    break;
                }
                _ => exp.recycle(node),
            }
        }
    }));
    if seeding.is_err() {
        early_stop = Some(StopReason::WorkerPanicked);
        frontier = BreadthFirstFrontier::new();
    }
    SeedOutcome {
        frontier,
        early_stop,
        stats: exp.stats(),
    }
}

/// Reduces collected `(value, solution)` pairs to the final outcome.
fn gather<S>(
    opts: &SearchOptions,
    stats: SearchStats,
    all: Vec<(f64, S)>,
    stop: StopReason,
) -> SearchOutcome<S> {
    let best = all
        .iter()
        .map(|(v, _)| *v)
        .fold(None, |acc: Option<f64>, v| {
            Some(acc.map_or(v, |a| a.min(v)))
        });
    match best {
        Some(bv) => {
            let eps = opts.eps(bv);
            let mut solutions: Vec<S> = all
                .into_iter()
                .filter(|(v, _)| *v <= bv + eps)
                .map(|(_, s)| s)
                .collect();
            if matches!(opts.mode, SearchMode::BestOne) {
                solutions.truncate(1);
            }
            SearchOutcome {
                best_value: Some(bv),
                solutions,
                stats,
                stop,
            }
        }
        None => SearchOutcome {
            best_value: None,
            solutions: Vec::new(),
            stats,
            stop,
        },
    }
}

fn run_worker<P: Problem, O: SearchObserver>(
    problem: &P,
    opts: &SearchOptions,
    shared: &Shared<P::Node, P::Solution>,
    lp: Vec<P::Node>,
    observer: &mut O,
) -> SearchStats {
    let mut exp = Expander::new(problem, opts);
    let mut frontier = DepthFirstFrontier::from_vec(lp);
    let mut budget = AtomicBudget::new(&shared.branches, opts.max_branches);
    let mut sink = WorkerSink { shared, opts };
    loop {
        if shared.stopping() {
            break;
        }
        if let Some(reason) = exp.poll_stop(observer) {
            shared.request_stop(reason);
            break;
        }
        let node = match frontier.pop() {
            Some(n) => n,
            None => match shared.fetch_global() {
                Some(n) => n,
                None => break,
            },
        };
        match exp.expand(&node, &mut sink, &mut budget, &mut frontier, observer) {
            Step::Stopped(reason) => {
                shared.request_stop(reason);
                break;
            }
            Step::Branched { .. } => {
                exp.recycle(node);
                // Load balancing: keep the global pool stocked while we
                // have spare work (the paper's "send the last UT in sorted
                // LP to GP").
                if frontier.len() > 1 {
                    let mut st = shared.lock_state();
                    if st.global.is_empty() && !st.done && st.idle > 0 {
                        if let Some(donated) = frontier.steal_oldest() {
                            st.global.push(donated);
                            shared.cv.notify_one();
                        }
                    }
                }
            }
            _ => exp.recycle(node),
        }
    }
    exp.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ChildBuf;
    use crate::{solve_sequential, CancelToken};
    use std::time::Instant;

    /// Minimize the weighted ones-count over binary strings, with values
    /// crafted so the tree is big enough to exercise the pools.
    struct WeightedBits {
        weights: Vec<f64>,
    }

    impl Problem for WeightedBits {
        type Node = Vec<bool>;
        type Solution = Vec<bool>;

        fn root(&self) -> Vec<bool> {
            Vec::new()
        }
        fn lower_bound(&self, node: &Vec<bool>) -> f64 {
            node.iter()
                .zip(&self.weights)
                .map(|(&b, &w)| if b { w } else { 0.0 })
                .sum()
        }
        fn solution(&self, node: &Vec<bool>) -> Option<(Vec<bool>, f64)> {
            (node.len() == self.weights.len()).then(|| (node.clone(), self.lower_bound(node)))
        }
        fn branch(&self, node: &Vec<bool>, out: &mut ChildBuf<Vec<bool>>) {
            for b in [true, false] {
                let mut c = node.clone();
                c.push(b);
                out.push(c);
            }
        }
    }

    fn problem(n: usize) -> WeightedBits {
        WeightedBits {
            weights: (0..n).map(|i| 1.0 + (i % 3) as f64).collect(),
        }
    }

    #[test]
    fn matches_sequential_optimum() {
        let p = problem(10);
        for workers in [1, 2, 4] {
            let opts = SearchOptions::new(SearchMode::BestOne);
            let seq = solve_sequential(&p, &opts);
            let par = solve_parallel(&p, &opts, workers);
            assert_eq!(seq.best_value, par.best_value, "workers = {workers}");
            assert_eq!(par.solutions.len(), 1);
            assert!(par.is_complete());
        }
    }

    #[test]
    fn all_optimal_matches_sequential_set() {
        // Two zero-weight bits → 4 co-optimal solutions.
        let p = WeightedBits {
            weights: vec![0.0, 1.0, 0.0, 2.0, 1.0],
        };
        let opts = SearchOptions::new(SearchMode::AllOptimal);
        let seq = solve_sequential(&p, &opts);
        let par = solve_parallel(&p, &opts, 3);
        let norm = |mut v: Vec<Vec<bool>>| {
            v.sort();
            v.dedup();
            v
        };
        assert_eq!(seq.best_value, par.best_value);
        let par_sols = norm(par.solutions);
        assert_eq!(norm(seq.solutions), par_sols);
        assert_eq!(par_sols.len(), 4);
    }

    #[test]
    fn single_worker_agrees() {
        let p = problem(8);
        let opts = SearchOptions::new(SearchMode::AllOptimal);
        let seq = solve_sequential(&p, &opts);
        let par = solve_parallel(&p, &opts, 1);
        assert_eq!(seq.best_value, par.best_value);
        assert_eq!(seq.solutions.len(), par.solutions.len());
    }

    #[test]
    fn more_workers_than_nodes() {
        let p = problem(2);
        let opts = SearchOptions::new(SearchMode::BestOne);
        let par = solve_parallel(&p, &opts, 16);
        assert_eq!(par.best_value, Some(0.0));
    }

    #[test]
    fn budget_abort_is_reported() {
        let p = problem(18);
        let opts = SearchOptions::new(SearchMode::BestOne).max_branches(10);
        let par = solve_parallel(&p, &opts, 4);
        assert_eq!(par.stop, StopReason::BudgetExhausted);
        assert!(!par.is_complete());
    }

    #[test]
    fn expired_deadline_returns_quickly() {
        let p = problem(20);
        let opts = SearchOptions::new(SearchMode::BestOne).deadline(Instant::now());
        let par = solve_parallel(&p, &opts, 4);
        assert_eq!(par.stop, StopReason::DeadlineExpired);
    }

    #[test]
    fn pre_cancelled_token_stops_immediately() {
        let p = problem(20);
        let token = CancelToken::new();
        token.cancel();
        let opts = SearchOptions::new(SearchMode::BestOne).cancel_token(token);
        let par = solve_parallel(&p, &opts, 4);
        assert_eq!(par.stop, StopReason::Cancelled);
    }

    #[test]
    fn tree_that_collapses_during_seeding() {
        struct Hinted(WeightedBits);
        impl Problem for Hinted {
            type Node = Vec<bool>;
            type Solution = Vec<bool>;
            fn root(&self) -> Vec<bool> {
                Vec::new()
            }
            fn lower_bound(&self, n: &Vec<bool>) -> f64 {
                self.0.lower_bound(n)
            }
            fn solution(&self, n: &Vec<bool>) -> Option<(Vec<bool>, f64)> {
                self.0.solution(n)
            }
            fn branch(&self, n: &Vec<bool>, out: &mut ChildBuf<Vec<bool>>) {
                self.0.branch(n, out)
            }
            fn initial_incumbent(&self) -> Option<(Vec<bool>, f64)> {
                Some((vec![false; self.0.weights.len()], 0.0))
            }
        }
        let p = Hinted(problem(6));
        let out = solve_parallel(&p, &SearchOptions::new(SearchMode::BestOne), 4);
        assert_eq!(out.best_value, Some(0.0));
        assert_eq!(out.solutions.len(), 1);
        assert!(out.is_complete());
    }

    #[test]
    fn stress_many_runs_no_deadlock() {
        let p = problem(9);
        for _ in 0..25 {
            let out = solve_parallel(&p, &SearchOptions::new(SearchMode::BestOne), 4);
            assert_eq!(out.best_value, Some(0.0));
        }
    }

    #[test]
    fn nan_lower_bounds_do_not_break_the_search() {
        /// Wraps `WeightedBits` but reports NaN bounds for half the nodes;
        /// the optimum must still be found (NaN = "no information").
        struct NanBounds(WeightedBits);
        impl Problem for NanBounds {
            type Node = Vec<bool>;
            type Solution = Vec<bool>;
            fn root(&self) -> Vec<bool> {
                Vec::new()
            }
            fn lower_bound(&self, n: &Vec<bool>) -> f64 {
                if n.len() % 2 == 1 {
                    f64::NAN
                } else {
                    self.0.lower_bound(n)
                }
            }
            fn solution(&self, n: &Vec<bool>) -> Option<(Vec<bool>, f64)> {
                self.0.solution(n)
            }
            fn branch(&self, n: &Vec<bool>, out: &mut ChildBuf<Vec<bool>>) {
                self.0.branch(n, out)
            }
        }
        let p = NanBounds(problem(8));
        let opts = SearchOptions::new(SearchMode::BestOne);
        let seq = solve_sequential(&p, &opts);
        let par = solve_parallel(&p, &opts, 4);
        assert_eq!(seq.best_value, Some(0.0));
        assert_eq!(par.best_value, Some(0.0));
        assert!(par.is_complete());
    }
}
