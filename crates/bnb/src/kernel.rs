//! The unified expansion kernel shared by every branch-and-bound driver.
//!
//! Sequential search, the thread-parallel master/slave driver and the
//! discrete-event cluster simulator all run the *same* per-node sequence:
//! sanitize the lower bound, prune against the incumbent, recognize and
//! offer complete solutions, spend branch budget, expand, prune the
//! children, update stats. This module owns that sequence — once — in
//! [`Expander::expand`], and exposes the three seams the drivers differ
//! in:
//!
//! * **node selection** — the [`Frontier`] trait ([`DepthFirstFrontier`],
//!   [`BestFirstFrontier`], [`BreadthFirstFrontier`]);
//! * **incumbent storage** — the [`IncumbentSink`] trait (a local
//!   [`Incumbents`] tracker, a shared atomic bound, a simulated slave's
//!   view of the global bound);
//! * **branch budget** — the [`BranchBudget`] trait ([`LocalBudget`] for
//!   single-threaded drivers, [`AtomicBudget`] for a counter shared across
//!   worker threads).
//!
//! The kernel also owns the stop-condition *cadence*: [`StopPoller`]
//! checks cancellation on every call and the wall clock every
//! `TIME_CHECK_INTERVAL` (128) calls, so every driver pays the same
//! bounded overshoot.
//!
//! An optional [`SearchObserver`] receives structured [`SearchEvent`]s
//! (node expanded, pruned-with-reason, incumbent improved, stopped) — the
//! seam tracing and observability hooks plug into without touching the
//! drivers. Pass `&mut ()` (the no-op observer) when you don't care.
//!
//! Finally, [`ChildBuf`] makes the hot path allocation-free: pruned
//! children and consumed parents are retired into a spare pool that
//! [`Problem::branch`] implementations can [`recycle`](ChildBuf::recycle)
//! into the next generation of children instead of allocating fresh nodes.
//!
//! The kernel deliberately owns *no* bound arithmetic: it consumes
//! whatever [`Problem::lower_bound`] cached on the node during
//! branching. The numeric layer below it — blocked solver-matrix rows
//! plus the lane kernels in [`bound`](crate::bound) — is where the
//! per-node math lives, so all three drivers inherit a faster bound path
//! without a single driver-side change.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

use crate::checkpoint::{self, CheckpointFile};
use crate::{Problem, SearchMode, SearchOptions, SearchOutcome, SearchStats, StopReason};

/// How often (in processed nodes) the drivers look at the wall clock for
/// deadline checks. Cancel flags are atomics and are checked every node.
pub(crate) const TIME_CHECK_INTERVAL: u64 = 128;

/// How many retired nodes a [`ChildBuf`] keeps for reuse. Enough for the
/// widest expansions we see (a 256-taxon tree — the widest leaf-bitset
/// monomorphization — branches 511 ways) while bounding memory held by
/// idle buffers.
const SPARE_CAP: usize = 1024;

/// Normalizes a lower bound coming from [`Problem::lower_bound`] so a
/// buggy or degenerate bound can never prune a live subtree: NaN (which
/// would poison every comparison) becomes `-∞`, i.e. "no information".
///
/// This is the single NaN policy for *all* drivers; the regression tests
/// assert a NaN bound never prunes anywhere.
pub fn sanitize_lb(lb: f64) -> f64 {
    if lb.is_nan() {
        f64::NEG_INFINITY
    } else {
        lb
    }
}

/// Whether a node with (sanitized) lower bound `lb` can be discarded
/// against upper bound `ub`: `lb ≥ ub − ε` when one optimum suffices,
/// `lb > ub + ε` when all co-optima must be kept.
pub fn prunable(lb: f64, ub: f64, opts: &SearchOptions) -> bool {
    match opts.mode {
        SearchMode::BestOne => lb >= ub - opts.eps(ub),
        SearchMode::AllOptimal => lb > ub + opts.eps(ub),
    }
}

/// Tracks the incumbent value and the solutions worth keeping under the
/// current [`SearchMode`]. The sequential, thread-parallel and simulated
/// drivers all build on it; custom drivers (e.g. simulations with their
/// own scheduling) can too.
pub struct Incumbents<S> {
    /// The best objective value seen so far (`+∞` before any solution).
    pub ub: f64,
    /// Kept solutions with their values (pruned of dominated entries as
    /// the bound improves).
    pub solutions: Vec<(f64, S)>,
    mode: SearchMode,
    tol: f64,
}

impl<S: Clone> Incumbents<S> {
    /// An empty tracker configured from the search options.
    pub fn new(opts: &SearchOptions) -> Self {
        Incumbents {
            ub: f64::INFINITY,
            solutions: Vec::new(),
            mode: opts.mode,
            tol: opts.tol,
        }
    }

    /// Whether a node with lower bound `lb` can be discarded given `ub`.
    /// (Kept for compatibility; identical to the free [`prunable`].)
    pub fn prunable(lb: f64, ub: f64, opts: &SearchOptions) -> bool {
        crate::kernel::prunable(lb, ub, opts)
    }

    /// Offers a complete solution; returns whether it improved the bound.
    ///
    /// A NaN value is rejected outright: it cannot be ordered against the
    /// incumbent and accepting it would poison every later comparison.
    pub fn offer(&mut self, value: f64, solution: S) -> bool {
        if value.is_nan() {
            return false;
        }
        let eps = if self.ub.is_finite() {
            self.tol * 1f64.max(self.ub.abs())
        } else {
            0.0
        };
        if value < self.ub - eps {
            self.ub = value;
            match self.mode {
                SearchMode::BestOne => {
                    self.solutions.clear();
                    self.solutions.push((value, solution));
                }
                SearchMode::AllOptimal => {
                    let eps = self.tol * 1f64.max(value.abs());
                    self.solutions.retain(|(v, _)| *v <= value + eps);
                    self.solutions.push((value, solution));
                }
            }
            true
        } else if matches!(self.mode, SearchMode::AllOptimal) && value <= self.ub + eps {
            self.solutions.push((value, solution));
            false
        } else {
            false
        }
    }

    /// Final solutions: exactly those within tolerance of `best`.
    pub fn finish(self, best: f64) -> Vec<S> {
        let eps = self.tol * 1f64.max(best.abs());
        self.solutions
            .into_iter()
            .filter(|(v, _)| *v <= best + eps)
            .map(|(_, s)| s)
            .collect()
    }

    /// Folds the tracker into a final [`SearchOutcome`] with the given
    /// counters and stop reason.
    pub fn into_outcome(self, stats: SearchStats, stop: StopReason) -> SearchOutcome<S> {
        let best_value = self
            .solutions
            .iter()
            .map(|(v, _)| *v)
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.min(v)))
            });
        match best_value {
            Some(bv) => SearchOutcome {
                best_value: Some(bv),
                solutions: self.finish(bv),
                stats,
                stop,
            },
            None => SearchOutcome {
                best_value: None,
                solutions: Vec::new(),
                stats,
                stop,
            },
        }
    }
}

/// Where the kernel reads and publishes the incumbent upper bound.
///
/// The sequential driver uses a plain [`Incumbents`]; the parallel driver
/// plugs in the shared atomic bound plus the publish-immediately solution
/// list; the cluster simulator plugs in each slave's *delayed view* of the
/// global bound — the whole point of the simulation.
pub trait IncumbentSink<S> {
    /// The upper bound the kernel should prune against *right now*.
    fn current_ub(&self) -> f64;

    /// Offers a complete solution (never NaN — the kernel filters those);
    /// returns whether it improved this sink's bound.
    fn accept(&mut self, value: f64, solution: S) -> bool;
}

impl<S: Clone> IncumbentSink<S> for Incumbents<S> {
    fn current_ub(&self) -> f64 {
        self.ub
    }

    fn accept(&mut self, value: f64, solution: S) -> bool {
        self.offer(value, solution)
    }
}

/// Where branch operations are debited. Checked *before* every branch;
/// an exhausted budget stops the search with
/// [`StopReason::BudgetExhausted`].
pub trait BranchBudget {
    /// Takes one branch operation; `false` means the budget is exhausted
    /// and the branch must not run.
    fn try_take(&mut self) -> bool;
}

/// A driver-local branch budget (sequential and simulated drivers).
#[derive(Debug)]
pub struct LocalBudget {
    used: u64,
    limit: u64,
}

impl LocalBudget {
    /// A budget of `limit` branch operations (`u64::MAX` = unlimited).
    pub fn new(limit: u64) -> Self {
        LocalBudget { used: 0, limit }
    }
}

impl BranchBudget for LocalBudget {
    fn try_take(&mut self) -> bool {
        if self.used >= self.limit {
            false
        } else {
            self.used += 1;
            true
        }
    }
}

/// A branch budget shared across worker threads via an atomic counter
/// (the parallel driver; the master's seeding phase uses it too so the
/// budget is global across both phases).
#[derive(Debug)]
pub struct AtomicBudget<'a> {
    counter: &'a AtomicU64,
    limit: u64,
}

impl<'a> AtomicBudget<'a> {
    /// Wraps a shared counter with the given limit.
    pub fn new(counter: &'a AtomicU64, limit: u64) -> Self {
        AtomicBudget { counter, limit }
    }
}

impl BranchBudget for AtomicBudget<'_> {
    fn try_take(&mut self) -> bool {
        self.counter.fetch_add(1, AtomicOrdering::Relaxed) < self.limit
    }
}

/// Why the kernel discarded a node or child.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneReason {
    /// A popped node's bound could not beat the incumbent.
    Node,
    /// A freshly generated child's bound could not beat the incumbent.
    Child,
    /// A complete node reported a NaN objective value (unorderable; the
    /// solution is dropped rather than poisoning the bound).
    NanObjective,
    /// The constraint-propagation stage ([`Problem::propagate`]) proved
    /// the node dominated: a triple-domain wipeout or a propagated
    /// height floor fired before the weight bound could.
    Propagation,
}

/// A structured event emitted by the kernel as the search runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SearchEvent {
    /// A node was branched: `children` generated, `kept` survived the
    /// child-prune pass into the frontier.
    NodeExpanded {
        /// Children generated by [`Problem::branch`].
        children: usize,
        /// Children that survived pruning into the frontier.
        kept: usize,
    },
    /// A node, child or NaN solution was discarded.
    Pruned {
        /// Why it was discarded.
        reason: PruneReason,
    },
    /// The incumbent improved to `value`.
    IncumbentImproved {
        /// The new upper bound.
        value: f64,
    },
    /// The search is stopping early.
    Stopped {
        /// Why the search is stopping.
        reason: StopReason,
    },
    /// A starved worker stole a batch of open nodes from an overflow
    /// shard (parallel drivers only).
    Stolen {
        /// Nodes taken — half the victim shard's queue, at least one.
        nodes: usize,
    },
    /// A loaded worker donated surplus open nodes to its overflow shard
    /// because a peer was parked waiting for work.
    Donated {
        /// Nodes donated — the bottom half of the worker's local stack.
        nodes: usize,
    },
    /// A worker found every shard empty and parked on the frontier's
    /// eventcount until the next donation or the end of the search.
    Parked,
    /// The memory watchdog dropped `nodes` worst-bound open nodes to get
    /// back under the configured
    /// [`MemoryBudget`](crate::MemoryBudget) — the search will finish
    /// with [`StopReason::MemoryExhausted`].
    Shed {
        /// Open nodes dropped (whole subtrees abandoned).
        nodes: usize,
    },
    /// A crash-safe incumbent snapshot was durably written.
    Checkpointed {
        /// Open nodes at snapshot time (this driver thread's frontier).
        open: usize,
    },
}

/// Receives [`SearchEvent`]s from the kernel. The unit type `()` is the
/// no-op observer: pass `&mut ()` when you don't need the hook.
pub trait SearchObserver {
    /// Called once per event, synchronously, on the searching thread.
    fn on_event(&mut self, event: SearchEvent);
}

impl SearchObserver for () {
    fn on_event(&mut self, _event: SearchEvent) {}
}

/// An explicitly named no-op [`SearchObserver`] (equivalent to `()`).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopObserver;

impl SearchObserver for NoopObserver {
    fn on_event(&mut self, _event: SearchEvent) {}
}

/// The shared stop-condition cadence: cancellation is checked on every
/// poll, the wall-clock deadline only every `TIME_CHECK_INTERVAL` polls
/// (including the very first, so an already-expired deadline stops a
/// search before it expands anything).
#[derive(Debug, Default)]
pub struct StopPoller {
    ticks: u64,
}

impl StopPoller {
    /// A poller starting at tick zero.
    pub fn new() -> Self {
        StopPoller::default()
    }

    /// Polls the stop conditions; `Some` means stop now with that reason.
    pub fn poll(&mut self, opts: &SearchOptions) -> Option<StopReason> {
        if opts.cancelled() {
            return Some(StopReason::Cancelled);
        }
        if self.ticks.is_multiple_of(TIME_CHECK_INTERVAL) && opts.deadline_expired() {
            return Some(StopReason::DeadlineExpired);
        }
        self.ticks += 1;
        None
    }
}

/// The buffer [`Problem::branch`] writes children into, plus a bounded
/// spare pool of retired nodes for allocation-free branching.
///
/// A `branch` implementation calls [`recycle`](ChildBuf::recycle) to pull
/// a retired node whose buffers it can overwrite in place (e.g. via a
/// `clone_from`-style copy) instead of allocating, then
/// [`push`](ChildBuf::push)es the finished child. Children it generates
/// but discards itself (e.g. filtered by a feasibility rule) go back via
/// [`retire`](ChildBuf::retire). The kernel retires pruned children and
/// consumed parents automatically.
pub struct ChildBuf<N> {
    out: Vec<N>,
    spare: Vec<N>,
}

impl<N> Default for ChildBuf<N> {
    fn default() -> Self {
        ChildBuf::new()
    }
}

impl<N> ChildBuf<N> {
    /// An empty buffer with an empty spare pool.
    pub fn new() -> Self {
        ChildBuf {
            out: Vec::new(),
            spare: Vec::new(),
        }
    }

    /// Appends a finished child.
    pub fn push(&mut self, child: N) {
        self.out.push(child);
    }

    /// Takes a retired node to overwrite, if one is available.
    pub fn recycle(&mut self) -> Option<N> {
        self.spare.pop()
    }

    /// Returns a node to the spare pool (dropped once the pool is full).
    pub fn retire(&mut self, node: N) {
        if self.spare.len() < SPARE_CAP {
            self.spare.push(node);
        }
    }

    /// Number of children currently staged.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether no children are staged.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// The staged children.
    pub fn as_slice(&self) -> &[N] {
        &self.out
    }

    /// Drops all staged children (they do *not* go to the spare pool).
    pub fn clear(&mut self) {
        self.out.clear();
    }
}

/// An open-node pool. Implementations decide both the pop order and how a
/// batch of surviving children (in branch order, with their sanitized
/// bounds) is inserted — which is what preserves each driver's exact
/// historical expansion order.
pub trait Frontier<N> {
    /// Removes and returns the next node to expand.
    fn pop(&mut self) -> Option<N>;

    /// Absorbs surviving children. `staged` is in branch order and is
    /// drained; implementations choose their own insertion order.
    fn absorb(&mut self, staged: &mut Vec<(f64, N)>);

    /// Number of open nodes.
    fn len(&self) -> usize;

    /// Whether no nodes are open.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops up to `excess` of the *worst-bound* open nodes (largest
    /// sanitized lower bound, ties broken deterministically), returning
    /// how many were dropped. The memory watchdog calls this on budget
    /// breach; the default — for frontiers that cannot shed — drops
    /// nothing.
    fn shed(&mut self, excess: usize, lb: &mut dyn FnMut(&N) -> f64) -> usize {
        let _ = (excess, lb);
        0
    }
}

/// Removes the `excess` entries of `stack` with the largest bound (ties:
/// the deeper/later entry sheds first), preserving the relative order of
/// the survivors. Shared by every stack-shaped frontier's
/// [`Frontier::shed`].
pub(crate) fn shed_worst_from_stack<N>(
    stack: &mut Vec<N>,
    excess: usize,
    lb: &mut dyn FnMut(&N) -> f64,
) -> usize {
    let len = stack.len();
    let excess = excess.min(len);
    if excess == 0 {
        return 0;
    }
    let bounds: Vec<f64> = stack.iter().map(|n| sanitize_lb(lb(n))).collect();
    let mut order: Vec<usize> = (0..len).collect();
    order.sort_by(|&a, &b| bounds[b].total_cmp(&bounds[a]).then(b.cmp(&a)));
    let mut keep = vec![true; len];
    for &i in order.iter().take(excess) {
        keep[i] = false;
    }
    let mut i = 0;
    stack.retain(|_| {
        let k = keep[i];
        i += 1;
        k
    });
    excess
}

/// LIFO stack: children are inserted in reverse branch order so the
/// *first* child is explored first (problems tune branch order for good
/// early incumbents).
#[derive(Debug, Default)]
pub struct DepthFirstFrontier<N> {
    stack: Vec<N>,
}

impl<N> DepthFirstFrontier<N> {
    /// An empty stack.
    pub fn new() -> Self {
        DepthFirstFrontier { stack: Vec::new() }
    }

    /// Wraps an existing stack (last element pops first).
    pub fn from_vec(stack: Vec<N>) -> Self {
        DepthFirstFrontier { stack }
    }

    /// Pushes a single node on top of the stack.
    pub fn push(&mut self, node: N) {
        self.stack.push(node);
    }

    /// Removes the *bottom* (most promising, for a pool seeded
    /// best-bound-last) node — the one donated to other workers.
    pub fn steal_oldest(&mut self) -> Option<N> {
        if self.stack.is_empty() {
            None
        } else {
            Some(self.stack.remove(0))
        }
    }
}

impl<N> Frontier<N> for DepthFirstFrontier<N> {
    fn pop(&mut self) -> Option<N> {
        self.stack.pop()
    }

    fn absorb(&mut self, staged: &mut Vec<(f64, N)>) {
        for (_, node) in staged.drain(..).rev() {
            self.stack.push(node);
        }
    }

    fn len(&self) -> usize {
        self.stack.len()
    }

    fn shed(&mut self, excess: usize, lb: &mut dyn FnMut(&N) -> f64) -> usize {
        shed_worst_from_stack(&mut self.stack, excess, lb)
    }
}

/// Min-heap on the lower bound, FIFO among exact ties: always expands the
/// open node with the smallest bound.
#[derive(Debug, Default)]
pub struct BestFirstFrontier<N> {
    heap: BinaryHeap<HeapEntry<N>>,
    seq: u64,
}

struct HeapEntry<N> {
    lb: f64,
    seq: u64,
    node: N,
}

impl<N> std::fmt::Debug for HeapEntry<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapEntry")
            .field("lb", &self.lb)
            .field("seq", &self.seq)
            .finish_non_exhaustive()
    }
}

impl<N> PartialEq for HeapEntry<N> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<N> Eq for HeapEntry<N> {}
impl<N> Ord for HeapEntry<N> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse both: BinaryHeap is a max-heap, we want the smallest
        // bound, then the earliest insertion. `total_cmp` keeps the order
        // total even if a buggy bound produces NaN (sorted past +∞, i.e.
        // least promising — it is never used for pruning).
        other.lb.total_cmp(&self.lb).then(other.seq.cmp(&self.seq))
    }
}
impl<N> PartialOrd for HeapEntry<N> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<N> BestFirstFrontier<N> {
    /// An empty heap.
    pub fn new() -> Self {
        BestFirstFrontier {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<N> Frontier<N> for BestFirstFrontier<N> {
    fn pop(&mut self) -> Option<N> {
        self.heap.pop().map(|e| e.node)
    }

    fn absorb(&mut self, staged: &mut Vec<(f64, N)>) {
        // Reverse branch order, matching the historical driver: among
        // equal bounds the FIFO tie-break then favors the first child.
        for (lb, node) in staged.drain(..).rev() {
            self.heap.push(HeapEntry {
                lb,
                seq: self.seq,
                node,
            });
            self.seq += 1;
        }
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn shed(&mut self, excess: usize, _lb: &mut dyn FnMut(&N) -> f64) -> usize {
        // The heap already knows every bound; ignore the callback and
        // rebuild without the least-promising entries (smallest in the
        // reversed `Ord`, i.e. largest bound, latest insertion first).
        let excess = excess.min(self.heap.len());
        if excess == 0 {
            return 0;
        }
        let mut entries: Vec<HeapEntry<N>> = std::mem::take(&mut self.heap).into_vec();
        entries.sort();
        let kept = entries.split_off(excess);
        self.heap = BinaryHeap::from(kept);
        excess
    }
}

/// FIFO queue — the masters' breadth-first *seeding* frontier (children
/// are absorbed in branch order and popped oldest-first).
#[derive(Debug, Default)]
pub struct BreadthFirstFrontier<N> {
    queue: VecDeque<N>,
}

impl<N> BreadthFirstFrontier<N> {
    /// An empty queue.
    pub fn new() -> Self {
        BreadthFirstFrontier {
            queue: VecDeque::new(),
        }
    }

    /// Consumes the frontier in FIFO order, for dealing seeds to workers.
    pub fn into_vec(self) -> Vec<N> {
        self.queue.into_iter().collect()
    }
}

impl<N> Frontier<N> for BreadthFirstFrontier<N> {
    fn pop(&mut self) -> Option<N> {
        self.queue.pop_front()
    }

    fn absorb(&mut self, staged: &mut Vec<(f64, N)>) {
        for (_, node) in staged.drain(..) {
            self.queue.push_back(node);
        }
    }

    fn len(&self) -> usize {
        self.queue.len()
    }
}

/// What [`Expander::expand`] did with a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Step {
    /// The node's bound could not beat the incumbent; it was discarded.
    Pruned,
    /// The node was a complete solution (possibly non-improving).
    Solution {
        /// Its objective value.
        value: f64,
        /// Whether it improved the sink's incumbent.
        improved: bool,
    },
    /// The node was branched; `kept` children entered the frontier.
    Branched {
        /// Children that survived pruning.
        kept: usize,
    },
    /// A stop condition fired *before* the node was processed (budget
    /// exhausted); the node was not expanded.
    Stopped(StopReason),
}

/// The expansion kernel: one value owning the per-node search sequence
/// and its counters. Drivers construct one `Expander` per independent
/// stats scope (one for a sequential run, one per parallel worker, one
/// for a whole simulated cluster) and run their scheduling loop around
/// [`expand`](Expander::expand).
pub struct Expander<'a, P: Problem> {
    problem: &'a P,
    opts: &'a SearchOptions,
    children: ChildBuf<P::Node>,
    staged: Vec<(f64, P::Node)>,
    poller: StopPoller,
    stats: SearchStats,
    ckpt: Option<CkptState>,
}

/// Per-expander checkpoint bookkeeping: the destination and cadence from
/// the policy, plus the best already-encoded incumbent this expander has
/// seen (encoded at accept time, while the solution is still in hand).
struct CkptState {
    path: std::path::PathBuf,
    interval: u64,
    since: u64,
    best: Option<(f64, Vec<u8>)>,
}

impl<'a, P: Problem> Expander<'a, P> {
    /// A fresh kernel for `problem` under `opts`.
    pub fn new(problem: &'a P, opts: &'a SearchOptions) -> Self {
        Expander {
            problem,
            opts,
            children: ChildBuf::new(),
            staged: Vec::new(),
            poller: StopPoller::new(),
            stats: SearchStats::default(),
            ckpt: opts.checkpoint.as_ref().map(|c| CkptState {
                path: c.path.clone(),
                interval: c.interval.max(1),
                since: 0,
                best: None,
            }),
        }
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> SearchStats {
        self.stats
    }

    /// Offers the problem's [initial incumbent](Problem::initial_incumbent)
    /// (the paper's UPGMM upper bound) to the sink, counting an incumbent
    /// update if it was accepted. NaN hints are dropped.
    pub fn offer_initial<K: IncumbentSink<P::Solution>>(&mut self, sink: &mut K) {
        if let Some((s, v)) = self.problem.initial_incumbent() {
            if v.is_nan() {
                return;
            }
            let encoded = self.encode_for_ckpt(&s);
            if sink.accept(v, s) {
                self.stats.incumbent_updates += 1;
                self.remember_ckpt(v, encoded);
            }
        }
    }

    /// Pre-encodes a solution for checkpointing (no-op when checkpoints
    /// are off), so acceptance can move the solution into the sink.
    fn encode_for_ckpt(&self, s: &P::Solution) -> Option<Vec<u8>> {
        if self.ckpt.is_some() {
            self.problem.encode_solution(s)
        } else {
            None
        }
    }

    /// Records an accepted incumbent's encoding as the snapshot payload
    /// if it beats the best this expander has checkpoint-tracked so far.
    fn remember_ckpt(&mut self, value: f64, encoded: Option<Vec<u8>>) {
        if let (Some(c), Some(bytes)) = (&mut self.ckpt, encoded) {
            if c.best.as_ref().is_none_or(|(bv, _)| value < *bv) {
                c.best = Some((value, bytes));
            }
        }
    }

    /// Writes a snapshot if the cadence says so and an incumbent exists.
    /// Write errors are swallowed: checkpointing is best-effort and must
    /// never fail a search that would otherwise succeed.
    fn maybe_checkpoint<O: SearchObserver>(&mut self, open: usize, observer: &mut O) {
        let Some(c) = &mut self.ckpt else { return };
        c.since += 1;
        if c.since < c.interval {
            return;
        }
        c.since = 0;
        let Some((value, payload)) = &c.best else {
            return;
        };
        let file = CheckpointFile {
            best_value: *value,
            open_nodes: open as u64,
            branched: self.stats.branched,
            payload: payload.clone(),
        };
        if checkpoint::write_atomic(&c.path, &file).is_ok() {
            self.stats.checkpoints += 1;
            observer.on_event(SearchEvent::Checkpointed { open });
        }
    }

    /// Records nodes dropped by the memory watchdog: counts them and
    /// emits a [`SearchEvent::Shed`]. Drivers call this right after a
    /// successful [`Frontier::shed`].
    pub fn note_shed<O: SearchObserver>(&mut self, nodes: usize, observer: &mut O) {
        if nodes == 0 {
            return;
        }
        self.stats.nodes_shed += nodes as u64;
        observer.on_event(SearchEvent::Shed { nodes });
    }

    /// Pushes the root node (with its sanitized bound) into the frontier.
    pub fn push_root<F: Frontier<P::Node>>(&mut self, frontier: &mut F) {
        let root = self.problem.root();
        let lb = sanitize_lb(self.problem.lower_bound(&root));
        self.staged.clear();
        self.staged.push((lb, root));
        frontier.absorb(&mut self.staged);
        self.stats.peak_pool = self.stats.peak_pool.max(frontier.len() as u64);
    }

    /// Polls cancellation/deadline at the kernel's cadence, emitting a
    /// [`SearchEvent::Stopped`] when a condition fires. Call once per
    /// scheduling step, before [`expand`](Expander::expand).
    pub fn poll_stop<O: SearchObserver>(&mut self, observer: &mut O) -> Option<StopReason> {
        let stop = self.poller.poll(self.opts);
        if let Some(reason) = stop {
            observer.on_event(SearchEvent::Stopped { reason });
        }
        stop
    }

    /// Processes one node: prune, or record its solution, or branch it —
    /// the single authoritative copy of the expansion sequence.
    ///
    /// The node is passed by reference so schedulers can still inspect it
    /// afterwards (the cluster simulator charges virtual time by
    /// `branch_ops(node)`); pass it to [`recycle`](Expander::recycle) when
    /// done with it.
    pub fn expand<K, B, F, O>(
        &mut self,
        node: &P::Node,
        sink: &mut K,
        budget: &mut B,
        frontier: &mut F,
        observer: &mut O,
    ) -> Step
    where
        K: IncumbentSink<P::Solution>,
        B: BranchBudget,
        F: Frontier<P::Node>,
        O: SearchObserver,
    {
        let ub = sink.current_ub();
        let lb = sanitize_lb(self.problem.lower_bound(node));
        if prunable(lb, ub, self.opts) {
            self.stats.pruned += 1;
            observer.on_event(SearchEvent::Pruned {
                reason: PruneReason::Node,
            });
            return Step::Pruned;
        }
        // Second prune stage: constraint propagation. Runs only on nodes
        // the weight bound kept, so a NaN-sanitized (never-pruning) first
        // stage cannot be overridden into a prune by accident — the hook
        // sees the same sanitized incumbent and must apply its own
        // sanitize_lb before comparing (see bnb::propagate).
        if self.problem.propagate(node, ub, self.opts) {
            self.stats.pruned += 1;
            self.stats.propagation_pruned += 1;
            observer.on_event(SearchEvent::Pruned {
                reason: PruneReason::Propagation,
            });
            return Step::Pruned;
        }
        if let Some((s, v)) = self.problem.solution(node) {
            self.stats.solutions_seen += 1;
            if v.is_nan() {
                // Unorderable objective: drop it rather than poison the
                // bound.
                observer.on_event(SearchEvent::Pruned {
                    reason: PruneReason::NanObjective,
                });
                return Step::Solution {
                    value: v,
                    improved: false,
                };
            }
            let encoded = self.encode_for_ckpt(&s);
            let improved = sink.accept(v, s);
            if improved {
                self.stats.incumbent_updates += 1;
                observer.on_event(SearchEvent::IncumbentImproved { value: v });
                self.remember_ckpt(v, encoded);
            }
            return Step::Solution { value: v, improved };
        }
        if !budget.try_take() {
            observer.on_event(SearchEvent::Stopped {
                reason: StopReason::BudgetExhausted,
            });
            return Step::Stopped(StopReason::BudgetExhausted);
        }
        self.stats.branched += 1;
        debug_assert!(self.children.is_empty(), "branch buffer not drained");
        self.problem.branch(node, &mut self.children);
        let generated = self.children.len();
        // Re-read the bound: another worker may have tightened it while
        // `branch` ran (for single-threaded sinks this is the same value).
        let ub = sink.current_ub();
        let mut out = std::mem::take(&mut self.children.out);
        self.staged.clear();
        for child in out.drain(..) {
            let clb = sanitize_lb(self.problem.lower_bound(&child));
            if prunable(clb, ub, self.opts) {
                self.stats.pruned += 1;
                observer.on_event(SearchEvent::Pruned {
                    reason: PruneReason::Child,
                });
                self.children.retire(child);
            } else {
                self.staged.push((clb, child));
            }
        }
        self.children.out = out;
        let kept = self.staged.len();
        frontier.absorb(&mut self.staged);
        self.stats.peak_pool = self.stats.peak_pool.max(frontier.len() as u64);
        observer.on_event(SearchEvent::NodeExpanded {
            children: generated,
            kept,
        });
        self.maybe_checkpoint(frontier.len(), observer);
        Step::Branched { kept }
    }

    /// Retires a consumed node into the spare pool, making its buffers
    /// available to the next [`ChildBuf::recycle`] call.
    pub fn recycle(&mut self, node: P::Node) {
        self.children.retire(node);
    }
}
