use crate::kernel::{
    BestFirstFrontier, DepthFirstFrontier, Expander, Frontier, Incumbents, LocalBudget,
    SearchObserver, Step,
};
use crate::{Problem, SearchOptions, SearchOutcome, StopReason, Strategy};

/// Single-threaded branch-and-bound — Algorithm BBU's skeleton: keep a
/// pool of open nodes (a stack under [`Strategy::DepthFirst`], a bound-
/// ordered heap under [`Strategy::BestFirst`]), prune against the
/// incumbent, and record complete solutions. A thin scheduler over the
/// shared [expansion kernel](crate::kernel).
///
/// The search is *anytime*: the cancel token is checked on every node and
/// the deadline every 128 nodes (including before the first, so an
/// already-expired deadline returns the initial incumbent untouched), and
/// stopping early always returns the best incumbent so far with the
/// accurate [`StopReason`].
pub fn solve_sequential<P: Problem>(
    problem: &P,
    opts: &SearchOptions,
) -> SearchOutcome<P::Solution> {
    solve_sequential_observed(problem, opts, &mut ())
}

/// [`solve_sequential`] with a [`SearchObserver`] receiving the kernel's
/// structured events — the hook tracing and progress reporting plug into.
pub fn solve_sequential_observed<P: Problem, O: SearchObserver>(
    problem: &P,
    opts: &SearchOptions,
    observer: &mut O,
) -> SearchOutcome<P::Solution> {
    match opts.strategy {
        Strategy::DepthFirst => drive(problem, opts, DepthFirstFrontier::new(), observer),
        Strategy::BestFirst => drive(problem, opts, BestFirstFrontier::new(), observer),
    }
}

fn drive<P: Problem, F: Frontier<P::Node>, O: SearchObserver>(
    problem: &P,
    opts: &SearchOptions,
    mut frontier: F,
    observer: &mut O,
) -> SearchOutcome<P::Solution> {
    let mut exp = Expander::new(problem, opts);
    let mut inc = Incumbents::new(opts);
    let mut budget = LocalBudget::new(opts.max_branches);
    exp.offer_initial(&mut inc);
    exp.push_root(&mut frontier);
    let mut stop = StopReason::Completed;
    let mut shed_any = false;
    while let Some(node) = frontier.pop() {
        if let Some(reason) = exp.poll_stop(observer) {
            stop = reason;
            break;
        }
        match exp.expand(&node, &mut inc, &mut budget, &mut frontier, observer) {
            Step::Stopped(reason) => {
                stop = reason;
                break;
            }
            _ => exp.recycle(node),
        }
        // Memory watchdog: checked after every expansion, so the frontier
        // never exceeds the cap by more than one branching batch. Shedding
        // drops the worst-bound open nodes; the incumbent is kept and the
        // search continues on what remains, but exhausting that capped
        // frontier no longer proves optimality.
        if let Some(mb) = &opts.memory {
            let open = frontier.len() as u64;
            if open > mb.max_open_nodes {
                let excess = (open - mb.max_open_nodes) as usize;
                let dropped = frontier.shed(excess, &mut |n| problem.lower_bound(n));
                if dropped > 0 {
                    exp.note_shed(dropped, observer);
                    shed_any = true;
                }
            }
        }
    }
    if shed_any && matches!(stop, StopReason::Completed) {
        stop = StopReason::MemoryExhausted;
    }
    inc.into_outcome(exp.stats(), stop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ChildBuf;
    use crate::SearchMode;

    /// Toy problem: binary strings of length `n`; value = number of ones +
    /// `base`; optimum is the all-zero string with value `base`. Lower
    /// bound = ones so far + base (admissible: flipping more bits only
    /// adds). With `AllOptimal` and `twist = true`, bit 0 is free so two
    /// optima exist.
    struct Bits {
        n: usize,
        base: f64,
        twist: bool,
    }

    impl Problem for Bits {
        type Node = Vec<bool>;
        type Solution = Vec<bool>;

        fn root(&self) -> Vec<bool> {
            Vec::new()
        }
        fn lower_bound(&self, node: &Vec<bool>) -> f64 {
            self.base
                + node
                    .iter()
                    .enumerate()
                    .filter(|(i, &b)| b && !(self.twist && *i == 0))
                    .count() as f64
        }
        fn solution(&self, node: &Vec<bool>) -> Option<(Vec<bool>, f64)> {
            (node.len() == self.n).then(|| (node.clone(), self.lower_bound(node)))
        }
        fn branch(&self, node: &Vec<bool>, out: &mut ChildBuf<Vec<bool>>) {
            for b in [false, true] {
                let mut c = node.clone();
                c.push(b);
                out.push(c);
            }
        }
    }

    #[test]
    fn finds_the_optimum() {
        let p = Bits {
            n: 6,
            base: 2.0,
            twist: false,
        };
        let out = solve_sequential(&p, &SearchOptions::new(SearchMode::BestOne));
        assert_eq!(out.best_value, Some(2.0));
        assert_eq!(out.solutions, vec![vec![false; 6]]);
        assert!(out.is_complete());
    }

    #[test]
    fn all_optimal_finds_both() {
        let p = Bits {
            n: 5,
            base: 0.0,
            twist: true,
        };
        let out = solve_sequential(&p, &SearchOptions::new(SearchMode::AllOptimal));
        assert_eq!(out.best_value, Some(0.0));
        let mut sols = out.solutions;
        sols.sort();
        assert_eq!(sols.len(), 2);
        assert_eq!(sols[0], vec![false, false, false, false, false]);
        assert_eq!(sols[1], vec![true, false, false, false, false]);
    }

    #[test]
    fn best_one_prunes_more_than_all_optimal() {
        let opts1 = SearchOptions::new(SearchMode::BestOne);
        let opts2 = SearchOptions::new(SearchMode::AllOptimal);
        let p = Bits {
            n: 8,
            base: 0.0,
            twist: false,
        };
        let a = solve_sequential(&p, &opts1);
        let b = solve_sequential(&p, &opts2);
        assert!(a.stats.branched <= b.stats.branched);
        assert_eq!(a.best_value, b.best_value);
    }

    #[test]
    fn initial_incumbent_tightens_search() {
        struct WithHint(Bits);
        impl Problem for WithHint {
            type Node = Vec<bool>;
            type Solution = Vec<bool>;
            fn root(&self) -> Vec<bool> {
                self.0.root()
            }
            fn lower_bound(&self, n: &Vec<bool>) -> f64 {
                self.0.lower_bound(n)
            }
            fn solution(&self, n: &Vec<bool>) -> Option<(Vec<bool>, f64)> {
                self.0.solution(n)
            }
            fn branch(&self, n: &Vec<bool>, out: &mut ChildBuf<Vec<bool>>) {
                self.0.branch(n, out)
            }
            fn initial_incumbent(&self) -> Option<(Vec<bool>, f64)> {
                Some((vec![false; self.0.n], self.0.base))
            }
        }
        let bare = Bits {
            n: 8,
            base: 1.0,
            twist: false,
        };
        let hinted = WithHint(Bits {
            n: 8,
            base: 1.0,
            twist: false,
        });
        let a = solve_sequential(&bare, &SearchOptions::new(SearchMode::BestOne));
        let b = solve_sequential(&hinted, &SearchOptions::new(SearchMode::BestOne));
        assert_eq!(a.best_value, b.best_value);
        // The perfect hint prunes the entire tree.
        assert_eq!(b.stats.branched, 0);
    }

    #[test]
    fn best_first_agrees_with_depth_first() {
        let p = Bits {
            n: 9,
            base: 2.0,
            twist: false,
        };
        let dfs = solve_sequential(&p, &SearchOptions::new(SearchMode::BestOne));
        let bfs = solve_sequential(
            &p,
            &SearchOptions::new(SearchMode::BestOne).strategy(crate::Strategy::BestFirst),
        );
        assert_eq!(dfs.best_value, bfs.best_value);
        assert_eq!(dfs.solutions, bfs.solutions);
        // Best-first never expands a node whose bound exceeds the optimum,
        // so it cannot branch more than depth-first here.
        assert!(bfs.stats.branched <= dfs.stats.branched);
    }

    #[test]
    fn best_first_all_optimal_set_matches() {
        let p = Bits {
            n: 6,
            base: 0.0,
            twist: true,
        };
        let dfs = solve_sequential(&p, &SearchOptions::new(SearchMode::AllOptimal));
        let bfs = solve_sequential(
            &p,
            &SearchOptions::new(SearchMode::AllOptimal).strategy(crate::Strategy::BestFirst),
        );
        let norm = |mut v: Vec<Vec<bool>>| {
            v.sort();
            v
        };
        assert_eq!(dfs.best_value, bfs.best_value);
        assert_eq!(norm(dfs.solutions), norm(bfs.solutions));
    }

    #[test]
    fn branch_budget_marks_incomplete() {
        let p = Bits {
            n: 12,
            base: 0.0,
            twist: false,
        };
        let out = solve_sequential(&p, &SearchOptions::new(SearchMode::BestOne).max_branches(3));
        assert_eq!(out.stop, StopReason::BudgetExhausted);
        assert!(out.stats.branched <= 3);
    }

    #[test]
    fn infeasible_search_yields_none() {
        /// A problem whose only leaves are pruned away by an initial
        /// incumbent is still "solved" by that incumbent; a problem with no
        /// solutions at all yields `None`.
        struct NoSolutions;
        impl Problem for NoSolutions {
            type Node = u32;
            type Solution = ();
            fn root(&self) -> u32 {
                0
            }
            fn lower_bound(&self, n: &u32) -> f64 {
                *n as f64
            }
            fn solution(&self, _: &u32) -> Option<((), f64)> {
                None
            }
            fn branch(&self, n: &u32, out: &mut ChildBuf<u32>) {
                if *n < 3 {
                    out.push(n + 1);
                }
            }
        }
        let out = solve_sequential(&NoSolutions, &SearchOptions::new(SearchMode::BestOne));
        assert_eq!(out.best_value, None);
        assert!(out.solutions.is_empty());
    }

    #[test]
    fn observer_sees_structured_events() {
        use crate::kernel::{SearchEvent, SearchObserver};

        #[derive(Default)]
        struct Tally {
            expanded: u64,
            pruned: u64,
            improved: u64,
        }
        impl SearchObserver for Tally {
            fn on_event(&mut self, event: SearchEvent) {
                match event {
                    SearchEvent::NodeExpanded { .. } => self.expanded += 1,
                    SearchEvent::Pruned { .. } => self.pruned += 1,
                    SearchEvent::IncumbentImproved { .. } => self.improved += 1,
                    _ => {}
                }
            }
        }

        let p = Bits {
            n: 7,
            base: 0.0,
            twist: false,
        };
        let mut tally = Tally::default();
        let out =
            solve_sequential_observed(&p, &SearchOptions::new(SearchMode::BestOne), &mut tally);
        assert_eq!(tally.expanded, out.stats.branched);
        assert_eq!(tally.pruned, out.stats.pruned);
        assert_eq!(tally.improved, out.stats.incumbent_updates);
    }
}
