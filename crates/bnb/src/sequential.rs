use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::problem::{sanitize_lb, TIME_CHECK_INTERVAL};
use crate::{Problem, SearchMode, SearchOptions, SearchOutcome, SearchStats, StopReason, Strategy};

/// Tracks the incumbent value and the solutions worth keeping under the
/// current [`SearchMode`]. The sequential, thread-parallel and simulated
/// drivers all build on it; custom drivers (e.g. simulations with their
/// own scheduling) can too.
pub struct Incumbents<S> {
    /// The best objective value seen so far (`+∞` before any solution).
    pub ub: f64,
    /// Kept solutions with their values (pruned of dominated entries as
    /// the bound improves).
    pub solutions: Vec<(f64, S)>,
    mode: SearchMode,
    tol: f64,
}

impl<S: Clone> Incumbents<S> {
    /// An empty tracker configured from the search options.
    pub fn new(opts: &SearchOptions) -> Self {
        Incumbents {
            ub: f64::INFINITY,
            solutions: Vec::new(),
            mode: opts.mode,
            tol: opts.tol,
        }
    }

    /// Whether a node with lower bound `lb` can be discarded given `ub`.
    pub fn prunable(lb: f64, ub: f64, opts: &SearchOptions) -> bool {
        match opts.mode {
            SearchMode::BestOne => lb >= ub - opts.eps(ub),
            SearchMode::AllOptimal => lb > ub + opts.eps(ub),
        }
    }

    /// Offers a complete solution; returns whether it improved the bound.
    ///
    /// A NaN value is rejected outright: it cannot be ordered against the
    /// incumbent and accepting it would poison every later comparison.
    pub fn offer(&mut self, value: f64, solution: S) -> bool {
        if value.is_nan() {
            return false;
        }
        let eps = if self.ub.is_finite() {
            self.tol * 1f64.max(self.ub.abs())
        } else {
            0.0
        };
        if value < self.ub - eps {
            self.ub = value;
            match self.mode {
                SearchMode::BestOne => {
                    self.solutions.clear();
                    self.solutions.push((value, solution));
                }
                SearchMode::AllOptimal => {
                    let eps = self.tol * 1f64.max(value.abs());
                    self.solutions.retain(|(v, _)| *v <= value + eps);
                    self.solutions.push((value, solution));
                }
            }
            true
        } else if matches!(self.mode, SearchMode::AllOptimal) && value <= self.ub + eps {
            self.solutions.push((value, solution));
            false
        } else {
            false
        }
    }

    /// Final solutions: exactly those within tolerance of `best`.
    pub fn finish(self, best: f64) -> Vec<S> {
        let eps = self.tol * 1f64.max(best.abs());
        self.solutions
            .into_iter()
            .filter(|(v, _)| *v <= best + eps)
            .map(|(_, s)| s)
            .collect()
    }
}

/// An open-node pool: LIFO for depth-first, a min-heap on the lower bound
/// (FIFO among ties) for best-first.
enum Pool<N> {
    Stack(Vec<N>),
    Heap(BinaryHeap<HeapEntry<N>>, u64),
}

struct HeapEntry<N> {
    lb: f64,
    seq: u64,
    node: N,
}

impl<N> PartialEq for HeapEntry<N> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<N> Eq for HeapEntry<N> {}
impl<N> Ord for HeapEntry<N> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse both: BinaryHeap is a max-heap, we want the smallest
        // bound, then the earliest insertion. `total_cmp` keeps the order
        // total even if a buggy bound produces NaN (sorted past +∞, i.e.
        // least promising — it is never used for pruning).
        other.lb.total_cmp(&self.lb).then(other.seq.cmp(&self.seq))
    }
}
impl<N> PartialOrd for HeapEntry<N> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<N> Pool<N> {
    fn new(strategy: Strategy) -> Self {
        match strategy {
            Strategy::DepthFirst => Pool::Stack(Vec::new()),
            Strategy::BestFirst => Pool::Heap(BinaryHeap::new(), 0),
        }
    }

    fn push(&mut self, node: N, lb: f64) {
        match self {
            Pool::Stack(v) => v.push(node),
            Pool::Heap(h, seq) => {
                h.push(HeapEntry {
                    lb,
                    seq: *seq,
                    node,
                });
                *seq += 1;
            }
        }
    }

    fn pop(&mut self) -> Option<N> {
        match self {
            Pool::Stack(v) => v.pop(),
            Pool::Heap(h, _) => h.pop().map(|e| e.node),
        }
    }

    fn len(&self) -> usize {
        match self {
            Pool::Stack(v) => v.len(),
            Pool::Heap(h, _) => h.len(),
        }
    }
}

/// Single-threaded branch-and-bound — Algorithm BBU's skeleton: keep a
/// pool of open nodes (a stack under [`Strategy::DepthFirst`], a bound-
/// ordered heap under [`Strategy::BestFirst`]), prune against the
/// incumbent, and record complete solutions.
///
/// The search is *anytime*: the cancel token is checked on every node and
/// the deadline every 128 nodes (including before the first, so an
/// already-expired deadline returns the initial incumbent untouched), and
/// stopping early always returns the best incumbent so far with the
/// accurate [`StopReason`].
pub fn solve_sequential<P: Problem>(
    problem: &P,
    opts: &SearchOptions,
) -> SearchOutcome<P::Solution> {
    let mut stats = SearchStats::default();
    let mut inc = Incumbents::new(opts);
    if let Some((s, v)) = problem.initial_incumbent() {
        if inc.offer(v, s) {
            stats.incumbent_updates += 1;
        }
    }
    let mut pool = Pool::new(opts.strategy);
    let root = problem.root();
    let root_lb = sanitize_lb(problem.lower_bound(&root));
    pool.push(root, root_lb);
    let mut kids = Vec::new();
    let mut stop = StopReason::Completed;
    let mut ticks = 0u64;
    while let Some(node) = pool.pop() {
        if opts.cancelled() {
            stop = StopReason::Cancelled;
            break;
        }
        if ticks.is_multiple_of(TIME_CHECK_INTERVAL) && opts.deadline_expired() {
            stop = StopReason::DeadlineExpired;
            break;
        }
        ticks += 1;
        let lb = sanitize_lb(problem.lower_bound(&node));
        if Incumbents::<P::Solution>::prunable(lb, inc.ub, opts) {
            stats.pruned += 1;
            continue;
        }
        if let Some((s, v)) = problem.solution(&node) {
            stats.solutions_seen += 1;
            if inc.offer(v, s) {
                stats.incumbent_updates += 1;
            }
            continue;
        }
        if stats.branched >= opts.max_branches {
            stop = StopReason::BudgetExhausted;
            break;
        }
        stats.branched += 1;
        kids.clear();
        problem.branch(&node, &mut kids);
        // Push in reverse so the first child is explored first (DFS order
        // matches the branching order, which problems tune for good
        // early incumbents).
        for k in kids.drain(..).rev() {
            let klb = sanitize_lb(problem.lower_bound(&k));
            if Incumbents::<P::Solution>::prunable(klb, inc.ub, opts) {
                stats.pruned += 1;
            } else {
                pool.push(k, klb);
            }
        }
        stats.peak_pool = stats.peak_pool.max(pool.len() as u64);
    }
    let best_value = inc
        .solutions
        .iter()
        .map(|(v, _)| *v)
        .fold(None, |acc: Option<f64>, v| {
            Some(acc.map_or(v, |a| a.min(v)))
        });
    match best_value {
        Some(bv) => SearchOutcome {
            best_value: Some(bv),
            solutions: inc.finish(bv),
            stats,
            stop,
        },
        None => SearchOutcome {
            best_value: None,
            solutions: Vec::new(),
            stats,
            stop,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy problem: binary strings of length `n`; value = number of ones +
    /// `base`; optimum is the all-zero string with value `base`. Lower
    /// bound = ones so far + base (admissible: flipping more bits only
    /// adds). With `AllOptimal` and `twist = true`, bit 0 is free so two
    /// optima exist.
    struct Bits {
        n: usize,
        base: f64,
        twist: bool,
    }

    impl Problem for Bits {
        type Node = Vec<bool>;
        type Solution = Vec<bool>;

        fn root(&self) -> Vec<bool> {
            Vec::new()
        }
        fn lower_bound(&self, node: &Vec<bool>) -> f64 {
            self.base
                + node
                    .iter()
                    .enumerate()
                    .filter(|(i, &b)| b && !(self.twist && *i == 0))
                    .count() as f64
        }
        fn solution(&self, node: &Vec<bool>) -> Option<(Vec<bool>, f64)> {
            (node.len() == self.n).then(|| (node.clone(), self.lower_bound(node)))
        }
        fn branch(&self, node: &Vec<bool>, out: &mut Vec<Vec<bool>>) {
            for b in [false, true] {
                let mut c = node.clone();
                c.push(b);
                out.push(c);
            }
        }
    }

    #[test]
    fn finds_the_optimum() {
        let p = Bits {
            n: 6,
            base: 2.0,
            twist: false,
        };
        let out = solve_sequential(&p, &SearchOptions::new(SearchMode::BestOne));
        assert_eq!(out.best_value, Some(2.0));
        assert_eq!(out.solutions, vec![vec![false; 6]]);
        assert!(out.is_complete());
    }

    #[test]
    fn all_optimal_finds_both() {
        let p = Bits {
            n: 5,
            base: 0.0,
            twist: true,
        };
        let out = solve_sequential(&p, &SearchOptions::new(SearchMode::AllOptimal));
        assert_eq!(out.best_value, Some(0.0));
        let mut sols = out.solutions;
        sols.sort();
        assert_eq!(sols.len(), 2);
        assert_eq!(sols[0], vec![false, false, false, false, false]);
        assert_eq!(sols[1], vec![true, false, false, false, false]);
    }

    #[test]
    fn best_one_prunes_more_than_all_optimal() {
        let opts1 = SearchOptions::new(SearchMode::BestOne);
        let opts2 = SearchOptions::new(SearchMode::AllOptimal);
        let p = Bits {
            n: 8,
            base: 0.0,
            twist: false,
        };
        let a = solve_sequential(&p, &opts1);
        let b = solve_sequential(&p, &opts2);
        assert!(a.stats.branched <= b.stats.branched);
        assert_eq!(a.best_value, b.best_value);
    }

    #[test]
    fn initial_incumbent_tightens_search() {
        struct WithHint(Bits);
        impl Problem for WithHint {
            type Node = Vec<bool>;
            type Solution = Vec<bool>;
            fn root(&self) -> Vec<bool> {
                self.0.root()
            }
            fn lower_bound(&self, n: &Vec<bool>) -> f64 {
                self.0.lower_bound(n)
            }
            fn solution(&self, n: &Vec<bool>) -> Option<(Vec<bool>, f64)> {
                self.0.solution(n)
            }
            fn branch(&self, n: &Vec<bool>, out: &mut Vec<Vec<bool>>) {
                self.0.branch(n, out)
            }
            fn initial_incumbent(&self) -> Option<(Vec<bool>, f64)> {
                Some((vec![false; self.0.n], self.0.base))
            }
        }
        let bare = Bits {
            n: 8,
            base: 1.0,
            twist: false,
        };
        let hinted = WithHint(Bits {
            n: 8,
            base: 1.0,
            twist: false,
        });
        let a = solve_sequential(&bare, &SearchOptions::new(SearchMode::BestOne));
        let b = solve_sequential(&hinted, &SearchOptions::new(SearchMode::BestOne));
        assert_eq!(a.best_value, b.best_value);
        // The perfect hint prunes the entire tree.
        assert_eq!(b.stats.branched, 0);
    }

    #[test]
    fn best_first_agrees_with_depth_first() {
        let p = Bits {
            n: 9,
            base: 2.0,
            twist: false,
        };
        let dfs = solve_sequential(&p, &SearchOptions::new(SearchMode::BestOne));
        let bfs = solve_sequential(
            &p,
            &SearchOptions::new(SearchMode::BestOne).strategy(crate::Strategy::BestFirst),
        );
        assert_eq!(dfs.best_value, bfs.best_value);
        assert_eq!(dfs.solutions, bfs.solutions);
        // Best-first never expands a node whose bound exceeds the optimum,
        // so it cannot branch more than depth-first here.
        assert!(bfs.stats.branched <= dfs.stats.branched);
    }

    #[test]
    fn best_first_all_optimal_set_matches() {
        let p = Bits {
            n: 6,
            base: 0.0,
            twist: true,
        };
        let dfs = solve_sequential(&p, &SearchOptions::new(SearchMode::AllOptimal));
        let bfs = solve_sequential(
            &p,
            &SearchOptions::new(SearchMode::AllOptimal).strategy(crate::Strategy::BestFirst),
        );
        let norm = |mut v: Vec<Vec<bool>>| {
            v.sort();
            v
        };
        assert_eq!(dfs.best_value, bfs.best_value);
        assert_eq!(norm(dfs.solutions), norm(bfs.solutions));
    }

    #[test]
    fn branch_budget_marks_incomplete() {
        let p = Bits {
            n: 12,
            base: 0.0,
            twist: false,
        };
        let out = solve_sequential(&p, &SearchOptions::new(SearchMode::BestOne).max_branches(3));
        assert_eq!(out.stop, StopReason::BudgetExhausted);
        assert!(out.stats.branched <= 3);
    }

    #[test]
    fn infeasible_search_yields_none() {
        /// A problem whose only leaves are pruned away by an initial
        /// incumbent is still "solved" by that incumbent; a problem with no
        /// solutions at all yields `None`.
        struct NoSolutions;
        impl Problem for NoSolutions {
            type Node = u32;
            type Solution = ();
            fn root(&self) -> u32 {
                0
            }
            fn lower_bound(&self, n: &u32) -> f64 {
                *n as f64
            }
            fn solution(&self, _: &u32) -> Option<((), f64)> {
                None
            }
            fn branch(&self, n: &u32, out: &mut Vec<u32>) {
                if *n < 3 {
                    out.push(n + 1);
                }
            }
        }
        let out = solve_sequential(&NoSolutions, &SearchOptions::new(SearchMode::BestOne));
        assert_eq!(out.best_value, None);
        assert!(out.solutions.is_empty());
    }
}
