//! Deterministic fault injection for robustness testing.
//!
//! [`FaultyProblem`] wraps any [`Problem`] and injects failures the search
//! drivers must survive: panics inside `branch`, NaN or `+∞` lower bounds,
//! and artificially slow branch operations. Faults fire pseudo-randomly
//! but *deterministically*: each callback invocation hashes a seeded
//! counter, so a given `(seed, rates)` configuration always faults at the
//! same call sequence numbers — a failing test reproduces exactly.
//!
//! This module is part of the public API (rather than test-only code) so
//! downstream crates — the pipeline, the CLI, benches — can reuse the same
//! harness for their own robustness tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::kernel::ChildBuf;
use crate::Problem;

/// Which faults to inject, and how often.
///
/// Rates are probabilities in `[0, 1]` evaluated independently per
/// callback invocation. All default to zero (no faults).
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// Seed for the deterministic fault stream.
    pub seed: u64,
    /// Probability that a `branch` call panics.
    pub panic_rate: f64,
    /// Probability that a `lower_bound` call returns NaN.
    pub nan_bound_rate: f64,
    /// Probability that a `lower_bound` call returns `+∞` (which, taken at
    /// face value, would wrongly prune a live subtree).
    pub inf_bound_rate: f64,
    /// Probability that a `branch` call sleeps for
    /// [`slow_duration`](FaultSpec::slow_duration) first.
    pub slow_branch_rate: f64,
    /// How long a slow branch sleeps.
    pub slow_duration: Duration,
}

impl FaultSpec {
    /// A spec with the given seed and no faults enabled.
    pub fn new(seed: u64) -> Self {
        FaultSpec {
            seed,
            panic_rate: 0.0,
            nan_bound_rate: 0.0,
            inf_bound_rate: 0.0,
            slow_branch_rate: 0.0,
            slow_duration: Duration::from_millis(1),
        }
    }

    /// Sets the branch-panic rate.
    pub fn panic_rate(mut self, rate: f64) -> Self {
        self.panic_rate = rate;
        self
    }

    /// Sets the NaN lower-bound rate.
    pub fn nan_bound_rate(mut self, rate: f64) -> Self {
        self.nan_bound_rate = rate;
        self
    }

    /// Sets the infinite lower-bound rate.
    pub fn inf_bound_rate(mut self, rate: f64) -> Self {
        self.inf_bound_rate = rate;
        self
    }

    /// Sets the slow-branch rate and sleep duration.
    pub fn slow_branches(mut self, rate: f64, duration: Duration) -> Self {
        self.slow_branch_rate = rate;
        self.slow_duration = duration;
        self
    }
}

/// A [`Problem`] wrapper injecting the faults described by a [`FaultSpec`].
///
/// See the [module docs](self) for the determinism contract.
pub struct FaultyProblem<P> {
    inner: P,
    spec: FaultSpec,
    calls: AtomicU64,
}

impl<P> FaultyProblem<P> {
    /// Wraps `inner` with the given fault configuration.
    pub fn new(inner: P, spec: FaultSpec) -> Self {
        FaultyProblem {
            inner,
            spec,
            calls: AtomicU64::new(0),
        }
    }

    /// The wrapped problem.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// How many faultable callbacks have run so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Draws a uniform value in `[0, 1)` for the next call slot.
    fn roll(&self) -> f64 {
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        (splitmix(self.spec.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 11) as f64
            * (1.0 / (1u64 << 53) as f64)
    }
}

/// SplitMix64 finalizer: one well-mixed u64 per input.
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl<P: Problem> Problem for FaultyProblem<P> {
    type Node = P::Node;
    type Solution = P::Solution;

    fn root(&self) -> P::Node {
        self.inner.root()
    }

    fn lower_bound(&self, node: &P::Node) -> f64 {
        let r = self.roll();
        if r < self.spec.nan_bound_rate {
            return f64::NAN;
        }
        if r < self.spec.nan_bound_rate + self.spec.inf_bound_rate {
            return f64::INFINITY;
        }
        self.inner.lower_bound(node)
    }

    fn solution(&self, node: &P::Node) -> Option<(P::Solution, f64)> {
        self.inner.solution(node)
    }

    fn branch(&self, node: &P::Node, out: &mut ChildBuf<P::Node>) {
        let r = self.roll();
        if r < self.spec.panic_rate {
            panic!("injected fault: branch panicked (call #{})", self.calls());
        }
        if r < self.spec.panic_rate + self.spec.slow_branch_rate {
            std::thread::sleep(self.spec.slow_duration);
        }
        self.inner.branch(node, out);
    }

    fn initial_incumbent(&self) -> Option<(P::Solution, f64)> {
        self.inner.initial_incumbent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountDown(u32);
    impl Problem for CountDown {
        type Node = u32;
        type Solution = u32;
        fn root(&self) -> u32 {
            self.0
        }
        fn lower_bound(&self, _: &u32) -> f64 {
            0.0
        }
        fn solution(&self, n: &u32) -> Option<(u32, f64)> {
            (*n == 0).then_some((0, 0.0))
        }
        fn branch(&self, n: &u32, out: &mut ChildBuf<u32>) {
            out.push(n - 1);
        }
    }

    #[test]
    fn fault_stream_is_deterministic() {
        let spec = FaultSpec::new(42).nan_bound_rate(0.5);
        let a = FaultyProblem::new(CountDown(5), spec.clone());
        let b = FaultyProblem::new(CountDown(5), spec);
        let bounds_a: Vec<f64> = (0..64).map(|_| a.lower_bound(&1)).collect();
        let bounds_b: Vec<f64> = (0..64).map(|_| b.lower_bound(&1)).collect();
        for (x, y) in bounds_a.iter().zip(&bounds_b) {
            assert_eq!(x.is_nan(), y.is_nan());
            if !x.is_nan() {
                assert_eq!(x, y);
            }
        }
        assert!(bounds_a.iter().any(|x| x.is_nan()));
        assert!(bounds_a.iter().any(|x| !x.is_nan()));
    }

    #[test]
    fn zero_rates_are_transparent() {
        let p = FaultyProblem::new(CountDown(3), FaultSpec::new(7));
        let out =
            crate::solve_sequential(&p, &crate::SearchOptions::new(crate::SearchMode::BestOne));
        assert_eq!(out.best_value, Some(0.0));
        assert!(out.is_complete());
    }

    #[test]
    #[should_panic(expected = "injected fault")]
    fn panic_rate_one_always_panics() {
        let p = FaultyProblem::new(CountDown(3), FaultSpec::new(1).panic_rate(1.0));
        let mut out = ChildBuf::new();
        p.branch(&2, &mut out);
    }
}
