//! Deterministic fault injection for robustness testing.
//!
//! [`FaultyProblem`] wraps any [`Problem`] and injects failures the search
//! drivers must survive: panics inside `branch`, NaN or `+∞` lower bounds,
//! artificially slow branch operations, a hard "worker kill" after a fixed
//! call count, and memory pressure (duplicated children that inflate the
//! open set without changing the optimum). Faults fire pseudo-randomly but
//! *deterministically*: each callback invocation hashes a seeded counter,
//! so a given `(seed, rates)` configuration always faults at the same call
//! sequence numbers — a failing test reproduces exactly.
//!
//! Injected sleeps are *interruptible*: they run in short slices and poll
//! the spec's optional [`CancelToken`] and deadline between slices, so a
//! solve under `--timeout` overshoots by at most one slice, never by the
//! whole injected duration. The sleeping primitive itself is injectable
//! ([`FaultSpec::sleep_with`]) so tests can use a virtual clock.
//!
//! This module is part of the public API (rather than test-only code) so
//! downstream crates — the pipeline, the CLI, benches — can reuse the same
//! harness for their own robustness tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::kernel::ChildBuf;
use crate::{CancelToken, Problem};

/// The injectable sleeping primitive used for slow-branch faults: called
/// once per slice with the slice duration. Defaults to
/// `std::thread::sleep`; tests substitute a virtual clock.
pub type SleepFn = Arc<dyn Fn(Duration) + Send + Sync>;

/// How finely an injected sleep is sliced between cancellation/deadline
/// polls.
const SLEEP_SLICE: Duration = Duration::from_micros(500);

/// Which faults to inject, and how often.
///
/// Rates are probabilities in `[0, 1]` evaluated independently per
/// callback invocation. All default to zero (no faults).
#[derive(Clone)]
pub struct FaultSpec {
    /// Seed for the deterministic fault stream.
    pub seed: u64,
    /// Probability that a `branch` call panics.
    pub panic_rate: f64,
    /// Probability that a `lower_bound` call returns NaN.
    pub nan_bound_rate: f64,
    /// Probability that a `lower_bound` call returns `+∞` (which, taken at
    /// face value, would wrongly prune a live subtree).
    pub inf_bound_rate: f64,
    /// Probability that a `branch` call sleeps for
    /// [`slow_duration`](FaultSpec::slow_duration) first.
    pub slow_branch_rate: f64,
    /// How long a slow branch sleeps.
    pub slow_duration: Duration,
    /// Branch call number at which the worker is "killed": every `branch`
    /// whose call index is `>= kill_after` panics unconditionally,
    /// simulating a process that dies mid-search and stays dead.
    pub kill_after: Option<u64>,
    /// Probability that a `branch` call injects memory pressure by
    /// emitting its child set [`pressure_copies`](FaultSpec::pressure_copies)
    /// extra times. Duplicated children preserve the optimum (each copy
    /// explores the same subtree) while inflating the open set — exactly
    /// the load a memory watchdog must absorb.
    pub pressure_rate: f64,
    /// Extra copies of the child set emitted per pressure fault.
    pub pressure_copies: u32,
    /// Optional cancellation token polled between sleep slices, so an
    /// injected sleep cannot outlive a cancelled search.
    pub cancel: Option<CancelToken>,
    /// Optional deadline polled between sleep slices, so an injected sleep
    /// cannot overshoot a solve timeout by more than one slice.
    pub deadline: Option<Instant>,
    /// The sleeping primitive (defaults to `std::thread::sleep`).
    pub sleep: SleepFn,
}

impl std::fmt::Debug for FaultSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultSpec")
            .field("seed", &self.seed)
            .field("panic_rate", &self.panic_rate)
            .field("nan_bound_rate", &self.nan_bound_rate)
            .field("inf_bound_rate", &self.inf_bound_rate)
            .field("slow_branch_rate", &self.slow_branch_rate)
            .field("slow_duration", &self.slow_duration)
            .field("kill_after", &self.kill_after)
            .field("pressure_rate", &self.pressure_rate)
            .field("pressure_copies", &self.pressure_copies)
            .field("cancel", &self.cancel)
            .field("deadline", &self.deadline)
            .finish_non_exhaustive()
    }
}

impl FaultSpec {
    /// A spec with the given seed and no faults enabled.
    pub fn new(seed: u64) -> Self {
        FaultSpec {
            seed,
            panic_rate: 0.0,
            nan_bound_rate: 0.0,
            inf_bound_rate: 0.0,
            slow_branch_rate: 0.0,
            slow_duration: Duration::from_millis(1),
            kill_after: None,
            pressure_rate: 0.0,
            pressure_copies: 1,
            cancel: None,
            deadline: None,
            sleep: Arc::new(std::thread::sleep),
        }
    }

    /// Sets the branch-panic rate.
    pub fn panic_rate(mut self, rate: f64) -> Self {
        self.panic_rate = rate;
        self
    }

    /// Sets the NaN lower-bound rate.
    pub fn nan_bound_rate(mut self, rate: f64) -> Self {
        self.nan_bound_rate = rate;
        self
    }

    /// Sets the infinite lower-bound rate.
    pub fn inf_bound_rate(mut self, rate: f64) -> Self {
        self.inf_bound_rate = rate;
        self
    }

    /// Sets the slow-branch rate and sleep duration.
    pub fn slow_branches(mut self, rate: f64, duration: Duration) -> Self {
        self.slow_branch_rate = rate;
        self.slow_duration = duration;
        self
    }

    /// Kills the worker at branch call `n`: that call and every later one
    /// panic unconditionally.
    pub fn kill_after(mut self, n: u64) -> Self {
        self.kill_after = Some(n);
        self
    }

    /// Sets the memory-pressure rate and how many extra copies of the
    /// child set each pressure fault emits (clamped up to 1).
    pub fn memory_pressure(mut self, rate: f64, copies: u32) -> Self {
        self.pressure_rate = rate;
        self.pressure_copies = copies.max(1);
        self
    }

    /// Makes injected sleeps poll `token` between slices and return early
    /// once it is cancelled.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Makes injected sleeps poll `deadline` between slices and return
    /// early once it has passed.
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Replaces the sleeping primitive — tests substitute a virtual clock
    /// that records requested durations instead of blocking.
    pub fn sleep_with(mut self, sleep: SleepFn) -> Self {
        self.sleep = sleep;
        self
    }

    /// Whether an injected sleep should stop early (cancelled or past the
    /// deadline).
    fn interrupted(&self) -> bool {
        self.cancel.as_ref().is_some_and(|t| t.is_cancelled())
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Sleeps `total`, in slices, polling for interruption between them.
    fn sliced_sleep(&self, total: Duration) {
        let mut remaining = total;
        while !remaining.is_zero() {
            if self.interrupted() {
                return;
            }
            let slice = remaining.min(SLEEP_SLICE);
            (self.sleep)(slice);
            remaining = remaining.saturating_sub(slice);
        }
    }
}

/// A [`Problem`] wrapper injecting the faults described by a [`FaultSpec`].
///
/// See the [module docs](self) for the determinism contract.
pub struct FaultyProblem<P> {
    inner: P,
    spec: FaultSpec,
    calls: AtomicU64,
}

impl<P> FaultyProblem<P> {
    /// Wraps `inner` with the given fault configuration.
    pub fn new(inner: P, spec: FaultSpec) -> Self {
        FaultyProblem {
            inner,
            spec,
            calls: AtomicU64::new(0),
        }
    }

    /// The wrapped problem.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// How many faultable callbacks have run so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Draws a uniform value in `[0, 1)` for the next call slot.
    fn roll(&self) -> f64 {
        self.roll_indexed().1
    }

    /// Draws a uniform value in `[0, 1)` and returns it with the call
    /// index it was drawn for — the index drives count-triggered faults
    /// like [`FaultSpec::kill_after`].
    fn roll_indexed(&self) -> (u64, f64) {
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        let r = (splitmix(self.spec.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 11) as f64
            * (1.0 / (1u64 << 53) as f64);
        (n, r)
    }
}

/// SplitMix64 finalizer: one well-mixed u64 per input.
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl<P: Problem> Problem for FaultyProblem<P> {
    type Node = P::Node;
    type Solution = P::Solution;

    fn root(&self) -> P::Node {
        self.inner.root()
    }

    fn lower_bound(&self, node: &P::Node) -> f64 {
        let r = self.roll();
        if r < self.spec.nan_bound_rate {
            return f64::NAN;
        }
        if r < self.spec.nan_bound_rate + self.spec.inf_bound_rate {
            return f64::INFINITY;
        }
        self.inner.lower_bound(node)
    }

    fn solution(&self, node: &P::Node) -> Option<(P::Solution, f64)> {
        self.inner.solution(node)
    }

    fn branch(&self, node: &P::Node, out: &mut ChildBuf<P::Node>) {
        let (n, r) = self.roll_indexed();
        if self.spec.kill_after.is_some_and(|k| n >= k) {
            panic!("injected fault: worker killed (call #{n})");
        }
        if r < self.spec.panic_rate {
            panic!("injected fault: branch panicked (call #{})", self.calls());
        }
        // The stacked-interval trick keeps one roll per call: each fault
        // type claims a disjoint sub-interval of [0, 1).
        if r < self.spec.panic_rate + self.spec.slow_branch_rate {
            self.spec.sliced_sleep(self.spec.slow_duration);
        }
        self.inner.branch(node, out);
        if r >= self.spec.panic_rate + self.spec.slow_branch_rate
            && r < self.spec.panic_rate + self.spec.slow_branch_rate + self.spec.pressure_rate
        {
            // Memory pressure: emit the child set again. Duplicates are
            // redundant work, never wrong answers.
            for _ in 0..self.spec.pressure_copies {
                self.inner.branch(node, out);
            }
        }
    }

    fn initial_incumbent(&self) -> Option<(P::Solution, f64)> {
        self.inner.initial_incumbent()
    }

    fn encode_solution(&self, solution: &P::Solution) -> Option<Vec<u8>> {
        self.inner.encode_solution(solution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountDown(u32);
    impl Problem for CountDown {
        type Node = u32;
        type Solution = u32;
        fn root(&self) -> u32 {
            self.0
        }
        fn lower_bound(&self, _: &u32) -> f64 {
            0.0
        }
        fn solution(&self, n: &u32) -> Option<(u32, f64)> {
            (*n == 0).then_some((0, 0.0))
        }
        fn branch(&self, n: &u32, out: &mut ChildBuf<u32>) {
            out.push(n - 1);
        }
    }

    #[test]
    fn fault_stream_is_deterministic() {
        let spec = FaultSpec::new(42).nan_bound_rate(0.5);
        let a = FaultyProblem::new(CountDown(5), spec.clone());
        let b = FaultyProblem::new(CountDown(5), spec);
        let bounds_a: Vec<f64> = (0..64).map(|_| a.lower_bound(&1)).collect();
        let bounds_b: Vec<f64> = (0..64).map(|_| b.lower_bound(&1)).collect();
        for (x, y) in bounds_a.iter().zip(&bounds_b) {
            assert_eq!(x.is_nan(), y.is_nan());
            if !x.is_nan() {
                assert_eq!(x, y);
            }
        }
        assert!(bounds_a.iter().any(|x| x.is_nan()));
        assert!(bounds_a.iter().any(|x| !x.is_nan()));
    }

    #[test]
    fn zero_rates_are_transparent() {
        let p = FaultyProblem::new(CountDown(3), FaultSpec::new(7));
        let out =
            crate::solve_sequential(&p, &crate::SearchOptions::new(crate::SearchMode::BestOne));
        assert_eq!(out.best_value, Some(0.0));
        assert!(out.is_complete());
    }

    #[test]
    #[should_panic(expected = "injected fault")]
    fn panic_rate_one_always_panics() {
        let p = FaultyProblem::new(CountDown(3), FaultSpec::new(1).panic_rate(1.0));
        let mut out = ChildBuf::new();
        p.branch(&2, &mut out);
    }

    #[test]
    fn kill_after_spares_earlier_calls() {
        let p = FaultyProblem::new(CountDown(9), FaultSpec::new(3).kill_after(2));
        let mut out = ChildBuf::new();
        p.branch(&9, &mut out);
        p.branch(&8, &mut out);
        let killed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut out = ChildBuf::new();
            p.branch(&7, &mut out);
        }));
        assert!(killed.is_err(), "call #2 must be killed");
        // The worker stays dead: later calls panic too.
        let again = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut out = ChildBuf::new();
            p.branch(&6, &mut out);
        }));
        assert!(again.is_err());
    }

    #[test]
    fn memory_pressure_duplicates_children() {
        let p = FaultyProblem::new(CountDown(5), FaultSpec::new(11).memory_pressure(1.0, 2));
        let mut out = ChildBuf::new();
        p.branch(&5, &mut out);
        // CountDown pushes one child; pressure adds two extra copies.
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn sliced_sleep_respects_deadline_and_cancel() {
        use std::sync::Mutex;

        // Virtual clock: record requested slices instead of blocking.
        let slept: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
        let record = Arc::clone(&slept);
        let spec = FaultSpec::new(0)
            .slow_branches(1.0, Duration::from_secs(3600))
            .deadline(Instant::now())
            .sleep_with(Arc::new(move |d| record.lock().unwrap().push(d)));
        let p = FaultyProblem::new(CountDown(3), spec);
        let mut out = ChildBuf::new();
        p.branch(&3, &mut out);
        // The deadline was already expired, so not a single slice slept.
        assert!(slept.lock().unwrap().is_empty());

        // A cancellation mid-sleep stops the loop at the next slice.
        let slept2: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
        let record2 = Arc::clone(&slept2);
        let token = CancelToken::new();
        let cancel_at_third = {
            let token = token.clone();
            let count = AtomicU64::new(0);
            Arc::new(move |d: Duration| {
                record2.lock().unwrap().push(d);
                if count.fetch_add(1, Ordering::Relaxed) + 1 == 3 {
                    token.cancel();
                }
            })
        };
        let spec = FaultSpec::new(0)
            .slow_branches(1.0, Duration::from_secs(3600))
            .cancel_token(token)
            .sleep_with(cancel_at_third);
        let p = FaultyProblem::new(CountDown(3), spec);
        let mut out = ChildBuf::new();
        p.branch(&3, &mut out);
        let n = slept2.lock().unwrap().len();
        assert_eq!(n, 3, "sleep must stop at the slice that cancelled it");
    }
}
