/// A minimization problem searchable by branch-and-bound.
///
/// Nodes are partial solutions; [`branch`](Problem::branch) refines a node
/// into children, [`solution`](Problem::solution) recognizes complete nodes,
/// and [`lower_bound`](Problem::lower_bound) must never exceed the value of
/// any complete solution reachable from the node (admissibility) — pruning
/// correctness depends on it.
pub trait Problem: Sync {
    /// A partial solution.
    type Node: Clone + Send;
    /// A complete solution payload.
    type Solution: Clone + Send;

    /// The root of the search tree.
    fn root(&self) -> Self::Node;

    /// An admissible lower bound on every complete solution below `node`.
    fn lower_bound(&self, node: &Self::Node) -> f64;

    /// When `node` is complete, its solution and exact objective value.
    fn solution(&self, node: &Self::Node) -> Option<(Self::Solution, f64)>;

    /// Expands an incomplete node, pushing its children into `out`
    /// (cleared by the caller).
    fn branch(&self, node: &Self::Node, out: &mut Vec<Self::Node>);

    /// An optional heuristic incumbent used as the initial upper bound
    /// (the paper's UPGMM step). Defaults to none.
    fn initial_incumbent(&self) -> Option<(Self::Solution, f64)> {
        None
    }
}

/// What to collect during the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// Find one optimal solution (prune `LB ≥ UB`; fastest).
    BestOne,
    /// Enumerate **all** optimal solutions (prune only `LB > UB`, keep
    /// co-optimal ties).
    AllOptimal,
}

/// Node-selection strategy of the sequential driver.
///
/// The parallel and simulated drivers always run depth-first within each
/// worker, as the papers do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Depth-first: cheap memory, reaches complete solutions fast —
    /// Algorithm BBU's published strategy.
    #[default]
    DepthFirst,
    /// Best-first: always expand the open node with the smallest lower
    /// bound. Branches the provably minimal number of nodes in
    /// [`SearchMode::BestOne`], at the price of a pool as large as the
    /// frontier.
    BestFirst,
}

/// Search configuration.
#[derive(Debug, Clone, Copy)]
pub struct SearchOptions {
    /// Whether to find one optimum or all of them.
    pub mode: SearchMode,
    /// Node-selection strategy for the sequential driver.
    pub strategy: Strategy,
    /// Relative tolerance used when comparing objective values: values
    /// within `tol × max(1, |UB|)` count as equal.
    pub tol: f64,
    /// Stop after this many branch operations (safety valve for
    /// experiments; `u64::MAX` means unlimited). When the search stops
    /// early [`SearchOutcome::complete`] is `false` and the incumbent is
    /// only an upper bound.
    pub max_branches: u64,
}

impl SearchOptions {
    /// Options with the given mode, depth-first strategy, default
    /// tolerance `1e-9`, no branch limit.
    pub fn new(mode: SearchMode) -> Self {
        SearchOptions {
            mode,
            strategy: Strategy::DepthFirst,
            tol: 1e-9,
            max_branches: u64::MAX,
        }
    }

    /// Sets the branch-operation budget.
    pub fn max_branches(mut self, limit: u64) -> Self {
        self.max_branches = limit;
        self
    }

    /// Sets the sequential node-selection strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    pub(crate) fn eps(&self, ub: f64) -> f64 {
        if ub.is_finite() {
            self.tol * 1f64.max(ub.abs())
        } else {
            // Before any incumbent exists the bound is ∞; a zero epsilon
            // keeps `ub - eps` well-defined (∞ − ∞ would be NaN).
            0.0
        }
    }
}

/// Counters describing a finished search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes expanded by [`Problem::branch`].
    pub branched: u64,
    /// Children discarded because their lower bound could not beat the
    /// incumbent.
    pub pruned: u64,
    /// Complete solutions encountered (including non-improving ones).
    pub solutions_seen: u64,
    /// Times the incumbent improved.
    pub incumbent_updates: u64,
    /// Largest number of nodes simultaneously alive in the pools.
    pub peak_pool: u64,
}

impl SearchStats {
    /// Element-wise sum, for merging per-worker stats.
    pub fn merge(&mut self, other: &SearchStats) {
        self.branched += other.branched;
        self.pruned += other.pruned;
        self.solutions_seen += other.solutions_seen;
        self.incumbent_updates += other.incumbent_updates;
        self.peak_pool = self.peak_pool.max(other.peak_pool);
    }
}

/// The result of a branch-and-bound run.
#[derive(Debug, Clone)]
pub struct SearchOutcome<S> {
    /// The optimal objective value, when any solution exists.
    pub best_value: Option<f64>,
    /// The optimal solutions: one in [`SearchMode::BestOne`], all of them
    /// in [`SearchMode::AllOptimal`].
    pub solutions: Vec<S>,
    /// Search counters.
    pub stats: SearchStats,
    /// `false` when the search hit [`SearchOptions::max_branches`] and the
    /// result is only an incumbent, not a proven optimum.
    pub complete: bool,
}
