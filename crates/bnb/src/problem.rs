use std::time::{Duration, Instant};

use crate::checkpoint::CheckpointPolicy;
use crate::kernel::ChildBuf;
use crate::CancelToken;

/// A minimization problem searchable by branch-and-bound.
///
/// Nodes are partial solutions; [`branch`](Problem::branch) refines a node
/// into children, [`solution`](Problem::solution) recognizes complete nodes,
/// and [`lower_bound`](Problem::lower_bound) must never exceed the value of
/// any complete solution reachable from the node (admissibility) — pruning
/// correctness depends on it.
///
/// Bound arithmetic is the hot path of every driver: profiles of the
/// minimum-ultrametric problem put it ahead of frontier bookkeeping at
/// every thread count. Implementations should therefore treat
/// `lower_bound` as a *cached read* — compute the bound once while
/// branching (where the problem's data structures are already hot) and
/// store it on the node. The [`bound`](crate::bound) module provides
/// lane-oriented kernels for exactly that arithmetic, fed by a blocked
/// solver-matrix layout; `lower_bound` itself should never re-derive
/// anything per call.
pub trait Problem: Sync {
    /// A partial solution.
    type Node: Clone + Send;
    /// A complete solution payload.
    type Solution: Clone + Send;

    /// The root of the search tree.
    fn root(&self) -> Self::Node;

    /// An admissible lower bound on every complete solution below `node`.
    fn lower_bound(&self, node: &Self::Node) -> f64;

    /// When `node` is complete, its solution and exact objective value.
    fn solution(&self, node: &Self::Node) -> Option<(Self::Solution, f64)>;

    /// Expands an incomplete node, pushing its children into `out`
    /// (empty on entry).
    ///
    /// `out` also carries a spare pool of retired nodes: implementations
    /// that can overwrite an old node in place should prefer
    /// [`ChildBuf::recycle`] over allocating, which makes the hot path
    /// allocation-free once the pool is warm.
    fn branch(&self, node: &Self::Node, out: &mut ChildBuf<Self::Node>);

    /// An optional heuristic incumbent used as the initial upper bound
    /// (the paper's UPGMM step). Defaults to none.
    fn initial_incumbent(&self) -> Option<(Self::Solution, f64)> {
        None
    }

    /// Serializes a solution into an opaque payload for crash-safe
    /// checkpointing (see [`SearchOptions::checkpoint`]). The default
    /// returns `None`, which disables periodic snapshots for problems
    /// that have no durable representation.
    fn encode_solution(&self, _solution: &Self::Solution) -> Option<Vec<u8>> {
        None
    }

    /// Second prune stage: constraint propagation (see
    /// [`propagate`](crate::propagate)). Called by the expansion kernel
    /// on every node that survived the weight-bound prune, with the
    /// incumbent value `ub` current at that moment. Returning `true`
    /// prunes the node (counted in
    /// [`SearchStats::propagation_pruned`] and reported as
    /// [`PruneReason::Propagation`](crate::PruneReason::Propagation)).
    ///
    /// Implementations must be *sound*: prune only nodes provably unable
    /// to change the search's answer under `opts.mode`. The default
    /// never prunes, so problems without a propagation stage are
    /// unaffected.
    fn propagate(&self, _node: &Self::Node, _ub: f64, _opts: &SearchOptions) -> bool {
        false
    }
}

/// What to collect during the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// Find one optimal solution (prune `LB ≥ UB`; fastest).
    BestOne,
    /// Enumerate **all** optimal solutions (prune only `LB > UB`, keep
    /// co-optimal ties).
    AllOptimal,
}

/// Node-selection strategy of the sequential driver.
///
/// The parallel and simulated drivers always run depth-first within each
/// worker, as the papers do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Depth-first: cheap memory, reaches complete solutions fast —
    /// Algorithm BBU's published strategy.
    #[default]
    DepthFirst,
    /// Best-first: always expand the open node with the smallest lower
    /// bound. Branches the provably minimal number of nodes in
    /// [`SearchMode::BestOne`], at the price of a pool as large as the
    /// frontier.
    BestFirst,
}

/// Why a search run stopped.
///
/// Every stop mode is *anytime*: the outcome still carries the best
/// incumbent found so far, only [`StopReason::Completed`] certifies it as a
/// proven optimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The search space was exhausted; the incumbent is a proven optimum.
    Completed,
    /// [`SearchOptions::max_branches`] branch operations were spent.
    BudgetExhausted,
    /// The wall-clock [`SearchOptions::deadline`] passed.
    DeadlineExpired,
    /// The [`CancelToken`] was triggered.
    Cancelled,
    /// The open-node count breached the [`MemoryBudget`]; the watchdog
    /// shed the worst-bound open nodes and the remaining (capped) search
    /// drained. The incumbent is the best over the subtrees actually
    /// explored — a valid upper bound, not a proven optimum.
    MemoryExhausted,
    /// A parallel worker panicked; the search drained cleanly and kept
    /// every incumbent published before the panic.
    WorkerPanicked,
}

impl StopReason {
    /// Whether the incumbent is a proven optimum.
    pub fn is_complete(self) -> bool {
        matches!(self, StopReason::Completed)
    }

    /// Of two stop reasons from merged sub-searches, the more severe one
    /// (anything beats `Completed`; panics dominate everything).
    pub fn worst(self, other: StopReason) -> StopReason {
        fn rank(r: StopReason) -> u8 {
            match r {
                StopReason::Completed => 0,
                StopReason::BudgetExhausted => 1,
                StopReason::DeadlineExpired => 2,
                StopReason::Cancelled => 3,
                StopReason::MemoryExhausted => 4,
                StopReason::WorkerPanicked => 5,
            }
        }
        if rank(other) > rank(self) {
            other
        } else {
            self
        }
    }
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StopReason::Completed => "completed",
            StopReason::BudgetExhausted => "branch budget exhausted",
            StopReason::DeadlineExpired => "deadline expired",
            StopReason::Cancelled => "cancelled",
            StopReason::MemoryExhausted => "memory budget exhausted",
            StopReason::WorkerPanicked => "worker panicked",
        })
    }
}

/// A cap on the number of *open* nodes a search may hold at once —
/// queued in any frontier plus currently expanding.
///
/// When the count breaches the cap, the memory watchdog sheds the
/// worst-bound open nodes back under it (at batch boundaries, so the
/// overshoot is bounded by one branching batch per worker), keeps the
/// incumbent, and the run finishes with [`StopReason::MemoryExhausted`]
/// instead of growing without bound. Shedding drops whole subtrees, so
/// the result is an anytime upper bound, not a proven optimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBudget {
    /// Maximum open nodes allowed at once (at least 1).
    pub max_open_nodes: u64,
}

impl MemoryBudget {
    /// A budget of `max_open_nodes` simultaneously open nodes (clamped up
    /// to 1 — a search always needs room for the node it is expanding).
    pub fn new(max_open_nodes: u64) -> Self {
        MemoryBudget {
            max_open_nodes: max_open_nodes.max(1),
        }
    }
}

/// Search configuration.
///
/// No longer `Copy` (the cancel token is reference-counted); clone freely.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Whether to find one optimum or all of them.
    pub mode: SearchMode,
    /// Node-selection strategy for the sequential driver.
    pub strategy: Strategy,
    /// Relative tolerance used when comparing objective values: values
    /// within `tol × max(1, |UB|)` count as equal.
    pub tol: f64,
    /// Stop after this many branch operations (safety valve for
    /// experiments; `u64::MAX` means unlimited). When the search stops
    /// early the outcome reports [`StopReason::BudgetExhausted`] and the
    /// incumbent is only an upper bound.
    pub max_branches: u64,
    /// Wall-clock instant after which the search stops with
    /// [`StopReason::DeadlineExpired`]. Checked cooperatively every few
    /// hundred nodes, so overshoot is bounded by a handful of branch
    /// operations. `None` means no deadline.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation flag, checked on every node. `None` means
    /// the search cannot be cancelled externally.
    pub cancel: Option<CancelToken>,
    /// Open-node memory watchdog. `None` means unbounded (the default).
    pub memory: Option<MemoryBudget>,
    /// Periodic crash-safe incumbent snapshots. `None` disables them (the
    /// default). Requires the problem to implement
    /// [`Problem::encode_solution`].
    pub checkpoint: Option<CheckpointPolicy>,
    /// Overrides the parallel drivers' work-stealing shard count (clamped
    /// to the frontier's maximum). `None` uses the worker-derived default.
    /// Callers resolve the `MUTREE_FRONTIER_SHARDS` environment hook into
    /// this field; this crate itself never reads the environment.
    pub frontier_shards: Option<usize>,
}

impl SearchOptions {
    /// Options with the given mode, depth-first strategy, default
    /// tolerance `1e-9`, no branch limit, no deadline, no cancel token.
    pub fn new(mode: SearchMode) -> Self {
        SearchOptions {
            mode,
            strategy: Strategy::DepthFirst,
            tol: 1e-9,
            max_branches: u64::MAX,
            deadline: None,
            cancel: None,
            memory: None,
            checkpoint: None,
            frontier_shards: None,
        }
    }

    /// Sets the branch-operation budget.
    pub fn max_branches(mut self, limit: u64) -> Self {
        self.max_branches = limit;
        self
    }

    /// Sets the sequential node-selection strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets an absolute wall-clock deadline.
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the deadline to `timeout` from now.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Attaches a cancellation token (keep a clone to trigger it).
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Caps the number of simultaneously open nodes (see [`MemoryBudget`]).
    pub fn memory_budget(mut self, budget: MemoryBudget) -> Self {
        self.memory = Some(budget);
        self
    }

    /// Enables periodic crash-safe incumbent snapshots (see
    /// [`CheckpointPolicy`]).
    pub fn checkpoint(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = Some(policy);
        self
    }

    /// Overrides the parallel drivers' work-stealing shard count (see
    /// [`SearchOptions::frontier_shards`]).
    pub fn frontier_shards(mut self, shards: usize) -> Self {
        self.frontier_shards = Some(shards);
        self
    }

    /// Whether the deadline (if any) has passed. Public so custom drivers
    /// (e.g. the simulated-cluster backend) can share the stop policy.
    pub fn deadline_expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Whether the cancel token (if any) has fired.
    pub fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// The absolute comparison slack at upper bound `ub`:
    /// `tol × max(1, |ub|)`, or `0` while the bound is still infinite
    /// (`∞ − ∞` would be NaN). Public so custom drivers share the exact
    /// pruning arithmetic of the built-in ones.
    pub fn eps(&self, ub: f64) -> f64 {
        if ub.is_finite() {
            self.tol * 1f64.max(ub.abs())
        } else {
            // Before any incumbent exists the bound is ∞; a zero epsilon
            // keeps `ub - eps` well-defined (∞ − ∞ would be NaN).
            0.0
        }
    }
}

/// Counters describing a finished search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes expanded by [`Problem::branch`].
    pub branched: u64,
    /// Children discarded because their lower bound could not beat the
    /// incumbent.
    pub pruned: u64,
    /// Nodes discarded by the constraint-propagation stage
    /// ([`Problem::propagate`]): a triple-domain wipeout or a propagated
    /// height floor beat the weight bound to the prune. Counted in
    /// [`pruned`](SearchStats::pruned) as well — this field attributes
    /// the subset the second stage caught.
    pub propagation_pruned: u64,
    /// Complete solutions encountered (including non-improving ones).
    pub solutions_seen: u64,
    /// Times the incumbent improved.
    pub incumbent_updates: u64,
    /// Largest number of nodes simultaneously alive in the pools.
    pub peak_pool: u64,
    /// Work-stealing traffic: batches stolen from overflow shards by
    /// starved workers (parallel drivers only; zero elsewhere).
    pub steals: u64,
    /// Work-stealing traffic: surplus batches donated to overflow shards
    /// for parked peers (parallel drivers only; zero elsewhere).
    pub donations: u64,
    /// Times a worker parked with every shard empty — high values mean
    /// the search is starved for parallelism, not compute.
    pub parks: u64,
    /// Stage attempts re-run by the pipeline's retry supervisor (zero for
    /// plain solves — retries happen at the pipeline layer, not here).
    pub retries: u64,
    /// Open nodes dropped by the memory watchdog (see [`MemoryBudget`]).
    pub nodes_shed: u64,
    /// Checkpoint snapshots durably written (see
    /// [`SearchOptions::checkpoint`]).
    pub checkpoints: u64,
    /// Group solves answered from the content-addressed cache without
    /// searching (always zero for plain solves — caching happens at the
    /// pipeline layer, not here).
    pub cache_hits: u64,
    /// Group solves that consulted the cache and searched from scratch.
    pub cache_misses: u64,
    /// Group solves warm-started from an ε-close cached optimum (counted
    /// in [`cache_misses`](SearchStats::cache_misses) too: the search
    /// still ran).
    pub cache_warm_seeds: u64,
    /// Cache entries discarded because their checksum no longer matched
    /// their contents; each one degraded to a cold solve.
    pub cache_poisoned: u64,
}

impl SearchStats {
    /// Element-wise sum, for merging per-worker stats.
    pub fn merge(&mut self, other: &SearchStats) {
        self.branched += other.branched;
        self.pruned += other.pruned;
        self.propagation_pruned += other.propagation_pruned;
        self.solutions_seen += other.solutions_seen;
        self.incumbent_updates += other.incumbent_updates;
        self.peak_pool = self.peak_pool.max(other.peak_pool);
        self.steals += other.steals;
        self.donations += other.donations;
        self.parks += other.parks;
        self.retries += other.retries;
        self.nodes_shed += other.nodes_shed;
        self.checkpoints += other.checkpoints;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_warm_seeds += other.cache_warm_seeds;
        self.cache_poisoned += other.cache_poisoned;
    }
}

/// The result of a branch-and-bound run.
#[derive(Debug, Clone)]
pub struct SearchOutcome<S> {
    /// The best objective value found, when any solution exists. A proven
    /// optimum only when [`SearchOutcome::stop`] is
    /// [`StopReason::Completed`]; otherwise the best incumbent at the time
    /// the search stopped.
    pub best_value: Option<f64>,
    /// The best solutions found: one in [`SearchMode::BestOne`], all known
    /// co-optima in [`SearchMode::AllOptimal`].
    pub solutions: Vec<S>,
    /// Search counters.
    pub stats: SearchStats,
    /// Why the search stopped.
    pub stop: StopReason,
}

impl<S> SearchOutcome<S> {
    /// Whether the search space was exhausted, certifying the incumbent as
    /// a proven optimum.
    pub fn is_complete(&self) -> bool {
        self.stop.is_complete()
    }
}
