//! Criterion benches for the companion paper's figures (1–8): the
//! simulated-cluster branch-and-bound at each figure's configuration,
//! at sampling-friendly sizes. Full-scale series come from the `pfig*`
//! binaries.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use mutree_bench::data;
use mutree_clustersim::ClusterSpec;
use mutree_core::{MutSolver, SearchBackend, ThreeThree};

fn sim_solver(slaves: usize, rule: ThreeThree) -> MutSolver {
    MutSolver::new()
        .backend(SearchBackend::SimulatedCluster {
            spec: ClusterSpec::with_slaves(slaves),
        })
        .three_three(rule)
        .max_branches(60_000)
}

fn quick<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    g
}

/// Companion Fig. 1 — 16 simulated processors, HMDNA.
fn bench_pfig1(c: &mut Criterion) {
    let m = data::hmdna_matrix(24, 0);
    quick(c, "pfig1_hmdna_16proc").bench_function("n24", |b| {
        b.iter(|| sim_solver(16, ThreeThree::Off).solve(&m).unwrap().weight)
    });
}

/// Companion Fig. 2 — single simulated processor, HMDNA.
fn bench_pfig2(c: &mut Criterion) {
    let m = data::hmdna_matrix(24, 0);
    quick(c, "pfig2_hmdna_1proc").bench_function("n24", |b| {
        b.iter(|| sim_solver(1, ThreeThree::Off).solve(&m).unwrap().weight)
    });
}

/// Companion Fig. 3 — speedup computation (both cluster sizes).
fn bench_pfig3(c: &mut Criterion) {
    let m = data::hmdna_matrix(22, 0);
    quick(c, "pfig3_hmdna_speedup").bench_function("n22", |b| {
        b.iter(|| {
            let t1 = sim_solver(1, ThreeThree::Off).solve(&m).unwrap();
            let t16 = sim_solver(16, ThreeThree::Off).solve(&m).unwrap();
            t1.sim.unwrap().makespan / t16.sim.unwrap().makespan
        })
    });
}

/// Companion Fig. 4 — 3-3 relationship on vs off, HMDNA, 16 processors.
fn bench_pfig4(c: &mut Criterion) {
    let m = data::hmdna_matrix(24, 0);
    let mut g = quick(c, "pfig4_hmdna_threethree");
    g.bench_function("without_33", |b| {
        b.iter(|| sim_solver(16, ThreeThree::Off).solve(&m).unwrap().weight)
    });
    g.bench_function("with_33", |b| {
        b.iter(|| {
            sim_solver(16, ThreeThree::InitialOnly)
                .solve(&m)
                .unwrap()
                .weight
        })
    });
    g.finish();
}

/// Companion Fig. 5 — 16 simulated processors, random data.
fn bench_pfig5(c: &mut Criterion) {
    let m = data::random_species_matrix(14, 0);
    quick(c, "pfig5_random_16proc").bench_function("n14", |b| {
        b.iter(|| sim_solver(16, ThreeThree::Off).solve(&m).unwrap().weight)
    });
}

/// Companion Fig. 6 — speedup, random data.
fn bench_pfig6(c: &mut Criterion) {
    let m = data::random_species_matrix(12, 0);
    quick(c, "pfig6_random_speedup").bench_function("n12", |b| {
        b.iter(|| {
            let t1 = sim_solver(1, ThreeThree::Off).solve(&m).unwrap();
            let t16 = sim_solver(16, ThreeThree::Off).solve(&m).unwrap();
            t1.sim.unwrap().makespan / t16.sim.unwrap().makespan
        })
    });
}

/// Companion Fig. 7 — single simulated processor, random data.
fn bench_pfig7(c: &mut Criterion) {
    let m = data::random_species_matrix(14, 0);
    quick(c, "pfig7_random_1proc").bench_function("n14", |b| {
        b.iter(|| sim_solver(1, ThreeThree::Off).solve(&m).unwrap().weight)
    });
}

/// Companion Fig. 8 — 3-3 relationship on vs off, random data.
fn bench_pfig8(c: &mut Criterion) {
    let m = data::random_species_matrix(14, 1);
    let mut g = quick(c, "pfig8_random_threethree");
    g.bench_function("without_33", |b| {
        b.iter(|| sim_solver(16, ThreeThree::Off).solve(&m).unwrap().weight)
    });
    g.bench_function("with_33", |b| {
        b.iter(|| {
            sim_solver(16, ThreeThree::InitialOnly)
                .solve(&m)
                .unwrap()
                .weight
        })
    });
    g.finish();
}

criterion_group!(
    hpcasia,
    bench_pfig1,
    bench_pfig2,
    bench_pfig3,
    bench_pfig4,
    bench_pfig5,
    bench_pfig6,
    bench_pfig7,
    bench_pfig8
);
criterion_main!(hpcasia);
