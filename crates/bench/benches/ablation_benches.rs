//! Criterion benches for the ablation studies, plus micro-benches of the
//! individual substrates (compact-set detection, UPGMM, edit distance,
//! Kruskal) so substrate regressions are visible independently of the
//! full pipelines.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use mutree_bench::data;
use mutree_core::{CompactPipeline, Linkage, MutSolver, ThreeThree};
use mutree_graph::{kruskal, CompactSets, WeightedGraph};
use mutree_seqgen::{edit_distance, random_root_sequence};
use mutree_tree::cluster;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    g
}

/// `abl_linkage` — condensed-matrix linkage choice.
fn bench_abl_linkage(c: &mut Criterion) {
    let m = data::hmdna_matrix(24, 0);
    let mut g = quick(c, "abl_linkage");
    for (name, linkage) in [
        ("maximum", Linkage::Maximum),
        ("minimum", Linkage::Minimum),
        ("average", Linkage::Average),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                CompactPipeline::new()
                    .threshold(10)
                    .linkage(linkage)
                    .solve(&m)
                    .unwrap()
                    .weight
            })
        });
    }
    g.finish();
}

/// `abl_threshold` — group-size threshold.
fn bench_abl_threshold(c: &mut Criterion) {
    let m = data::random_species_matrix(18, 1);
    let mut g = quick(c, "abl_threshold");
    for threshold in [4usize, 8, 12] {
        g.bench_function(format!("threshold_{threshold}"), |b| {
            b.iter(|| {
                CompactPipeline::new()
                    .threshold(threshold)
                    .solver(MutSolver::new().max_branches(60_000))
                    .solve(&m)
                    .unwrap()
                    .weight
            })
        });
    }
    g.finish();
}

/// `abl_bound` — maxmin relabeling and UPGMM incumbent on vs off.
fn bench_abl_bound(c: &mut Criterion) {
    let m = data::random_species_matrix(12, 2);
    let mut g = quick(c, "abl_bound");
    g.bench_function("full", |b| {
        b.iter(|| MutSolver::new().solve(&m).unwrap().weight)
    });
    g.bench_function("no_maxmin", |b| {
        b.iter(|| MutSolver::new().without_maxmin().solve(&m).unwrap().weight)
    });
    g.bench_function("no_upgmm", |b| {
        b.iter(|| MutSolver::new().without_upgmm().solve(&m).unwrap().weight)
    });
    g.finish();
}

/// `abl_33` — the 3-3 rule strength.
fn bench_abl_33(c: &mut Criterion) {
    let m = data::random_species_matrix(12, 3);
    let mut g = quick(c, "abl_33");
    for (name, rule) in [
        ("off", ThreeThree::Off),
        ("initial", ThreeThree::InitialOnly),
        ("full", ThreeThree::Full),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| MutSolver::new().three_three(rule).solve(&m).unwrap().weight)
        });
    }
    g.finish();
}

/// Substrate micro-benches.
fn bench_substrates(c: &mut Criterion) {
    let m = data::hmdna_matrix(32, 0);
    let mut g = quick(c, "substrates");
    g.bench_function("compact_sets_n32", |b| {
        b.iter(|| CompactSets::find(&m).len())
    });
    g.bench_function("kruskal_n32", |b| {
        b.iter(|| kruskal(&WeightedGraph::from_matrix(&m)).unwrap().weight())
    });
    g.bench_function("upgmm_n32", |b| {
        b.iter(|| cluster(&m, Linkage::Maximum).weight())
    });
    let mut rng = StdRng::seed_from_u64(5);
    let a = random_root_sequence(500, &mut rng);
    let b2 = random_root_sequence(500, &mut rng);
    g.bench_function("edit_distance_500", |b| b.iter(|| edit_distance(&a, &b2)));
    g.finish();
}

criterion_group!(
    ablations,
    bench_abl_linkage,
    bench_abl_threshold,
    bench_abl_bound,
    bench_abl_33,
    bench_substrates
);
criterion_main!(ablations);
