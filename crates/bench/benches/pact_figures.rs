//! Criterion benches for the PaCT 2005 figures (8–13): one group per
//! figure, exercising exactly the computation the figure plots, at sizes
//! small enough for repeated sampling. The full-scale series come from
//! the `fig*` experiment binaries.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use mutree_bench::data;
use mutree_core::{CompactPipeline, MutSolver};

fn quick<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    g
}

/// Fig. 8 — computing time on random data, without vs with compact sets.
fn bench_fig08(c: &mut Criterion) {
    let m = data::random_species_matrix(16, 0);
    let mut g = quick(c, "fig08_random_time");
    g.bench_function("without_compact_sets_n16", |b| {
        b.iter(|| MutSolver::new().solve(&m).unwrap().weight)
    });
    g.bench_function("with_compact_sets_n16", |b| {
        b.iter(|| {
            CompactPipeline::new()
                .threshold(10)
                .solve(&m)
                .unwrap()
                .weight
        })
    });
    g.finish();
}

/// Fig. 9 — total tree cost on random data (the cost computation path).
fn bench_fig09(c: &mut Criterion) {
    let m = data::random_species_matrix(14, 1);
    let mut g = quick(c, "fig09_random_cost");
    g.bench_function("cost_both_methods_n14", |b| {
        b.iter(|| {
            let e = MutSolver::new().solve(&m).unwrap().weight;
            let p = CompactPipeline::new()
                .threshold(8)
                .solve(&m)
                .unwrap()
                .weight;
            (e, p)
        })
    });
    g.finish();
}

/// Fig. 10 — tree cost on 26-species HMDNA sets.
fn bench_fig10(c: &mut Criterion) {
    let m = data::hmdna_matrix(26, 0);
    let mut g = quick(c, "fig10_hmdna26_cost");
    g.bench_function("pipeline_cost_26", |b| {
        b.iter(|| {
            CompactPipeline::new()
                .threshold(12)
                .solve(&m)
                .unwrap()
                .weight
        })
    });
    g.finish();
}

/// Fig. 11 — computing time on 26-species HMDNA sets.
fn bench_fig11(c: &mut Criterion) {
    let m = data::hmdna_matrix(26, 1);
    let mut g = quick(c, "fig11_hmdna26_time");
    g.bench_function("without_compact_sets_26", |b| {
        b.iter(|| {
            MutSolver::new()
                .max_branches(50_000)
                .solve(&m)
                .unwrap()
                .weight
        })
    });
    g.bench_function("with_compact_sets_26", |b| {
        b.iter(|| {
            CompactPipeline::new()
                .threshold(12)
                .solve(&m)
                .unwrap()
                .weight
        })
    });
    g.finish();
}

/// Fig. 12 — tree cost on 30-species HMDNA sets.
fn bench_fig12(c: &mut Criterion) {
    let m = data::hmdna_matrix(30, 0);
    let mut g = quick(c, "fig12_hmdna30_cost");
    g.bench_function("pipeline_cost_30", |b| {
        b.iter(|| {
            CompactPipeline::new()
                .threshold(12)
                .solve(&m)
                .unwrap()
                .weight
        })
    });
    g.finish();
}

/// Fig. 13 — computing time on 30-species HMDNA sets.
fn bench_fig13(c: &mut Criterion) {
    let m = data::hmdna_matrix(30, 1);
    let mut g = quick(c, "fig13_hmdna30_time");
    g.bench_function("without_compact_sets_30", |b| {
        b.iter(|| {
            MutSolver::new()
                .max_branches(50_000)
                .solve(&m)
                .unwrap()
                .weight
        })
    });
    g.bench_function("with_compact_sets_30", |b| {
        b.iter(|| {
            CompactPipeline::new()
                .threshold(12)
                .solve(&m)
                .unwrap()
                .weight
        })
    });
    g.finish();
}

criterion_group!(
    pact,
    bench_fig08,
    bench_fig09,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_fig13
);
criterion_main!(pact);
