//! Canonical workload generators for all experiments.
//!
//! Two families mirror the paper's §4:
//!
//! * [`random_species_matrix`] — the "randomly generated species matrix"
//!   workload: clock-like distances with 20 % multiplicative noise, scaled
//!   into the paper's 0–100 value range and metric by construction.
//!   (Independent-uniform matrices carry almost no compact structure *and*
//!   almost no ultrametric structure, so neither the paper's branch-and-
//!   bound times nor its compact-set savings are reproducible from them;
//!   see EXPERIMENTS.md for the measurement behind this choice.)
//! * [`hmdna_matrix`] — the Human-Mitochondrial-DNA stand-in: sequences
//!   evolved along a random coalescent genealogy under Kimura-2P with
//!   indels, pairwise edit distances (see `mutree_seqgen`). Like real
//!   mtDNA matrices these are integer-valued, near-ultrametric and
//!   strongly clustered.

use mutree_distmat::{gen, DistanceMatrix};
use mutree_seqgen::{
    distance_matrix, evolve, random_coalescent, random_root_sequence, DistanceKind,
    EvolutionParams, SubstitutionModel,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Noise level of the random-species family (fraction of each distance).
pub const RANDOM_NOISE: f64 = 0.2;

/// The "randomly generated species matrix" workload: values in 0–100,
/// metric, moderately clustered. Deterministic in `(n, seed)`.
pub fn random_species_matrix(n: usize, seed: u64) -> DistanceMatrix {
    let mut rng = StdRng::seed_from_u64(0x5eed_0000 ^ seed ^ ((n as u64) << 32));
    let m = mutree_distmat::gen::perturbed_ultrametric(n, 50.0, RANDOM_NOISE, &mut rng);
    // Scale into the paper's 0..100 range.
    let scale = 100.0 / m.max_distance().max(1e-9);
    let mut out = DistanceMatrix::zeros(n).expect("n >= 2");
    for (i, j, d) in m.pairs() {
        out.set(i, j, (d * scale).min(100.0));
    }
    out
}

/// The synthetic Human-Mitochondrial-DNA workload: edit-distance matrix of
/// `n` sequences (~120 bases) evolved on a random clock-like genealogy.
/// Deterministic in `(n, seed)`.
pub fn hmdna_matrix(n: usize, seed: u64) -> DistanceMatrix {
    let mut rng = StdRng::seed_from_u64(0xd4a_0000 ^ seed ^ ((n as u64) << 32));
    let params = EvolutionParams {
        model: SubstitutionModel::Kimura {
            transition_rate: 0.25,
            transversion_rate: 0.08,
        },
        indel_rate: 0.02,
        rate_variation: 0.4,
    };
    let tree = random_coalescent(n, 1.0, &mut rng);
    let root = random_root_sequence(80, &mut rng);
    let seqs = evolve(&tree, &root, &params, &mut rng);
    let mut m = distance_matrix(&seqs, DistanceKind::Edit);
    m.set_labels((0..n).map(|i| format!("HMDNA_{i:02}")));
    m
}

/// A block-clustered workload for the task-graph pipeline experiments:
/// `clusters` tight groups of `size` taxa each. Within-cluster distances
/// are random in 2–8, across-cluster distances are 100, so the compact
/// sets at any size threshold `>= size` are exactly the clusters and the
/// group count is known in advance. Deterministic in
/// `(clusters, size, seed)`.
pub fn clustered_matrix(clusters: usize, size: usize, seed: u64) -> DistanceMatrix {
    let mut rng = StdRng::seed_from_u64(
        0xb10c_0000 ^ seed ^ ((clusters as u64) << 40) ^ ((size as u64) << 32),
    );
    let n = clusters * size;
    let mut m = DistanceMatrix::zeros(n).expect("n >= 2");
    for i in 0..n {
        for j in (i + 1)..n {
            let d = if i / size == j / size {
                rng.gen_range(2.0..8.0)
            } else {
                100.0
            };
            m.set(i, j, d);
        }
    }
    m
}

/// An `n`-taxon workload for a single *undecomposed* exact solve — the
/// wide-leafset configurations (`n > 64`) the solver's width dispatcher
/// unlocked. Ultrametric by construction, so exact search stays tractable
/// even at widths beyond one word. Deterministic in `(n, seed)`.
///
/// # Panics
///
/// Panics beyond the engine ceiling ([`mutree_core::MAX_EXACT_TAXA`]):
/// no single exact solve can accept such a matrix, so a workload that
/// size is a bug in the experiment, not a measurement.
pub fn wide_exact_matrix(n: usize, seed: u64) -> DistanceMatrix {
    assert!(
        n <= mutree_core::MAX_EXACT_TAXA,
        "wide_exact_matrix is for single exact solves (engine limit {} taxa, got {n})",
        mutree_core::MAX_EXACT_TAXA
    );
    let mut rng = StdRng::seed_from_u64(0x71de_0000u64 ^ seed);
    gen::random_ultrametric(n, 100.0, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_family_is_metric_in_range() {
        let m = random_species_matrix(14, 3);
        assert!(m.is_metric(1e-9));
        assert!(m.max_distance() <= 100.0);
        assert!(m.min_distance() > 0.0);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_species_matrix(10, 7), random_species_matrix(10, 7));
        assert_eq!(hmdna_matrix(12, 1), hmdna_matrix(12, 1));
        assert_ne!(hmdna_matrix(12, 1), hmdna_matrix(12, 2));
    }

    #[test]
    fn hmdna_is_integer_edit_distances() {
        let m = hmdna_matrix(10, 4);
        assert!(m.is_metric(1e-9));
        for (_, _, d) in m.pairs() {
            assert_eq!(d, d.round(), "edit distances are integers");
        }
    }
}
