//! `exp_frontier` — the sharded work-stealing frontier against the
//! retired global-mutex pool it replaced, on a batch of block-clustered
//! instances, at 1/2/4/8 worker threads.
//!
//! The workload mirrors how the parallel driver is actually used: the
//! compact-set pipeline dispatches *many* group-sized subproblem solves,
//! not one giant search. Three drivers run the identical batch:
//!
//! * `global` — the first-generation driver exactly as it shipped: one
//!   mutex-guarded pool, per-node donation under the lock, a fresh
//!   `thread::scope` spawn per solve;
//! * `scoped` — the sharded work-stealing frontier, same per-solve spawn;
//! * `pooled` — the sharded frontier on a persistent [`Executor`], the
//!   production configuration. A shared pool was not possible with the
//!   global design (its termination test assumed dedicated threads), so
//!   this column is the architectural payoff of the new frontier.
//!
//! All drivers must report the same optimum on every instance. On a host
//! with fewer cores than workers the per-node synchronization difference
//! between `global` and `scoped` is within measurement noise (both are
//! dominated by bound arithmetic; see the DESIGN.md §3.8 caveat) — the
//! robust separation is `global` vs `pooled`, where the retired driver
//! pays a full spawn-and-join cycle per solve and the new one pays a
//! batch handoff to already-parked workers.

use std::sync::Arc;
use std::time::Instant;

use mutree_bnb::{
    solve_parallel, solve_parallel_global, solve_parallel_pooled, SearchMode, SearchOptions,
};
use mutree_core::{Executor, MutProblem, ThreeThree};

use crate::data;
use crate::report::{fmt_secs, Table};

/// Instances per batch (20 sixteen-taxon + 380 twelve-taxon). Large
/// enough that per-solve dispatch costs are sampled many times, small
/// enough that one batch stays near a second.
const BATCH: usize = 400;

/// Interleaved repetitions per thread count; each driver's cell is the
/// best of its reps, and the drivers alternate within a rep so slow host
/// phases hit all three equally.
const REPS: usize = 4;

/// One timed batch run, folded into a running best-of; returns the
/// per-instance optima for the agreement check.
fn timed_batch<F: FnMut(&Arc<MutProblem>) -> Option<f64>>(
    best: &mut f64,
    problems: &[Arc<MutProblem>],
    mut solve: F,
) -> Vec<Option<f64>> {
    let t0 = Instant::now();
    let optima: Vec<Option<f64>> = problems.iter().map(&mut solve).collect();
    *best = best.min(t0.elapsed().as_secs_f64());
    optima
}

/// `exp_frontier` — batch wall-clock for the three driver generations at
/// 1/2/4/8 workers, plus the sharded driver's contention counters.
pub fn exp_frontier() -> Table {
    let mut t = Table::new(
        "exp_frontier",
        "parallel frontier: global-mutex pool vs sharded work stealing, batch of 400 clustered solves (interleaved best of 4)",
        &[
            "threads",
            "global",
            "scoped",
            "pooled",
            "speedup",
            "same_optimum",
            "steals",
            "donations",
            "parks",
        ],
    );

    // Pipeline-scale instances — the compact-set pipeline dispatches
    // group solves of roughly threshold size, so the batch mixes a few
    // 16-taxon matrices with many 12-taxon ones, maxmin relabeling and
    // the UPGMM initial incumbent on (the production bound
    // configuration), a different seed per instance.
    let build = |clusters: usize, size: usize, seed: u64| {
        let m = data::clustered_matrix(clusters, size, seed);
        let pm = m.maxmin_permutation().apply(&m);
        Arc::new(MutProblem::new(&pm, ThreeThree::Off, true))
    };
    let problems: Vec<Arc<MutProblem>> = (0..20)
        .map(|i| build(4, 4, 0x5eed + i as u64))
        .chain((0..380).map(|i| build(4, 3, 0xfade + i as u64)))
        .collect();
    assert_eq!(problems.len(), BATCH);
    let opts = SearchOptions::new(SearchMode::BestOne);

    for threads in [1usize, 2, 4, 8] {
        let exec = Executor::new(threads);
        let (mut global_s, mut scoped_s, mut pooled_s) =
            (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        let mut global_opt = Vec::new();
        let mut scoped_opt = Vec::new();
        let mut pooled_opt = Vec::new();
        let (mut steals, mut donations, mut parks) = (0u64, 0u64, 0u64);
        for _ in 0..REPS {
            global_opt = timed_batch(&mut global_s, &problems, |p| {
                solve_parallel_global(&**p, &opts, threads).best_value
            });
            scoped_opt = timed_batch(&mut scoped_s, &problems, |p| {
                solve_parallel(&**p, &opts, threads).best_value
            });
            // Counters are reported for the production (pooled) driver,
            // summed over the batch of the last repetition.
            (steals, donations, parks) = (0, 0, 0);
            pooled_opt = timed_batch(&mut pooled_s, &problems, |p| {
                let out = solve_parallel_pooled(Arc::clone(p), &opts, threads, &exec, ());
                steals += out.stats.steals;
                donations += out.stats.donations;
                parks += out.stats.parks;
                out.best_value
            });
        }
        let same = global_opt.len() == BATCH
            && (0..BATCH).all(|i| match (global_opt[i], scoped_opt[i], pooled_opt[i]) {
                (Some(g), Some(s), Some(p)) => (g - s).abs() < 1e-9 && (g - p).abs() < 1e-9,
                _ => false,
            });
        t.push(vec![
            threads.to_string(),
            fmt_secs(global_s),
            fmt_secs(scoped_s),
            fmt_secs(pooled_s),
            format!("{:.2}", global_s / pooled_s.max(1e-12)),
            same.to_string(),
            steals.to_string(),
            donations.to_string(),
            parks.to_string(),
        ]);
    }
    t
}
