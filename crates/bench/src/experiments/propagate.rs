//! `exp_propagate` — the constraint-propagation prune stage against the
//! weight-only baseline, on the shared 400-solve clustered batch.
//!
//! The expansion kernel runs two prune stages: the weight bound
//! (`ω(partial) + suffix`) and, behind [`PruneStrategy`], the
//! propagation stage — per-depth height floors plus, under
//! `ThreeThree::Full`, the packed triple-domain arm-wipeout masks. Both
//! stages are answer-preserving (`tests/prune_differential.rs` pins the
//! optima bit for bit), so this experiment prices the trade directly:
//! nodes the propagation stage removes vs the fixpoint arithmetic it
//! adds per branched node.
//!
//! The batch, relabeling and rep protocol mirror
//! `exp_frontier`/`exp_bound_kernel` — 20 sixteen-taxon + 380
//! twelve-taxon clustered instances, maxmin + UPGMM, interleaved best of
//! 4 — but with the full 3-3 rule on, since that is the only
//! configuration where the triple domains carry close-pair structure.
//! Thread counts 1/4/8 separate the sequential win from the parallel
//! one: at 1 thread the strategies' branched counts are deterministic
//! (and `weight ≥ propagate/hybrid` is a theorem the table re-checks);
//! under the parallel driver expansion order is scheduling-dependent, so
//! those rows report wall-clock plus last-rep node counts.

use std::time::Instant;

use mutree_bnb::{solve_parallel, solve_sequential, BoundKernel, SearchMode, SearchOptions};
use mutree_core::{MutProblem, PruneStrategy, ThreeThree};

use crate::data;
use crate::report::{fmt_secs, Table};

/// Instances per batch — identical mix to `exp_frontier` and
/// `exp_bound_kernel`, so the three experiments watch the same hot path.
const BATCH: usize = 400;

/// Interleaved repetitions; each strategy's cell is the best of its
/// reps, and the strategies alternate within a rep so slow host phases
/// hit all three equally.
const REPS: usize = 4;

/// Per-instance outcome: optimum bits, branched nodes, propagation
/// prunes.
type Outcome = (Option<u64>, u64, u64);

/// One timed batch pass under one strategy at one thread count.
fn run_batch(problems: &[MutProblem<1>], opts: &SearchOptions, threads: usize) -> Vec<Outcome> {
    problems
        .iter()
        .map(|p| {
            let out = if threads == 1 {
                solve_sequential(p, opts)
            } else {
                solve_parallel(p, opts, threads)
            };
            (
                out.best_value.map(f64::to_bits),
                out.stats.branched,
                out.stats.propagation_pruned,
            )
        })
        .collect()
}

/// `exp_propagate` — weight-only vs propagate vs hybrid prune stages at
/// 1/4/8 threads on the 400-solve clustered batch (full 3-3 rule,
/// interleaved best of 4).
pub fn exp_propagate() -> Table {
    let mut t = Table::new(
        "exp_propagate",
        "prune stages: weight-only vs constraint propagation vs hybrid, batch of 400 clustered solves under the full 3-3 rule (interleaved best of 4)",
        &[
            "threads",
            "weight",
            "propagate",
            "hybrid",
            "prop_speedup",
            "hybrid_speedup",
            "branched_weight",
            "branched_hybrid",
            "prop_pruned_hybrid",
            "same_optimum",
        ],
    );

    // The exp_frontier workload, maxmin-relabeled, but with the full 3-3
    // rule so the arm-wipeout masks are live; one problem vector per
    // strategy, shared across every thread count.
    let matrices: Vec<_> = (0..20)
        .map(|i| data::clustered_matrix(4, 4, 0x5eed + i as u64))
        .chain((0..380).map(|i| data::clustered_matrix(4, 3, 0xfade + i as u64)))
        .map(|m| m.maxmin_permutation().apply(&m))
        .collect();
    assert_eq!(matrices.len(), BATCH);
    let build = |prune: PruneStrategy| -> Vec<MutProblem<1>> {
        matrices
            .iter()
            .map(|pm| {
                MutProblem::<1>::with_config(
                    pm,
                    ThreeThree::Full,
                    true,
                    BoundKernel::default(),
                    prune,
                )
            })
            .collect()
    };
    let weight = build(PruneStrategy::WeightOnly);
    let propagate = build(PruneStrategy::Propagate);
    let hybrid = build(PruneStrategy::Hybrid);
    let opts = SearchOptions::new(SearchMode::BestOne);

    for threads in [1usize, 4, 8] {
        let (mut weight_s, mut prop_s, mut hybrid_s) =
            (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        let mut weight_out = Vec::new();
        let mut prop_out = Vec::new();
        let mut hybrid_out = Vec::new();
        for _ in 0..REPS {
            let t0 = Instant::now();
            weight_out = run_batch(&weight, &opts, threads);
            weight_s = weight_s.min(t0.elapsed().as_secs_f64());

            let t0 = Instant::now();
            prop_out = run_batch(&propagate, &opts, threads);
            prop_s = prop_s.min(t0.elapsed().as_secs_f64());

            let t0 = Instant::now();
            hybrid_out = run_batch(&hybrid, &opts, threads);
            hybrid_s = hybrid_s.min(t0.elapsed().as_secs_f64());
        }
        let same_optimum = (0..BATCH).all(|i| {
            weight_out[i].0.is_some()
                && weight_out[i].0 == prop_out[i].0
                && weight_out[i].0 == hybrid_out[i].0
        });
        if threads == 1 {
            // Sequential counts are deterministic; propagation may only
            // ever shrink the search (see tests/prune_differential.rs).
            for i in 0..BATCH {
                assert!(prop_out[i].1 <= weight_out[i].1, "propagation widened #{i}");
                assert!(hybrid_out[i].1 <= weight_out[i].1, "hybrid widened #{i}");
            }
        }
        let nodes = |out: &[Outcome]| out.iter().map(|(_, b, _)| b).sum::<u64>();
        t.push(vec![
            threads.to_string(),
            fmt_secs(weight_s),
            fmt_secs(prop_s),
            fmt_secs(hybrid_s),
            format!("{:.3}", weight_s / prop_s.max(1e-12)),
            format!("{:.3}", weight_s / hybrid_s.max(1e-12)),
            nodes(&weight_out).to_string(),
            nodes(&hybrid_out).to_string(),
            hybrid_out
                .iter()
                .map(|(_, _, p)| p)
                .sum::<u64>()
                .to_string(),
            same_optimum.to_string(),
        ]);
    }
    t
}
