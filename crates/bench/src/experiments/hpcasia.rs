//! HPC Asia 2005 §4: the parallel branch-and-bound evaluation, on the
//! simulated 16-node cluster.
//!
//! The companion paper times its master/slave algorithm on a real 16-node
//! Linux cluster; we replay the identical protocol on the deterministic
//! discrete-event simulator (`mutree_core::solve_simulated`), so the
//! reported "computing times" are virtual seconds. Speedups (Fig. 3/6)
//! and the 3-3 relationship effect (Fig. 4/8) are ratios of virtual
//! times, which makes them directly comparable with the paper's shapes.
//!
//! Each species count runs several data sets and reports the **median**,
//! as the project report does, because branch-and-bound times vary wildly
//! across matrices of the same size.

use mutree_clustersim::ClusterSpec;
use mutree_core::{MutSolver, SearchBackend, ThreeThree};
use mutree_distmat::DistanceMatrix;

use crate::data;
use crate::report::{fmt_secs, Table};

/// Branch budget per solve (runs hitting it are flagged).
pub const SIM_BUDGET: u64 = 400_000;
/// Data sets per species count.
pub const SETS_PER_SIZE: u64 = 5;
/// Species counts for the HMDNA series (the paper reaches 38 on 16
/// processors and stops at 26 on one).
pub const HMDNA_SIZES: &[usize] = &[20, 24, 28, 32, 36, 38];
/// Species counts for the random series.
pub const RANDOM_SIZES: &[usize] = &[10, 12, 14, 16, 18];

/// Which data family an experiment sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Synthetic Human Mitochondrial DNA edit-distance matrices.
    Hmdna,
    /// The random species matrices of the PaCT experiments.
    Random,
}

impl Family {
    fn sizes(self) -> &'static [usize] {
        match self {
            Family::Hmdna => HMDNA_SIZES,
            Family::Random => RANDOM_SIZES,
        }
    }

    fn matrix(self, n: usize, seed: u64) -> DistanceMatrix {
        match self {
            Family::Hmdna => data::hmdna_matrix(n, seed),
            Family::Random => data::random_species_matrix(n, seed),
        }
    }

    fn label(self) -> &'static str {
        match self {
            Family::Hmdna => "HMDNA",
            Family::Random => "random",
        }
    }
}

/// Virtual computing time of one simulated run.
pub fn simulated_time(m: &DistanceMatrix, slaves: usize, rule: ThreeThree) -> (f64, bool) {
    let sol = MutSolver::new()
        .backend(SearchBackend::SimulatedCluster {
            spec: ClusterSpec::with_slaves(slaves),
        })
        .three_three(rule)
        .max_branches(SIM_BUDGET)
        .solve(m)
        .expect("simulated solve");
    let complete = sol.is_complete();
    let report = sol.sim.expect("simulated backend yields a report");
    (report.makespan, complete)
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v[v.len() / 2]
}

/// Sweeps a family at a slave count, returning `(n, median_time,
/// any_capped)` rows.
pub fn time_sweep(family: Family, slaves: usize, rule: ThreeThree) -> Vec<(usize, f64, bool)> {
    family
        .sizes()
        .iter()
        .map(|&n| {
            let mut times = Vec::new();
            let mut capped = false;
            for seed in 0..SETS_PER_SIZE {
                let m = family.matrix(n, seed);
                let (t, complete) = simulated_time(&m, slaves, rule);
                times.push(t);
                capped |= !complete;
            }
            (n, median(times), capped)
        })
        .collect()
}

fn time_table(id: &str, family: Family, slaves: usize) -> Table {
    let mut t = Table::new(
        id,
        &format!(
            "median computing time (virtual s), {} processors, {}",
            slaves,
            family.label()
        ),
        &["species", "time_s", "capped"],
    );
    for (n, time, capped) in time_sweep(family, slaves, ThreeThree::Off) {
        t.push(vec![
            n.to_string(),
            fmt_secs(time),
            if capped { "yes".into() } else { "no".into() },
        ]);
    }
    t
}

fn speedup_table(id: &str, family: Family) -> Table {
    let one = time_sweep(family, 1, ThreeThree::Off);
    let sixteen = time_sweep(family, 16, ThreeThree::Off);
    let mut t = Table::new(
        id,
        &format!("speedup, 16 processors vs single, {}", family.label()),
        &["species", "single_s", "sixteen_s", "speedup"],
    );
    for ((n, t1, _), (_, t16, _)) in one.into_iter().zip(sixteen) {
        t.push(vec![
            n.to_string(),
            fmt_secs(t1),
            fmt_secs(t16),
            format!("{:.2}", t1 / t16),
        ]);
    }
    t
}

fn three_three_table(id: &str, family: Family) -> Table {
    let without = time_sweep(family, 16, ThreeThree::Off);
    let with = time_sweep(family, 16, ThreeThree::InitialOnly);
    let mut t = Table::new(
        id,
        &format!(
            "median computing time (virtual s), 16 processors, {} — with vs without 3-3",
            family.label()
        ),
        &["species", "without_33", "with_33", "saved_%"],
    );
    for ((n, toff, _), (_, ton, _)) in without.into_iter().zip(with) {
        t.push(vec![
            n.to_string(),
            fmt_secs(toff),
            fmt_secs(ton),
            format!("{:.2}", 100.0 * (1.0 - ton / toff)),
        ]);
    }
    t
}

/// Companion Fig. 1 — computing time, 16 processors, HMDNA.
pub fn pfig1() -> Table {
    time_table("pfig1", Family::Hmdna, 16)
}

/// Companion Fig. 2 — computing time, single processor, HMDNA.
pub fn pfig2() -> Table {
    time_table("pfig2", Family::Hmdna, 1)
}

/// Companion Fig. 3 — speedup, 16 vs 1 processors, HMDNA (the paper
/// reports super-linear ratios).
pub fn pfig3() -> Table {
    speedup_table("pfig3", Family::Hmdna)
}

/// Companion Fig. 4 — 16-processor time with vs without the 3-3
/// relationship, HMDNA.
pub fn pfig4() -> Table {
    three_three_table("pfig4", Family::Hmdna)
}

/// Companion Fig. 5 — computing time, 16 processors, random data.
pub fn pfig5() -> Table {
    time_table("pfig5", Family::Random, 16)
}

/// Companion Fig. 6 — speedup, 16 vs 1 processors, random data.
pub fn pfig6() -> Table {
    speedup_table("pfig6", Family::Random)
}

/// Companion Fig. 7 — computing time, single processor, random data.
pub fn pfig7() -> Table {
    time_table("pfig7", Family::Random, 1)
}

/// Companion Fig. 8 — 16-processor time with vs without the 3-3
/// relationship, random data.
pub fn pfig8() -> Table {
    three_three_table("pfig8", Family::Random)
}
