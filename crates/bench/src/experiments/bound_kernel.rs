//! `exp_bound_kernel` — the lane-oriented bound path against the scalar
//! packed-triangle reference.
//!
//! The bound arithmetic (masked row maxima during insertion, column-min
//! prefixes, 3-3 close-pair codes) now runs through
//! `mutree_bnb::bound`'s fixed-lane kernels over a blocked, cache-line
//! aligned `SolverMatrix` copy of the relabeled matrix. This experiment
//! prices that against the historical scalar path on the same 400-solve
//! clustered batch as `exp_frontier`/`exp_leafwords`, once per
//! monomorphized leaf width K = 1, 2, 4 (widths forced wide where the
//! matrices would dispatch narrower, so the width cost and the kernel
//! win are measured on the same instances).
//!
//! Throughput is nodes per second over branched nodes — and because the
//! two kernels run bit-identical searches (asserted per instance via
//! `same_optimum`/`same_branched`), the node counts are common to both
//! columns and the throughput ratio *is* the time ratio. The closing
//! `k2/k1` rows report the price of doubling the leafset width under
//! each kernel: the lane path reads rows at the mask-word stride, so
//! widening the bitset should cost visibly less than it does on the
//! scalar path.

use std::time::Instant;

use mutree_bnb::{solve_sequential, BoundKernel, SearchMode, SearchOptions};
use mutree_core::{MutProblem, ThreeThree};

use crate::data;
use crate::report::{fmt_secs, Table};

/// Instances per batch — identical mix to `exp_frontier` (20 sixteen-taxon
/// + 380 twelve-taxon), so the experiments watch the same hot path.
const BATCH: usize = 400;

/// Interleaved repetitions; each kernel's cell is the best of its reps,
/// and the kernels alternate within a rep so slow host phases hit both
/// equally.
const REPS: usize = 4;

/// Per-width measurement: best-of-REPS batch seconds per kernel, the
/// common branched-node total, and the agreement verdicts.
struct WidthRun {
    scalar_s: f64,
    lanes_s: f64,
    nodes: u64,
    same_optimum: bool,
    same_branched: bool,
}

/// Runs the batch at one monomorphized width, both kernels interleaved.
fn bench_width<const K: usize>(matrices: &[mutree_distmat::DistanceMatrix]) -> WidthRun {
    let opts = SearchOptions::new(SearchMode::BestOne);
    let scalar: Vec<MutProblem<K>> = matrices
        .iter()
        .map(|pm| MutProblem::<K>::with_kernel(pm, ThreeThree::Off, true, BoundKernel::Scalar))
        .collect();
    let lanes: Vec<MutProblem<K>> = matrices
        .iter()
        .map(|pm| MutProblem::<K>::with_kernel(pm, ThreeThree::Off, true, BoundKernel::Lanes))
        .collect();

    let (mut scalar_s, mut lanes_s) = (f64::INFINITY, f64::INFINITY);
    let mut scalar_out: Vec<(Option<f64>, u64)> = Vec::new();
    let mut lanes_out: Vec<(Option<f64>, u64)> = Vec::new();
    for _ in 0..REPS {
        let t0 = Instant::now();
        scalar_out = scalar
            .iter()
            .map(|p| {
                let out = solve_sequential(p, &opts);
                (out.best_value, out.stats.branched)
            })
            .collect();
        scalar_s = scalar_s.min(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        lanes_out = lanes
            .iter()
            .map(|p| {
                let out = solve_sequential(p, &opts);
                (out.best_value, out.stats.branched)
            })
            .collect();
        lanes_s = lanes_s.min(t0.elapsed().as_secs_f64());
    }

    let same_optimum = scalar_out
        .iter()
        .zip(&lanes_out)
        .all(|((a, _), (b, _))| match (a, b) {
            (Some(x), Some(y)) => x.to_bits() == y.to_bits(),
            _ => false,
        });
    let same_branched = scalar_out
        .iter()
        .zip(&lanes_out)
        .all(|((_, a), (_, b))| a == b);
    WidthRun {
        scalar_s,
        lanes_s,
        nodes: lanes_out.iter().map(|(_, b)| b).sum(),
        same_optimum,
        same_branched,
    }
}

/// `exp_bound_kernel` — scalar vs lane bound arithmetic at K = 1, 2, 4 on
/// the 400-solve clustered batch (sequential driver, interleaved best of
/// 4), plus the leaf-width overhead under each kernel.
pub fn exp_bound_kernel() -> Table {
    let mut t = Table::new(
        "exp_bound_kernel",
        "bound kernel: scalar packed-triangle vs blocked lane path at K=1/2/4 on the 400-solve clustered batch (sequential, interleaved best of 4)",
        &[
            "k",
            "scalar",
            "lanes",
            "speedup",
            "scalar_knodes_s",
            "lanes_knodes_s",
            "same_optimum",
            "same_branched",
        ],
    );

    // The exp_frontier workload, maxmin-relabeled (the production bound
    // configuration), shared across every width and kernel.
    let matrices: Vec<_> = (0..20)
        .map(|i| data::clustered_matrix(4, 4, 0x5eed + i as u64))
        .chain((0..380).map(|i| data::clustered_matrix(4, 3, 0xfade + i as u64)))
        .map(|m| m.maxmin_permutation().apply(&m))
        .collect();
    assert_eq!(matrices.len(), BATCH);

    let runs = [
        (1usize, bench_width::<1>(&matrices)),
        (2, bench_width::<2>(&matrices)),
        (4, bench_width::<4>(&matrices)),
    ];
    for (k, run) in &runs {
        t.push(vec![
            k.to_string(),
            fmt_secs(run.scalar_s),
            fmt_secs(run.lanes_s),
            format!("{:.3}", run.scalar_s / run.lanes_s.max(1e-12)),
            format!("{:.1}", run.nodes as f64 / run.scalar_s.max(1e-12) / 1e3),
            format!("{:.1}", run.nodes as f64 / run.lanes_s.max(1e-12) / 1e3),
            run.same_optimum.to_string(),
            run.same_branched.to_string(),
        ]);
    }

    // The width-overhead rows: forced K=2 over native K=1, per kernel.
    // The lane path's stride-shared layout is what this refactor buys;
    // the scalar column is the historical 9–12% band for reference.
    let (k1, k2) = (&runs[0].1, &runs[1].1);
    t.push(vec![
        "k2/k1".into(),
        format!("{:.3}", k2.scalar_s / k1.scalar_s.max(1e-12)),
        format!("{:.3}", k2.lanes_s / k1.lanes_s.max(1e-12)),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    t
}
