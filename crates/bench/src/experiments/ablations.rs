//! Ablation studies for the design choices DESIGN.md calls out.

use std::time::Instant;

use mutree_clustersim::ClusterSpec;
use mutree_core::{
    CompactPipeline, Executor, Linkage, MutSolver, PruneStrategy, SearchBackend, Strategy,
    ThreeThree,
};

use crate::data;
use crate::report::{fmt_secs, Table};

const BUDGET: u64 = 400_000;

/// `exp_superlinear` — per-instance 16-vs-1 simulated speedup with and
/// without the UPGMM bound. The paper's super-linear ratios come from
/// bound sharing shrinking the explored set; that needs slack in the
/// initial bound, so the effect is strongest with UPGMM disabled (and
/// still appears with it on some instances).
pub fn exp_superlinear() -> Table {
    let mut t = Table::new(
        "exp_superlinear",
        "per-instance 16-vs-1 simulated speedup, with and without the UPGMM bound (random, 20 species)",
        &[
            "seed",
            "upgmm_speedup",
            "noupgmm_speedup",
            "noupgmm_branched_1p",
            "noupgmm_branched_16p",
        ],
    );
    for seed in 0..8u64 {
        let m = data::random_species_matrix(20, seed);
        let run = |upgmm: bool, slaves: usize| {
            let mut solver = MutSolver::new().backend(SearchBackend::SimulatedCluster {
                spec: ClusterSpec::with_slaves(slaves),
            });
            if !upgmm {
                solver = solver.without_upgmm();
            }
            solver.max_branches(BUDGET).solve(&m).expect("solve")
        };
        let speedup = |upgmm: bool| {
            let s1 = run(upgmm, 1);
            let s16 = run(upgmm, 16);
            (
                s1.sim.as_ref().expect("sim report").makespan
                    / s16.sim.as_ref().expect("sim report").makespan,
                s1.stats.branched,
                s16.stats.branched,
            )
        };
        let (with, _, _) = speedup(true);
        let (without, b1, b16) = speedup(false);
        t.push(vec![
            seed.to_string(),
            format!("{with:.2}"),
            format!("{without:.2}"),
            b1.to_string(),
            b16.to_string(),
        ]);
    }
    t
}

/// `exp_baselines` — positions the exact and compact-set constructions
/// against the classical distance methods the papers cite: UPGMA
/// (Sneath–Sokal), UPGMM (the feasible variant), and neighbor joining
/// (Saitou–Nei). Reports total tree length, mean relative distortion of
/// tree distances vs the matrix, and MUT-feasibility.
pub fn exp_baselines() -> Table {
    use mutree_tree::{cluster, nj, Linkage, UltrametricTree};

    let mut t = Table::new(
        "exp_baselines",
        "reconstruction methods on one HMDNA (n=24) and one random (n=16) matrix",
        &[
            "family",
            "method",
            "tree_length",
            "mean_distortion",
            "mut_feasible",
        ],
    );
    let distortion_ut = |tree: &UltrametricTree, m: &mutree_distmat::DistanceMatrix| {
        let mut total = 0.0;
        let mut count = 0usize;
        for (i, j, d) in m.pairs() {
            if d > 0.0 {
                let dt = tree.leaf_distance(i, j).expect("leaf");
                total += (dt - d).abs() / d;
                count += 1;
            }
        }
        total / count.max(1) as f64
    };
    for (family, m) in [
        ("HMDNA", data::hmdna_matrix(24, 0)),
        ("random", data::random_species_matrix(16, 0)),
    ] {
        let push_ut = |name: &str, tree: &UltrametricTree, t: &mut Table| {
            t.push(vec![
                family.into(),
                name.into(),
                format!("{:.1}", tree.weight()),
                format!("{:.4}", distortion_ut(tree, &m)),
                tree.is_feasible_for(&m, 1e-9).to_string(),
            ]);
        };
        let upgma = cluster(&m, Linkage::Average);
        push_ut("UPGMA", &upgma, &mut t);
        let upgmm = cluster(&m, Linkage::Maximum);
        push_ut("UPGMM", &upgmm, &mut t);
        let exact = MutSolver::new()
            .max_branches(BUDGET)
            .solve(&m)
            .expect("solve");
        push_ut("exact MUT", &exact.tree, &mut t);
        let pipe = CompactPipeline::new()
            .threshold(10)
            .solve(&m)
            .expect("pipeline");
        push_ut("compact pipeline", &pipe.tree, &mut t);
        let njt = nj::neighbor_joining(&m);
        t.push(vec![
            family.into(),
            "neighbor joining".into(),
            format!("{:.1}", njt.total_length()),
            format!("{:.4}", njt.mean_distortion(&m)),
            "n/a (unrooted)".into(),
        ]);
    }
    t
}

/// `exp_grid` — the project report's third evaluation (NCS 2005 /
/// 應用網格 paper, Table 6): the same 20-species data sets solved on the
/// 16-node PC cluster, on a 16-node *grid* (slower CPUs, WAN links), and
/// on a 24-node grid. The report's finding: at equal node counts the grid
/// is slightly slower than the cluster, but a 24-node grid beats the
/// 16-node cluster.
pub fn exp_grid() -> Table {
    let mut t = Table::new(
        "exp_grid",
        "virtual computing time (s): 16-node cluster vs 16- and 24-node grid (random, 20 species)",
        &["data_set", "cluster16", "grid16", "grid24"],
    );
    for seed in 0..8u64 {
        let m = data::random_species_matrix(20, seed);
        let run = |spec: ClusterSpec| {
            MutSolver::new()
                .backend(SearchBackend::SimulatedCluster { spec })
                .max_branches(BUDGET)
                .solve(&m)
                .expect("solve")
                .sim
                .expect("sim report")
                .makespan
        };
        t.push(vec![
            (seed + 1).to_string(),
            fmt_secs(run(ClusterSpec::paper_cluster())),
            fmt_secs(run(ClusterSpec::paper_grid(16))),
            fmt_secs(run(ClusterSpec::paper_grid(24))),
        ]);
    }
    t
}

/// `abl_linkage` — the paper builds its condensed matrices under
/// *maximum* linkage and leaves *minimum*/*average* unstudied. This
/// ablation compares tree cost across all three (after the final height
/// refit all are feasible, so cost is comparable).
pub fn abl_linkage() -> Table {
    let mut t = Table::new(
        "abl_linkage",
        "pipeline tree cost by condensed-matrix linkage (HMDNA and random)",
        &["family", "species", "maximum", "minimum", "average"],
    );
    let cases: Vec<(&str, mutree_distmat::DistanceMatrix)> = vec![
        ("HMDNA", data::hmdna_matrix(26, 0)),
        ("HMDNA", data::hmdna_matrix(30, 0)),
        ("random", data::random_species_matrix(20, 0)),
        ("random", data::random_species_matrix(24, 0)),
    ];
    for (family, m) in cases {
        let cost = |linkage| {
            CompactPipeline::new()
                .threshold(10)
                .linkage(linkage)
                .solver(MutSolver::new().max_branches(BUDGET))
                .solve(&m)
                .expect("pipeline solve")
                .weight
        };
        t.push(vec![
            family.into(),
            m.len().to_string(),
            format!("{:.1}", cost(Linkage::Maximum)),
            format!("{:.1}", cost(Linkage::Minimum)),
            format!("{:.1}", cost(Linkage::Average)),
        ]);
    }
    t
}

/// `abl_threshold` — the group-size threshold trades solve time against
/// tree cost: larger groups mean more exact work but fewer lossy merges.
pub fn abl_threshold() -> Table {
    let mut t = Table::new(
        "abl_threshold",
        "pipeline time/cost vs compact-set group threshold (random, 24 species)",
        &["threshold", "time_s", "cost", "groups"],
    );
    let m = data::random_species_matrix(24, 1);
    for threshold in [4usize, 6, 8, 10, 12, 16] {
        let pipeline = CompactPipeline::new()
            .threshold(threshold)
            .solver(MutSolver::new().max_branches(BUDGET));
        let start = Instant::now();
        let sol = pipeline.solve(&m).expect("pipeline solve");
        t.push(vec![
            threshold.to_string(),
            fmt_secs(start.elapsed().as_secs_f64()),
            format!("{:.1}", sol.weight),
            sol.groups.len().to_string(),
        ]);
    }
    t
}

/// `abl_bound` — Algorithm BBU's two bound ingredients: the maxmin
/// relabeling (tightens the suffix lower bound) and the UPGMM initial
/// incumbent (tightens the upper bound before the search starts) —
/// plus the prune-stage strategy, ablated per node size. The first four
/// columns keep the historical random-matrix, `ThreeThree::Off`
/// setting. The prune columns run the full 3-3 rule — the
/// configuration where the triple-domain masks are live — on a
/// *clustered* matrix of the same species count: on uniform random
/// data the 3-3 filter alone collapses these searches to a couple of
/// branched nodes, leaving the strategies nothing to separate, while
/// the clustered family (the `exp_propagate` workload) keeps the
/// search large enough for the arm-wipeout prunes to register. A
/// single instance is still too lumpy — most contribute no wipeout —
/// so each prune cell sums branch counts over a 40-seed batch per node
/// size. Measured in branch operations, the machine-independent cost;
/// all strategies find bit-identical optima (see
/// `tests/prune_differential.rs`), so branched nodes is the whole
/// story (the wall-clock side lives in `exp_propagate`).
pub fn abl_bound() -> Table {
    let mut t = Table::new(
        "abl_bound",
        "branch operations by bound configuration (random) and prune strategy (clustered, full 3-3)",
        &[
            "species",
            "full",
            "no_maxmin",
            "no_upgmm",
            "neither",
            "prune_weight",
            "prune_propagate",
            "prune_hybrid",
        ],
    );
    for (n, clusters, size) in [(9usize, 3usize, 3usize), (12, 4, 3), (16, 4, 4)] {
        let m = data::random_species_matrix(n, 2);
        let branched = |m: &_, solver: MutSolver| {
            solver
                .max_branches(BUDGET)
                .solve(m)
                .expect("solve")
                .stats
                .branched
        };
        let batch: Vec<_> = (0..40)
            .map(|i| data::clustered_matrix(clusters, size, 0xab1 + i as u64))
            .collect();
        let pruned = |p| {
            batch
                .iter()
                .map(|cm| branched(cm, MutSolver::new().three_three(ThreeThree::Full).prune(p)))
                .sum::<u64>()
        };
        t.push(vec![
            n.to_string(),
            branched(&m, MutSolver::new()).to_string(),
            branched(&m, MutSolver::new().without_maxmin()).to_string(),
            branched(&m, MutSolver::new().without_upgmm()).to_string(),
            branched(&m, MutSolver::new().without_maxmin().without_upgmm()).to_string(),
            pruned(PruneStrategy::WeightOnly).to_string(),
            pruned(PruneStrategy::Propagate).to_string(),
            pruned(PruneStrategy::Hybrid).to_string(),
        ]);
    }
    t
}

/// `abl_strategy` — depth-first (the papers' strategy) vs best-first
/// node selection in the sequential driver: best-first provably branches
/// the fewest nodes in best-one mode, but holds the whole search frontier
/// in memory (`peak_pool`).
pub fn abl_strategy() -> Table {
    let mut t = Table::new(
        "abl_strategy",
        "DFS vs best-first: branch operations and peak pool size (random data)",
        &[
            "species",
            "dfs_branched",
            "bfs_branched",
            "dfs_peak_pool",
            "bfs_peak_pool",
        ],
    );
    for n in [10usize, 12, 14, 16] {
        let m = data::random_species_matrix(n, 4);
        let run = |strategy| {
            let sol = MutSolver::new()
                .strategy(strategy)
                .max_branches(BUDGET)
                .solve(&m)
                .expect("solve");
            (sol.stats.branched, sol.stats.peak_pool)
        };
        let (db, dp) = run(Strategy::DepthFirst);
        let (bb, bp) = run(Strategy::BestFirst);
        t.push(vec![
            n.to_string(),
            db.to_string(),
            bb.to_string(),
            dp.to_string(),
            bp.to_string(),
        ]);
    }
    t
}

/// `abl_33` — the 3-3 relationship at its three strengths: off, the
/// paper's initial-step use, and the proposed full-insertion extension.
/// Reports branch operations and the optimum (to confirm the heuristic
/// preserved it).
pub fn abl_33() -> Table {
    let mut t = Table::new(
        "abl_33",
        "3-3 rule strength: branch operations and optimum weight (random data)",
        &[
            "species",
            "off_branched",
            "initial_branched",
            "full_branched",
            "off_w",
            "initial_w",
            "full_w",
        ],
    );
    for n in [10usize, 12, 14] {
        let m = data::random_species_matrix(n, 3);
        let run = |rule| {
            let sol = MutSolver::new()
                .three_three(rule)
                .max_branches(BUDGET)
                .solve(&m)
                .expect("solve");
            (sol.stats.branched, sol.weight)
        };
        let (b_off, w_off) = run(ThreeThree::Off);
        let (b_ini, w_ini) = run(ThreeThree::InitialOnly);
        let (b_ful, w_ful) = run(ThreeThree::Full);
        t.push(vec![
            n.to_string(),
            b_off.to_string(),
            b_ini.to_string(),
            b_ful.to_string(),
            format!("{w_off:.1}"),
            format!("{w_ini:.1}"),
            format!("{w_ful:.1}"),
        ]);
    }
    t
}

/// `exp_taskgraph` — the compact-set pipeline run as an inline sequential
/// group loop vs the same task DAG scheduled on a shared 4-worker
/// [`Executor`], on block-clustered instances whose compact sets form 8+
/// groups. Both runs solve identical stage DAGs and must report the same
/// tree weight; the wall-clock ratio depends on the host's core count
/// (see EXPERIMENTS.md for the single-core caveat).
pub fn exp_taskgraph() -> Table {
    let mut t = Table::new(
        "exp_taskgraph",
        "task-graph pipeline: inline group loop vs shared 4-worker executor (clustered data)",
        &[
            "clusters",
            "taxa",
            "groups",
            "inline",
            "dag4",
            "ratio",
            "weight_match",
        ],
    );
    for clusters in [8usize, 10, 12] {
        let size = 7;
        let m = data::clustered_matrix(clusters, size, 0xda6 + clusters as u64);

        let t0 = Instant::now();
        let inline = CompactPipeline::new()
            .threshold(size + 1)
            .solve(&m)
            .expect("inline pipeline");
        let inline_s = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let dag = CompactPipeline::new()
            .threshold(size + 1)
            .executor(Executor::new(4))
            .solve(&m)
            .expect("pooled pipeline");
        let dag_s = t0.elapsed().as_secs_f64();

        assert!(
            inline.groups.len() >= 8,
            "workload must decompose into 8+ groups, got {}",
            inline.groups.len()
        );
        t.push(vec![
            clusters.to_string(),
            m.len().to_string(),
            inline.groups.len().to_string(),
            fmt_secs(inline_s),
            fmt_secs(dag_s),
            format!("{:.2}", inline_s / dag_s.max(1e-12)),
            ((inline.weight - dag.weight).abs() < 1e-9).to_string(),
        ]);
    }
    t
}
