//! Implementations of every reproduced figure and ablation.
//!
//! * [`pact`] — the PaCT 2005 evaluation (Figs. 8–13): compact sets vs
//!   plain parallel branch-and-bound, on random and HMDNA-like data.
//! * [`hpcasia`] — the companion parallel-B&B evaluation (Figs. 1–8):
//!   simulated 16-node cluster times, single-node times, speedups and the
//!   3-3 relationship effect.
//! * [`ablations`] — design-choice studies: condensed-matrix linkage,
//!   group-size threshold, bound ingredients (maxmin, UPGMM), and the
//!   3-3 rule's strength.
//! * [`frontier`] — the sharded work-stealing frontier against the
//!   retired global-mutex pool, at 1/2/4/8 worker threads.
//! * [`leafwords`] — the const-generic leaf-bitset widths: K=1 vs K=2 on
//!   the frontier batch (hot-path regression watch), plus the 80-taxon
//!   wide solve the width dispatcher unlocked.
//! * [`bound_kernel`] — the lane-oriented bound path over the blocked
//!   solver matrix against the scalar packed-triangle reference, at
//!   every monomorphized leaf width.
//! * [`cache`] — the content-addressed group-solve cache: the frontier
//!   batch solved cold then replayed warm through cache-enabled solve
//!   plans (hit rate, replay speedup, bit-identity).
//! * [`propagate`] — the constraint-propagation prune stage (height
//!   floors + triple-domain arm wipeouts) against the weight-only
//!   baseline on the frontier batch, at 1/4/8 threads.
//! * [`serve`] — the solve daemon replaying the frontier batch over a
//!   real TCP socket at increasing client concurrency: sustained req/s,
//!   p50/p99 latency, cache hit rate, and shed count under overload.

pub mod ablations;
pub mod bound_kernel;
pub mod cache;
pub mod frontier;
pub mod hpcasia;
pub mod leafwords;
pub mod pact;
pub mod propagate;
pub mod serve;
