//! `exp_cache` — the content-addressed group-solve cache on a replayed
//! batch.
//!
//! The engine spine's [`GroupCache`](mutree_core::GroupCache) remembers
//! finished solves keyed by the canonical (maxmin-permuted,
//! tolerance-quantized) matrix bytes plus a solver signature. Real
//! batches repeat themselves — bootstrap replicates, parameter sweeps,
//! incremental re-runs — so this experiment prices exactly that: the
//! 400-solve clustered batch of `exp_frontier`/`exp_bound_kernel` is run
//! twice through cache-enabled [`mutree_core::solve_plan`] requests. The **cold** pass solves and files every instance; the
//! **warm** replay must answer every instance from the cache — hit rate
//! 1.0 — with optima bit-identical to the cold pass (weight bits and
//! topology both), at a wall-clock speedup that is the whole point of
//! the cache.

use std::time::Instant;

use mutree_core::{solve_plan, EnvOverrides, SolvePlan, SolveReport, SolveRequest};
use mutree_tree::compare::robinson_foulds;

use crate::data;
use crate::report::{fmt_secs, Table};

/// Instances per batch — identical mix to `exp_frontier` (20 sixteen-taxon
/// + 380 twelve-taxon), so the experiments watch the same hot path.
const BATCH: usize = 400;

/// Runs the whole batch once through the spine, returning the reports
/// and the wall-clock seconds.
fn run_batch(plans: &[SolvePlan]) -> (Vec<SolveReport>, f64) {
    let t0 = Instant::now();
    let reports: Vec<SolveReport> = plans
        .iter()
        .map(|p| solve_plan(p).expect("batch solve"))
        .collect();
    (reports, t0.elapsed().as_secs_f64())
}

/// Sums one cache counter over a pass.
fn total(reports: &[SolveReport], f: impl Fn(&SolveReport) -> u64) -> u64 {
    reports.iter().map(f).sum()
}

/// `exp_cache` — cold-then-warm replay of the 400-solve clustered batch
/// through cache-enabled solve plans: hit rate, replay speedup, and
/// bit-identity of the replayed optima.
pub fn exp_cache() -> Table {
    let mut t = Table::new(
        "exp_cache",
        "content-addressed group-solve cache: the 400-solve clustered batch solved cold then replayed warm through cache-enabled solve plans",
        &[
            "pass",
            "seconds",
            "solves",
            "hits",
            "misses",
            "warm_seeds",
            "hit_rate",
            "speedup",
            "bit_identical",
        ],
    );

    let matrices: Vec<_> = (0..20)
        .map(|i| data::clustered_matrix(4, 4, 0x5eed + i as u64))
        .chain((0..380).map(|i| data::clustered_matrix(4, 3, 0xfade + i as u64)))
        .collect();
    assert_eq!(matrices.len(), BATCH);
    // One resolved plan per instance; the environment is pinned so the
    // bench measures the cache, not the ambient configuration.
    let plans: Vec<SolvePlan> = matrices
        .iter()
        .map(|m| {
            SolvePlan::resolve(
                SolveRequest::exact(m.clone()).cache(true),
                &EnvOverrides::none(),
            )
        })
        .collect();

    let (cold, cold_s) = run_batch(&plans);
    let (warm, warm_s) = run_batch(&plans);

    let bit_identical = cold.iter().zip(&warm).all(|(c, w)| {
        c.weight.to_bits() == w.weight.to_bits()
            && robinson_foulds(&c.tree, &w.tree).expect("same taxa") == 0
    });
    let hit_rate = |reports: &[SolveReport]| {
        total(reports, |r| r.stats.cache_hits) as f64 / reports.len() as f64
    };
    let mut row = |pass: &str, reports: &[SolveReport], secs: f64, speedup: f64, bits: String| {
        t.push(vec![
            pass.into(),
            fmt_secs(secs),
            reports.len().to_string(),
            total(reports, |r| r.stats.cache_hits).to_string(),
            total(reports, |r| r.stats.cache_misses).to_string(),
            total(reports, |r| r.stats.cache_warm_seeds).to_string(),
            format!("{:.3}", hit_rate(reports)),
            format!("{speedup:.1}"),
            bits,
        ]);
    };
    row("cold", &cold, cold_s, 1.0, "-".into());
    row(
        "warm",
        &warm,
        warm_s,
        cold_s / warm_s.max(1e-12),
        bit_identical.to_string(),
    );
    t
}
