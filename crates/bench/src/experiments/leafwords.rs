//! `exp_leafwords` — the cost of the const-generic leaf-bitset widths.
//!
//! The solver monomorphizes the exact search for K = 1, 2, 4 leaf words
//! and dispatches on taxa count, promising that the K = 1 hot path
//! compiles to exactly the historical single-`u64` code. This experiment
//! watches that promise: the same 400-solve clustered batch as
//! `exp_frontier` runs once per width on the production pooled driver at
//! 1/2/4/8 workers, and the `ratio` column (K=2 over K=1) is the price of
//! doubling every leafset word — expected a few percent, paid only by
//! matrices that actually need the width.
//!
//! Correctness rides along: both widths must report the same optimum on
//! every instance, and a sequential pre-pass asserts branch-for-branch
//! identical search trees (`same_branched`). A final `wide` row solves an
//! 80-taxon instance — impossible before the width dispatcher — at its
//! native K = 2.

use std::sync::Arc;
use std::time::Instant;

use mutree_bnb::{solve_parallel_pooled, solve_sequential, SearchMode, SearchOptions};
use mutree_core::{Executor, MutProblem, ThreeThree};

use crate::data;
use crate::report::{fmt_secs, Table};

/// Instances per batch — identical mix to `exp_frontier` (20 sixteen-taxon
/// + 380 twelve-taxon), so the two experiments watch the same hot path.
const BATCH: usize = 400;

/// Interleaved repetitions per thread count; each width's cell is the
/// best of its reps, and the widths alternate within a rep so slow host
/// phases hit both equally.
const REPS: usize = 4;

/// One timed batch run, folded into a running best-of; returns the
/// per-instance optima for the agreement check.
fn timed_batch<P, F: FnMut(&Arc<P>) -> Option<f64>>(
    best: &mut f64,
    problems: &[Arc<P>],
    mut solve: F,
) -> Vec<Option<f64>> {
    let t0 = Instant::now();
    let optima: Vec<Option<f64>> = problems.iter().map(&mut solve).collect();
    *best = best.min(t0.elapsed().as_secs_f64());
    optima
}

/// `exp_leafwords` — K=1 vs K=2 batch wall-clock at 1/2/4/8 workers, plus
/// the 80-taxon wide solve the dispatcher unlocked.
pub fn exp_leafwords() -> Table {
    let mut t = Table::new(
        "exp_leafwords",
        "leaf-bitset width: K=1 vs forced K=2 on the 400-solve clustered batch (pooled driver, interleaved best of 4)",
        &[
            "threads",
            "k1",
            "k2",
            "ratio",
            "same_optimum",
            "same_branched",
        ],
    );

    // The exp_frontier workload, constructed once per width from the same
    // matrices (maxmin relabeling included, the production bound
    // configuration).
    let matrices: Vec<_> = (0..20)
        .map(|i| data::clustered_matrix(4, 4, 0x5eed + i as u64))
        .chain((0..380).map(|i| data::clustered_matrix(4, 3, 0xfade + i as u64)))
        .map(|m| m.maxmin_permutation().apply(&m))
        .collect();
    assert_eq!(matrices.len(), BATCH);
    let k1: Vec<Arc<MutProblem<1>>> = matrices
        .iter()
        .map(|pm| Arc::new(MutProblem::<1>::new(pm, ThreeThree::Off, true)))
        .collect();
    let k2: Vec<Arc<MutProblem<2>>> = matrices
        .iter()
        .map(|pm| Arc::new(MutProblem::<2>::new(pm, ThreeThree::Off, true)))
        .collect();
    let opts = SearchOptions::new(SearchMode::BestOne);

    // Sequential pre-pass: the widths must branch identically, not just
    // agree on the optimum — the search trees are the same trees.
    let same_branched = (0..BATCH).all(|i| {
        let a = solve_sequential(&*k1[i], &opts);
        let b = solve_sequential(&*k2[i], &opts);
        a.stats.branched == b.stats.branched
            && match (a.best_value, b.best_value) {
                (Some(x), Some(y)) => (x - y).abs() < 1e-9,
                _ => false,
            }
    });

    for threads in [1usize, 2, 4, 8] {
        let exec = Executor::new(threads);
        let (mut k1_s, mut k2_s) = (f64::INFINITY, f64::INFINITY);
        let mut k1_opt = Vec::new();
        let mut k2_opt = Vec::new();
        for _ in 0..REPS {
            k1_opt = timed_batch(&mut k1_s, &k1, |p| {
                solve_parallel_pooled(Arc::clone(p), &opts, threads, &exec, ()).best_value
            });
            k2_opt = timed_batch(&mut k2_s, &k2, |p| {
                solve_parallel_pooled(Arc::clone(p), &opts, threads, &exec, ()).best_value
            });
        }
        let same = k1_opt.len() == BATCH
            && (0..BATCH).all(|i| match (k1_opt[i], k2_opt[i]) {
                (Some(a), Some(b)) => (a - b).abs() < 1e-9,
                _ => false,
            });
        t.push(vec![
            threads.to_string(),
            fmt_secs(k1_s),
            fmt_secs(k2_s),
            format!("{:.3}", k2_s / k1_s.max(1e-12)),
            same.to_string(),
            same_branched.to_string(),
        ]);
    }

    // The payoff row: a single 80-taxon exact solve at its native width —
    // a size the engine rejected outright before the dispatcher.
    let wide = data::wide_exact_matrix(80, 0xd15c);
    let pm = wide.maxmin_permutation().apply(&wide);
    let wp = Arc::new(MutProblem::<2>::new(&pm, ThreeThree::Off, true));
    let mut wide_s = f64::INFINITY;
    let mut complete = false;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let out = solve_sequential(&*wp, &opts);
        wide_s = wide_s.min(t0.elapsed().as_secs_f64());
        complete = out.best_value.is_some() && out.stop.is_complete();
    }
    t.push(vec![
        "wide80".into(),
        "-".into(),
        fmt_secs(wide_s),
        "-".into(),
        complete.to_string(),
        "-".into(),
    ]);
    t
}
