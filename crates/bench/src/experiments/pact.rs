//! PaCT 2005 §4: compact sets vs plain exact construction.
//!
//! The paper's two knobs are the data family (randomly generated matrices
//! vs Human Mitochondrial DNA) and the construction method (with vs
//! without compact sets). "Without" is the parallel branch-and-bound MUT
//! construction run on the whole matrix; "with" is the compact-set
//! pipeline (decompose → solve small matrices → merge). Figures 8/9 plot
//! time and total tree cost over the species count for random data;
//! Figures 10–13 plot cost and time for 15×26 and 10×30 HMDNA data sets.

use std::time::Instant;

use mutree_core::{CompactPipeline, MutSolver};

use crate::data;
use crate::report::{fmt_secs, Table};

/// Safety budget for one exact solve (branch operations); runs that hit
/// it are flagged in the output and their times are lower bounds.
pub const EXACT_BUDGET: u64 = 400_000;

/// Species counts of the random-data sweep (paper Figs. 8–9).
pub const RANDOM_SIZES: &[usize] = &[8, 12, 16, 20, 24, 28];
/// Data sets per size for the random sweep.
pub const RANDOM_TRIALS: u64 = 3;

/// One measured comparison: exact vs pipeline on the same matrix.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Species count.
    pub n: usize,
    /// Data-set seed.
    pub seed: u64,
    /// Wall time of the plain exact construction (seconds).
    pub exact_time: f64,
    /// Wall time of the compact-set pipeline (seconds).
    pub pipe_time: f64,
    /// Total tree cost of the exact construction.
    pub exact_cost: f64,
    /// Total tree cost of the pipeline's tree.
    pub pipe_cost: f64,
    /// Whether the exact run finished within [`EXACT_BUDGET`].
    pub exact_complete: bool,
    /// Proper compact sets found.
    pub compact_sets: usize,
}

/// Runs both constructions on one matrix.
pub fn compare(m: &mutree_distmat::DistanceMatrix, n: usize, seed: u64) -> Comparison {
    let solver = MutSolver::new().max_branches(EXACT_BUDGET);
    let t = Instant::now();
    let exact = solver.solve(m).expect("exact solve");
    let exact_time = t.elapsed().as_secs_f64();

    let pipeline = CompactPipeline::new()
        .threshold(10)
        .solver(MutSolver::new().max_branches(EXACT_BUDGET));
    let t = Instant::now();
    let pipe = pipeline.solve(m).expect("pipeline solve");
    let pipe_time = t.elapsed().as_secs_f64();

    assert!(
        pipe.tree.is_feasible_for(m, 1e-6),
        "pipeline tree must stay feasible"
    );
    Comparison {
        n,
        seed,
        exact_time,
        pipe_time,
        exact_cost: exact.weight,
        pipe_cost: pipe.weight,
        exact_complete: exact.is_complete(),
        compact_sets: pipe.compact_sets,
    }
}

/// The shared random-data sweep behind Figs. 8 and 9.
pub fn random_sweep() -> Vec<Comparison> {
    let mut out = Vec::new();
    for &n in RANDOM_SIZES {
        for seed in 0..RANDOM_TRIALS {
            let m = data::random_species_matrix(n, seed);
            out.push(compare(&m, n, seed));
        }
    }
    out
}

/// The shared HMDNA sweep behind Figs. 10–13: `sets` data sets of `n`
/// species each.
pub fn hmdna_sweep(n: usize, sets: u64) -> Vec<Comparison> {
    (0..sets)
        .map(|seed| {
            let m = data::hmdna_matrix(n, seed);
            compare(&m, n, seed)
        })
        .collect()
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    v.iter().sum::<f64>() / v.len().max(1) as f64
}

/// Fig. 8 — average computing time for the random data set, with vs
/// without compact sets, plus the time saved (the paper reports savings
/// between 77.19 % and 99.7 %).
pub fn fig08() -> Table {
    let runs = random_sweep();
    let mut t = Table::new(
        "fig08",
        "computing time, random data (s): without vs with compact sets",
        &[
            "species",
            "without_cs",
            "with_cs",
            "saved_%",
            "exact_capped",
        ],
    );
    for &n in RANDOM_SIZES {
        let group: Vec<&Comparison> = runs.iter().filter(|c| c.n == n).collect();
        let te = mean(group.iter().map(|c| c.exact_time));
        let tp = mean(group.iter().map(|c| c.pipe_time));
        let capped = group.iter().any(|c| !c.exact_complete);
        t.push(vec![
            n.to_string(),
            fmt_secs(te),
            fmt_secs(tp),
            format!("{:.2}", 100.0 * (1.0 - tp / te)),
            if capped { "yes".into() } else { "no".into() },
        ]);
    }
    t
}

/// Fig. 9 — total tree cost for the random data set under both
/// conditions (the paper reports differences below 5 %).
pub fn fig09() -> Table {
    let runs = random_sweep();
    let mut t = Table::new(
        "fig09",
        "total tree cost, random data: without vs with compact sets",
        &["species", "without_cs", "with_cs", "diff_%"],
    );
    for &n in RANDOM_SIZES {
        let group: Vec<&Comparison> = runs.iter().filter(|c| c.n == n).collect();
        let ce = mean(group.iter().map(|c| c.exact_cost));
        let cp = mean(group.iter().map(|c| c.pipe_cost));
        t.push(vec![
            n.to_string(),
            format!("{ce:.1}"),
            format!("{cp:.1}"),
            format!("{:.2}", 100.0 * (cp - ce) / ce),
        ]);
    }
    t
}

fn hmdna_cost_table(id: &str, n: usize, sets: u64) -> Table {
    let runs = hmdna_sweep(n, sets);
    let mut t = Table::new(
        id,
        &format!("total tree cost, {sets} data sets of {n} HMDNA species"),
        &["data_set", "without_cs", "with_cs", "diff_%"],
    );
    let mut worst: f64 = 0.0;
    for c in &runs {
        let diff = 100.0 * (c.pipe_cost - c.exact_cost) / c.exact_cost;
        worst = worst.max(diff.abs());
        t.push(vec![
            (c.seed + 1).to_string(),
            format!("{:.1}", c.exact_cost),
            format!("{:.1}", c.pipe_cost),
            format!("{diff:.2}"),
        ]);
    }
    t.push(vec![
        "max|diff|".into(),
        String::new(),
        String::new(),
        format!("{worst:.2}"),
    ]);
    t
}

fn hmdna_time_table(id: &str, n: usize, sets: u64) -> Table {
    let runs = hmdna_sweep(n, sets);
    let mut t = Table::new(
        id,
        &format!("computing time (s), {sets} data sets of {n} HMDNA species"),
        &["data_set", "without_cs", "with_cs"],
    );
    for c in &runs {
        t.push(vec![
            (c.seed + 1).to_string(),
            fmt_secs(c.exact_time),
            fmt_secs(c.pipe_time),
        ]);
    }
    t
}

/// Fig. 10 — total tree cost, 15 data sets × 26 HMDNA species (the paper
/// reports a maximum difference of 1.5 %).
pub fn fig10() -> Table {
    hmdna_cost_table("fig10", 26, 15)
}

/// Fig. 11 — computing time for the 26-species HMDNA sets (the paper
/// notes both conditions are fast here, except one hard data set).
pub fn fig11() -> Table {
    hmdna_time_table("fig11", 26, 15)
}

/// Fig. 12 — total tree cost, 10 data sets × 30 DNAs.
pub fn fig12() -> Table {
    hmdna_cost_table("fig12", 30, 10)
}

/// Fig. 13 — computing time, 10 data sets × 30 DNAs.
pub fn fig13() -> Table {
    hmdna_time_table("fig13", 30, 10)
}
