//! `exp_serve` — the daemon under replayed load.
//!
//! The serve crate's promise is that putting the spine behind a socket
//! costs framing and scheduling, not answers: a daemon report is
//! bit-identical to the in-process one, and the process-wide cache makes
//! a replayed batch as cheap over TCP as it is in memory. This
//! experiment prices that promise on the 400-solve clustered batch of
//! `exp_frontier`/`exp_cache`, driven over a real socket by concurrent
//! replay clients:
//!
//! * **cold** — first full pass at concurrency 1 (files every solve
//!   into the shared cache).
//! * **warm cN** — full replays at client concurrency 1, 4 and 8; every
//!   request must hit the cache (hit rate 1.0), so these rows measure
//!   the transport + scheduling floor: sustained requests per second
//!   and p50/p99 latency.
//! * **overload** — a deliberately starved daemon (1 dispatch worker,
//!   queue depth 2, cache off) bursted by 16 clients: admission control
//!   must shed rather than queue without bound, and every shed request
//!   must be answered with a clean `overloaded` error frame.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mutree_core::{SolveReport, SolveRequest};
use mutree_engine::ServeErrorCode;
use mutree_serve::{Client, ClientError, ServeConfig, Server};

use crate::data;
use crate::report::{fmt_secs, Table};

/// Instances per batch — identical mix to `exp_frontier` / `exp_cache`
/// (20 sixteen-taxon + 380 twelve-taxon).
const BATCH: usize = 400;

fn workload() -> Vec<SolveRequest> {
    (0..20)
        .map(|i| data::clustered_matrix(4, 4, 0x5eed + i as u64))
        .chain((0..380).map(|i| data::clustered_matrix(4, 3, 0xfade + i as u64)))
        .map(SolveRequest::exact)
        .collect()
}

struct Pass {
    seconds: f64,
    latencies: Vec<Duration>,
    reports: Vec<SolveReport>,
    shed: u64,
}

/// Replays the whole batch against `addr` from `concurrency` client
/// threads, each owning one connection and pulling the next instance
/// from a shared counter (so the division of labor adapts to per-solve
/// cost, like a real replay driver).
fn replay(addr: std::net::SocketAddr, requests: &[SolveRequest], concurrency: usize) -> Pass {
    let next = Arc::new(AtomicUsize::new(0));
    let t0 = Instant::now();
    let outcomes: Vec<(Vec<Duration>, Vec<SolveReport>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|_| {
                let next = Arc::clone(&next);
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect replay client");
                    let mut latencies = Vec::new();
                    let mut reports = Vec::new();
                    let mut shed = 0u64;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(req) = requests.get(i) else { break };
                        let t = Instant::now();
                        match client.solve(req) {
                            Ok(report) => {
                                latencies.push(t.elapsed());
                                reports.push(report);
                            }
                            Err(ClientError::Server(e)) if e.code == ServeErrorCode::Overloaded => {
                                shed += 1;
                            }
                            Err(e) => panic!("replay request {i} failed: {e}"),
                        }
                    }
                    (latencies, reports, shed)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let seconds = t0.elapsed().as_secs_f64();
    let mut pass = Pass {
        seconds,
        latencies: Vec::new(),
        reports: Vec::new(),
        shed: 0,
    };
    for (lat, rep, shed) in outcomes {
        pass.latencies.extend(lat);
        pass.reports.extend(rep);
        pass.shed += shed;
    }
    pass
}

/// The q-th percentile (0–100) of a latency sample, in milliseconds.
fn percentile_ms(latencies: &mut [Duration], q: usize) -> f64 {
    assert!(!latencies.is_empty());
    latencies.sort_unstable();
    let idx = (latencies.len() * q / 100).min(latencies.len() - 1);
    latencies[idx].as_secs_f64() * 1e3
}

/// `exp_serve` — sustained req/s, p50/p99 latency and cache hit rate of
/// the daemon replaying the 400-solve clustered batch over TCP at
/// increasing client concurrency, plus the shed count of an overloaded
/// daemon.
pub fn exp_serve() -> Table {
    let mut t = Table::new(
        "exp_serve",
        "solve daemon replaying the 400-solve clustered batch over TCP: sustained req/s and tail latency at increasing client concurrency, plus load shedding under deliberate overload",
        &[
            "pass",
            "clients",
            "seconds",
            "served",
            "req_per_s",
            "p50_ms",
            "p99_ms",
            "hits",
            "hit_rate",
            "shed",
        ],
    );
    let requests = workload();
    assert_eq!(requests.len(), BATCH);

    // Main daemon: defaults (cache on for every request), 4 dispatch
    // workers so concurrency-8 clients actually queue a little.
    let config = ServeConfig {
        workers: 4,
        threads: 4,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind daemon");
    let addr = server.local_addr();

    let row = |t: &mut Table, pass: &str, clients: usize, mut p: Pass| {
        let hits: u64 = p.reports.iter().map(|r| r.stats.cache_hits).sum();
        let served = p.reports.len();
        t.push(vec![
            pass.into(),
            clients.to_string(),
            fmt_secs(p.seconds),
            served.to_string(),
            format!("{:.1}", served as f64 / p.seconds.max(1e-12)),
            format!("{:.3}", percentile_ms(&mut p.latencies, 50)),
            format!("{:.3}", percentile_ms(&mut p.latencies, 99)),
            hits.to_string(),
            format!("{:.3}", hits as f64 / served.max(1) as f64),
            p.shed.to_string(),
        ]);
    };

    row(&mut t, "cold", 1, replay(addr, &requests, 1));
    for clients in [1usize, 4, 8] {
        let pass = replay(addr, &requests, clients);
        assert!(
            pass.reports.iter().all(|r| r.stats.cache_hits == 1),
            "warm replay must be answered from the shared cache"
        );
        row(&mut t, &format!("warm c{clients}"), clients, pass);
    }
    Client::connect(addr)
        .expect("connect drain client")
        .drain()
        .expect("drain daemon");
    server.join();

    // Overload leg: one dispatch worker, a two-deep queue and no cache,
    // bursted by 16 clients. Admission control must shed (every shed
    // request gets a clean `overloaded` frame, counted by the client),
    // and everything admitted must still come back correct.
    let overload_config = ServeConfig {
        queue_depth: 2,
        workers: 1,
        threads: 1,
        cache_default: false,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", overload_config).expect("bind overloaded daemon");
    let addr = server.local_addr();
    let pass = replay(addr, &requests, 16);
    assert!(
        pass.shed > 0,
        "a two-deep queue bursted by 16 clients must shed"
    );
    row(&mut t, "overload", 16, pass);
    Client::connect(addr)
        .expect("connect drain client")
        .drain()
        .expect("drain overloaded daemon");
    server.join();
    t
}
