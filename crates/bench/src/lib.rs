//! Experiment harness for the paper's tables and figures.
//!
//! Each `fig*`/`pfig*`/`abl_*` binary regenerates one figure of the PaCT
//! 2005 paper (or its HPC Asia 2005 companion), printing the series the
//! paper plots and writing a CSV under `results/`. The mapping from
//! figures to binaries lives in `DESIGN.md`; measured-vs-paper outcomes
//! are recorded in `EXPERIMENTS.md`.
//!
//! The [`data`] module holds the canonical workload generators (one seed
//! convention shared by every experiment), [`report`] the table/CSV
//! plumbing, and [`experiments`] the experiment implementations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod experiments;
pub mod report;
