//! Table printing and CSV/JSON persistence for experiment results.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// A rectangular experiment result: header plus rows of cells.
#[derive(Debug, Clone)]
pub struct Table {
    /// The experiment id (`fig08`, `pfig3`, …).
    pub id: String,
    /// Human-readable description (what the paper's figure shows).
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// A new, empty table.
    pub fn new(id: &str, title: &str, header: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the cell count does not match the header.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// The table as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// The table as a pretty-printed JSON object.
    pub fn to_json(&self) -> String {
        let esc = |s: &str| {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        };
        let list = |items: &[String], indent: &str| {
            items
                .iter()
                .map(|s| format!("{indent}{}", esc(s)))
                .collect::<Vec<_>>()
                .join(",\n")
        };
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"id\": {},", esc(&self.id));
        let _ = writeln!(out, "  \"title\": {},", esc(&self.title));
        let _ = writeln!(out, "  \"header\": [\n{}\n  ],", list(&self.header, "    "));
        let rows = self
            .rows
            .iter()
            .map(|r| format!("    [\n{}\n    ]", list(r, "      ")))
            .collect::<Vec<_>>()
            .join(",\n");
        if self.rows.is_empty() {
            let _ = writeln!(out, "  \"rows\": []");
        } else {
            let _ = writeln!(out, "  \"rows\": [\n{rows}\n  ]");
        }
        out.push('}');
        out
    }

    /// Prints the table and writes `results/<id>.csv` and
    /// `results/<id>.json` under the workspace root (or `dir` when given).
    pub fn emit(&self, dir: Option<&Path>) -> std::io::Result<()> {
        println!("{}", self.render());
        let dir: PathBuf = dir.map(Path::to_path_buf).unwrap_or_else(results_dir);
        fs::create_dir_all(&dir)?;
        fs::write(dir.join(format!("{}.csv", self.id)), self.to_csv())?;
        fs::write(dir.join(format!("{}.json", self.id)), self.to_json())?;
        println!("(written to {}/{}.csv)\n", dir.display(), self.id);
        Ok(())
    }
}

/// The default `results/` directory: next to the workspace `Cargo.toml`
/// when run via `cargo run`, else the current directory.
pub fn results_dir() -> PathBuf {
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .map(|p| {
            p.parent()
                .and_then(Path::parent)
                .map(Path::to_path_buf)
                .unwrap_or(p)
        })
        .unwrap_or_else(|_| PathBuf::from("."));
    base.join("results")
}

/// Formats a duration in seconds with sensible precision.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}")
    } else if s >= 1e-3 {
        format!("{:.3}", s)
    } else {
        format!("{:.6}", s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_csv() {
        let mut t = Table::new("t1", "demo", &["n", "time"]);
        t.push(vec!["10".into(), "0.5".into()]);
        t.push(vec!["20".into(), "1.5".into()]);
        let r = t.render();
        assert!(r.contains("t1"));
        assert!(r.contains("time"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("n,time"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("t2", "demo", &["a"]);
        t.push(vec!["x,y".into()]);
        assert!(t.to_csv().contains("\"x,y\""));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn push_checks_width() {
        Table::new("t3", "demo", &["a", "b"]).push(vec!["1".into()]);
    }

    #[test]
    fn fmt_secs_scales() {
        assert_eq!(fmt_secs(2.5), "2.50");
        assert_eq!(fmt_secs(0.012), "0.012");
        assert_eq!(fmt_secs(0.000012), "0.000012");
    }
}
