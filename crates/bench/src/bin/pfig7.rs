//! Regenerates HPC Asia 2005 companion Figure 7.
fn main() {
    mutree_bench::experiments::hpcasia::pfig7()
        .emit(None)
        .expect("write results");
}
