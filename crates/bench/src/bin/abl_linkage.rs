//! Ablation study: abl_linkage.
fn main() {
    mutree_bench::experiments::ablations::abl_linkage()
        .emit(None)
        .expect("write results");
}
