//! Ablation study: abl_bound.
fn main() {
    mutree_bench::experiments::ablations::abl_bound()
        .emit(None)
        .expect("write results");
}
