//! Single dispatcher for every individual experiment:
//!
//! ```text
//! cargo run --release -p mutree-bench --bin experiments -- fig08
//! cargo run --release -p mutree-bench --bin experiments -- pfig3 abl_33
//! cargo run --release -p mutree-bench --bin experiments -- --list
//! ```
//!
//! Replaces the former one-binary-per-figure stubs; `all_experiments`
//! still runs the full evaluation in one go.

use std::process::ExitCode;

use mutree_bench::experiments::{
    ablations, bound_kernel, cache, frontier, hpcasia, leafwords, pact, propagate, serve,
};
use mutree_bench::report::{results_dir, Table};

/// Builds the `NAMES` table and the dispatch function in one place, so a
/// new experiment added here is automatically listed and runnable.
macro_rules! experiments {
    ($($name:literal => $path:expr),+ $(,)?) => {
        const NAMES: &[&str] = &[$($name),+];

        fn run(name: &str) -> Option<Table> {
            match name {
                $($name => Some($path()),)+
                _ => None,
            }
        }
    };
}

experiments! {
    "fig08" => pact::fig08,
    "fig09" => pact::fig09,
    "fig10" => pact::fig10,
    "fig11" => pact::fig11,
    "fig12" => pact::fig12,
    "fig13" => pact::fig13,
    "pfig1" => hpcasia::pfig1,
    "pfig2" => hpcasia::pfig2,
    "pfig3" => hpcasia::pfig3,
    "pfig4" => hpcasia::pfig4,
    "pfig5" => hpcasia::pfig5,
    "pfig6" => hpcasia::pfig6,
    "pfig7" => hpcasia::pfig7,
    "pfig8" => hpcasia::pfig8,
    "abl_linkage" => ablations::abl_linkage,
    "abl_threshold" => ablations::abl_threshold,
    "abl_bound" => ablations::abl_bound,
    "abl_33" => ablations::abl_33,
    "abl_strategy" => ablations::abl_strategy,
    "exp_superlinear" => ablations::exp_superlinear,
    "exp_grid" => ablations::exp_grid,
    "exp_baselines" => ablations::exp_baselines,
    "exp_taskgraph" => ablations::exp_taskgraph,
    "exp_frontier" => frontier::exp_frontier,
    "exp_leafwords" => leafwords::exp_leafwords,
    "exp_bound_kernel" => bound_kernel::exp_bound_kernel,
    "exp_cache" => cache::exp_cache,
    "exp_propagate" => propagate::exp_propagate,
    "exp_serve" => serve::exp_serve,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: experiments [--list] <name>...");
        eprintln!("names: {}", NAMES.join(" "));
        return ExitCode::from(2);
    }
    if args.iter().any(|a| a == "--list") {
        // Every experiment writes `results/<name>.csv` and `.json` via
        // `Table::emit`; list the destination next to each name so the
        // output of a run is discoverable without grepping the sources.
        let dir = results_dir();
        let width = NAMES.iter().map(|n| n.len()).max().unwrap_or(0);
        for name in NAMES {
            println!(
                "{name:<width$}  {dir}/{name}.csv  {dir}/{name}.json",
                dir = dir.display()
            );
        }
        return ExitCode::SUCCESS;
    }
    for name in &args {
        let Some(table) = run(name) else {
            eprintln!("unknown experiment {name:?}; try --list");
            return ExitCode::from(2);
        };
        table.emit(None).expect("write results");
    }
    ExitCode::SUCCESS
}
