//! Runs every experiment in sequence (the full evaluation).
use mutree_bench::experiments::{
    ablations, bound_kernel, cache, frontier, hpcasia, leafwords, pact, propagate,
};

fn main() {
    let tables = [
        pact::fig08(),
        pact::fig09(),
        pact::fig10(),
        pact::fig11(),
        pact::fig12(),
        pact::fig13(),
        hpcasia::pfig1(),
        hpcasia::pfig2(),
        hpcasia::pfig3(),
        hpcasia::pfig4(),
        hpcasia::pfig5(),
        hpcasia::pfig6(),
        hpcasia::pfig7(),
        hpcasia::pfig8(),
        ablations::abl_linkage(),
        ablations::abl_threshold(),
        ablations::abl_bound(),
        ablations::abl_33(),
        ablations::abl_strategy(),
        ablations::exp_superlinear(),
        ablations::exp_grid(),
        ablations::exp_baselines(),
        ablations::exp_taskgraph(),
        frontier::exp_frontier(),
        leafwords::exp_leafwords(),
        bound_kernel::exp_bound_kernel(),
        cache::exp_cache(),
        propagate::exp_propagate(),
    ];
    for t in tables {
        t.emit(None).expect("write results");
    }
}
