//! Regenerates HPC Asia 2005 companion Figure 2.
fn main() {
    mutree_bench::experiments::hpcasia::pfig2()
        .emit(None)
        .expect("write results");
}
