//! Classical distance-method baselines vs the exact and compact-set
//! constructions. See `experiments::ablations::exp_baselines`.

fn main() {
    mutree_bench::experiments::ablations::exp_baselines()
        .emit(None)
        .expect("write results");
}
