//! Regenerates PaCT 2005 Figure 12.
fn main() {
    mutree_bench::experiments::pact::fig12()
        .emit(None)
        .expect("write results");
}
