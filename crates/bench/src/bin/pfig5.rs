//! Regenerates HPC Asia 2005 companion Figure 5.
fn main() {
    mutree_bench::experiments::hpcasia::pfig5()
        .emit(None)
        .expect("write results");
}
