//! Regenerates HPC Asia 2005 companion Figure 1.
fn main() {
    mutree_bench::experiments::hpcasia::pfig1()
        .emit(None)
        .expect("write results");
}
