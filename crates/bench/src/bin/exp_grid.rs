//! Cluster-vs-grid study (the report's NCS 2005 evaluation). See
//! `experiments::ablations::exp_grid`.

fn main() {
    mutree_bench::experiments::ablations::exp_grid()
        .emit(None)
        .expect("write results");
}
