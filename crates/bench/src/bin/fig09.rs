//! Regenerates PaCT 2005 Figure 09.
fn main() {
    mutree_bench::experiments::pact::fig09()
        .emit(None)
        .expect("write results");
}
