//! Regenerates PaCT 2005 Figure 08.
fn main() {
    mutree_bench::experiments::pact::fig08()
        .emit(None)
        .expect("write results");
}
