//! Regenerates HPC Asia 2005 companion Figure 4.
fn main() {
    mutree_bench::experiments::hpcasia::pfig4()
        .emit(None)
        .expect("write results");
}
