//! Regenerates PaCT 2005 Figure 11.
fn main() {
    mutree_bench::experiments::pact::fig11()
        .emit(None)
        .expect("write results");
}
