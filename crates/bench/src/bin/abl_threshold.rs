//! Ablation study: abl_threshold.
fn main() {
    mutree_bench::experiments::ablations::abl_threshold()
        .emit(None)
        .expect("write results");
}
