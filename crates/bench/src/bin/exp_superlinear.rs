//! Per-instance speedup study: where the paper's *super-linear* speedup
//! comes from. See `experiments::ablations::exp_superlinear`.

fn main() {
    mutree_bench::experiments::ablations::exp_superlinear()
        .emit(None)
        .expect("write results");
}
