//! Regenerates HPC Asia 2005 companion Figure 8.
fn main() {
    mutree_bench::experiments::hpcasia::pfig8()
        .emit(None)
        .expect("write results");
}
