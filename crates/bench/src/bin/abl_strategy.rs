//! Ablation study: DFS vs best-first node selection.
fn main() {
    mutree_bench::experiments::ablations::abl_strategy()
        .emit(None)
        .expect("write results");
}
