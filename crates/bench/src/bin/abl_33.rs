//! Ablation study: abl_33.
fn main() {
    mutree_bench::experiments::ablations::abl_33()
        .emit(None)
        .expect("write results");
}
