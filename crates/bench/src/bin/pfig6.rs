//! Regenerates HPC Asia 2005 companion Figure 6.
fn main() {
    mutree_bench::experiments::hpcasia::pfig6()
        .emit(None)
        .expect("write results");
}
