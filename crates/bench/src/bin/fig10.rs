//! Regenerates PaCT 2005 Figure 10.
fn main() {
    mutree_bench::experiments::pact::fig10()
        .emit(None)
        .expect("write results");
}
