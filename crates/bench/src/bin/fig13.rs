//! Regenerates PaCT 2005 Figure 13.
fn main() {
    mutree_bench::experiments::pact::fig13()
        .emit(None)
        .expect("write results");
}
