//! Regenerates HPC Asia 2005 companion Figure 3.
fn main() {
    mutree_bench::experiments::hpcasia::pfig3()
        .emit(None)
        .expect("write results");
}
