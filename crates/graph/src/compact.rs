use mutree_distmat::DistanceMatrix;

use crate::{kruskal, WeightedGraph};

/// A compact set: a vertex subset whose largest internal distance is smaller
/// than its smallest escaping distance (`Max(C) < Min(C, V ∖ C)`).
#[derive(Debug, Clone, PartialEq)]
pub struct CompactSet {
    members: Vec<usize>,
    max_internal: f64,
    min_crossing: f64,
}

impl CompactSet {
    /// The member vertices, sorted ascending.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Compact sets always have at least two members here, so this is
    /// always `false`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `Max(C)`: the largest pairwise distance inside the set.
    pub fn max_internal(&self) -> f64 {
        self.max_internal
    }

    /// `Min(C, V ∖ C)`: the smallest distance from a member to a
    /// non-member.
    pub fn min_crossing(&self) -> f64 {
        self.min_crossing
    }

    /// Whether `other ⊆ self`.
    pub fn contains_set(&self, other: &CompactSet) -> bool {
        // Both member lists are sorted.
        let mut it = self.members.iter().peekable();
        'outer: for x in &other.members {
            for y in it.by_ref() {
                match y.cmp(x) {
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                    std::cmp::Ordering::Less => {}
                }
            }
            return false;
        }
        true
    }
}

/// All *proper* compact sets of a distance matrix: sets with at least two
/// members and fewer than all of them. Singletons and the full vertex set
/// are compact by convention and are omitted.
///
/// Sets are stored in detection order (ascending merge weight), which places
/// every set after all of its subsets.
#[derive(Debug, Clone, PartialEq)]
pub struct CompactSets {
    n: usize,
    sets: Vec<CompactSet>,
}

impl CompactSets {
    /// Runs the paper's compact-set algorithm (§3.1):
    ///
    /// 1. build the minimum spanning tree of the complete distance graph
    ///    (Kruskal, so the edges come out weight-sorted);
    /// 2. process MST edges in ascending order, merging their endpoint
    ///    components;
    /// 3. after each merge `A`, test `Max(A) < Min(A, !A)` — when it holds,
    ///    `A` is compact.
    ///
    /// `Max` is maintained incrementally:
    /// `Max(A ∪ B) = max(Max A, Max B, cross-max(A, B))`, so the total cost
    /// of all max updates is `O(n²)`; each crossing minimum is recomputed in
    /// `O(|A| · (n − |A|))`, for `O(n³)` worst-case overall — ample for the
    /// matrix sizes where exact tree search is feasible.
    ///
    /// Correctness: every compact set `C` induces a connected subtree of the
    /// MST whose internal edges all weigh less than every edge escaping `C`
    /// (Lemmas 2 and 4), so in ascending order the component equals exactly
    /// `C` right after its last internal MST edge — the test then fires.
    /// Hence **all** compact sets are found.
    pub fn find(m: &DistanceMatrix) -> Self {
        let n = m.len();
        let mst = kruskal(&WeightedGraph::from_matrix(m)).expect("complete graph is connected");

        // comp[v] = current component id of v; components store members and
        // running internal max.
        let mut comp: Vec<usize> = (0..n).collect();
        let mut members: Vec<Vec<usize>> = (0..n).map(|v| vec![v]).collect();
        let mut max_internal: Vec<f64> = vec![0.0; n];
        let mut sets = Vec::new();

        for e in mst.edges() {
            let (ca, cb) = (comp[e.u], comp[e.v]);
            debug_assert_ne!(ca, cb, "MST edges join distinct components");
            // Merge smaller into larger to bound relabeling cost.
            let (keep, drop) = if members[ca].len() >= members[cb].len() {
                (ca, cb)
            } else {
                (cb, ca)
            };
            let mut cross_max = 0.0f64;
            for &x in &members[keep] {
                for &y in &members[drop] {
                    cross_max = cross_max.max(m.get(x, y));
                }
            }
            let dropped = std::mem::take(&mut members[drop]);
            for &y in &dropped {
                comp[y] = keep;
            }
            members[keep].extend(dropped);
            max_internal[keep] = max_internal[keep].max(max_internal[drop]).max(cross_max);

            let size = members[keep].len();
            if size < n {
                // Min(A, !A): smallest distance escaping the merged set.
                let mut inside = vec![false; n];
                for &x in &members[keep] {
                    inside[x] = true;
                }
                let mut min_crossing = f64::INFINITY;
                for &x in &members[keep] {
                    for (y, &is_in) in inside.iter().enumerate() {
                        if !is_in {
                            min_crossing = min_crossing.min(m.get(x, y));
                        }
                    }
                }
                if max_internal[keep] < min_crossing {
                    let mut ms = members[keep].clone();
                    ms.sort_unstable();
                    sets.push(CompactSet {
                        members: ms,
                        max_internal: max_internal[keep],
                        min_crossing,
                    });
                }
            }
        }
        CompactSets { n, sets }
    }

    /// Number of taxa in the underlying matrix.
    pub fn taxon_count(&self) -> usize {
        self.n
    }

    /// Number of proper compact sets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether no proper compact set exists.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Iterates the sets in detection order (subsets before supersets).
    pub fn iter(&self) -> impl Iterator<Item = &CompactSet> {
        self.sets.iter()
    }

    /// The sets as a slice, in detection order.
    pub fn as_slice(&self) -> &[CompactSet] {
        &self.sets
    }

    /// The maximal proper compact sets: those contained in no other proper
    /// compact set. They are pairwise disjoint (Lemma 3).
    pub fn maximal(&self) -> Vec<&CompactSet> {
        self.sets
            .iter()
            .enumerate()
            .filter(|(i, s)| {
                !self
                    .sets
                    .iter()
                    .enumerate()
                    .any(|(j, t)| j != *i && t.len() > s.len() && t.contains_set(s))
            })
            .map(|(_, s)| s)
            .collect()
    }

    /// Builds the laminar containment forest over the proper compact sets.
    pub fn forest(&self) -> LaminarForest {
        let k = self.sets.len();
        // Smallest strict superset is the parent; detection order puts
        // supersets after subsets, but sizes are the robust criterion.
        let parent: Vec<Option<usize>> = (0..k)
            .map(|i| {
                let mut best: Option<usize> = None;
                for j in 0..k {
                    if j != i
                        && self.sets[j].len() > self.sets[i].len()
                        && self.sets[j].contains_set(&self.sets[i])
                    {
                        match best {
                            None => best = Some(j),
                            Some(b) if self.sets[j].len() < self.sets[b].len() => best = Some(j),
                            _ => {}
                        }
                    }
                }
                best
            })
            .collect();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut roots = Vec::new();
        for (i, p) in parent.iter().enumerate() {
            match p {
                Some(p) => children[*p].push(i),
                None => roots.push(i),
            }
        }
        let nodes = (0..k)
            .map(|i| LaminarNode {
                set: i,
                parent: parent[i],
                children: children[i].clone(),
            })
            .collect();
        LaminarForest {
            n: self.n,
            nodes,
            roots,
        }
    }

    /// Partitions the taxa for decomposition: descend the laminar forest and
    /// cut at the largest compact sets with at most `max_size` members;
    /// every taxon not covered by such a set becomes a singleton group.
    ///
    /// Groups are returned sorted by their smallest member; members inside a
    /// group are sorted ascending. The groups always partition `0..n`.
    ///
    /// # Panics
    ///
    /// Panics when `max_size < 2` (no set could ever be cut).
    pub fn partition(&self, max_size: usize) -> Vec<Vec<usize>> {
        assert!(max_size >= 2, "max_size must be at least 2");
        let forest = self.forest();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut covered = vec![false; self.n];
        // Iterative DFS from the roots.
        let mut stack: Vec<usize> = forest.roots.clone();
        while let Some(node) = stack.pop() {
            let set = &self.sets[forest.nodes[node].set];
            if set.len() <= max_size {
                groups.push(set.members().to_vec());
                for &v in set.members() {
                    covered[v] = true;
                }
            } else {
                stack.extend(forest.nodes[node].children.iter().copied());
            }
        }
        for (v, &is_covered) in covered.iter().enumerate() {
            if !is_covered {
                groups.push(vec![v]);
            }
        }
        groups.sort_by_key(|g| g[0]);
        groups
    }
}

/// One node of a [`LaminarForest`]: a compact set with its containment
/// parent and children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaminarNode {
    /// Index of this node's set within the originating [`CompactSets`].
    pub set: usize,
    /// Index of the smallest strictly-containing set, if any.
    pub parent: Option<usize>,
    /// Indices of the maximal strictly-contained sets.
    pub children: Vec<usize>,
}

/// The containment forest of a laminar family of compact sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaminarForest {
    n: usize,
    /// One node per proper compact set, indexed like the originating
    /// [`CompactSets`].
    pub nodes: Vec<LaminarNode>,
    /// Nodes with no parent (the maximal proper compact sets).
    pub roots: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 6-vertex instance shaped like the paper's running example
    /// (Figs. 3–5): MST edge order (0,2), (3,5), (0,1), (2,4), (4,5) and
    /// compact sets {0,2}, {3,5}, {0,1,2}, {0,1,2,4}.
    fn paper_like() -> DistanceMatrix {
        DistanceMatrix::from_rows(&[
            vec![0.0, 3.0, 1.0, 7.0, 4.5, 6.5],
            vec![3.0, 0.0, 3.5, 7.2, 4.2, 6.8],
            vec![1.0, 3.5, 0.0, 7.5, 4.0, 6.9],
            vec![7.0, 7.2, 7.5, 0.0, 6.0, 2.0],
            vec![4.5, 4.2, 4.0, 6.0, 0.0, 5.0],
            vec![6.5, 6.8, 6.9, 2.0, 5.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn finds_paper_example_sets() {
        let cs = CompactSets::find(&paper_like());
        let members: Vec<Vec<usize>> = cs.iter().map(|s| s.members().to_vec()).collect();
        assert_eq!(
            members,
            vec![vec![0, 2], vec![3, 5], vec![0, 1, 2], vec![0, 1, 2, 4],]
        );
    }

    #[test]
    fn lemma2_holds_on_every_set() {
        let cs = CompactSets::find(&paper_like());
        for s in cs.iter() {
            assert!(
                s.max_internal() < s.min_crossing(),
                "set {:?} violates Lemma 2",
                s.members()
            );
        }
    }

    #[test]
    fn laminar_nesting() {
        let cs = CompactSets::find(&paper_like());
        // Every pair of sets is nested or disjoint (Lemma 3).
        for a in cs.iter() {
            for b in cs.iter() {
                let inter = a
                    .members()
                    .iter()
                    .filter(|x| b.members().contains(x))
                    .count();
                let nested = a.contains_set(b) || b.contains_set(a);
                assert!(inter == 0 || nested);
            }
        }
    }

    #[test]
    fn maximal_sets_are_disjoint_cover() {
        let cs = CompactSets::find(&paper_like());
        let maximal = cs.maximal();
        let members: Vec<Vec<usize>> = maximal.iter().map(|s| s.members().to_vec()).collect();
        assert_eq!(members, vec![vec![3, 5], vec![0, 1, 2, 4]]);
    }

    #[test]
    fn forest_structure() {
        let cs = CompactSets::find(&paper_like());
        let forest = cs.forest();
        assert_eq!(forest.roots.len(), 2);
        // {0,1,2,4} is the parent of {0,1,2}, which is the parent of {0,2}.
        let idx_of = |ms: &[usize]| {
            cs.as_slice()
                .iter()
                .position(|s| s.members() == ms)
                .unwrap()
        };
        let big = idx_of(&[0, 1, 2, 4]);
        let mid = idx_of(&[0, 1, 2]);
        let small = idx_of(&[0, 2]);
        assert_eq!(forest.nodes[mid].parent, Some(big));
        assert_eq!(forest.nodes[small].parent, Some(mid));
        assert_eq!(forest.nodes[big].parent, None);
    }

    #[test]
    fn partition_cuts_at_threshold() {
        let cs = CompactSets::find(&paper_like());
        // Threshold 4: take {0,1,2,4} and {3,5} whole.
        assert_eq!(cs.partition(4), vec![vec![0, 1, 2, 4], vec![3, 5]]);
        // Threshold 3: {0,1,2,4} is too big, descend to {0,1,2}; 4 is loose.
        assert_eq!(cs.partition(3), vec![vec![0, 1, 2], vec![3, 5], vec![4]]);
        // Threshold 2: descend further to {0,2}.
        assert_eq!(
            cs.partition(2),
            vec![vec![0, 2], vec![1], vec![3, 5], vec![4]]
        );
    }

    #[test]
    fn partition_is_a_partition() {
        let cs = CompactSets::find(&paper_like());
        for t in 2..=6 {
            let groups = cs.partition(t);
            let mut all: Vec<usize> = groups.concat();
            all.sort_unstable();
            assert_eq!(all, (0..6).collect::<Vec<_>>(), "threshold {t}");
        }
    }

    #[test]
    fn uniform_matrix_has_no_proper_compact_sets() {
        // All distances equal: the strict inequality never fires.
        let m = DistanceMatrix::from_rows(&[
            vec![0.0, 5.0, 5.0],
            vec![5.0, 0.0, 5.0],
            vec![5.0, 5.0, 0.0],
        ])
        .unwrap();
        let cs = CompactSets::find(&m);
        assert!(cs.is_empty());
        // Partition degrades to singletons.
        assert_eq!(cs.partition(3), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn two_taxa_no_proper_sets() {
        let m = DistanceMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        assert!(CompactSets::find(&m).is_empty());
    }

    #[test]
    fn ultrametric_matrix_yields_deep_hierarchy() {
        // Perfect binary ultrametric: ((0,1),(2,3)) far from ((4,5),(6,7)).
        let mut m = DistanceMatrix::zeros(8).unwrap();
        for i in 0..8 {
            for j in (i + 1)..8 {
                let d = if i / 4 != j / 4 {
                    16.0
                } else if i / 2 != j / 2 {
                    8.0
                } else {
                    2.0
                };
                m.set(i, j, d);
            }
        }
        let cs = CompactSets::find(&m);
        let members: Vec<Vec<usize>> = cs.iter().map(|s| s.members().to_vec()).collect();
        assert!(members.contains(&vec![0, 1]));
        assert!(members.contains(&vec![6, 7]));
        assert!(members.contains(&vec![0, 1, 2, 3]));
        assert!(members.contains(&vec![4, 5, 6, 7]));
        assert_eq!(cs.len(), 6);
    }
}
