use std::fmt;

use mutree_distmat::DistanceMatrix;

/// An undirected weighted edge between vertices `u` and `v`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// One endpoint.
    pub u: usize,
    /// The other endpoint.
    pub v: usize,
    /// Edge weight; finite and non-negative.
    pub weight: f64,
}

impl Edge {
    /// The endpoint opposite `x`.
    ///
    /// # Panics
    ///
    /// Panics when `x` is not an endpoint of this edge.
    pub fn other(&self, x: usize) -> usize {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("{x} is not an endpoint of ({}, {})", self.u, self.v)
        }
    }
}

/// Errors from graph algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The graph is not connected, so no spanning tree exists.
    Disconnected,
    /// The graph has no vertices.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::Empty => write!(f, "graph has no vertices"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An undirected weighted graph in edge-list form.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedGraph {
    n: usize,
    edges: Vec<Edge>,
}

impl WeightedGraph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        WeightedGraph {
            n,
            edges: Vec::new(),
        }
    }

    /// Adds an undirected edge.
    ///
    /// # Panics
    ///
    /// Panics when an endpoint is out of bounds, the edge is a self-loop, or
    /// the weight is negative or non-finite.
    pub fn add_edge(&mut self, u: usize, v: usize, weight: f64) {
        assert!(u < self.n && v < self.n, "vertex out of bounds");
        assert!(u != v, "self-loops are not allowed");
        assert!(
            weight.is_finite() && weight >= 0.0,
            "weights must be finite and non-negative"
        );
        self.edges.push(Edge { u, v, weight });
    }

    /// Builds the complete graph whose edge weights come from `f(u, v)`.
    ///
    /// # Panics
    ///
    /// Panics when a produced weight is negative or non-finite.
    pub fn complete_from_fn<F: FnMut(usize, usize) -> f64>(n: usize, mut f: F) -> Self {
        let mut g = WeightedGraph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u, v, f(u, v));
            }
        }
        g
    }

    /// Builds the complete graph of a distance matrix (the paper's
    /// "complete, weighted, undirected graph" of Fig. 3).
    pub fn from_matrix(m: &DistanceMatrix) -> Self {
        WeightedGraph::complete_from_fn(m.len(), |u, v| m.get(u, v))
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// The edges, in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_edge_count() {
        let g = WeightedGraph::complete_from_fn(5, |u, v| (u + v) as f64);
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edges().len(), 10);
    }

    #[test]
    fn from_matrix_matches_entries() {
        let m = DistanceMatrix::from_rows(&[
            vec![0.0, 3.0, 4.0],
            vec![3.0, 0.0, 5.0],
            vec![4.0, 5.0, 0.0],
        ])
        .unwrap();
        let g = WeightedGraph::from_matrix(&m);
        assert_eq!(g.edges().len(), 3);
        assert_eq!(g.total_weight(), 12.0);
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge {
            u: 2,
            v: 7,
            weight: 1.0,
        };
        assert_eq!(e.other(2), 7);
        assert_eq!(e.other(7), 2);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_panics_for_stranger() {
        Edge {
            u: 0,
            v: 1,
            weight: 1.0,
        }
        .other(2);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        WeightedGraph::new(3).add_edge(1, 1, 1.0);
    }
}
