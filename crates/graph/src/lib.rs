//! Weighted graphs, minimum spanning trees, and compact sets.
//!
//! A *compact set* of a complete weighted graph `G = (V, E, w)` is a vertex
//! subset `C` whose largest internal distance is smaller than its smallest
//! escaping distance:
//!
//! ```text
//! Max(C) < Min(C, V \ C)
//! ```
//!
//! Compact sets are the decomposition device of the PaCT 2005 paper: they
//! nest into a laminar family (Lemma 3), every compact set induces a subtree
//! of the minimum spanning tree (Lemma 4), and — crucially for evolutionary
//! trees — the species inside a compact set share a lowest common ancestor
//! below every species outside it (Lemma 1), so solving each compact set
//! separately preserves the true phylogenetic relations.
//!
//! The detection algorithm here is the paper's §3.1: build an MST
//! ([`kruskal`]), process its edges in ascending weight order merging
//! components with a [`UnionFind`], and after each merge test compactness.
//! Internal maxima are maintained incrementally; see [`CompactSets::find`].
//!
//! ```
//! use mutree_distmat::DistanceMatrix;
//! use mutree_graph::CompactSets;
//!
//! let m = DistanceMatrix::from_rows(&[
//!     vec![0.0, 1.0, 9.0, 9.0],
//!     vec![1.0, 0.0, 9.0, 9.0],
//!     vec![9.0, 9.0, 0.0, 2.0],
//!     vec![9.0, 9.0, 2.0, 0.0],
//! ]).unwrap();
//! let cs = CompactSets::find(&m);
//! let members: Vec<_> = cs.iter().map(|s| s.members().to_vec()).collect();
//! assert!(members.contains(&vec![0, 1]));
//! assert!(members.contains(&vec![2, 3]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compact;
mod graph;
mod mst;
mod union_find;

pub use compact::{CompactSet, CompactSets, LaminarForest, LaminarNode};
pub use graph::{Edge, GraphError, WeightedGraph};
pub use mst::{kruskal, prim, Mst};
pub use union_find::UnionFind;
