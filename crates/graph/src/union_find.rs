/// Disjoint-set union with union by rank and path compression.
///
/// Amortized near-constant time per operation; used by Kruskal's algorithm
/// and the compact-set merge loop.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton components.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of components.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s component (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the components of `a` and `b`. Returns the new root, or `None`
    /// when they were already joined.
    pub fn union(&mut self, a: usize, b: usize) -> Option<usize> {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return None;
        }
        self.components -= 1;
        let root = match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => {
                self.parent[ra] = rb;
                rb
            }
            std::cmp::Ordering::Greater => {
                self.parent[rb] = ra;
                ra
            }
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
                ra
            }
        };
        Some(root)
    }

    /// Whether `a` and `b` share a component.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Groups all elements by component, each group sorted ascending; groups
    /// ordered by their smallest element.
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut by_root: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for x in 0..n {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x);
        }
        let mut groups: Vec<Vec<usize>> = by_root.into_values().collect();
        groups.sort_by_key(|g| g[0]);
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.components(), 5);
        assert!(!uf.same(0, 1));
        assert_eq!(uf.find(3), 3);
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1).is_some());
        assert!(uf.union(2, 3).is_some());
        assert_eq!(uf.components(), 2);
        assert!(uf.same(0, 1));
        assert!(!uf.same(1, 2));
        assert!(uf.union(1, 3).is_some());
        assert_eq!(uf.components(), 1);
        assert!(uf.same(0, 2));
    }

    #[test]
    fn union_same_component_is_none() {
        let mut uf = UnionFind::new(3);
        uf.union(0, 1);
        assert!(uf.union(1, 0).is_none());
        assert_eq!(uf.components(), 2);
    }

    #[test]
    fn groups_sorted() {
        let mut uf = UnionFind::new(6);
        uf.union(5, 0);
        uf.union(2, 4);
        let groups = uf.groups();
        assert_eq!(groups, vec![vec![0, 5], vec![1], vec![2, 4], vec![3]]);
    }

    #[test]
    fn chain_path_compression() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.components(), 1);
        let r = uf.find(0);
        for i in 0..100 {
            assert_eq!(uf.find(i), r);
        }
    }
}
