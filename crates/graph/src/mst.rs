use crate::{Edge, GraphError, UnionFind, WeightedGraph};

/// A minimum spanning tree: `n − 1` edges and their total weight.
#[derive(Debug, Clone, PartialEq)]
pub struct Mst {
    edges: Vec<Edge>,
    weight: f64,
}

impl Mst {
    /// The tree edges. For [`kruskal`] they are sorted by ascending weight —
    /// exactly the processing order required by the compact-set algorithm
    /// (paper §3.1, Step 2).
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Total weight of the tree.
    pub fn weight(&self) -> f64 {
        self.weight
    }
}

/// Kruskal's algorithm: sort all edges by weight, greedily add those joining
/// distinct components. `O(m log m)`.
///
/// Ties in weight break by edge endpoints `(u, v)`, so the result is
/// deterministic (the paper notes multiple MSTs may coexist when weights tie
/// — Fig. 7; this implementation always picks the lexicographically first).
///
/// # Errors
///
/// [`GraphError::Empty`] for a vertexless graph, [`GraphError::Disconnected`]
/// when no spanning tree exists.
pub fn kruskal(g: &WeightedGraph) -> Result<Mst, GraphError> {
    let n = g.vertex_count();
    if n == 0 {
        return Err(GraphError::Empty);
    }
    let mut order: Vec<&Edge> = g.edges().iter().collect();
    order.sort_by(|a, b| {
        a.weight
            .partial_cmp(&b.weight)
            .expect("weights are finite")
            .then(a.u.cmp(&b.u))
            .then(a.v.cmp(&b.v))
    });
    let mut uf = UnionFind::new(n);
    let mut edges = Vec::with_capacity(n - 1);
    let mut weight = 0.0;
    for e in order {
        if uf.union(e.u, e.v).is_some() {
            edges.push(*e);
            weight += e.weight;
            if edges.len() == n - 1 {
                break;
            }
        }
    }
    if edges.len() != n - 1 {
        return Err(GraphError::Disconnected);
    }
    Ok(Mst { edges, weight })
}

/// Prim's algorithm (array-based, `O(n²)`), suited to the complete graphs
/// built from distance matrices. Used in tests as an independent check of
/// [`kruskal`].
///
/// # Errors
///
/// [`GraphError::Empty`] for a vertexless graph, [`GraphError::Disconnected`]
/// when no spanning tree exists.
pub fn prim(g: &WeightedGraph) -> Result<Mst, GraphError> {
    let n = g.vertex_count();
    if n == 0 {
        return Err(GraphError::Empty);
    }
    // Adjacency matrix of best edge weights (multi-edges collapse to min).
    let mut adj = vec![f64::INFINITY; n * n];
    for e in g.edges() {
        let w = adj[e.u * n + e.v].min(e.weight);
        adj[e.u * n + e.v] = w;
        adj[e.v * n + e.u] = w;
    }
    let mut in_tree = vec![false; n];
    let mut best = vec![f64::INFINITY; n];
    let mut best_from = vec![usize::MAX; n];
    in_tree[0] = true;
    for v in 1..n {
        best[v] = adj[v];
        best_from[v] = 0;
    }
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    let mut weight = 0.0;
    for _ in 1..n {
        let mut pick = usize::MAX;
        for v in 0..n {
            if !in_tree[v] && (pick == usize::MAX || best[v] < best[pick]) {
                pick = v;
            }
        }
        if pick == usize::MAX || !best[pick].is_finite() {
            return Err(GraphError::Disconnected);
        }
        in_tree[pick] = true;
        let (u, v) = (best_from[pick].min(pick), best_from[pick].max(pick));
        edges.push(Edge {
            u,
            v,
            weight: best[pick],
        });
        weight += best[pick];
        for x in 0..n {
            if !in_tree[x] && adj[pick * n + x] < best[x] {
                best[x] = adj[pick * n + x];
                best_from[x] = pick;
            }
        }
    }
    edges.sort_by(|a, b| {
        a.weight
            .partial_cmp(&b.weight)
            .expect("weights are finite")
            .then(a.u.cmp(&b.u))
            .then(a.v.cmp(&b.v))
    });
    Ok(Mst { edges, weight })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutree_distmat::DistanceMatrix;

    fn square_with_diagonal() -> WeightedGraph {
        // 0-1-2-3 square (weight 1 sides) plus heavy diagonals.
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 0, 2.0);
        g.add_edge(0, 2, 5.0);
        g.add_edge(1, 3, 5.0);
        g
    }

    #[test]
    fn kruskal_picks_light_edges() {
        let mst = kruskal(&square_with_diagonal()).unwrap();
        assert_eq!(mst.weight(), 3.0);
        assert_eq!(mst.edges().len(), 3);
    }

    #[test]
    fn kruskal_edges_sorted_ascending() {
        let m = DistanceMatrix::from_rows(&[
            vec![0.0, 7.0, 1.0, 6.0],
            vec![7.0, 0.0, 7.0, 2.0],
            vec![1.0, 7.0, 0.0, 3.0],
            vec![6.0, 2.0, 3.0, 0.0],
        ])
        .unwrap();
        let mst = kruskal(&WeightedGraph::from_matrix(&m)).unwrap();
        let ws: Vec<f64> = mst.edges().iter().map(|e| e.weight).collect();
        assert_eq!(ws, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn prim_agrees_with_kruskal_on_weight() {
        let g = square_with_diagonal();
        assert_eq!(prim(&g).unwrap().weight(), kruskal(&g).unwrap().weight());
    }

    #[test]
    fn disconnected_is_an_error() {
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(2, 3, 1.0);
        assert_eq!(kruskal(&g), Err(GraphError::Disconnected));
        assert_eq!(prim(&g), Err(GraphError::Disconnected));
    }

    #[test]
    fn empty_graph_is_an_error() {
        let g = WeightedGraph::new(0);
        assert_eq!(kruskal(&g), Err(GraphError::Empty));
        assert_eq!(prim(&g), Err(GraphError::Empty));
    }

    #[test]
    fn single_vertex_has_empty_mst() {
        let g = WeightedGraph::new(1);
        let mst = kruskal(&g).unwrap();
        assert!(mst.edges().is_empty());
        assert_eq!(mst.weight(), 0.0);
    }

    #[test]
    fn deterministic_under_ties() {
        let mut g = WeightedGraph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(0, 2, 1.0);
        let a = kruskal(&g).unwrap();
        let b = kruskal(&g).unwrap();
        assert_eq!(a, b);
        // Lexicographically first tie-break: (0,1) then (0,2).
        assert_eq!((a.edges()[0].u, a.edges()[0].v), (0, 1));
        assert_eq!((a.edges()[1].u, a.edges()[1].v), (0, 2));
    }
}
