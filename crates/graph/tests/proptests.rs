//! Property tests: MST agreement, union-find vs a naive model, compact
//! sets against their definition.

use mutree_distmat::{gen, DistanceMatrix};
use mutree_graph::{kruskal, prim, CompactSets, UnionFind, WeightedGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kruskal_equals_prim_on_complete_graphs(n in 2usize..14, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = gen::uniform_metric(n, 1.0, 100.0, &mut rng);
        let g = WeightedGraph::from_matrix(&m);
        let k = kruskal(&g).unwrap();
        let p = prim(&g).unwrap();
        prop_assert!((k.weight() - p.weight()).abs() < 1e-9);
        prop_assert_eq!(k.edges().len(), n - 1);
    }

    #[test]
    fn union_find_matches_naive_model(ops in proptest::collection::vec((0usize..12, 0usize..12), 0..40)) {
        let n = 12;
        let mut uf = UnionFind::new(n);
        // Naive model: component label per element.
        let mut label: Vec<usize> = (0..n).collect();
        for (a, b) in ops {
            let (la, lb) = (label[a], label[b]);
            let expect_merge = la != lb;
            prop_assert_eq!(uf.union(a, b).is_some(), expect_merge);
            if expect_merge {
                for l in label.iter_mut() {
                    if *l == lb {
                        *l = la;
                    }
                }
            }
        }
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(uf.same(a, b), label[a] == label[b]);
            }
        }
        let labels: std::collections::HashSet<usize> = label.iter().copied().collect();
        prop_assert_eq!(uf.components(), labels.len());
    }

    /// Brute-force definition check: a set is compact iff its internal max
    /// is below its crossing min. Every set the algorithm reports must
    /// satisfy it, and every 2-element compact set must be reported.
    #[test]
    fn compact_sets_match_definition(n in 3usize..10, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = gen::perturbed_ultrametric(n, 40.0, 0.15, &mut rng);
        let cs = CompactSets::find(&m);
        let is_compact = |members: &[usize]| {
            let mut max_in = 0.0f64;
            let mut min_out = f64::INFINITY;
            for &a in members {
                for b in 0..n {
                    if members.contains(&b) {
                        if b > a {
                            max_in = max_in.max(m.get(a, b));
                        }
                    } else {
                        min_out = min_out.min(m.get(a, b));
                    }
                }
            }
            max_in < min_out
        };
        for s in cs.iter() {
            prop_assert!(is_compact(s.members()), "{:?} reported but not compact", s.members());
        }
        // Completeness for pairs.
        for a in 0..n {
            for b in (a + 1)..n {
                if is_compact(&[a, b]) {
                    prop_assert!(
                        cs.iter().any(|s| s.members() == [a, b]),
                        "compact pair ({a}, {b}) missed"
                    );
                }
            }
        }
    }

    #[test]
    fn partition_respects_threshold(n in 4usize..14, seed in any::<u64>(), threshold in 2usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = gen::perturbed_ultrametric(n, 40.0, 0.1, &mut rng);
        let cs = CompactSets::find(&m);
        let groups = cs.partition(threshold);
        let mut all: Vec<usize> = groups.concat();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        for g in &groups {
            prop_assert!(g.len() <= threshold.max(1));
        }
    }

    #[test]
    fn mst_weight_lower_bounds_any_spanning_tree(n in 3usize..9, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = gen::uniform_metric(n, 1.0, 100.0, &mut rng);
        let g = WeightedGraph::from_matrix(&m);
        let mst = kruskal(&g).unwrap();
        // A star rooted at each vertex is a spanning tree; none may be
        // lighter than the MST.
        for center in 0..n {
            let star: f64 = (0..n).filter(|&v| v != center).map(|v| m.get(center, v)).sum();
            prop_assert!(mst.weight() <= star + 1e-9);
        }
    }
}

#[test]
fn compact_sets_on_perfect_clusters() {
    // Two tight clusters far apart: both must be compact.
    let m = DistanceMatrix::from_rows(&[
        vec![0.0, 1.0, 1.2, 50.0, 50.0],
        vec![1.0, 0.0, 1.1, 50.0, 50.0],
        vec![1.2, 1.1, 0.0, 50.0, 50.0],
        vec![50.0, 50.0, 50.0, 0.0, 2.0],
        vec![50.0, 50.0, 50.0, 2.0, 0.0],
    ])
    .unwrap();
    let cs = CompactSets::find(&m);
    let members: Vec<Vec<usize>> = cs.iter().map(|s| s.members().to_vec()).collect();
    assert!(members.contains(&vec![0, 1, 2]));
    assert!(members.contains(&vec![3, 4]));
}
