//! Property tests of the discrete-event substrate.

use mutree_clustersim::{EventQueue, NetworkModel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn events_pop_in_time_then_fifo_order(times in proptest::collection::vec(0.0f64..1000.0, 1..80)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut last_time = f64::NEG_INFINITY;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut current = f64::NEG_INFINITY;
        while let Some((t, idx)) = q.pop() {
            prop_assert!(t >= last_time);
            if t > current {
                current = t;
                seen_at_time.clear();
            }
            // FIFO among equal times: indices increase.
            if let Some(&prev) = seen_at_time.last() {
                prop_assert!(idx > prev);
            }
            seen_at_time.push(idx);
            last_time = t;
            prop_assert_eq!(q.now(), t);
        }
    }

    #[test]
    fn relative_scheduling_accumulates(delays in proptest::collection::vec(0.0f64..10.0, 1..30)) {
        let mut q = EventQueue::new();
        let mut expect = 0.0;
        for (i, &d) in delays.iter().enumerate() {
            q.schedule_in(d, i);
            let (t, idx) = q.pop().unwrap();
            expect += d;
            prop_assert!((t - expect).abs() < 1e-9);
            prop_assert_eq!(idx, i);
        }
    }

    #[test]
    fn network_delay_is_monotone_in_size(
        latency in 0.0f64..0.01,
        bandwidth in 1e3f64..1e9,
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
    ) {
        let net = NetworkModel::new(latency, bandwidth);
        let (small, large) = (a.min(b), a.max(b));
        prop_assert!(net.delay(small) <= net.delay(large));
        prop_assert!(net.delay(0) >= latency);
    }
}
