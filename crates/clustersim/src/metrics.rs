/// Accumulated activity of one simulated node.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NodeMetrics {
    /// Seconds spent computing.
    pub busy: f64,
    /// Messages sent.
    pub messages_sent: u64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// Work units completed.
    pub ops: u64,
}

impl NodeMetrics {
    /// Records `seconds` of compute covering `ops` work units.
    pub fn record_busy(&mut self, seconds: f64, ops: u64) {
        self.busy += seconds;
        self.ops += ops;
    }

    /// Records an outgoing message of `bytes`.
    pub fn record_send(&mut self, bytes: u64) {
        self.messages_sent += 1;
        self.bytes_sent += bytes;
    }
}

/// The outcome of a simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimReport {
    /// Virtual time at which the last event completed.
    pub makespan: f64,
    /// Per-slave metrics, indexed by slave id.
    pub per_node: Vec<NodeMetrics>,
}

impl SimReport {
    /// Mean fraction of the makespan the nodes spent computing
    /// (`0.0` when the makespan is zero).
    pub fn mean_utilization(&self) -> f64 {
        if self.makespan <= 0.0 || self.per_node.is_empty() {
            return 0.0;
        }
        let total: f64 = self.per_node.iter().map(|m| m.busy).sum();
        total / (self.makespan * self.per_node.len() as f64)
    }

    /// Total messages sent by all nodes.
    pub fn total_messages(&self) -> u64 {
        self.per_node.iter().map(|m| m.messages_sent).sum()
    }

    /// Total work units completed by all nodes.
    pub fn total_ops(&self) -> u64 {
        self.per_node.iter().map(|m| m.ops).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut m = NodeMetrics::default();
        m.record_busy(1.5, 3);
        m.record_busy(0.5, 1);
        m.record_send(100);
        m.record_send(50);
        assert_eq!(m.busy, 2.0);
        assert_eq!(m.ops, 4);
        assert_eq!(m.messages_sent, 2);
        assert_eq!(m.bytes_sent, 150);
    }

    #[test]
    fn utilization_math() {
        let report = SimReport {
            makespan: 10.0,
            per_node: vec![
                NodeMetrics {
                    busy: 10.0,
                    ..Default::default()
                },
                NodeMetrics {
                    busy: 5.0,
                    ..Default::default()
                },
            ],
        };
        assert!((report.mean_utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_zero() {
        let report = SimReport::default();
        assert_eq!(report.mean_utilization(), 0.0);
        assert_eq!(report.total_messages(), 0);
        assert_eq!(report.total_ops(), 0);
    }
}
