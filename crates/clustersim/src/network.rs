/// A latency + bandwidth cost model for point-to-point messages:
/// `delay(bytes) = latency + bytes / bandwidth` — the classic
/// `t_s + m · t_m` model the papers use for communication cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    latency: f64,
    bandwidth: f64,
}

impl NetworkModel {
    /// A custom model. `latency` in seconds, `bandwidth` in bytes/second.
    ///
    /// # Panics
    ///
    /// Panics when either parameter is non-positive or non-finite.
    pub fn new(latency: f64, bandwidth: f64) -> Self {
        assert!(latency.is_finite() && latency >= 0.0, "invalid latency");
        assert!(
            bandwidth.is_finite() && bandwidth > 0.0,
            "invalid bandwidth"
        );
        NetworkModel { latency, bandwidth }
    }

    /// 100 Mbps switched Ethernet with 100 µs one-way latency — the link
    /// between computing nodes in the paper's cluster.
    pub fn fast_ethernet() -> Self {
        NetworkModel::new(100e-6, 100e6 / 8.0)
    }

    /// 1 Gbps Ethernet with 50 µs latency — the paper's node-to-server
    /// link.
    pub fn gigabit() -> Self {
        NetworkModel::new(50e-6, 1e9 / 8.0)
    }

    /// An academic-backbone WAN link (50 Mbps, 2 ms one-way latency) —
    /// the inter-site links of the project report's grid experiments
    /// (UniGrid connected university labs over TANet; the report measures
    /// the 16-node grid only ~1.4 % slower than the 16-node cluster, so
    /// the links were far from consumer-Internet slow).
    pub fn wan() -> Self {
        NetworkModel::new(2e-3, 50e6 / 8.0)
    }

    /// An idealized zero-cost network, for ablating communication effects.
    pub fn instantaneous() -> Self {
        NetworkModel {
            latency: 0.0,
            bandwidth: f64::INFINITY,
        }
    }

    /// One-way startup latency in seconds.
    pub fn latency(&self) -> f64 {
        self.latency
    }

    /// Bandwidth in bytes per second.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// One-way delivery time for a message of `bytes`.
    pub fn delay(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }
}

/// One simulated computing node: its compute rate and its link toward the
/// master/switch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSpec {
    /// Abstract work units per second (the simulated algorithm defines
    /// one unit; for branch-and-bound: one species-insertion evaluation).
    pub ops_per_sec: f64,
    /// The node's link to the master.
    pub link: NetworkModel,
}

/// The shape of a simulated cluster or grid: the master coordinates a set
/// of (possibly heterogeneous) slave computing nodes.
///
/// Messages between the master and slave `i` pay `nodes[i].link`; slave
/// `i` reaches slave `j` through the switch, paying both links.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    nodes: Vec<NodeSpec>,
}

impl ClusterSpec {
    /// A cluster with explicit per-node specs.
    ///
    /// # Panics
    ///
    /// Panics when `nodes` is empty or any rate is non-positive.
    pub fn new(nodes: Vec<NodeSpec>) -> Self {
        assert!(!nodes.is_empty(), "need at least one slave");
        for n in &nodes {
            assert!(
                n.ops_per_sec.is_finite() && n.ops_per_sec > 0.0,
                "invalid compute rate"
            );
        }
        ClusterSpec { nodes }
    }

    /// A homogeneous cluster.
    pub fn uniform(slaves: usize, ops_per_sec: f64, link: NetworkModel) -> Self {
        assert!(slaves > 0, "need at least one slave");
        ClusterSpec::new(vec![NodeSpec { ops_per_sec, link }; slaves])
    }

    /// A homogeneous cluster with paper-like rates on fast Ethernet.
    ///
    /// The default rate of 2·10⁴ work units/s is calibrated so that the
    /// simulator's sequential virtual times land in the range the project
    /// report measures on its 2005 AMD cluster (about 10²–10³ s around 20
    /// species) — which also fixes the communication/computation ratio the
    /// grid experiments depend on.
    pub fn with_slaves(slaves: usize) -> Self {
        ClusterSpec::uniform(slaves, 2e4, NetworkModel::fast_ethernet())
    }

    /// The paper's testbed: 16 slave computing nodes on 100 Mbps Ethernet.
    pub fn paper_cluster() -> Self {
        ClusterSpec::with_slaves(16)
    }

    /// The project report's grid: slightly slower nodes (the UniGrid
    /// machines trailed the dedicated cluster's) reached over academic
    /// WAN links. Calibrated so a 16-node grid lands a few percent behind
    /// the 16-node cluster, as the report's Table 6 measures.
    pub fn paper_grid(nodes: usize) -> Self {
        ClusterSpec::uniform(nodes, 0.9 * 2e4, NetworkModel::wan())
    }

    /// Number of slave nodes.
    pub fn slave_count(&self) -> usize {
        self.nodes.len()
    }

    /// The spec of slave `i`.
    pub fn node(&self, i: usize) -> &NodeSpec {
        &self.nodes[i]
    }

    /// The master's compute rate: modeled as the fastest node (the papers
    /// run the master on the best machine).
    pub fn master_ops_per_sec(&self) -> f64 {
        self.nodes.iter().map(|n| n.ops_per_sec).fold(0.0, f64::max)
    }

    /// Seconds slave `i` needs for `ops` work units.
    pub fn compute_time(&self, i: usize, ops: f64) -> f64 {
        ops / self.nodes[i].ops_per_sec
    }

    /// One-way master ↔ slave `i` message delay.
    pub fn master_slave_delay(&self, i: usize, bytes: u64) -> f64 {
        self.nodes[i].link.delay(bytes)
    }

    /// One-way slave `i` → slave `j` delay (through the switch: both
    /// links are paid).
    pub fn slave_slave_delay(&self, i: usize, j: usize, bytes: u64) -> f64 {
        self.nodes[i].link.delay(bytes) + self.nodes[j].link.delay(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_is_latency_plus_transfer() {
        let net = NetworkModel::new(1e-3, 1e6);
        assert!((net.delay(0) - 1e-3).abs() < 1e-12);
        assert!((net.delay(500_000) - 0.501).abs() < 1e-9);
    }

    #[test]
    fn presets_are_ordered_sensibly() {
        let fe = NetworkModel::fast_ethernet();
        let ge = NetworkModel::gigabit();
        let wan = NetworkModel::wan();
        assert!(ge.delay(1_000_000) < fe.delay(1_000_000));
        assert!(fe.delay(1_000_000) < wan.delay(1_000_000));
        assert_eq!(NetworkModel::instantaneous().delay(u64::MAX), 0.0);
    }

    #[test]
    fn uniform_cluster_compute_time() {
        let c = ClusterSpec::uniform(4, 1e6, NetworkModel::fast_ethernet());
        assert!((c.compute_time(2, 2e6) - 2.0).abs() < 1e-12);
        assert_eq!(c.slave_count(), 4);
        assert_eq!(c.master_ops_per_sec(), 1e6);
        assert!(ClusterSpec::with_slaves(2).node(0).ops_per_sec < 1e6);
    }

    #[test]
    fn heterogeneous_cluster() {
        let c = ClusterSpec::new(vec![
            NodeSpec {
                ops_per_sec: 2e6,
                link: NetworkModel::gigabit(),
            },
            NodeSpec {
                ops_per_sec: 5e5,
                link: NetworkModel::wan(),
            },
        ]);
        assert!(c.compute_time(0, 1e6) < c.compute_time(1, 1e6));
        assert_eq!(c.master_ops_per_sec(), 2e6);
        // Slave-to-slave pays both links.
        let d = c.slave_slave_delay(0, 1, 100);
        assert!((d - (c.master_slave_delay(0, 100) + c.master_slave_delay(1, 100))).abs() < 1e-15);
    }

    #[test]
    fn paper_cluster_has_sixteen_slaves() {
        assert_eq!(ClusterSpec::paper_cluster().slave_count(), 16);
    }

    #[test]
    fn grid_nodes_are_slower_than_cluster_nodes() {
        let cluster = ClusterSpec::paper_cluster();
        let grid = ClusterSpec::paper_grid(16);
        assert!(grid.node(0).ops_per_sec < cluster.node(0).ops_per_sec);
        assert!(grid.master_slave_delay(0, 1000) > cluster.master_slave_delay(0, 1000));
    }

    #[test]
    #[should_panic(expected = "at least one slave")]
    fn zero_slaves_rejected() {
        ClusterSpec::uniform(0, 1e6, NetworkModel::fast_ethernet());
    }
}
