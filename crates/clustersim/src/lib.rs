//! Discrete-event simulation of a master/slave PC cluster.
//!
//! The papers evaluate on a 16-node Linux cluster (100 Mbps links between
//! computing nodes, 1 Gbps to the server) that we neither have nor could
//! time deterministically. This crate provides the substrate to *simulate*
//! such a cluster instead:
//!
//! * [`EventQueue`] — a virtual-time priority queue with deterministic
//!   FIFO tie-breaking, the heart of any discrete-event simulation;
//! * [`NetworkModel`] — a latency + bandwidth cost model for messages,
//!   with presets matching the paper's interconnects;
//! * [`ClusterSpec`] — node count and per-node compute rate, with the
//!   paper's 16-slave configuration as a preset;
//! * [`NodeMetrics`] / [`SimReport`] — per-node busy time, message and
//!   byte counters, and makespan/utilization summaries.
//!
//! The cluster *protocol* (what the master and slaves actually do) lives
//! with the algorithm being simulated — see `mutree_core::cluster` for the
//! parallel branch-and-bound protocol of the paper. Because the simulation
//! is deterministic, speedup experiments are exactly reproducible on any
//! host, including a single-core one.
//!
//! ```
//! use mutree_clustersim::{EventQueue, NetworkModel};
//!
//! let mut q = EventQueue::new();
//! q.schedule(2.0, "world");
//! q.schedule(1.0, "hello");
//! assert_eq!(q.pop(), Some((1.0, "hello")));
//! assert_eq!(q.pop(), Some((2.0, "world")));
//!
//! let net = NetworkModel::fast_ethernet();
//! assert!(net.delay(1500) > net.latency());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod network;
mod queue;

pub use metrics::{NodeMetrics, SimReport};
pub use network::{ClusterSpec, NetworkModel, NodeSpec};
pub use queue::EventQueue;
