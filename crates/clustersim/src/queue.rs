use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A pending event at a virtual time.
struct Entry<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest event.
        // Times are asserted finite at insertion, so partial_cmp is total.
        other
            .time
            .partial_cmp(&self.time)
            .expect("times are finite")
            .then(other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A virtual-time event queue: events come out in non-decreasing time
/// order; events scheduled for the same instant come out in scheduling
/// order (FIFO), which keeps simulations deterministic.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at virtual time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// The time of the most recently popped event (zero initially).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules `event` at absolute virtual `time`.
    ///
    /// # Panics
    ///
    /// Panics when `time` is non-finite or earlier than [`now`](Self::now)
    /// — an event cannot be caused by the future.
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(time.is_finite(), "event time must be finite");
        assert!(
            time >= self.now,
            "cannot schedule into the past ({time} < {})",
            self.now
        );
        self.heap.push(Entry {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedules `event` `delay` after the current time.
    ///
    /// # Panics
    ///
    /// Panics when `delay` is negative or non-finite.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        assert!(delay.is_finite() && delay >= 0.0, "invalid delay {delay}");
        let time = self.now + delay;
        self.heap.push(Entry {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Removes and returns the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let e = self.heap.pop()?;
        self.now = e.time;
        Some((e.time, e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 'c');
        q.schedule(1.0, 'a');
        q.schedule(2.0, 'b');
        assert_eq!(q.pop(), Some((1.0, 'a')));
        assert_eq!(q.pop(), Some((2.0, 'b')));
        assert_eq!(q.pop(), Some((3.0, 'c')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(5.0, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((5.0, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(2.5, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 2.5);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(2.0, "first");
        q.pop();
        q.schedule_in(1.5, "second");
        assert_eq!(q.pop(), Some((3.5, "second")));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(2.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_times() {
        EventQueue::new().schedule(f64::NAN, ());
    }

    #[test]
    fn len_tracks_pending() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, ());
        q.schedule(1.0, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
