//! Byte codec for ultrametric trees in checkpoint and cache payloads.
//!
//! Checkpoint files (`mutree_bnb::checkpoint`) carry an opaque solution
//! payload, and the engine's group-solve cache stores memoized optima;
//! for MUT solves both payloads are an [`UltrametricTree`] in the
//! **original** (respectively canonical) matrix indexing, serialized by
//! this module. The encoding is a pre-order walk: a leaf is a tag byte
//! plus its taxon as `u64` little-endian; an internal node is a tag byte,
//! its height as IEEE-754 bits little-endian, then the two child
//! encodings. Bit-exact heights round-trip, so a resumed search warm
//! starts from *exactly* the incumbent the interrupted run had.
//!
//! The decoder validates structure (join heights must dominate subtree
//! heights, taxa must be distinct) and returns `None` rather than
//! panicking on malformed bytes — the checksum in the checkpoint file
//! catches corruption first, but the decoder never trusts that.

use crate::{NodeId, NodeKind, UltrametricTree};

const TAG_LEAF: u8 = 0;
const TAG_INTERNAL: u8 = 1;

/// Serializes `tree` into the checkpoint payload byte layout.
pub fn encode_tree(tree: &UltrametricTree) -> Vec<u8> {
    fn enc(tree: &UltrametricTree, id: NodeId, out: &mut Vec<u8>) {
        match tree.kind(id) {
            NodeKind::Leaf(taxon) => {
                out.push(TAG_LEAF);
                out.extend_from_slice(&(taxon as u64).to_le_bytes());
            }
            NodeKind::Internal(a, b) => {
                out.push(TAG_INTERNAL);
                out.extend_from_slice(&tree.height_of(id).to_bits().to_le_bytes());
                enc(tree, a, out);
                enc(tree, b, out);
            }
        }
    }
    let mut out = Vec::new();
    enc(tree, tree.root(), &mut out);
    out
}

/// Parses a payload produced by [`encode_tree`]. Returns `None` on any
/// structural problem: truncation, trailing bytes, unknown tags, a join
/// height below a subtree height, or duplicate taxa.
pub fn decode_tree(bytes: &[u8]) -> Option<UltrametricTree> {
    fn dec(bytes: &[u8], pos: &mut usize) -> Option<UltrametricTree> {
        let tag = *bytes.get(*pos)?;
        *pos += 1;
        let mut take8 = || -> Option<[u8; 8]> {
            let s = bytes.get(*pos..*pos + 8)?;
            *pos += 8;
            s.try_into().ok()
        };
        match tag {
            TAG_LEAF => {
                let taxon = u64::from_le_bytes(take8()?);
                Some(UltrametricTree::leaf(usize::try_from(taxon).ok()?))
            }
            TAG_INTERNAL => {
                let height = f64::from_bits(u64::from_le_bytes(take8()?));
                let left = dec(bytes, pos)?;
                let right = dec(bytes, pos)?;
                // `join` would panic on these; the decoder refuses instead.
                if !(height >= left.height() && height >= right.height()) {
                    return None;
                }
                if left.taxa().any(|t| right.leaf_of(t).is_some()) {
                    return None;
                }
                Some(UltrametricTree::join(left, right, height))
            }
            _ => None,
        }
    }
    let mut pos = 0;
    let tree = dec(bytes, &mut pos)?;
    (pos == bytes.len()).then_some(tree)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> UltrametricTree {
        UltrametricTree::join(
            UltrametricTree::cherry(0, 3, 1.5),
            UltrametricTree::join(
                UltrametricTree::cherry(1, 4, 0.25),
                UltrametricTree::leaf(2),
                2.0,
            ),
            7.125,
        )
    }

    #[test]
    fn round_trips_bit_exactly() {
        let t = sample();
        let decoded = decode_tree(&encode_tree(&t)).unwrap();
        assert_eq!(decoded.weight().to_bits(), t.weight().to_bits());
        assert_eq!(decoded.height().to_bits(), t.height().to_bits());
        assert_eq!(
            decoded.taxa().collect::<Vec<_>>(),
            t.taxa().collect::<Vec<_>>()
        );
        for a in t.taxa() {
            for b in t.taxa().filter(|&b| b > a) {
                assert_eq!(
                    decoded.leaf_distance(a, b).unwrap().to_bits(),
                    t.leaf_distance(a, b).unwrap().to_bits(),
                    "distance ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn single_leaf_round_trips() {
        let t = UltrametricTree::leaf(7);
        let decoded = decode_tree(&encode_tree(&t)).unwrap();
        assert_eq!(decoded.taxa().collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn malformed_bytes_are_rejected_not_panicked() {
        let good = encode_tree(&sample());
        // Truncations at every prefix length.
        for len in 0..good.len() {
            assert!(decode_tree(&good[..len]).is_none(), "prefix {len}");
        }
        // Trailing garbage.
        let mut long = good.clone();
        long.push(0);
        assert!(decode_tree(&long).is_none());
        // Unknown tag.
        let mut bad = good.clone();
        bad[0] = 9;
        assert!(decode_tree(&bad).is_none());
        // A join height below its subtrees (flip sign bit of the root
        // height) must be refused, not panicked on.
        let mut neg = good;
        neg[8] ^= 0x80;
        assert!(decode_tree(&neg).is_none());
        // Duplicate taxa.
        let dup = encode_tree(&UltrametricTree::cherry(0, 1, 1.0));
        let mut twice = vec![TAG_INTERNAL];
        twice.extend_from_slice(&2.0f64.to_bits().to_le_bytes());
        twice.extend_from_slice(&dup);
        twice.extend_from_slice(&dup);
        assert!(decode_tree(&twice).is_none());
    }
}
