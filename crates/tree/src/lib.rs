//! Ultrametric evolutionary trees.
//!
//! An *ultrametric tree* (UT) is a rooted, leaf-labeled, edge-weighted
//! binary tree in which every internal node lies at the same distance from
//! all leaves of its subtree — the molecular-clock assumption. This crate
//! provides:
//!
//! * [`UltrametricTree`] — the tree type, stored as internal-node *heights*
//!   (the distance from a node down to any leaf below it), from which all
//!   edge lengths, leaf-pair distances and the total weight `ω(T)` follow;
//! * [`UltrametricTree::fit_heights`] — the minimal height assignment for a
//!   fixed topology against a distance matrix (the inner objective of the
//!   minimum ultrametric tree problem);
//! * [`cluster`] — agglomerative construction under [`Linkage::Maximum`]
//!   (**UPGMM**, whose trees are always feasible upper bounds for the MUT
//!   problem), [`Linkage::Average`] (UPGMA) and [`Linkage::Minimum`]
//!   (single linkage);
//! * [`newick`] — Newick serialization and parsing;
//! * [`triples`] — the 3-3 relationship between a matrix and a topology
//!   (Definition 11 of the companion paper) and Fan's contradiction count.
//!
//! ```
//! use mutree_distmat::DistanceMatrix;
//! use mutree_tree::{cluster, Linkage};
//!
//! let m = DistanceMatrix::from_rows(&[
//!     vec![0.0, 2.0, 8.0, 8.0],
//!     vec![2.0, 0.0, 8.0, 8.0],
//!     vec![8.0, 8.0, 0.0, 4.0],
//!     vec![8.0, 8.0, 4.0, 0.0],
//! ]).unwrap();
//! let t = cluster(&m, Linkage::Maximum);
//! assert!(t.is_feasible_for(&m, 1e-9));
//! assert_eq!(t.weight(), 11.0); // this matrix is ultrametric: UPGMM is exact
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod error;
mod tree;

pub mod codec;
pub mod compare;
pub mod newick;
pub mod nj;
pub mod triples;

pub use cluster::{cluster, Linkage};
pub use error::TreeError;
pub use tree::{NodeId, NodeKind, UltrametricTree};
