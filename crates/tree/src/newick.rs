//! Newick serialization and parsing for ultrametric trees.
//!
//! [`to_newick`] writes the standard parenthesized format with branch
//! lengths (`((A:1,B:1):3,C:4);`). [`parse_newick`] reads it back,
//! verifying that the tree is binary and that all leaves are equidistant
//! from the root (the ultrametric property); taxon ids are assigned in
//! order of appearance and the leaf names are returned alongside.

use crate::{NodeId, NodeKind, TreeError, UltrametricTree};

/// Formats the tree in Newick notation. `name` maps a taxon id to its
/// printed label.
pub fn to_newick_with<F: Fn(usize) -> String>(tree: &UltrametricTree, name: F) -> String {
    fn rec<F: Fn(usize) -> String>(tree: &UltrametricTree, id: NodeId, name: &F, out: &mut String) {
        match tree.kind(id) {
            NodeKind::Leaf(t) => out.push_str(&name(t)),
            NodeKind::Internal(a, b) => {
                out.push('(');
                rec(tree, a, name, out);
                out.push(',');
                rec(tree, b, name, out);
                out.push(')');
            }
        }
        if let Some(p) = tree.parent(id) {
            let len = tree.height_of(p) - tree.height_of(id);
            out.push_str(&format!(":{len}"));
        }
    }
    let mut out = String::new();
    rec(tree, tree.root(), &name, &mut out);
    out.push(';');
    out
}

/// Formats the tree in Newick notation with default `t<taxon>` labels.
pub fn to_newick(tree: &UltrametricTree) -> String {
    to_newick_with(tree, |t| format!("t{t}"))
}

/// Parses a Newick string into an ultrametric tree.
///
/// Taxon `k` is the `k`-th leaf encountered (left to right); the returned
/// vector holds the original leaf names in taxon order. Branch lengths are
/// required everywhere except above the root.
///
/// # Errors
///
/// [`TreeError::Parse`] on syntax errors, [`TreeError::NotUltrametric`]
/// when the tree is not binary or leaf depths differ by more than `1e-6`
/// relative.
pub fn parse_newick(input: &str) -> Result<(UltrametricTree, Vec<String>), TreeError> {
    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    enum Parsed {
        Leaf { name: String },
        Internal { children: Vec<(Parsed, f64)> },
    }

    impl<'a> Parser<'a> {
        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }
        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b) if b.is_ascii_whitespace()) {
                self.pos += 1;
            }
        }
        fn expect(&mut self, b: u8) -> Result<(), TreeError> {
            self.skip_ws();
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(TreeError::Parse {
                    at: self.pos,
                    message: format!("expected {:?}", b as char),
                })
            }
        }
        fn name(&mut self) -> String {
            self.skip_ws();
            let start = self.pos;
            while let Some(b) = self.peek() {
                if matches!(b, b'(' | b')' | b',' | b':' | b';') || b.is_ascii_whitespace() {
                    break;
                }
                self.pos += 1;
            }
            String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned()
        }
        fn length(&mut self) -> Result<f64, TreeError> {
            self.skip_ws();
            let start = self.pos;
            while let Some(b) = self.peek() {
                if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') || b.is_ascii_digit() {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .ok_or(TreeError::Parse {
                    at: start,
                    message: "expected a branch length".into(),
                })
        }
        fn node(&mut self) -> Result<Parsed, TreeError> {
            self.skip_ws();
            if self.peek() == Some(b'(') {
                self.pos += 1;
                let mut children = Vec::new();
                loop {
                    let child = self.node()?;
                    self.expect(b':')?;
                    let len = self.length()?;
                    if !len.is_finite() || len < 0.0 {
                        return Err(TreeError::Parse {
                            at: self.pos,
                            message: format!("invalid branch length {len}"),
                        });
                    }
                    children.push((child, len));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b')') => {
                            self.pos += 1;
                            break;
                        }
                        _ => {
                            return Err(TreeError::Parse {
                                at: self.pos,
                                message: "expected ',' or ')'".into(),
                            })
                        }
                    }
                }
                // An internal node may carry a (ignored) label.
                let _ = self.name();
                Ok(Parsed::Internal { children })
            } else {
                let name = self.name();
                if name.is_empty() {
                    return Err(TreeError::Parse {
                        at: self.pos,
                        message: "expected a leaf name or '('".into(),
                    });
                }
                Ok(Parsed::Leaf { name })
            }
        }
    }

    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let root = p.node()?;
    // Optional root branch length, then the mandatory semicolon.
    p.skip_ws();
    if p.peek() == Some(b':') {
        p.pos += 1;
        let _ = p.length()?;
    }
    p.expect(b';')?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(TreeError::Parse {
            at: p.pos,
            message: "trailing input after ';'".into(),
        });
    }

    // First pass: leaf depths (distance from root) to find the tree height.
    fn max_depth(node: &Parsed, acc: f64) -> f64 {
        match node {
            Parsed::Leaf { .. } => acc,
            Parsed::Internal { children } => children
                .iter()
                .map(|(c, len)| max_depth(c, acc + len))
                .fold(0.0, f64::max),
        }
    }
    let height = max_depth(&root, 0.0);

    // Second pass: build, checking binarity and equal leaf depths.
    fn build(
        node: &Parsed,
        depth: f64,
        height: f64,
        names: &mut Vec<String>,
    ) -> Result<UltrametricTree, TreeError> {
        match node {
            Parsed::Leaf { name } => {
                let tol = 1e-6 * (1.0 + height.abs());
                if (height - depth).abs() > tol {
                    return Err(TreeError::NotUltrametric {
                        message: format!("leaf {name:?} at depth {depth}, expected {height}"),
                    });
                }
                let taxon = names.len();
                names.push(name.clone());
                Ok(UltrametricTree::leaf(taxon))
            }
            Parsed::Internal { children } => {
                if children.len() != 2 {
                    return Err(TreeError::NotUltrametric {
                        message: format!(
                            "internal node has {} children, expected 2",
                            children.len()
                        ),
                    });
                }
                let left = build(&children[0].0, depth + children[0].1, height, names)?;
                let right = build(&children[1].0, depth + children[1].1, height, names)?;
                let h = height - depth;
                let h = h.max(left.height()).max(right.height());
                Ok(UltrametricTree::join(left, right, h))
            }
        }
    }
    let mut names = Vec::new();
    let tree = build(&root, 0.0, height, &mut names)?;
    Ok((tree, names))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutree_distmat::DistanceMatrix;

    fn fitted4() -> UltrametricTree {
        let m = DistanceMatrix::from_rows(&[
            vec![0.0, 2.0, 8.0, 8.0],
            vec![2.0, 0.0, 8.0, 8.0],
            vec![8.0, 8.0, 0.0, 4.0],
            vec![8.0, 8.0, 4.0, 0.0],
        ])
        .unwrap();
        crate::cluster(&m, crate::Linkage::Maximum)
    }

    #[test]
    fn formats_with_branch_lengths() {
        let t = UltrametricTree::cherry(0, 1, 2.0);
        assert_eq!(to_newick(&t), "(t0:2,t1:2);");
    }

    #[test]
    fn custom_names() {
        let t = UltrametricTree::cherry(0, 1, 2.0);
        let s = to_newick_with(&t, |t| ["human", "chimp"][t].to_string());
        assert_eq!(s, "(human:2,chimp:2);");
    }

    #[test]
    fn roundtrip_preserves_distances() {
        let t = fitted4();
        let text = to_newick(&t);
        let (parsed, names) = parse_newick(&text).unwrap();
        assert_eq!(parsed.leaf_count(), 4);
        assert_eq!(names.len(), 4);
        assert!(parsed.validate().is_ok());
        // Distances must match under the name correspondence.
        let orig_taxon_of = |name: &str| name[1..].parse::<usize>().unwrap();
        for (a, na) in names.iter().enumerate() {
            for (b, nb) in names.iter().enumerate().skip(a + 1) {
                let want = t
                    .leaf_distance(orig_taxon_of(na), orig_taxon_of(nb))
                    .unwrap();
                let got = parsed.leaf_distance(a, b).unwrap();
                assert!((want - got).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn parses_whitespace_and_internal_labels() {
        let (t, names) = parse_newick("( (A:1, B:1)anc:3 , C:4 ) root ;").unwrap();
        assert_eq!(names, vec!["A", "B", "C"]);
        assert_eq!(t.height(), 4.0);
        assert_eq!(t.leaf_distance(0, 1).unwrap(), 2.0);
    }

    #[test]
    fn rejects_non_ultrametric() {
        let err = parse_newick("((A:1,B:2):3,C:4);").unwrap_err();
        assert!(matches!(err, TreeError::NotUltrametric { .. }));
    }

    #[test]
    fn rejects_multifurcation() {
        let err = parse_newick("(A:1,B:1,C:1);").unwrap_err();
        assert!(matches!(err, TreeError::NotUltrametric { .. }));
    }

    #[test]
    fn rejects_syntax_errors() {
        for bad in [
            "",
            "(A:1,B:1)",
            "(A:1,B:1;",
            "(A,B);",
            "(A:1,B:1)); ",
            "(A:1,B:1);x",
        ] {
            assert!(parse_newick(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn scientific_notation_lengths() {
        let (t, _) = parse_newick("(A:1e1,B:1E1);").unwrap();
        assert_eq!(t.height(), 10.0);
    }
}
