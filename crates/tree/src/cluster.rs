use mutree_distmat::DistanceMatrix;

use crate::UltrametricTree;

/// The linkage rule of the agglomerative clustering in [`cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Complete linkage — **UPGMM** (Unweighted Pair Group Method with
    /// Maximum), the variant Wu–Chao–Tang use for the initial upper bound:
    /// merge heights are half the *largest* cross-cluster distance, so the
    /// resulting tree distances dominate the matrix and the tree is a
    /// feasible solution of the MUT problem.
    Maximum,
    /// Arithmetic-mean linkage — classic **UPGMA**. Not feasibility-
    /// preserving, but the standard biologist's heuristic; used for
    /// comparison.
    Average,
    /// Single linkage: merge heights follow the minimum spanning tree.
    Minimum,
}

/// Builds an ultrametric tree by agglomerative clustering under the given
/// linkage. Always merges the currently closest pair of clusters; the merge
/// node's height is half the linkage value (clamped to stay monotone under
/// floating-point noise). Ties break deterministically toward smaller
/// cluster indices.
///
/// Runs in `O(n³)` time, `O(n²)` space — matrices where exact search is
/// conceivable are far smaller than where this matters.
///
/// # Panics
///
/// Panics when the matrix has fewer than two taxa (impossible for a
/// well-formed [`DistanceMatrix`]).
pub fn cluster(m: &DistanceMatrix, linkage: Linkage) -> UltrametricTree {
    let n = m.len();
    // Active clusters: their pairwise linkage matrix and partial trees.
    let mut link: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..n).map(|j| m.get(i, j)).collect())
        .collect();
    let mut size: Vec<usize> = vec![1; n];
    let mut alive: Vec<bool> = vec![true; n];
    let mut trees: Vec<Option<UltrametricTree>> =
        (0..n).map(|t| Some(UltrametricTree::leaf(t))).collect();

    for _ in 1..n {
        // Closest live pair.
        let mut best: Option<(usize, usize)> = None;
        for i in 0..n {
            if !alive[i] {
                continue;
            }
            for j in (i + 1)..n {
                if !alive[j] {
                    continue;
                }
                match best {
                    None => best = Some((i, j)),
                    Some((bi, bj)) if link[i][j] < link[bi][bj] => best = Some((i, j)),
                    _ => {}
                }
            }
        }
        let (i, j) = best.expect("at least two live clusters remain");
        let d = link[i][j];
        let left = trees[i].take().expect("live cluster has a tree");
        let right = trees[j].take().expect("live cluster has a tree");
        let height = (d / 2.0).max(left.height()).max(right.height());
        trees[i] = Some(UltrametricTree::join(left, right, height));
        alive[j] = false;
        for k in 0..n {
            if alive[k] && k != i {
                let dik = link[i][k];
                let djk = link[j][k];
                let merged = match linkage {
                    Linkage::Maximum => dik.max(djk),
                    Linkage::Minimum => dik.min(djk),
                    Linkage::Average => {
                        (size[i] as f64 * dik + size[j] as f64 * djk) / (size[i] + size[j]) as f64
                    }
                };
                link[i][k] = merged;
                link[k][i] = merged;
            }
        }
        size[i] += size[j];
    }
    trees
        .into_iter()
        .flatten()
        .next()
        .expect("exactly one cluster remains")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn um4() -> DistanceMatrix {
        DistanceMatrix::from_rows(&[
            vec![0.0, 2.0, 8.0, 8.0],
            vec![2.0, 0.0, 8.0, 8.0],
            vec![8.0, 8.0, 0.0, 4.0],
            vec![8.0, 8.0, 4.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn exact_on_ultrametric_input_all_linkages() {
        let m = um4();
        for linkage in [Linkage::Maximum, Linkage::Average, Linkage::Minimum] {
            let t = cluster(&m, linkage);
            assert!(t.validate().is_ok());
            assert_eq!(t.distance_matrix(), m, "{linkage:?}");
        }
    }

    #[test]
    fn upgmm_is_feasible_on_non_ultrametric_input() {
        let m = DistanceMatrix::from_rows(&[
            vec![0.0, 3.0, 7.0, 10.0],
            vec![3.0, 0.0, 6.0, 9.0],
            vec![7.0, 6.0, 0.0, 5.0],
            vec![10.0, 9.0, 5.0, 0.0],
        ])
        .unwrap();
        let t = cluster(&m, Linkage::Maximum);
        assert!(t.is_feasible_for(&m, 1e-9));
        // UPGMA generally is not feasible here.
        let a = cluster(&m, Linkage::Average);
        assert!(!a.is_feasible_for(&m, 1e-9));
    }

    #[test]
    fn single_linkage_height_matches_largest_mst_edge() {
        let m = DistanceMatrix::from_rows(&[
            vec![0.0, 1.0, 5.0],
            vec![1.0, 0.0, 3.0],
            vec![5.0, 3.0, 0.0],
        ])
        .unwrap();
        let t = cluster(&m, Linkage::Minimum);
        // MST edges: 1 and 3; root height = 3/2.
        assert_eq!(t.height(), 1.5);
    }

    #[test]
    fn upgmm_weight_upper_bounds_every_linkage_weight_feasibly() {
        // On random-ish input the UPGMM tree is feasible; its weight is the
        // classic initial upper bound.
        let m = DistanceMatrix::from_rows(&[
            vec![0.0, 4.0, 2.0, 9.0, 5.0],
            vec![4.0, 0.0, 4.0, 9.0, 5.0],
            vec![2.0, 4.0, 0.0, 9.0, 5.0],
            vec![9.0, 9.0, 9.0, 0.0, 9.0],
            vec![5.0, 5.0, 5.0, 9.0, 0.0],
        ])
        .unwrap();
        let t = cluster(&m, Linkage::Maximum);
        assert!(t.is_feasible_for(&m, 1e-9));
        assert!(t.weight() > 0.0);
        assert_eq!(t.leaf_count(), 5);
    }

    #[test]
    fn two_taxa() {
        let m = DistanceMatrix::from_rows(&[vec![0.0, 6.0], vec![6.0, 0.0]]).unwrap();
        let t = cluster(&m, Linkage::Average);
        assert_eq!(t.height(), 3.0);
        assert_eq!(t.weight(), 6.0);
    }
}
