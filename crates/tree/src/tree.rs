use std::collections::BTreeMap;

use mutree_distmat::DistanceMatrix;

use crate::TreeError;

/// Index of a node within an [`UltrametricTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(usize);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// What a node is: a labeled leaf or an internal node with two children.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A leaf carrying a taxon id.
    Leaf(usize),
    /// An internal node with exactly two children.
    Internal(NodeId, NodeId),
}

#[derive(Debug, Clone)]
struct NodeData {
    kind: NodeKind,
    parent: Option<NodeId>,
    /// Distance from this node down to any leaf of its subtree. Zero for
    /// leaves; strictly positive and monotone increasing toward the root in
    /// a valid tree (non-strict: equal heights are allowed).
    height: f64,
}

/// A rooted, leaf-labeled, edge-weighted binary tree in which every
/// root-to-leaf path has the same length — an ultrametric tree.
///
/// The tree is stored via node *heights* rather than edge lengths: the
/// length of the edge from `parent(v)` to `v` is
/// `height(parent(v)) − height(v)`, the distance between two leaves is
/// `2 · height(lca)`, and the total weight is the sum of all edge lengths.
///
/// Taxa are arbitrary `usize` ids (they need not be contiguous), so
/// subtrees over a subset of species — as produced by the compact-set
/// decomposition — are first-class values that can later be
/// [grafted](UltrametricTree::graft) together.
#[derive(Debug, Clone)]
pub struct UltrametricTree {
    nodes: Vec<NodeData>,
    root: NodeId,
    leaf_of_taxon: BTreeMap<usize, NodeId>,
}

impl UltrametricTree {
    /// A single-leaf tree (height zero). Useful as the degenerate case of
    /// the decomposition pipeline.
    pub fn leaf(taxon: usize) -> Self {
        let nodes = vec![NodeData {
            kind: NodeKind::Leaf(taxon),
            parent: None,
            height: 0.0,
        }];
        let mut leaf_of_taxon = BTreeMap::new();
        leaf_of_taxon.insert(taxon, NodeId(0));
        UltrametricTree {
            nodes,
            root: NodeId(0),
            leaf_of_taxon,
        }
    }

    /// The two-leaf tree on distinct taxa `a` and `b` with the given root
    /// height.
    ///
    /// # Panics
    ///
    /// Panics when `a == b` or `height` is negative or non-finite.
    pub fn cherry(a: usize, b: usize, height: f64) -> Self {
        assert_ne!(a, b, "cherry taxa must be distinct");
        assert!(height.is_finite() && height >= 0.0, "invalid height");
        let nodes = vec![
            NodeData {
                kind: NodeKind::Leaf(a),
                parent: Some(NodeId(2)),
                height: 0.0,
            },
            NodeData {
                kind: NodeKind::Leaf(b),
                parent: Some(NodeId(2)),
                height: 0.0,
            },
            NodeData {
                kind: NodeKind::Internal(NodeId(0), NodeId(1)),
                parent: None,
                height,
            },
        ];
        let mut leaf_of_taxon = BTreeMap::new();
        leaf_of_taxon.insert(a, NodeId(0));
        leaf_of_taxon.insert(b, NodeId(1));
        UltrametricTree {
            nodes,
            root: NodeId(2),
            leaf_of_taxon,
        }
    }

    /// Joins two trees under a new root of the given height.
    ///
    /// # Panics
    ///
    /// Panics when the taxa overlap or `height` is below either root height.
    pub fn join(left: UltrametricTree, right: UltrametricTree, height: f64) -> Self {
        assert!(
            height >= left.height() && height >= right.height(),
            "join height must dominate both subtree heights"
        );
        let mut nodes = left.nodes;
        let offset = nodes.len();
        let mut leaf_of_taxon = left.leaf_of_taxon;
        for (taxon, id) in right.leaf_of_taxon {
            let prev = leaf_of_taxon.insert(taxon, NodeId(id.0 + offset));
            assert!(prev.is_none(), "taxon {taxon} appears in both trees");
        }
        nodes.extend(right.nodes.into_iter().map(|mut nd| {
            nd.parent = nd.parent.map(|p| NodeId(p.0 + offset));
            if let NodeKind::Internal(a, b) = nd.kind {
                nd.kind = NodeKind::Internal(NodeId(a.0 + offset), NodeId(b.0 + offset));
            }
            nd
        }));
        let new_root = NodeId(nodes.len());
        let left_root = left.root;
        let right_root = NodeId(right.root.0 + offset);
        nodes.push(NodeData {
            kind: NodeKind::Internal(left_root, right_root),
            parent: None,
            height,
        });
        nodes[left_root.0].parent = Some(new_root);
        nodes[right_root.0].parent = Some(new_root);
        UltrametricTree {
            nodes,
            root: new_root,
            leaf_of_taxon,
        }
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaf_of_taxon.len()
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The taxa at the leaves, ascending.
    pub fn taxa(&self) -> impl Iterator<Item = usize> + '_ {
        self.leaf_of_taxon.keys().copied()
    }

    /// The leaf node carrying `taxon`, if present.
    pub fn leaf_of(&self, taxon: usize) -> Option<NodeId> {
        self.leaf_of_taxon.get(&taxon).copied()
    }

    /// The kind of a node.
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.nodes[id.0].kind
    }

    /// A node's parent, or `None` for the root.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.0].parent
    }

    /// A node's height (distance down to any leaf of its subtree).
    pub fn height_of(&self, id: NodeId) -> f64 {
        self.nodes[id.0].height
    }

    /// The root height — half the largest leaf-pair distance.
    pub fn height(&self) -> f64 {
        self.nodes[self.root.0].height
    }

    /// Iterates `(parent, child, length)` over all edges. Nodes detached
    /// by [`graft`](Self::graft) have no parent and are skipped.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.nodes.iter().enumerate().filter_map(move |(i, nd)| {
            nd.parent.map(|p| {
                let len = self.nodes[p.0].height - nd.height;
                (p, NodeId(i), len)
            })
        })
    }

    /// Total edge weight `ω(T)`.
    pub fn weight(&self) -> f64 {
        self.edges().map(|(_, _, len)| len).sum()
    }

    /// All node ids in a post-order traversal (children before parents).
    pub fn post_order(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        // Iterative post-order with an explicit stack.
        let mut stack = vec![(self.root, false)];
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                out.push(id);
                continue;
            }
            match self.nodes[id.0].kind {
                NodeKind::Leaf(_) => out.push(id),
                NodeKind::Internal(a, b) => {
                    stack.push((id, true));
                    stack.push((b, false));
                    stack.push((a, false));
                }
            }
        }
        out
    }

    /// The lowest common ancestor of two taxa.
    ///
    /// # Errors
    ///
    /// [`TreeError::UnknownTaxon`] when either taxon is absent.
    pub fn lca(&self, a: usize, b: usize) -> Result<NodeId, TreeError> {
        let la = self
            .leaf_of(a)
            .ok_or(TreeError::UnknownTaxon { taxon: a })?;
        let lb = self
            .leaf_of(b)
            .ok_or(TreeError::UnknownTaxon { taxon: b })?;
        if a == b {
            return Ok(la);
        }
        let mut seen = std::collections::HashSet::new();
        let mut cur = Some(la);
        while let Some(id) = cur {
            seen.insert(id);
            cur = self.nodes[id.0].parent;
        }
        let mut cur = Some(lb);
        while let Some(id) = cur {
            if seen.contains(&id) {
                return Ok(id);
            }
            cur = self.nodes[id.0].parent;
        }
        unreachable!("two leaves of one tree always share the root")
    }

    /// Tree distance between two taxa: `2 · height(lca)`.
    ///
    /// # Errors
    ///
    /// [`TreeError::UnknownTaxon`] when either taxon is absent.
    pub fn leaf_distance(&self, a: usize, b: usize) -> Result<f64, TreeError> {
        if a == b {
            return Ok(0.0);
        }
        Ok(2.0 * self.nodes[self.lca(a, b)?.0].height)
    }

    /// The matrix of pairwise leaf distances. Requires the taxa to be
    /// exactly `0..leaf_count()`; the result is always ultrametric.
    ///
    /// # Panics
    ///
    /// Panics when the taxa are not contiguous from zero or there are fewer
    /// than two leaves.
    pub fn distance_matrix(&self) -> DistanceMatrix {
        let n = self.leaf_count();
        assert!(self.taxa().eq(0..n), "distance_matrix requires taxa 0..{n}");
        let mut m = DistanceMatrix::zeros(n).expect("two or more leaves required");
        // One post-order pass: at each internal node, all pairs split by it
        // are at distance 2 * height.
        let mut leafsets: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for id in self.post_order() {
            match self.nodes[id.0].kind {
                NodeKind::Leaf(t) => leafsets[id.0].push(t),
                NodeKind::Internal(a, b) => {
                    let d = 2.0 * self.nodes[id.0].height;
                    for &x in &leafsets[a.0] {
                        for &y in &leafsets[b.0] {
                            m.set(x, y, d);
                        }
                    }
                    let bset = std::mem::take(&mut leafsets[b.0]);
                    let aset = std::mem::take(&mut leafsets[a.0]);
                    leafsets[id.0].extend(aset);
                    leafsets[id.0].extend(bset);
                }
            }
        }
        m
    }

    /// Whether this tree is a *feasible* ultrametric tree for `m`:
    /// `d_T(i, j) ≥ M[i, j] − tol` for every leaf pair. (The MUT problem
    /// minimizes weight over feasible trees.)
    ///
    /// # Panics
    ///
    /// Panics when some taxon of the tree is outside the matrix.
    pub fn is_feasible_for(&self, m: &DistanceMatrix, tol: f64) -> bool {
        let taxa: Vec<usize> = self.taxa().collect();
        for (ai, &a) in taxa.iter().enumerate() {
            for &b in &taxa[ai + 1..] {
                let d = self
                    .leaf_distance(a, b)
                    .expect("taxa listed by the tree exist");
                if d + tol < m.get(a, b) {
                    return false;
                }
            }
        }
        true
    }

    /// Assigns the minimal heights that make the tree feasible for `m`
    /// while keeping the current topology, and returns the resulting
    /// weight. This is the exact inner optimum: every internal node gets
    /// `max(max cross-pair M/2, children heights)`.
    ///
    /// # Panics
    ///
    /// Panics when some taxon of the tree is outside the matrix.
    pub fn fit_heights(&mut self, m: &DistanceMatrix) -> f64 {
        let order = self.post_order();
        let mut leafsets: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for id in order {
            match self.nodes[id.0].kind {
                NodeKind::Leaf(t) => {
                    assert!(t < m.len(), "taxon {t} outside matrix of size {}", m.len());
                    self.nodes[id.0].height = 0.0;
                    leafsets[id.0].push(t);
                }
                NodeKind::Internal(a, b) => {
                    let mut h = self.nodes[a.0].height.max(self.nodes[b.0].height);
                    for &x in &leafsets[a.0] {
                        for &y in &leafsets[b.0] {
                            h = h.max(m.get(x, y) / 2.0);
                        }
                    }
                    self.nodes[id.0].height = h;
                    let bset = std::mem::take(&mut leafsets[b.0]);
                    let aset = std::mem::take(&mut leafsets[a.0]);
                    leafsets[id.0].extend(aset);
                    leafsets[id.0].extend(bset);
                }
            }
        }
        self.weight()
    }

    /// Inserts a new leaf for `taxon` by splitting the edge above node `on`
    /// (when `on` is the root, a new root is created above it). Heights of
    /// the new internal node are provisional; call
    /// [`fit_heights`](Self::fit_heights) afterwards.
    ///
    /// # Panics
    ///
    /// Panics when `taxon` is already present.
    pub fn insert_leaf(&mut self, taxon: usize, on: NodeId) {
        assert!(
            !self.leaf_of_taxon.contains_key(&taxon),
            "taxon {taxon} is already in the tree"
        );
        let leaf = NodeId(self.nodes.len());
        self.nodes.push(NodeData {
            kind: NodeKind::Leaf(taxon),
            parent: None, // set below
            height: 0.0,
        });
        let joint = NodeId(self.nodes.len());
        let parent = self.nodes[on.0].parent;
        let provisional = match parent {
            Some(p) => (self.nodes[p.0].height + self.nodes[on.0].height) / 2.0,
            None => self.nodes[on.0].height + 1.0,
        };
        self.nodes.push(NodeData {
            kind: NodeKind::Internal(on, leaf),
            parent,
            height: provisional,
        });
        self.nodes[leaf.0].parent = Some(joint);
        self.nodes[on.0].parent = Some(joint);
        match parent {
            Some(p) => {
                let NodeKind::Internal(a, b) = self.nodes[p.0].kind else {
                    unreachable!("parents are internal")
                };
                self.nodes[p.0].kind = if a == on {
                    NodeKind::Internal(joint, b)
                } else {
                    NodeKind::Internal(a, joint)
                };
            }
            None => self.root = joint,
        }
        self.leaf_of_taxon.insert(taxon, leaf);
    }

    /// Replaces the leaf carrying `taxon` with an entire subtree (the merge
    /// step of the compact-set pipeline). The subtree hangs from the
    /// replaced leaf's position, so its root height must not exceed the
    /// height of the leaf's parent.
    ///
    /// When the leaf is the whole tree, the subtree simply replaces it.
    ///
    /// # Errors
    ///
    /// [`TreeError::UnknownTaxon`] when `taxon` is absent,
    /// [`TreeError::GraftTooTall`] when the subtree does not fit under the
    /// attachment edge.
    ///
    /// # Panics
    ///
    /// Panics when the subtree shares taxa with the rest of this tree.
    pub fn graft(&mut self, taxon: usize, subtree: UltrametricTree) -> Result<(), TreeError> {
        let leaf = self
            .leaf_of(taxon)
            .ok_or(TreeError::UnknownTaxon { taxon })?;
        let parent = self.nodes[leaf.0].parent;
        if let Some(p) = parent {
            let attach_height = self.nodes[p.0].height;
            if subtree.height() > attach_height {
                return Err(TreeError::GraftTooTall {
                    subtree_height: subtree.height(),
                    attach_height,
                });
            }
        }
        if parent.is_none() {
            *self = subtree;
            return Ok(());
        }
        self.leaf_of_taxon.remove(&taxon);
        let offset = self.nodes.len();
        for (t, id) in &subtree.leaf_of_taxon {
            let prev = self.leaf_of_taxon.insert(*t, NodeId(id.0 + offset));
            assert!(prev.is_none(), "taxon {t} already present in host tree");
        }
        let sub_root = NodeId(subtree.root.0 + offset);
        self.nodes.extend(subtree.nodes.into_iter().map(|mut nd| {
            nd.parent = nd.parent.map(|p| NodeId(p.0 + offset));
            if let NodeKind::Internal(a, b) = nd.kind {
                nd.kind = NodeKind::Internal(NodeId(a.0 + offset), NodeId(b.0 + offset));
            }
            nd
        }));
        let p = parent.expect("non-root leaf has a parent");
        self.nodes[sub_root.0].parent = Some(p);
        let NodeKind::Internal(a, b) = self.nodes[p.0].kind else {
            unreachable!("parents are internal")
        };
        self.nodes[p.0].kind = if a == leaf {
            NodeKind::Internal(sub_root, b)
        } else {
            NodeKind::Internal(a, sub_root)
        };
        // The replaced leaf node stays allocated but unreachable; detach it
        // so edge iteration never counts its old parent edge. Ids are never
        // reused, so existing NodeIds stay valid.
        self.nodes[leaf.0].parent = None;
        Ok(())
    }

    /// Renames every taxon through `f`. Used to undo the maxmin relabeling
    /// after a search over a permuted matrix.
    ///
    /// # Panics
    ///
    /// Panics when `f` maps two taxa to the same id.
    pub fn map_taxa<F: FnMut(usize) -> usize>(&mut self, mut f: F) {
        let mut new_map = BTreeMap::new();
        for (taxon, id) in std::mem::take(&mut self.leaf_of_taxon) {
            let new_taxon = f(taxon);
            let NodeKind::Leaf(ref mut t) = self.nodes[id.0].kind else {
                unreachable!("leaf map points at leaves")
            };
            *t = new_taxon;
            let prev = new_map.insert(new_taxon, id);
            assert!(prev.is_none(), "taxon map is not injective");
        }
        self.leaf_of_taxon = new_map;
    }

    /// Checks the structural invariants: parent/child links agree, leaf
    /// heights are zero, heights never decrease toward the root, and the
    /// leaf map is exact. Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let mut reachable = vec![false; self.nodes.len()];
        let mut leaves_seen = 0usize;
        for id in self.post_order() {
            reachable[id.0] = true;
            let nd = &self.nodes[id.0];
            match nd.kind {
                NodeKind::Leaf(t) => {
                    leaves_seen += 1;
                    if nd.height != 0.0 {
                        return Err(format!("leaf {t} has height {}", nd.height));
                    }
                    if self.leaf_of(t) != Some(id) {
                        return Err(format!("leaf map wrong for taxon {t}"));
                    }
                }
                NodeKind::Internal(a, b) => {
                    for c in [a, b] {
                        if self.nodes[c.0].parent != Some(id) {
                            return Err(format!("child {} has wrong parent", c.0));
                        }
                        if self.nodes[c.0].height > nd.height {
                            return Err(format!(
                                "height inversion at node {} ({} above {})",
                                id.0, nd.height, self.nodes[c.0].height
                            ));
                        }
                    }
                }
            }
        }
        if self.nodes[self.root.0].parent.is_some() {
            return Err("root has a parent".into());
        }
        if leaves_seen != self.leaf_of_taxon.len() {
            return Err(format!(
                "leaf map has {} taxa but {} leaves are reachable",
                self.leaf_of_taxon.len(),
                leaves_seen
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn um4() -> DistanceMatrix {
        DistanceMatrix::from_rows(&[
            vec![0.0, 2.0, 8.0, 8.0],
            vec![2.0, 0.0, 8.0, 8.0],
            vec![8.0, 8.0, 0.0, 4.0],
            vec![8.0, 8.0, 4.0, 0.0],
        ])
        .unwrap()
    }

    /// Builds ((0,1),(2,3)) by insertion and fits to `um4`.
    fn fitted4() -> UltrametricTree {
        let mut t = UltrametricTree::cherry(0, 1, 1.0);
        let leaf0 = t.leaf_of(0).unwrap();
        let root = t.root();
        t.insert_leaf(2, root); // new root above everything
        t.insert_leaf(3, t.leaf_of(2).unwrap());
        let _ = leaf0;
        t.fit_heights(&um4());
        t
    }

    #[test]
    fn cherry_basics() {
        let t = UltrametricTree::cherry(3, 7, 2.5);
        assert_eq!(t.leaf_count(), 2);
        assert_eq!(t.height(), 2.5);
        assert_eq!(t.weight(), 5.0);
        assert_eq!(t.leaf_distance(3, 7).unwrap(), 5.0);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn fit_heights_recovers_ultrametric_exactly() {
        let t = fitted4();
        assert!(t.validate().is_ok());
        assert_eq!(t.height(), 4.0);
        assert_eq!(t.leaf_distance(0, 1).unwrap(), 2.0);
        assert_eq!(t.leaf_distance(2, 3).unwrap(), 4.0);
        assert_eq!(t.leaf_distance(0, 3).unwrap(), 8.0);
        // ω = (4-1)+(4-2) for the two internal edges + 1+1+2+2 for leaves.
        assert_eq!(t.weight(), 11.0);
        assert!(t.is_feasible_for(&um4(), 1e-9));
    }

    #[test]
    fn distance_matrix_roundtrip() {
        let t = fitted4();
        let m = t.distance_matrix();
        assert!(m.is_ultrametric(1e-9));
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(2, 3), 4.0);
        assert_eq!(m.get(1, 2), 8.0);
    }

    #[test]
    fn fit_heights_dominates_matrix_on_bad_topology() {
        // Pair the far taxa: topology ((0,2),(1,3)) against um4.
        let mut t = UltrametricTree::cherry(0, 2, 1.0);
        t.insert_leaf(1, t.root());
        t.insert_leaf(3, t.leaf_of(1).unwrap());
        let w = t.fit_heights(&um4());
        assert!(t.is_feasible_for(&um4(), 1e-9));
        // The good topology weighs 11; this one must be worse.
        assert!(w > 11.0);
    }

    #[test]
    fn lca_and_relations() {
        let t = fitted4();
        let l01 = t.lca(0, 1).unwrap();
        let l23 = t.lca(2, 3).unwrap();
        let l03 = t.lca(0, 3).unwrap();
        assert_eq!(t.height_of(l01), 1.0);
        assert_eq!(t.height_of(l23), 2.0);
        assert_eq!(l03, t.root());
        assert!(matches!(
            t.lca(0, 9),
            Err(TreeError::UnknownTaxon { taxon: 9 })
        ));
    }

    #[test]
    fn insert_leaf_on_internal_edge() {
        let mut t = UltrametricTree::cherry(0, 1, 1.0);
        t.insert_leaf(2, t.root());
        t.insert_leaf(3, t.lca(0, 1).unwrap()); // split the edge above (0,1)
        assert_eq!(t.leaf_count(), 4);
        assert!(t.validate().is_ok());
        // 3 now shares its LCA with {0,1} below the LCA with 2.
        let l03 = t.lca(0, 3).unwrap();
        let l02 = t.lca(0, 2).unwrap();
        assert!(t.height_of(l03) <= t.height_of(l02));
    }

    #[test]
    fn join_offsets_ids() {
        let a = UltrametricTree::cherry(0, 1, 1.0);
        let b = UltrametricTree::cherry(2, 3, 2.0);
        let t = UltrametricTree::join(a, b, 5.0);
        assert_eq!(t.leaf_count(), 4);
        assert_eq!(t.height(), 5.0);
        assert_eq!(t.leaf_distance(0, 3).unwrap(), 10.0);
        assert_eq!(t.leaf_distance(2, 3).unwrap(), 4.0);
        assert!(t.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "both trees")]
    fn join_rejects_shared_taxa() {
        let a = UltrametricTree::cherry(0, 1, 1.0);
        let b = UltrametricTree::cherry(1, 2, 1.0);
        let _ = UltrametricTree::join(a, b, 3.0);
    }

    #[test]
    fn graft_replaces_leaf() {
        let mut t = fitted4(); // heights: lca(0,1)=1, lca(2,3)=2, root 4
        let sub = UltrametricTree::cherry(10, 11, 1.5);
        t.graft(2, sub).unwrap();
        assert_eq!(t.leaf_count(), 5);
        assert!(t.leaf_of(2).is_none());
        assert_eq!(t.leaf_distance(10, 11).unwrap(), 3.0);
        // 10 hangs where 2 was: distance to 3 is the old 2-3 distance.
        assert_eq!(t.leaf_distance(10, 3).unwrap(), 4.0);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn graft_too_tall_is_rejected() {
        let mut t = fitted4();
        let sub = UltrametricTree::cherry(10, 11, 100.0);
        assert!(matches!(
            t.graft(2, sub),
            Err(TreeError::GraftTooTall { .. })
        ));
    }

    #[test]
    fn graft_onto_single_leaf_tree() {
        let mut t = UltrametricTree::leaf(5);
        t.graft(5, UltrametricTree::cherry(1, 2, 3.0)).unwrap();
        assert_eq!(t.leaf_count(), 2);
        assert_eq!(t.height(), 3.0);
    }

    #[test]
    fn map_taxa_relabels() {
        let mut t = fitted4();
        let perm = [9, 8, 7, 6];
        t.map_taxa(|old| perm[old]);
        assert_eq!(t.taxa().collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        assert_eq!(t.leaf_distance(9, 8).unwrap(), 2.0);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn post_order_visits_children_first() {
        let t = fitted4();
        let order = t.post_order();
        let pos: std::collections::HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        for id in &order {
            if let NodeKind::Internal(a, b) = t.kind(*id) {
                assert!(pos[&a] < pos[id]);
                assert!(pos[&b] < pos[id]);
            }
        }
        assert_eq!(order.len(), t.node_count());
    }
}
