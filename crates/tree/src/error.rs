use std::fmt;

/// Errors from tree construction and parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeError {
    /// The operation needs a leaf that is not in the tree.
    UnknownTaxon {
        /// The missing taxon.
        taxon: usize,
    },
    /// A grafted subtree is taller than the edge it must hang from.
    GraftTooTall {
        /// Height of the subtree being grafted.
        subtree_height: f64,
        /// Height of the attachment point (the parent of the replaced
        /// leaf); the graft must fit strictly below it.
        attach_height: f64,
    },
    /// Newick parse failure.
    Parse {
        /// Byte offset where parsing failed.
        at: usize,
        /// Human-readable description.
        message: String,
    },
    /// The parsed tree is not binary / not ultrametric.
    NotUltrametric {
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::UnknownTaxon { taxon } => write!(f, "taxon {taxon} is not in the tree"),
            TreeError::GraftTooTall {
                subtree_height,
                attach_height,
            } => write!(
                f,
                "cannot graft a subtree of height {subtree_height} under a node of height {attach_height}"
            ),
            TreeError::Parse { at, message } => write!(f, "newick parse error at byte {at}: {message}"),
            TreeError::NotUltrametric { message } => write!(f, "not an ultrametric tree: {message}"),
        }
    }
}

impl std::error::Error for TreeError {}
