//! Topological comparison of leaf-labeled trees.
//!
//! The Robinson–Foulds distance counts the clades (leaf subsets under an
//! internal node) present in one tree but not the other. Zero means the
//! topologies are identical; the maximum for two rooted binary trees on
//! `n` shared leaves is `2(n − 2)`. It is the standard way to score a
//! reconstructed phylogeny against the true genealogy.

use std::collections::BTreeSet;

use crate::{NodeKind, TreeError, UltrametricTree};

/// Collects the nontrivial clades of a tree: for every internal node
/// except the root, the sorted set of taxa below it, excluding singleton
/// leaves. Each clade is a sorted taxon list.
fn clades(tree: &UltrametricTree) -> BTreeSet<Vec<usize>> {
    let mut leafsets: Vec<Vec<usize>> = vec![Vec::new(); tree.node_count()];
    let mut out = BTreeSet::new();
    let root = tree.root();
    for id in tree.post_order() {
        match tree.kind(id) {
            NodeKind::Leaf(t) => leafsets[id.index()].push(t),
            NodeKind::Internal(a, b) => {
                let mut set = std::mem::take(&mut leafsets[a.index()]);
                set.extend(std::mem::take(&mut leafsets[b.index()]));
                set.sort_unstable();
                if id != root && set.len() >= 2 {
                    out.insert(set.clone());
                }
                leafsets[id.index()] = set;
            }
        }
    }
    out
}

/// The Robinson–Foulds distance between two trees on the same taxa: the
/// size of the symmetric difference of their nontrivial clade sets.
///
/// # Errors
///
/// [`TreeError::UnknownTaxon`] when the taxon sets differ (reported for
/// the first taxon present in one tree but not the other).
pub fn robinson_foulds(a: &UltrametricTree, b: &UltrametricTree) -> Result<usize, TreeError> {
    let ta: Vec<usize> = a.taxa().collect();
    let tb: Vec<usize> = b.taxa().collect();
    if ta != tb {
        let missing = ta
            .iter()
            .find(|t| !tb.contains(t))
            .or_else(|| tb.iter().find(|t| !ta.contains(t)))
            .copied()
            .unwrap_or(0);
        return Err(TreeError::UnknownTaxon { taxon: missing });
    }
    let ca = clades(a);
    let cb = clades(b);
    Ok(ca.symmetric_difference(&cb).count())
}

/// The Robinson–Foulds distance normalized by its maximum `2(n − 2)`,
/// in `[0, 1]`. Trees with fewer than 3 leaves are always at distance 0.
///
/// # Errors
///
/// [`TreeError::UnknownTaxon`] when the taxon sets differ.
pub fn robinson_foulds_normalized(
    a: &UltrametricTree,
    b: &UltrametricTree,
) -> Result<f64, TreeError> {
    let rf = robinson_foulds(a, b)?;
    let n = a.leaf_count();
    if n < 3 {
        return Ok(0.0);
    }
    Ok(rf as f64 / (2 * (n - 2)) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caterpillar(order: &[usize]) -> UltrametricTree {
        let mut t = UltrametricTree::cherry(order[0], order[1], 1.0);
        for (k, &taxon) in order.iter().enumerate().skip(2) {
            let root = t.root();
            t.insert_leaf(taxon, root);
            // Keep heights valid without a matrix: refit manually.
            let _ = k;
        }
        t
    }

    fn balanced4() -> UltrametricTree {
        UltrametricTree::join(
            UltrametricTree::cherry(0, 1, 1.0),
            UltrametricTree::cherry(2, 3, 1.0),
            2.0,
        )
    }

    #[test]
    fn identical_trees_are_at_distance_zero() {
        let t = balanced4();
        assert_eq!(robinson_foulds(&t, &t).unwrap(), 0);
        assert_eq!(robinson_foulds_normalized(&t, &t).unwrap(), 0.0);
    }

    #[test]
    fn different_pairings_differ_maximally_on_four_taxa() {
        let a = balanced4(); // clades {0,1}, {2,3}
        let b = UltrametricTree::join(
            UltrametricTree::cherry(0, 2, 1.0),
            UltrametricTree::cherry(1, 3, 1.0),
            2.0,
        ); // clades {0,2}, {1,3}
        assert_eq!(robinson_foulds(&a, &b).unwrap(), 4);
        assert_eq!(robinson_foulds_normalized(&a, &b).unwrap(), 1.0);
    }

    #[test]
    fn caterpillar_vs_balanced() {
        let a = balanced4();
        let c = caterpillar(&[0, 1, 2, 3]); // clades {0,1}, {0,1,2}
                                            // Shared clade {0,1}; unique: {2,3} vs {0,1,2} → RF = 2.
        assert_eq!(robinson_foulds(&a, &c).unwrap(), 2);
    }

    #[test]
    fn branch_lengths_do_not_matter() {
        let a = balanced4();
        let b = UltrametricTree::join(
            UltrametricTree::cherry(0, 1, 0.25),
            UltrametricTree::cherry(2, 3, 1.9),
            77.0,
        );
        assert_eq!(robinson_foulds(&a, &b).unwrap(), 0);
    }

    #[test]
    fn mismatched_taxa_error() {
        let a = balanced4();
        let b = UltrametricTree::cherry(0, 9, 1.0);
        assert!(matches!(
            robinson_foulds(&a, &b),
            Err(TreeError::UnknownTaxon { .. })
        ));
    }

    #[test]
    fn two_leaves_distance_zero() {
        let a = UltrametricTree::cherry(3, 5, 1.0);
        let b = UltrametricTree::cherry(3, 5, 9.0);
        assert_eq!(robinson_foulds(&a, &b).unwrap(), 0);
        assert_eq!(robinson_foulds_normalized(&a, &b).unwrap(), 0.0);
    }
}
