//! The 3-3 relationship between distance matrices and tree topologies.
//!
//! For any three species `i, j, k`, a binary rooted topology resolves
//! exactly one of them as the *close pair* — the pair whose lowest common
//! ancestor lies strictly below the (shared) LCA with the third. A distance
//! matrix nominates a close pair when one pairwise distance is strictly
//! smaller than both others. Definition 11 of the companion paper calls a
//! matrix and a topology *consistent* on a triple when the two nominations
//! agree, *contradictory* otherwise; Fan's evaluation measure counts the
//! contradictory triples of a constructed tree.
//!
//! The branch-and-bound search uses this relation as the *3-3 rule*: when a
//! matrix nominates a close pair for a triple, topologies resolving that
//! triple differently can be pruned (applied to the third inserted species
//! in the companion paper's Step 4, or to every insertion in the extended
//! mode this crate's consumers implement).

use mutree_distmat::DistanceMatrix;

use crate::UltrametricTree;

/// The pair of `{i, j, k}` resolved as closest by the tree topology: the
/// pair with the strictly lowest LCA. Returns `None` when a taxon is
/// missing from the tree or the triple is unresolved (impossible in a
/// binary tree with distinct taxa).
pub fn close_pair_in_tree(
    tree: &UltrametricTree,
    i: usize,
    j: usize,
    k: usize,
) -> Option<(usize, usize)> {
    let lij = tree.lca(i, j).ok()?;
    let lik = tree.lca(i, k).ok()?;
    let ljk = tree.lca(j, k).ok()?;
    // In a binary tree exactly two of the three LCAs coincide and the third
    // is a strict descendant of them.
    if lik == ljk && lij != lik {
        Some((i, j))
    } else if lij == ljk && lik != lij {
        Some((i, k))
    } else if lij == lik && ljk != lij {
        Some((j, k))
    } else {
        None
    }
}

/// The pair of `{i, j, k}` nominated as closest by the matrix: the pair
/// whose distance is strictly smaller than both other pairwise distances.
/// Returns `None` on ties (the matrix then does not constrain the triple).
pub fn close_pair_in_matrix(
    m: &DistanceMatrix,
    i: usize,
    j: usize,
    k: usize,
) -> Option<(usize, usize)> {
    let dij = m.get(i, j);
    let dik = m.get(i, k);
    let djk = m.get(j, k);
    if dij < dik && dij < djk {
        Some((i, j))
    } else if dik < dij && dik < djk {
        Some((i, k))
    } else if djk < dij && djk < dik {
        Some((j, k))
    } else {
        None
    }
}

/// Whether the tree resolves the triple the way the matrix nominates.
/// Triples the matrix leaves unconstrained (ties) are vacuously consistent.
pub fn is_consistent(
    tree: &UltrametricTree,
    m: &DistanceMatrix,
    i: usize,
    j: usize,
    k: usize,
) -> bool {
    match close_pair_in_matrix(m, i, j, k) {
        None => true,
        Some(want) => match close_pair_in_tree(tree, i, j, k) {
            None => false,
            Some(got) => {
                (got.0 == want.0 && got.1 == want.1) || (got.0 == want.1 && got.1 == want.0)
            }
        },
    }
}

/// Fan's contradiction count: the number of taxon triples on which the
/// tree and the matrix disagree. Lower is a more faithful tree; zero means
/// the topology fully respects the matrix's strict triple relations.
pub fn contradictions(tree: &UltrametricTree, m: &DistanceMatrix) -> usize {
    let taxa: Vec<usize> = tree.taxa().collect();
    let mut count = 0;
    for a in 0..taxa.len() {
        for b in (a + 1)..taxa.len() {
            for c in (b + 1)..taxa.len() {
                if !is_consistent(tree, m, taxa[a], taxa[b], taxa[c]) {
                    count += 1;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cluster, Linkage};

    fn um4() -> DistanceMatrix {
        DistanceMatrix::from_rows(&[
            vec![0.0, 2.0, 8.0, 8.0],
            vec![2.0, 0.0, 8.0, 8.0],
            vec![8.0, 8.0, 0.0, 4.0],
            vec![8.0, 8.0, 4.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn tree_close_pair_matches_topology() {
        let t = cluster(&um4(), Linkage::Maximum); // ((0,1),(2,3))
        assert_eq!(close_pair_in_tree(&t, 0, 1, 2), Some((0, 1)));
        assert_eq!(close_pair_in_tree(&t, 0, 2, 3), Some((2, 3)));
        assert_eq!(close_pair_in_tree(&t, 1, 2, 3), Some((2, 3)));
    }

    #[test]
    fn matrix_close_pair_strictness() {
        let m = um4();
        assert_eq!(close_pair_in_matrix(&m, 0, 1, 2), Some((0, 1)));
        // 0-2 and 1-2 tie at 8 with 0-1 = 2: close pair is still (0,1).
        assert_eq!(close_pair_in_matrix(&m, 0, 2, 3), Some((2, 3)));
        // A fully tied triple nominates nobody.
        let tied = DistanceMatrix::from_rows(&[
            vec![0.0, 5.0, 5.0],
            vec![5.0, 0.0, 5.0],
            vec![5.0, 5.0, 0.0],
        ])
        .unwrap();
        assert_eq!(close_pair_in_matrix(&tied, 0, 1, 2), None);
    }

    #[test]
    fn faithful_tree_has_zero_contradictions() {
        let m = um4();
        let t = cluster(&m, Linkage::Maximum);
        assert_eq!(contradictions(&t, &m), 0);
    }

    #[test]
    fn wrong_topology_contradicts() {
        let m = um4();
        // Force the wrong pairing ((0,2),(1,3)).
        let t = UltrametricTree::join(
            UltrametricTree::cherry(0, 2, 4.0),
            UltrametricTree::cherry(1, 3, 4.0),
            5.0,
        );
        assert!(contradictions(&t, &m) > 0);
        assert!(!is_consistent(&t, &m, 0, 1, 2));
    }

    #[test]
    fn consistency_is_orientation_insensitive() {
        let m = um4();
        let t = cluster(&m, Linkage::Maximum);
        for (i, j, k) in [(0, 1, 2), (2, 1, 0), (1, 0, 3), (3, 2, 0)] {
            assert!(is_consistent(&t, &m, i, j, k), "({i},{j},{k})");
        }
    }

    #[test]
    fn missing_taxon_is_inconsistent_when_constrained() {
        let m = um4();
        let t = UltrametricTree::cherry(0, 1, 1.0);
        assert_eq!(close_pair_in_tree(&t, 0, 1, 9), None);
        assert!(!is_consistent(&t, &m, 0, 1, 2));
    }
}
