//! Neighbor joining (Saitou & Nei 1987) — the standard distance-based
//! baseline the papers position themselves against.
//!
//! Unlike ultrametric construction, neighbor joining drops the
//! molecular-clock assumption and produces an *unrooted additive* tree:
//! leaf-pair path lengths approximate the matrix without the equal
//! root-to-leaf constraint. On additive input (matrices satisfying the
//! four-point condition) it recovers distances exactly.
//!
//! ```
//! use mutree_distmat::DistanceMatrix;
//! use mutree_tree::nj::neighbor_joining;
//!
//! let m = DistanceMatrix::from_rows(&[
//!     vec![0.0, 5.0, 9.0, 9.0],
//!     vec![5.0, 0.0, 10.0, 10.0],
//!     vec![9.0, 10.0, 0.0, 8.0],
//!     vec![9.0, 10.0, 8.0, 0.0],
//! ]).unwrap();
//! let t = neighbor_joining(&m);
//! // This matrix is additive: NJ reproduces it exactly.
//! assert!((t.leaf_distance(0, 2).unwrap() - 9.0).abs() < 1e-9);
//! ```

use mutree_distmat::DistanceMatrix;

use crate::TreeError;

/// An unrooted, edge-weighted tree with labeled leaves, as produced by
/// [`neighbor_joining`]. Nodes `0..n` are the leaves (node id = taxon id);
/// internal nodes follow.
#[derive(Debug, Clone)]
pub struct AdditiveTree {
    n_leaves: usize,
    /// Adjacency: `adj[v]` lists `(neighbor, edge length)`.
    adj: Vec<Vec<(usize, f64)>>,
}

impl AdditiveTree {
    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.n_leaves
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Sum of all edge lengths — the tree's total length (the analogue of
    /// the ultrametric tree weight `ω`).
    pub fn total_length(&self) -> f64 {
        self.adj
            .iter()
            .flat_map(|nbrs| nbrs.iter().map(|&(_, w)| w))
            .sum::<f64>()
            / 2.0
    }

    /// Path length between two taxa.
    ///
    /// # Errors
    ///
    /// [`TreeError::UnknownTaxon`] when a taxon is out of range.
    pub fn leaf_distance(&self, a: usize, b: usize) -> Result<f64, TreeError> {
        if a >= self.n_leaves {
            return Err(TreeError::UnknownTaxon { taxon: a });
        }
        if b >= self.n_leaves {
            return Err(TreeError::UnknownTaxon { taxon: b });
        }
        if a == b {
            return Ok(0.0);
        }
        // DFS from a to b (trees are small; no need for anything fancy).
        let mut stack = vec![(a, usize::MAX, 0.0)];
        while let Some((v, parent, dist)) = stack.pop() {
            if v == b {
                return Ok(dist);
            }
            for &(u, w) in &self.adj[v] {
                if u != parent {
                    stack.push((u, v, dist + w));
                }
            }
        }
        unreachable!("additive trees are connected")
    }

    /// The full matrix of pairwise leaf path lengths.
    pub fn distance_matrix(&self) -> DistanceMatrix {
        let n = self.n_leaves;
        let mut m = DistanceMatrix::zeros(n).expect("NJ needs >= 2 taxa");
        for a in 0..n {
            // One DFS per leaf fills a whole row.
            let mut stack = vec![(a, usize::MAX, 0.0)];
            while let Some((v, parent, dist)) = stack.pop() {
                if v < n && v > a {
                    m.set(a, v, dist);
                }
                for &(u, w) in &self.adj[v] {
                    if u != parent {
                        stack.push((u, v, dist + w));
                    }
                }
            }
        }
        m
    }

    /// Mean relative distortion of the tree distances against a matrix:
    /// `mean(|d_T(i,j) − M(i,j)| / M(i,j))` over pairs with `M > 0`.
    /// Zero iff the tree realizes the matrix exactly.
    pub fn mean_distortion(&self, m: &DistanceMatrix) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for (i, j, d) in m.pairs() {
            if d > 0.0 {
                let t = self.leaf_distance(i, j).expect("matrix indices are leaves");
                total += (t - d).abs() / d;
                count += 1;
            }
        }
        total / count.max(1) as f64
    }

    /// Newick serialization, rooted arbitrarily at the last internal node
    /// (or the first leaf for 2-taxon trees). `name` maps taxa to labels.
    pub fn to_newick_with<F: Fn(usize) -> String>(&self, name: F) -> String {
        fn rec<F: Fn(usize) -> String>(
            t: &AdditiveTree,
            v: usize,
            parent: usize,
            name: &F,
            out: &mut String,
        ) {
            let children: Vec<(usize, f64)> = t.adj[v]
                .iter()
                .copied()
                .filter(|&(u, _)| u != parent)
                .collect();
            if children.is_empty() {
                out.push_str(&name(v));
                return;
            }
            out.push('(');
            for (k, (u, w)) in children.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                rec(t, *u, v, name, out);
                out.push_str(&format!(":{w}"));
            }
            out.push(')');
            if v < t.n_leaves {
                out.push_str(&name(v));
            }
        }
        let root = if self.adj.len() > self.n_leaves {
            self.adj.len() - 1
        } else {
            0
        };
        let mut out = String::new();
        rec(self, root, usize::MAX, &name, &mut out);
        out.push(';');
        out
    }
}

/// Builds the neighbor-joining tree of a distance matrix (`O(n³)`).
///
/// Negative branch lengths (possible on non-additive input) are clamped
/// to zero, the common practice.
pub fn neighbor_joining(m: &DistanceMatrix) -> AdditiveTree {
    let n = m.len();
    let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    if n == 2 {
        let d = m.get(0, 1);
        adj[0].push((1, d));
        adj[1].push((0, d));
        return AdditiveTree { n_leaves: n, adj };
    }

    // Active nodes and their pairwise working distances.
    let mut active: Vec<usize> = (0..n).collect();
    let mut dist: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..n).map(|j| m.get(i, j)).collect())
        .collect();

    let connect = |adj: &mut Vec<Vec<(usize, f64)>>, a: usize, b: usize, w: f64| {
        let w = w.max(0.0);
        adj[a].push((b, w));
        adj[b].push((a, w));
    };

    while active.len() > 3 {
        let r = active.len() as f64;
        // Row sums over active nodes.
        let sums: Vec<f64> = active
            .iter()
            .map(|&i| active.iter().map(|&k| dist[i][k]).sum())
            .collect();
        // Q-criterion minimum.
        let mut best = (0usize, 1usize, f64::INFINITY);
        for ai in 0..active.len() {
            for bi in (ai + 1)..active.len() {
                let q = (r - 2.0) * dist[active[ai]][active[bi]] - sums[ai] - sums[bi];
                if q < best.2 {
                    best = (ai, bi, q);
                }
            }
        }
        let (ai, bi, _) = best;
        let (i, j) = (active[ai], active[bi]);
        let dij = dist[i][j];
        // New internal node u; branch lengths to i and j.
        let u = adj.len();
        adj.push(Vec::new());
        let li = dij / 2.0 + (sums[ai] - sums[bi]) / (2.0 * (r - 2.0));
        let lj = dij - li;
        connect(&mut adj, u, i, li);
        connect(&mut adj, u, j, lj);
        // Distances from u to every other active node.
        for row in dist.iter_mut() {
            row.push(0.0);
        }
        dist.push(vec![0.0; adj.len()]);
        for &k in &active {
            if k != i && k != j {
                let duk = (dist[i][k] + dist[j][k] - dij) / 2.0;
                dist[u][k] = duk;
                dist[k][u] = duk;
            }
        }
        // Replace i, j by u in the active set (preserve order for
        // determinism).
        active.remove(bi);
        active.remove(ai);
        active.push(u);
    }

    // Three nodes left: join them on a final internal node.
    let (a, b, c) = (active[0], active[1], active[2]);
    let u = adj.len();
    adj.push(Vec::new());
    let la = (dist[a][b] + dist[a][c] - dist[b][c]) / 2.0;
    let lb = (dist[a][b] + dist[b][c] - dist[a][c]) / 2.0;
    let lc = (dist[a][c] + dist[b][c] - dist[a][b]) / 2.0;
    connect(&mut adj, u, a, la);
    connect(&mut adj, u, b, lb);
    connect(&mut adj, u, c, lc);

    AdditiveTree { n_leaves: n, adj }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic additive 4-taxon example.
    fn additive4() -> DistanceMatrix {
        DistanceMatrix::from_rows(&[
            vec![0.0, 5.0, 9.0, 9.0],
            vec![5.0, 0.0, 10.0, 10.0],
            vec![9.0, 10.0, 0.0, 8.0],
            vec![9.0, 10.0, 8.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn recovers_additive_distances_exactly() {
        let m = additive4();
        let t = neighbor_joining(&m);
        assert!(t.distance_matrix().max_relative_deviation(&m) < 1e-9);
        assert!(t.mean_distortion(&m) < 1e-12);
    }

    #[test]
    fn structure_of_additive4() {
        let t = neighbor_joining(&additive4());
        // 4 leaves, 2 internal nodes, total length = sum of 5 edges:
        // a=2, b=3, c=4, d=4, internal=3 → 16.
        assert_eq!(t.leaf_count(), 4);
        assert_eq!(t.node_count(), 6);
        assert!((t.total_length() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn two_and_three_taxa() {
        let m2 = DistanceMatrix::from_rows(&[vec![0.0, 7.0], vec![7.0, 0.0]]).unwrap();
        let t2 = neighbor_joining(&m2);
        assert_eq!(t2.leaf_distance(0, 1).unwrap(), 7.0);
        assert!((t2.total_length() - 7.0).abs() < 1e-12);

        let m3 = DistanceMatrix::from_rows(&[
            vec![0.0, 4.0, 6.0],
            vec![4.0, 0.0, 8.0],
            vec![6.0, 8.0, 0.0],
        ])
        .unwrap();
        let t3 = neighbor_joining(&m3);
        // Any 3-point metric is realizable exactly.
        assert!(t3.distance_matrix().max_relative_deviation(&m3) < 1e-9);
    }

    #[test]
    fn ultrametric_matrices_are_additive() {
        // Ultrametric ⊂ additive: NJ must recover them too.
        let m = DistanceMatrix::from_rows(&[
            vec![0.0, 2.0, 8.0, 8.0],
            vec![2.0, 0.0, 8.0, 8.0],
            vec![8.0, 8.0, 0.0, 4.0],
            vec![8.0, 8.0, 4.0, 0.0],
        ])
        .unwrap();
        let t = neighbor_joining(&m);
        assert!(t.distance_matrix().max_relative_deviation(&m) < 1e-9);
    }

    #[test]
    fn newick_output_is_well_formed() {
        let t = neighbor_joining(&additive4());
        let s = t.to_newick_with(|t| format!("L{t}"));
        assert!(s.ends_with(';'));
        for l in ["L0", "L1", "L2", "L3"] {
            assert!(s.contains(l), "{s}");
        }
        assert_eq!(s.matches('(').count(), s.matches(')').count());
    }

    #[test]
    fn distortion_is_positive_on_non_additive_input() {
        // A metric violating the four-point condition.
        let m = DistanceMatrix::from_rows(&[
            vec![0.0, 2.0, 2.0, 2.0],
            vec![2.0, 0.0, 2.0, 2.0],
            vec![2.0, 2.0, 0.0, 2.0],
            vec![2.0, 2.0, 2.0, 0.0],
        ])
        .unwrap();
        let t = neighbor_joining(&m);
        // Equidistant 4 points are actually realizable? A star with
        // length-1 edges realizes all distances as 2 — additive after all.
        assert!(t.mean_distortion(&m) < 0.26);
        assert!(t.leaf_distance(0, 3).unwrap() > 0.0);
    }

    #[test]
    fn unknown_taxon_is_an_error() {
        let t = neighbor_joining(&additive4());
        assert!(matches!(
            t.leaf_distance(0, 9),
            Err(TreeError::UnknownTaxon { taxon: 9 })
        ));
    }
}
