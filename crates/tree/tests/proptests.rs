//! Property tests: height fitting is minimal and feasible, clustering
//! invariants, Newick round-trips, grafting.

use mutree_distmat::{gen, DistanceMatrix};
use mutree_tree::{cluster, newick, triples, Linkage, UltrametricTree};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random topology over taxa `0..n`, built by random leaf insertions,
/// fit against `m`.
fn random_fitted(n: usize, m: &DistanceMatrix, rng: &mut StdRng) -> UltrametricTree {
    let mut t = UltrametricTree::cherry(0, 1, 1.0);
    for taxon in 2..n {
        // Pick a random node (walk a random path from the root).
        let mut node = t.root();
        loop {
            match t.kind(node) {
                mutree_tree::NodeKind::Leaf(_) => break,
                mutree_tree::NodeKind::Internal(a, b) => {
                    if rng.gen_bool(0.3) {
                        break;
                    }
                    node = if rng.gen_bool(0.5) { a } else { b };
                }
            }
        }
        t.insert_leaf(taxon, node);
    }
    t.fit_heights(m);
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fitted_trees_are_feasible_and_tight(n in 3usize..10, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = gen::uniform_metric(n, 1.0, 100.0, &mut rng);
        let t = random_fitted(n, &m, &mut rng);
        prop_assert!(t.validate().is_ok());
        prop_assert!(t.is_feasible_for(&m, 1e-9));
        // Tightness: every internal height is achieved by some constraint
        // (a pair at distance 2h, or a child of equal height) — lowering
        // any height breaks feasibility or monotonicity. Verify the root:
        // its height is exactly half the largest matrix distance split
        // there.
        let taxa: Vec<usize> = t.taxa().collect();
        let mut best = 0.0f64;
        for (i, &a) in taxa.iter().enumerate() {
            for &b in &taxa[i + 1..] {
                if t.lca(a, b).unwrap() == t.root() {
                    best = best.max(m.get(a, b));
                }
            }
        }
        let root_h = t.height();
        let child_max = match t.kind(t.root()) {
            mutree_tree::NodeKind::Internal(x, y) => t.height_of(x).max(t.height_of(y)),
            _ => 0.0,
        };
        prop_assert!((root_h - (best / 2.0).max(child_max)).abs() < 1e-9);
    }

    #[test]
    fn newick_roundtrip_random_topologies(n in 2usize..10, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = gen::uniform_metric(n.max(2), 1.0, 100.0, &mut rng);
        let t = if n < 3 {
            cluster(&m, Linkage::Maximum)
        } else {
            random_fitted(n, &m, &mut rng)
        };
        let text = newick::to_newick(&t);
        let (parsed, names) = newick::parse_newick(&text).unwrap();
        prop_assert_eq!(parsed.leaf_count(), t.leaf_count());
        prop_assert!((parsed.weight() - t.weight()).abs() < 1e-6 * (1.0 + t.weight()));
        prop_assert_eq!(names.len(), t.leaf_count());
    }

    #[test]
    fn cluster_on_ultrametric_recovers_distances(n in 2usize..12, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = gen::random_ultrametric(n, 50.0, &mut rng);
        for linkage in [Linkage::Maximum, Linkage::Average, Linkage::Minimum] {
            let t = cluster(&m, linkage);
            // Equality up to ulps: averaging equal cross-distances can
            // round in the last bit.
            prop_assert!(t.distance_matrix().max_relative_deviation(&m) < 1e-12);
        }
    }

    #[test]
    fn upgmm_feasible_on_any_matrix(n in 2usize..10, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = gen::uniform_metric(n, 1.0, 100.0, &mut rng);
        let t = cluster(&m, Linkage::Maximum);
        prop_assert!(t.is_feasible_for(&m, 1e-9));
        prop_assert!(t.validate().is_ok());
    }

    #[test]
    fn graft_preserves_outside_distances(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = gen::uniform_metric(5, 1.0, 60.0, &mut rng);
        let mut host = random_fitted(5, &m, &mut rng);
        let before = host.leaf_distance(0, 1).unwrap();
        // Graft a short cherry onto leaf 4 (its parent height bounds 10.0
        // rarely; skip if it does not fit).
        let attach = host.parent(host.leaf_of(4).unwrap()).unwrap();
        let h = host.height_of(attach) * 0.5;
        if host.graft(4, UltrametricTree::cherry(10, 11, h)).is_ok() {
            prop_assert!(host.validate().is_ok());
            prop_assert_eq!(host.leaf_distance(0, 1).unwrap(), before);
            prop_assert_eq!(host.leaf_distance(10, 11).unwrap(), 2.0 * h);
            prop_assert!(host.leaf_of(4).is_none());
        }
    }

    #[test]
    fn tree_distance_matrices_are_ultrametric(n in 3usize..10, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = gen::uniform_metric(n, 1.0, 100.0, &mut rng);
        let t = random_fitted(n, &m, &mut rng);
        prop_assert!(t.distance_matrix().is_ultrametric(1e-9));
    }

    #[test]
    fn triple_relations_are_exhaustive_and_exclusive(n in 3usize..9, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = gen::uniform_metric(n, 1.0, 100.0, &mut rng);
        let t = random_fitted(n, &m, &mut rng);
        for i in 0..n {
            for j in (i + 1)..n {
                for k in (j + 1)..n {
                    // A binary tree always resolves exactly one close pair.
                    let cp = triples::close_pair_in_tree(&t, i, j, k);
                    prop_assert!(cp.is_some());
                    let (a, b) = cp.unwrap();
                    prop_assert!(a != b);
                    for x in [a, b] {
                        prop_assert!(x == i || x == j || x == k);
                    }
                }
            }
        }
    }
}
