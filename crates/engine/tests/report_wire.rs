//! Property tests of the `mutree-report v1` wire codec, mirroring the
//! request codec's round-trip suite: a randomized report must survive
//! `encode → decode` with every bit intact — f64 weight and stage
//! seconds as exact bit patterns, all 16 search counters, stop reasons,
//! provenance and degradation records — and corrupted documents must be
//! rejected with a line-numbered error, never mis-decoded.

use mutree_bnb::{BoundKernel, PruneStrategy, SearchStats, StopReason};
use mutree_engine::{DegradeReason, DegradedGroup, SolveReport, StageProvenance, StageTiming};
use mutree_tree::{codec, UltrametricTree};
use proptest::prelude::*;

/// A caterpillar tree on `steps.len() + 1` leaves: taxa 0..=n joined at
/// strictly increasing heights, so every generated tree passes the
/// codec's validity checks.
fn caterpillar(steps: &[f64]) -> UltrametricTree {
    let mut height = 0.1 + steps[0];
    let mut tree = UltrametricTree::cherry(0, 1, height);
    for (i, step) in steps[1..].iter().enumerate() {
        height += step;
        tree = UltrametricTree::join(tree, UltrametricTree::leaf(i + 2), height);
    }
    tree
}

const STOPS: [StopReason; 6] = [
    StopReason::Completed,
    StopReason::BudgetExhausted,
    StopReason::DeadlineExpired,
    StopReason::Cancelled,
    StopReason::MemoryExhausted,
    StopReason::WorkerPanicked,
];

const PROVENANCES: [StageProvenance; 3] = [
    StageProvenance::Solved,
    StageProvenance::Cached,
    StageProvenance::WarmSeeded,
];

fn stats_from(c: &[u64]) -> SearchStats {
    SearchStats {
        branched: c[0],
        pruned: c[1],
        propagation_pruned: c[2],
        solutions_seen: c[3],
        incumbent_updates: c[4],
        peak_pool: c[5],
        steals: c[6],
        donations: c[7],
        parks: c[8],
        retries: c[9],
        nodes_shed: c[10],
        checkpoints: c[11],
        cache_hits: c[12],
        cache_misses: c[13],
        cache_warm_seeds: c[14],
        cache_poisoned: c[15],
    }
}

/// Assembles a full report from generated primitives, exercising every
/// optional field and every enum variant reachable by index choices.
#[allow(clippy::too_many_arguments)]
fn build_report(
    steps: &[f64],
    weight_bits: u64,
    counters: &[u64],
    stop_idx: usize,
    timing_seconds: &[f64],
    degrade_idx: usize,
    pipelineish: bool,
    kernel_idx: usize,
) -> SolveReport {
    let tree = caterpillar(steps);
    let n = steps.len() + 1;
    let timings: Vec<StageTiming> = timing_seconds
        .iter()
        .enumerate()
        .map(|(i, &s)| StageTiming {
            stage: if i == 0 {
                "exact".to_string()
            } else {
                format!("meta[{i}]/group {i}")
            },
            seconds: s,
            attempts: (i as u32 % 3) + 1,
            provenance: PROVENANCES[i % PROVENANCES.len()],
        })
        .collect();
    let degraded = if degrade_idx == 0 {
        Vec::new()
    } else {
        vec![DegradedGroup {
            group: if degrade_idx.is_multiple_of(2) {
                Some(degrade_idx)
            } else {
                None
            },
            stage: format!("group {degrade_idx}"),
            reason: match degrade_idx % 3 {
                0 => DegradeReason::Stopped(STOPS[degrade_idx % STOPS.len()]),
                1 => DegradeReason::Error(format!("stage error #{degrade_idx}")),
                _ => DegradeReason::Panicked,
            },
            attempts: degrade_idx as u32,
        }]
    };
    SolveReport {
        trees: vec![tree.clone()],
        tree,
        weight: f64::from_bits(weight_bits),
        stats: stats_from(counters),
        stop: STOPS[stop_idx % STOPS.len()],
        degraded,
        timings,
        groups: pipelineish.then(|| vec![(0..n / 2).collect(), (n / 2..n).collect()]),
        compact_sets: pipelineish.then_some(n / 2),
        sim: None,
        leaf_words: (!pipelineish).then_some(1 + n / 64),
        bound_kernel: (!pipelineish).then_some(if kernel_idx.is_multiple_of(2) {
            BoundKernel::Scalar
        } else {
            BoundKernel::Lanes
        }),
        prune: (!pipelineish).then_some(match kernel_idx % 3 {
            0 => PruneStrategy::WeightOnly,
            1 => PruneStrategy::Propagate,
            _ => PruneStrategy::Hybrid,
        }),
    }
}

/// Field-by-field bit equality (the struct deliberately does not derive
/// `PartialEq`: two live reports legitimately differ in timings).
fn assert_reports_identical(a: &SolveReport, b: &SolveReport) {
    assert_eq!(a.weight.to_bits(), b.weight.to_bits());
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.stop, b.stop);
    assert_eq!(a.degraded, b.degraded);
    assert_eq!(a.groups, b.groups);
    assert_eq!(a.compact_sets, b.compact_sets);
    assert_eq!(a.leaf_words, b.leaf_words);
    assert_eq!(a.bound_kernel, b.bound_kernel);
    assert_eq!(a.prune, b.prune);
    assert_eq!(codec::encode_tree(&a.tree), codec::encode_tree(&b.tree));
    assert_eq!(a.trees.len(), b.trees.len());
    for (x, y) in a.trees.iter().zip(&b.trees) {
        assert_eq!(codec::encode_tree(x), codec::encode_tree(y));
    }
    assert_eq!(a.timings.len(), b.timings.len());
    for (x, y) in a.timings.iter().zip(&b.timings) {
        assert_eq!(x.stage, y.stage);
        assert_eq!(x.seconds.to_bits(), y.seconds.to_bits());
        assert_eq!(x.attempts, y.attempts);
        assert_eq!(x.provenance, y.provenance);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// encode → decode reproduces every field bit for bit, and a second
    /// encode reproduces the exact document (the codec is canonical).
    #[test]
    fn report_round_trips_bit_exactly(
        steps in proptest::collection::vec(0.001f64..50.0, 1..7),
        weight_bits in any::<u64>(),
        counters in proptest::collection::vec(any::<u64>(), 16..17),
        stop_idx in 0usize..6,
        timing_seconds in proptest::collection::vec(0.0f64..1e4, 1..5),
        degrade_idx in 0usize..8,
        pipelineish in 0usize..2,
        kernel_idx in 0usize..6,
    ) {
        let report = build_report(
            &steps,
            weight_bits,
            &counters,
            stop_idx,
            &timing_seconds,
            degrade_idx,
            pipelineish == 1,
            kernel_idx,
        );
        let text = report.encode();
        let back = SolveReport::decode(&text).expect("round trip decodes");
        assert_reports_identical(&report, &back);
        prop_assert_eq!(back.encode(), text);
    }

    /// Any single corrupted line makes decoding fail with an error that
    /// names a line — never a silently different report.
    #[test]
    fn corrupt_lines_are_rejected_with_line_numbers(
        steps in proptest::collection::vec(0.001f64..50.0, 2..5),
        line_idx in 0usize..64,
    ) {
        let report = build_report(
            &steps, 0x400921fb54442d18, &[7u64; 16], 0, &[0.25], 0, false, 1,
        );
        let text = report.encode();
        let lines: Vec<&str> = text.lines().collect();
        let target = line_idx % lines.len();
        let corrupted: Vec<String> = lines
            .iter()
            .enumerate()
            .map(|(i, l)| {
                if i == target {
                    format!("corrupted {l}")
                } else {
                    (*l).to_string()
                }
            })
            .collect();
        let err = SolveReport::decode(&(corrupted.join("\n") + "\n"))
            .expect_err("a corrupted line must be rejected");
        prop_assert!(err.line >= 1 && err.line <= lines.len());
    }
}

/// The adversarial f64 bit patterns a range strategy never produces:
/// NaN payloads, infinities, signed zero, subnormals. The weight channel
/// must carry them all unchanged.
#[test]
fn odd_weight_bit_patterns_survive() {
    for bits in [
        f64::NAN.to_bits(),
        f64::NAN.to_bits() | 0xdead_beef,
        f64::INFINITY.to_bits(),
        f64::NEG_INFINITY.to_bits(),
        (-0.0f64).to_bits(),
        0.0f64.to_bits(),
        1u64,
        f64::MIN_POSITIVE.to_bits() >> 1,
        f64::MAX.to_bits(),
    ] {
        let report = build_report(&[1.0, 2.0], bits, &[0; 16], 0, &[0.5], 0, false, 0);
        let back = SolveReport::decode(&report.encode()).expect("decode");
        assert_eq!(back.weight.to_bits(), bits);
    }
}

/// Header and structural corruption: each mutation must be refused.
#[test]
fn corrupt_headers_and_structure_are_rejected() {
    let report = build_report(
        &[1.0, 2.0, 3.0],
        0x3ff0_0000_0000_0000,
        &[1; 16],
        2,
        &[0.125],
        3,
        true,
        0,
    );
    let good = report.encode();
    assert!(SolveReport::decode(&good).is_ok());

    let cases: Vec<String> = vec![
        // Wrong protocol version.
        good.replacen("mutree-report v1", "mutree-report v2", 1),
        // Wrong document kind entirely.
        good.replacen("mutree-report v1", "mutree-request v1", 1),
        // Missing header.
        good.lines().skip(1).collect::<Vec<_>>().join("\n"),
        // Truncated mid-document: the mandatory best/tree lines are gone.
        good.lines().take(4).collect::<Vec<_>>().join("\n") + "\n",
        // Weight hex too short.
        good.replacen("weight 3ff0", "weight 3ff", 1),
        // Unknown stat counter name.
        good.replacen("stat branched", "stat branchiest", 1),
        // Unknown stop token.
        good.replacen("stop deadline", "stop eventually", 1),
        // Tree payload not valid codec bytes.
        {
            let mangled: Vec<String> = good
                .lines()
                .map(|l| {
                    if let Some(rest) = l.strip_prefix("best ") {
                        let mut hex = rest.to_string();
                        hex.truncate(hex.len() - 2);
                        format!("best {hex}")
                    } else {
                        l.to_string()
                    }
                })
                .collect();
            mangled.join("\n") + "\n"
        },
        // Empty document.
        String::new(),
    ];
    for (i, case) in cases.iter().enumerate() {
        assert!(
            SolveReport::decode(case).is_err(),
            "corruption case {i} was wrongly accepted:\n{case}"
        );
    }
}
