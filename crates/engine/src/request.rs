//! [`SolveRequest`]: an owned, serializable description of one solve.
//!
//! A request carries the matrix (inline or as a PHYLIP path) and every
//! knob the solver and the decomposition pipeline understand, with
//! `None` / default meaning "let the plan resolution decide" (see
//! [`SolvePlan::resolve`](crate::SolvePlan::resolve)). Requests never
//! read the process environment — that is the plan's job — so a request
//! [`encode`](SolveRequest::encode)d on one machine and
//! [`decode`](SolveRequest::decode)d on another describes the same solve.
//!
//! The text encoding stores inline matrices as exact IEEE-754 bit
//! patterns (the PHYLIP pretty-printer rounds to six decimals, which
//! would silently change the optimum), so round-tripping a request is
//! lossless.

use std::path::PathBuf;
use std::time::Duration;

use mutree_bnb::{
    BoundKernel, CheckpointPolicy, MemoryBudget, PruneStrategy, SearchMode, Strategy, TraceLevel,
};
use mutree_distmat::DistanceMatrix;
use mutree_tree::Linkage;

/// How aggressively to apply the 3-3 relationship rule during branching.
///
/// For a species triple the matrix may nominate a strict *close pair*
/// (one distance smaller than both others); the rule discards topologies
/// that resolve the triple differently. It is a heuristic: in the
/// companion paper's experiments the surviving optima coincide with the
/// unconstrained ones, but no proof guarantees it in general.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThreeThree {
    /// Do not use the rule (the PaCT paper's baseline configuration).
    #[default]
    Off,
    /// Apply it only when inserting the third species — the companion
    /// paper's Step 4.
    InitialOnly,
    /// Apply it at every insertion, checking all triples involving the new
    /// species — the companion paper's proposed future-work extension.
    Full,
}

/// Retry-with-backoff for faulted pipeline stages.
///
/// A stage whose exact solve **panics** or **errors** may be transient
/// (a poisoned worker thread, a flaky filesystem under a checkpoint); the
/// pipeline can re-attempt it before dropping down the degradation
/// ladder. Deterministic stops — deadline, cancellation, branch budget —
/// are *never* retried: re-running them would fail identically and burn
/// wall-clock the caller bounded on purpose.
///
/// Backoff between attempts is exponential with deterministic jitter:
/// attempt `a` of stage `s` sleeps
/// `base·2^(a−1) · (0.5 + 0.5·u(seed, s, a))` where `u` hashes the seed,
/// the stage path and the attempt number — so a given configuration
/// retries at identical times on every run, and no two stages thundering
/// herd on the same schedule.
///
/// Retries are bounded twice: [`max_attempts`](RetryPolicy::max_attempts)
/// per stage, and [`budget`](RetryPolicy::budget) total retries per
/// pipeline run (shared across all stages, including recursive meta
/// solves), so a systematically broken solver cannot multiply work
/// unboundedly.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts allowed per stage, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each further attempt
    /// (capped at 64× to keep sleeps sane).
    pub base_backoff: Duration,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
    /// Total retries (not attempts) the whole pipeline run may spend.
    pub budget: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::new()
    }
}

impl RetryPolicy {
    /// Three attempts per stage, 1 ms base backoff, a 32-retry pipeline
    /// budget.
    pub fn new() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            seed: 0,
            budget: 32,
        }
    }

    /// Sets the per-stage attempt cap (clamped up to 1).
    pub fn max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Sets the base backoff duration.
    pub fn base_backoff(mut self, base: Duration) -> Self {
        self.base_backoff = base;
        self
    }

    /// Sets the jitter seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the pipeline-wide retry budget.
    pub fn budget(mut self, budget: u32) -> Self {
        self.budget = budget;
        self
    }

    /// The deterministic backoff before retrying `stage` after `attempt`
    /// failed attempts.
    pub fn backoff(&self, stage: &str, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(6);
        let base = self.base_backoff.saturating_mul(1 << exp);
        let h = mutree_bnb::hash::fnv1a(stage.as_bytes());
        let z = mutree_bnb::hash::splitmix64(h ^ self.seed ^ u64::from(attempt));
        base.mul_f64(0.5 + 0.5 * mutree_bnb::hash::unit_fraction(z))
    }
}

/// Where the distance matrix comes from.
#[derive(Debug, Clone)]
pub enum MatrixSource {
    /// The matrix itself, owned by the request.
    Inline(DistanceMatrix),
    /// A PHYLIP square-format file, read when the plan executes.
    PhylipPath(PathBuf),
}

/// Which solve path to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolveKind {
    /// One exact branch-and-bound search over the whole matrix.
    #[default]
    Exact,
    /// The compact-set decomposition pipeline (groups + condensed meta
    /// matrix + graft/refit).
    Decompose,
}

/// The search backend, in serializable form (the simulated cluster is
/// identified by its slave count; heterogeneous specs stay programmatic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendSpec {
    /// Single-threaded depth-first search.
    #[default]
    Sequential,
    /// Master/slave thread-parallel search.
    Parallel {
        /// Worker threads.
        workers: usize,
    },
    /// Deterministic discrete-event cluster simulation.
    SimulatedCluster {
        /// Simulated slave computing nodes.
        slaves: usize,
    },
}

/// An owned, environment-free description of one solve. See the
/// [module docs](self) and [`SolvePlan`](crate::SolvePlan).
#[derive(Debug, Clone)]
pub struct SolveRequest {
    /// The distance matrix to solve.
    pub source: MatrixSource,
    /// Exact search or decomposition pipeline.
    pub kind: SolveKind,
    /// Find one optimum or all of them.
    pub mode: SearchMode,
    /// Sequential node-selection strategy.
    pub strategy: Strategy,
    /// 3-3 relationship pruning strength.
    pub three_three: ThreeThree,
    /// Which driver runs the branch-and-bound search.
    pub backend: BackendSpec,
    /// Numeric tolerance; also the cache's quantization quantum.
    pub tol: f64,
    /// Branch-operation budget (`u64::MAX` = unbounded).
    pub max_branches: u64,
    /// Wall-clock budget, applied from the moment the solve starts.
    pub timeout: Option<Duration>,
    /// Maxmin relabeling (off only for ablations).
    pub use_maxmin: bool,
    /// UPGMM initial incumbent (off only for ablations).
    pub use_upgmm: bool,
    /// Pipeline executor threads. `None` defers to
    /// `MUTREE_PIPELINE_THREADS`, then to inline execution.
    pub threads: Option<usize>,
    /// Forced leaf-bitset width in 64-bit words. `None` defers to
    /// `MUTREE_FORCE_LEAF_WORDS`, then to the narrowest fit.
    pub leaf_words: Option<usize>,
    /// Forced bound-arithmetic kernel. `None` defers to
    /// `MUTREE_FORCE_BOUND_KERNEL`, then to the default.
    pub bound_kernel: Option<BoundKernel>,
    /// Forced prune-stage strategy. `None` defers to
    /// `MUTREE_FORCE_PRUNE`, then to the default (propagate).
    pub prune: Option<PruneStrategy>,
    /// Forced work-stealing shard count. `None` defers to
    /// `MUTREE_FRONTIER_SHARDS`, then to the worker-derived policy.
    pub frontier_shards: Option<usize>,
    /// Open-node cap for the memory watchdog.
    pub memory: Option<MemoryBudget>,
    /// Crash-safe incumbent snapshots while solving.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Warm-start from a checkpoint written by a previous run.
    pub resume: Option<PathBuf>,
    /// Retry faulted pipeline stages before degrading.
    pub retry: Option<RetryPolicy>,
    /// Largest group the pipeline solves exactly.
    pub threshold: usize,
    /// Condensed-matrix linkage.
    pub linkage: Linkage,
    /// Maximum recursion depth of the pipeline's meta solves.
    pub max_depth: usize,
    /// Group-solve cache: `Some(true)` forces it on (with whole-solve
    /// memoization), `Some(false)` forces it off, `None` defers to
    /// `MUTREE_CACHE` (stage-level only).
    pub cache: Option<bool>,
    /// Structured kernel-event tracing to stderr.
    pub trace: Option<TraceLevel>,
}

impl SolveRequest {
    /// A request with Algorithm BBU's published defaults: sequential
    /// exact best-one search, maxmin relabeling, UPGMM incumbent, no
    /// limits, pipeline knobs at their paper values (threshold 12,
    /// maximum linkage, depth 8).
    pub fn new(source: MatrixSource) -> Self {
        SolveRequest {
            source,
            kind: SolveKind::Exact,
            mode: SearchMode::BestOne,
            strategy: Strategy::DepthFirst,
            three_three: ThreeThree::Off,
            backend: BackendSpec::Sequential,
            tol: 1e-9,
            max_branches: u64::MAX,
            timeout: None,
            use_maxmin: true,
            use_upgmm: true,
            threads: None,
            leaf_words: None,
            bound_kernel: None,
            prune: None,
            frontier_shards: None,
            memory: None,
            checkpoint: None,
            resume: None,
            retry: None,
            threshold: 12,
            linkage: Linkage::Maximum,
            max_depth: 8,
            cache: None,
            trace: None,
        }
    }

    /// A request solving `m` exactly.
    pub fn exact(m: DistanceMatrix) -> Self {
        SolveRequest::new(MatrixSource::Inline(m))
    }

    /// A request running `m` through the decomposition pipeline.
    pub fn decompose(m: DistanceMatrix) -> Self {
        let mut r = SolveRequest::new(MatrixSource::Inline(m));
        r.kind = SolveKind::Decompose;
        r
    }

    /// Sets the solve kind.
    pub fn kind(mut self, kind: SolveKind) -> Self {
        self.kind = kind;
        self
    }

    /// Sets the search backend.
    pub fn backend(mut self, backend: BackendSpec) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the search mode.
    pub fn mode(mut self, mode: SearchMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the pipeline executor thread count (overrides the
    /// environment).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Forces the leaf-bitset width (overrides the environment).
    pub fn leaf_words(mut self, words: usize) -> Self {
        self.leaf_words = Some(words);
        self
    }

    /// Forces the bound kernel (overrides the environment).
    pub fn bound_kernel(mut self, kernel: BoundKernel) -> Self {
        self.bound_kernel = Some(kernel);
        self
    }

    /// Forces the prune-stage strategy (overrides the environment).
    pub fn prune(mut self, prune: PruneStrategy) -> Self {
        self.prune = Some(prune);
        self
    }

    /// Forces the frontier shard count (overrides the environment).
    pub fn frontier_shards(mut self, shards: usize) -> Self {
        self.frontier_shards = Some(shards);
        self
    }

    /// Forces the group-solve cache on or off (overrides the
    /// environment).
    pub fn cache(mut self, enabled: bool) -> Self {
        self.cache = Some(enabled);
        self
    }

    /// Serializes the request to its line-based text form. Inline
    /// matrices are stored as exact IEEE-754 bit patterns, so
    /// [`decode`](SolveRequest::decode) reproduces the same solve to the
    /// bit.
    pub fn encode(&self) -> String {
        let mut out = String::from("mutree-request v1\n");
        let mut line = |s: String| {
            out.push_str(&s);
            out.push('\n');
        };
        line(format!(
            "kind {}",
            match self.kind {
                SolveKind::Exact => "exact",
                SolveKind::Decompose => "decompose",
            }
        ));
        line(format!(
            "mode {}",
            match self.mode {
                SearchMode::BestOne => "best-one",
                SearchMode::AllOptimal => "all-optimal",
            }
        ));
        line(format!(
            "strategy {}",
            match self.strategy {
                Strategy::DepthFirst => "depth-first",
                Strategy::BestFirst => "best-first",
            }
        ));
        line(format!(
            "three-three {}",
            match self.three_three {
                ThreeThree::Off => "off",
                ThreeThree::InitialOnly => "initial",
                ThreeThree::Full => "full",
            }
        ));
        line(match self.backend {
            BackendSpec::Sequential => "backend seq".into(),
            BackendSpec::Parallel { workers } => format!("backend par {workers}"),
            BackendSpec::SimulatedCluster { slaves } => format!("backend sim {slaves}"),
        });
        line(format!("tol {:016x}", self.tol.to_bits()));
        line(format!("max-branches {}", self.max_branches));
        if let Some(t) = self.timeout {
            line(format!("timeout-ns {}", t.as_nanos()));
        }
        line(format!("maxmin {}", self.use_maxmin));
        line(format!("upgmm {}", self.use_upgmm));
        if let Some(t) = self.threads {
            line(format!("threads {t}"));
        }
        if let Some(w) = self.leaf_words {
            line(format!("leaf-words {w}"));
        }
        if let Some(k) = self.bound_kernel {
            line(format!(
                "bound-kernel {}",
                match k {
                    BoundKernel::Scalar => "scalar",
                    BoundKernel::Lanes => "lanes",
                }
            ));
        }
        if let Some(p) = self.prune {
            line(format!("prune {}", p.name()));
        }
        if let Some(s) = self.frontier_shards {
            line(format!("frontier-shards {s}"));
        }
        if let Some(m) = self.memory {
            line(format!("memory-nodes {}", m.max_open_nodes));
        }
        if let Some(cp) = &self.checkpoint {
            line(format!("checkpoint {} {}", cp.interval, cp.path.display()));
        }
        if let Some(p) = &self.resume {
            line(format!("resume {}", p.display()));
        }
        if let Some(r) = &self.retry {
            line(format!(
                "retry {} {} {} {}",
                r.max_attempts,
                r.base_backoff.as_nanos(),
                r.seed,
                r.budget
            ));
        }
        line(format!("threshold {}", self.threshold));
        line(format!(
            "linkage {}",
            match self.linkage {
                Linkage::Maximum => "maximum",
                Linkage::Minimum => "minimum",
                Linkage::Average => "average",
            }
        ));
        line(format!("max-depth {}", self.max_depth));
        if let Some(c) = self.cache {
            line(format!("cache {}", if c { "on" } else { "off" }));
        }
        if let Some(t) = self.trace {
            line(format!(
                "trace {}",
                match t {
                    TraceLevel::Incumbents => "incumbents",
                    TraceLevel::All => "all",
                }
            ));
        }
        match &self.source {
            MatrixSource::PhylipPath(p) => line(format!("matrix phylip {}", p.display())),
            MatrixSource::Inline(m) => {
                let n = m.len();
                line(format!("matrix inline {n}"));
                if m.labels().is_some() {
                    for i in 0..n {
                        line(format!("label {}", m.label(i)));
                    }
                }
                // Strict lower triangle, one row per line, exact bits.
                let packed = m.condensed();
                let mut at = 0;
                for i in 1..n {
                    let row: Vec<String> = packed[at..at + i]
                        .iter()
                        .map(|d| format!("{:016x}", d.to_bits()))
                        .collect();
                    at += i;
                    line(format!("row {}", row.join(" ")));
                }
            }
        }
        out
    }

    /// Parses the text form produced by [`encode`](SolveRequest::encode).
    ///
    /// # Errors
    ///
    /// [`RequestError`] naming the offending line on any malformed input.
    pub fn decode(text: &str) -> Result<SolveRequest, RequestError> {
        let fail = |line: usize, message: String| RequestError {
            line: line + 1,
            message,
        };
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, "mutree-request v1")) => {}
            other => {
                return Err(fail(
                    0,
                    format!("expected \"mutree-request v1\" header, found {other:?}"),
                ))
            }
        }
        // Start from a placeholder source; the matrix section replaces it.
        let mut req = SolveRequest::new(MatrixSource::PhylipPath(PathBuf::new()));
        let mut have_source = false;
        while let Some((ln, raw)) = lines.next() {
            let raw = raw.trim_end();
            if raw.is_empty() {
                continue;
            }
            let (keyword, rest) = raw.split_once(' ').unwrap_or((raw, ""));
            let usize_arg = || -> Result<usize, RequestError> {
                rest.trim()
                    .parse()
                    .map_err(|_| fail(ln, format!("{keyword}: bad count {rest:?}")))
            };
            let bits_of = |tok: &str| -> Result<f64, RequestError> {
                u64::from_str_radix(tok, 16)
                    .map(f64::from_bits)
                    .map_err(|_| fail(ln, format!("bad hex float {tok:?}")))
            };
            match keyword {
                "kind" => {
                    req.kind = match rest.trim() {
                        "exact" => SolveKind::Exact,
                        "decompose" => SolveKind::Decompose,
                        other => return Err(fail(ln, format!("unknown kind {other:?}"))),
                    }
                }
                "mode" => {
                    req.mode = match rest.trim() {
                        "best-one" => SearchMode::BestOne,
                        "all-optimal" => SearchMode::AllOptimal,
                        other => return Err(fail(ln, format!("unknown mode {other:?}"))),
                    }
                }
                "strategy" => {
                    req.strategy = match rest.trim() {
                        "depth-first" => Strategy::DepthFirst,
                        "best-first" => Strategy::BestFirst,
                        other => return Err(fail(ln, format!("unknown strategy {other:?}"))),
                    }
                }
                "three-three" => {
                    req.three_three = match rest.trim() {
                        "off" => ThreeThree::Off,
                        "initial" => ThreeThree::InitialOnly,
                        "full" => ThreeThree::Full,
                        other => return Err(fail(ln, format!("unknown 3-3 strength {other:?}"))),
                    }
                }
                "backend" => {
                    let mut parts = rest.split_whitespace();
                    req.backend = match (parts.next(), parts.next()) {
                        (Some("seq"), None) => BackendSpec::Sequential,
                        (Some("par"), Some(w)) => BackendSpec::Parallel {
                            workers: w
                                .parse()
                                .map_err(|_| fail(ln, format!("bad worker count {w:?}")))?,
                        },
                        (Some("sim"), Some(s)) => BackendSpec::SimulatedCluster {
                            slaves: s
                                .parse()
                                .map_err(|_| fail(ln, format!("bad slave count {s:?}")))?,
                        },
                        _ => return Err(fail(ln, format!("unknown backend {rest:?}"))),
                    }
                }
                "tol" => req.tol = bits_of(rest.trim())?,
                "max-branches" => {
                    req.max_branches = rest
                        .trim()
                        .parse()
                        .map_err(|_| fail(ln, format!("bad branch budget {rest:?}")))?
                }
                "timeout-ns" => {
                    let ns: u128 = rest
                        .trim()
                        .parse()
                        .map_err(|_| fail(ln, format!("bad timeout {rest:?}")))?;
                    req.timeout =
                        Some(Duration::from_nanos(u64::try_from(ns).map_err(|_| {
                            fail(ln, format!("timeout overflows: {rest:?}"))
                        })?));
                }
                "maxmin" => req.use_maxmin = rest.trim() == "true",
                "upgmm" => req.use_upgmm = rest.trim() == "true",
                "threads" => req.threads = Some(usize_arg()?),
                "leaf-words" => req.leaf_words = Some(usize_arg()?),
                "bound-kernel" => {
                    req.bound_kernel = Some(
                        BoundKernel::parse(rest)
                            .ok_or_else(|| fail(ln, format!("unknown bound kernel {rest:?}")))?,
                    )
                }
                "prune" => {
                    req.prune = Some(
                        PruneStrategy::parse(rest)
                            .ok_or_else(|| fail(ln, format!("unknown prune strategy {rest:?}")))?,
                    )
                }
                "frontier-shards" => req.frontier_shards = Some(usize_arg()?),
                "memory-nodes" => {
                    let nodes: u64 = rest
                        .trim()
                        .parse()
                        .map_err(|_| fail(ln, format!("bad node cap {rest:?}")))?;
                    req.memory = Some(MemoryBudget::new(nodes));
                }
                "checkpoint" => {
                    let (interval, path) = rest
                        .split_once(' ')
                        .ok_or_else(|| fail(ln, "checkpoint needs interval and path".into()))?;
                    let interval: u64 = interval
                        .parse()
                        .map_err(|_| fail(ln, format!("bad checkpoint interval {interval:?}")))?;
                    req.checkpoint = Some(CheckpointPolicy::new(path).interval(interval));
                }
                "resume" => req.resume = Some(PathBuf::from(rest)),
                "retry" => {
                    let parts: Vec<&str> = rest.split_whitespace().collect();
                    let [attempts, backoff_ns, seed, budget] = parts[..] else {
                        return Err(fail(ln, format!("bad retry spec {rest:?}")));
                    };
                    let num = |tok: &str| -> Result<u64, RequestError> {
                        tok.parse()
                            .map_err(|_| fail(ln, format!("bad retry field {tok:?}")))
                    };
                    req.retry = Some(
                        RetryPolicy::new()
                            .max_attempts(num(attempts)? as u32)
                            .base_backoff(Duration::from_nanos(num(backoff_ns)?))
                            .seed(num(seed)?)
                            .budget(num(budget)? as u32),
                    );
                }
                "threshold" => req.threshold = usize_arg()?,
                "linkage" => {
                    req.linkage = match rest.trim() {
                        "maximum" => Linkage::Maximum,
                        "minimum" => Linkage::Minimum,
                        "average" => Linkage::Average,
                        other => return Err(fail(ln, format!("unknown linkage {other:?}"))),
                    }
                }
                "max-depth" => req.max_depth = usize_arg()?,
                "cache" => {
                    req.cache = Some(match rest.trim() {
                        "on" => true,
                        "off" => false,
                        other => return Err(fail(ln, format!("unknown cache switch {other:?}"))),
                    })
                }
                "trace" => {
                    req.trace = Some(
                        TraceLevel::parse(rest.trim())
                            .ok_or_else(|| fail(ln, format!("unknown trace level {rest:?}")))?,
                    )
                }
                "matrix" => {
                    let (shape, arg) = rest
                        .split_once(' ')
                        .ok_or_else(|| fail(ln, format!("bad matrix line {rest:?}")))?;
                    match shape {
                        "phylip" => req.source = MatrixSource::PhylipPath(PathBuf::from(arg)),
                        "inline" => {
                            let n: usize = arg
                                .parse()
                                .map_err(|_| fail(ln, format!("bad taxon count {arg:?}")))?;
                            let mut labels: Vec<String> = Vec::new();
                            let mut m = DistanceMatrix::zeros(n).map_err(|e| {
                                fail(ln, format!("cannot build {n}-taxon matrix: {e}"))
                            })?;
                            let mut i = 1;
                            for (ln, raw) in lines.by_ref() {
                                let raw = raw.trim_end();
                                if let Some(label) = raw.strip_prefix("label ") {
                                    labels.push(label.to_string());
                                    continue;
                                }
                                let Some(row) = raw.strip_prefix("row ") else {
                                    return Err(fail(
                                        ln,
                                        format!("expected matrix row, found {raw:?}"),
                                    ));
                                };
                                let toks: Vec<&str> = row.split_whitespace().collect();
                                if toks.len() != i {
                                    return Err(fail(
                                        ln,
                                        format!("row {i} has {} entries, wants {i}", toks.len()),
                                    ));
                                }
                                for (j, tok) in toks.iter().enumerate() {
                                    let d =
                                        u64::from_str_radix(tok, 16).map(f64::from_bits).map_err(
                                            |_| fail(ln, format!("bad hex distance {tok:?}")),
                                        )?;
                                    m.set(i, j, d);
                                }
                                i += 1;
                                if i == n {
                                    break;
                                }
                            }
                            if i != n {
                                return Err(fail(0, format!("matrix ended at row {i} of {n}")));
                            }
                            if !labels.is_empty() {
                                if labels.len() != n {
                                    return Err(fail(
                                        0,
                                        format!("{} labels for {n} taxa", labels.len()),
                                    ));
                                }
                                m.set_labels(labels);
                            }
                            req.source = MatrixSource::Inline(m);
                        }
                        other => return Err(fail(ln, format!("unknown matrix shape {other:?}"))),
                    }
                    have_source = true;
                }
                other => return Err(fail(ln, format!("unknown keyword {other:?}"))),
            }
        }
        if !have_source {
            return Err(fail(0, "request has no matrix line".into()));
        }
        Ok(req)
    }
}

/// Why a request failed to [`decode`](SolveRequest::decode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// 1-based line number of the offending line (0 when the problem is
    /// the overall shape, e.g. a truncated matrix).
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "request line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for RequestError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> DistanceMatrix {
        let mut m = DistanceMatrix::from_rows(&[
            vec![0.0, 3.25, 8.0625],
            vec![3.25, 0.0, 7.000000000000001],
            vec![8.0625, 7.000000000000001, 0.0],
        ])
        .unwrap();
        m.set_labels(["alpha", "beta", "gamma"]);
        m
    }

    #[test]
    fn round_trips_every_field_bit_exactly() {
        let mut req = SolveRequest::decompose(sample_matrix())
            .backend(BackendSpec::Parallel { workers: 3 })
            .mode(SearchMode::AllOptimal)
            .threads(8)
            .leaf_words(2)
            .bound_kernel(BoundKernel::Scalar)
            .prune(PruneStrategy::Propagate)
            .frontier_shards(16)
            .cache(true);
        req.strategy = Strategy::BestFirst;
        req.three_three = ThreeThree::Full;
        req.tol = 1e-7;
        req.max_branches = 123_456;
        req.timeout = Some(Duration::from_millis(1500));
        req.use_maxmin = false;
        req.memory = Some(MemoryBudget::new(9999));
        req.checkpoint = Some(CheckpointPolicy::new("/tmp/ck pt.bin").interval(64));
        req.resume = Some(PathBuf::from("/tmp/old.ckpt"));
        req.retry = Some(RetryPolicy::new().max_attempts(5).seed(7).budget(11));
        req.threshold = 6;
        req.linkage = Linkage::Average;
        req.max_depth = 3;
        req.trace = Some(TraceLevel::Incumbents);

        let text = req.encode();
        let back = SolveRequest::decode(&text).expect("decodes");
        // The text form is canonical: a decoded request re-encodes to the
        // identical bytes, which covers every field including the exact
        // matrix bits.
        assert_eq!(back.encode(), text);
        assert_eq!(back.mode, SearchMode::AllOptimal);
        assert_eq!(back.timeout, Some(Duration::from_millis(1500)));
        assert_eq!(back.cache, Some(true));
        assert_eq!(back.prune, Some(PruneStrategy::Propagate));
        let MatrixSource::Inline(m) = &back.source else {
            panic!("inline matrix expected");
        };
        assert_eq!(m.get(0, 2).to_bits(), 8.0625f64.to_bits());
        assert_eq!(m.get(1, 2).to_bits(), 7.000000000000001f64.to_bits());
        assert_eq!(m.label(1), "beta");
    }

    #[test]
    fn defaults_round_trip_minimally() {
        let req = SolveRequest::exact(sample_matrix());
        let back = SolveRequest::decode(&req.encode()).unwrap();
        assert_eq!(back.encode(), req.encode());
        assert_eq!(back.kind, SolveKind::Exact);
        assert_eq!(back.threads, None);
        assert_eq!(back.cache, None);
        assert_eq!(back.prune, None);
        assert_eq!(back.tol.to_bits(), 1e-9f64.to_bits());
    }

    #[test]
    fn phylip_source_round_trips() {
        let req = SolveRequest::new(MatrixSource::PhylipPath("data/hm dna.phy".into()));
        let back = SolveRequest::decode(&req.encode()).unwrap();
        let MatrixSource::PhylipPath(p) = &back.source else {
            panic!("path source expected");
        };
        assert_eq!(p, &PathBuf::from("data/hm dna.phy"));
    }

    #[test]
    fn malformed_requests_name_the_line() {
        assert!(SolveRequest::decode("").is_err());
        let err = SolveRequest::decode("mutree-request v1\nbogus 3\n").unwrap_err();
        assert_eq!(err.line, 2);
        let truncated = "mutree-request v1\nmatrix inline 4\nrow 0000000000000000\n";
        assert!(SolveRequest::decode(truncated).is_err());
    }

    #[test]
    fn backoff_is_deterministic_and_exponential() {
        let p = RetryPolicy::new()
            .seed(7)
            .base_backoff(Duration::from_millis(2));
        assert_eq!(p.backoff("group 1", 1), p.backoff("group 1", 1));
        assert_ne!(p.backoff("group 1", 1), p.backoff("group 2", 1));
        for attempt in 1..4 {
            let d = p.backoff("meta", attempt);
            let base = Duration::from_millis(2) * (1 << (attempt - 1));
            assert!(d >= base / 2 && d <= base, "attempt {attempt}: {d:?}");
        }
    }
}
