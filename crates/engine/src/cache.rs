//! The content-addressed group-solve cache.
//!
//! The decomposition pipeline solves many small matrices — one per
//! compact group, plus condensed meta matrices — and real batches repeat
//! themselves: bootstrap replicates, parameter sweeps and incremental
//! re-runs hand the solver the *same* sub-matrix over and over, and
//! near-identical ones (a few distances perturbed within tolerance) even
//! more often. A [`GroupCache`] remembers finished group solves and
//! answers repeats from memory.
//!
//! # Key derivation
//!
//! A sub-matrix is first **canonicalized** by its maxmin permutation —
//! the same relabeling the solver itself applies — so two groups that
//! are permutations of each other canonicalize to identical matrices
//! whenever the maxmin order is tie-free (tied distances may split
//! permuted copies across entries: a missed dedup, never a wrong
//! answer). The
//! canonical strict-lower-triangle distances are then **quantized** to
//! the solve tolerance (`floor(d / quantum)` per entry) and hashed with
//! FNV-1a, together with the taxon count and a *solver signature*
//! describing every knob that can change the optimum (search strategy,
//! 3-3 rule, incumbent heuristics, …). That hash picks a bucket:
//!
//! * an entry whose canonical bytes match **bit for bit** (same `n`,
//!   same signature) is an **exact hit** — the stored optimum and
//!   topology are returned without searching, provenance
//!   [`Cached`](crate::StageProvenance::Cached);
//! * an entry in the same bucket with different bits is a **near hit** —
//!   its distances differ from the probe's by less than a quantum, so
//!   its tree is returned as a warm-start seed: the search still runs
//!   and still proves optimality, it just starts with a near-optimal
//!   incumbent, provenance
//!   [`WarmSeeded`](crate::StageProvenance::WarmSeeded).
//!
//! Entries carry an FNV checksum over their canonical bytes, weight and
//! encoded tree; a corrupted (poisoned) entry fails its checksum on
//! probe, is evicted, and the solve falls back to a cold search — a bad
//! cache can cost time but never a wrong answer.

use std::collections::HashMap;
use std::sync::Mutex;

use mutree_bnb::hash::{fnv1a, fnv1a_continue};
use mutree_distmat::{DistanceMatrix, MaxminPermutation};
use mutree_tree::{codec, UltrametricTree};

/// Most entries kept per hash bucket; the oldest is evicted beyond this.
const BUCKET_CAP: usize = 16;

/// One remembered group solve, stored in canonical (maxmin-relabeled)
/// indexing.
struct Entry {
    /// Taxon count.
    n: usize,
    /// Solver signature the solve ran under.
    sig: u64,
    /// Canonical strict-lower-triangle distances, exact bits.
    canon: Vec<f64>,
    /// The proven-optimal weight.
    weight: f64,
    /// The optimal tree, codec-encoded, canonical taxon indexing.
    payload: Vec<u8>,
    /// FNV over canon bits ‖ weight bits ‖ payload; checked on probe.
    checksum: u64,
}

/// Canonicalizes `m`: maxmin-relabels it and returns the canonical
/// strict-lower-triangle distances plus the relabeling order
/// (`order[k]` = the taxon of `m` that canonical taxon `k` names).
///
/// The maxmin definition leaves the *orientation* of the leading max
/// pair free — `(a, b, …)` and `(b, a, …)` are both maxmin — and which
/// one the greedy computation lands on depends on the input labeling.
/// Both orientations are tried and the lexicographically smaller
/// canonical byte string wins, so relabeled copies of a matrix
/// canonicalize identically (given a tie-free maxmin order).
fn canonicalize(m: &DistanceMatrix) -> (Vec<f64>, Vec<usize>) {
    let perm = MaxminPermutation::compute(m);
    let order_a = perm.order().to_vec();
    let canon_a: Vec<f64> = m.permute(&order_a).condensed().to_vec();
    let mut order_b = order_a.clone();
    order_b.swap(0, 1);
    let canon_b: Vec<f64> = m.permute(&order_b).condensed().to_vec();
    let a_key = canon_a.iter().map(|d| d.to_bits());
    let b_key = canon_b.iter().map(|d| d.to_bits());
    if a_key.le(b_key) {
        (canon_a, order_a)
    } else {
        (canon_b, order_b)
    }
}

fn entry_checksum(canon: &[f64], weight: f64, payload: &[u8]) -> u64 {
    let mut h = fnv1a(b"mutree-cache-entry-v1");
    for d in canon {
        h = fnv1a_continue(h, &d.to_bits().to_le_bytes());
    }
    h = fnv1a_continue(h, &weight.to_bits().to_le_bytes());
    fnv1a_continue(h, payload)
}

/// Everything a later [`insert`](GroupCache::insert) needs to file the
/// solve under the same key the probe computed — returned by
/// [`probe`](GroupCache::probe) so canonicalization happens once.
pub struct CacheQuery {
    key: u64,
    canon: Vec<f64>,
    /// `order[k]` = the probed matrix's (local) taxon that canonical
    /// taxon `k` relabels.
    order: Vec<usize>,
    sig: u64,
    n: usize,
}

/// What a probe found.
pub enum CacheOutcome {
    /// Exact hit: this very matrix (up to taxon relabeling) was already
    /// solved under the same signature. The tree is in the probed
    /// matrix's taxon indexing.
    Hit {
        /// The stored optimal tree.
        tree: UltrametricTree,
        /// The stored optimal weight.
        weight: f64,
    },
    /// Near hit: an ε-close matrix was solved before; `tree` (probed
    /// indexing) is a warm-start incumbent, not an answer. Run the
    /// search and [`insert`](GroupCache::insert) with the query.
    Seed {
        /// The stored tree of the ε-close matrix.
        tree: UltrametricTree,
        /// Its stored weight under *its* matrix — advisory only.
        weight: f64,
        /// Hand back to [`insert`](GroupCache::insert) after solving.
        query: CacheQuery,
    },
    /// Nothing useful cached. Solve cold and
    /// [`insert`](GroupCache::insert) with the query.
    Miss(CacheQuery),
}

/// A probe result plus bookkeeping the caller folds into its stats.
pub struct CacheProbe {
    /// The outcome.
    pub outcome: CacheOutcome,
    /// Poisoned (checksum-failing) entries evicted during this probe.
    pub poisoned: u64,
}

/// A thread-safe, content-addressed store of finished group solves. See
/// the [module docs](self) for the key derivation and hit semantics.
pub struct GroupCache {
    quantum: f64,
    buckets: Mutex<HashMap<u64, Vec<Entry>>>,
}

impl Default for GroupCache {
    fn default() -> Self {
        GroupCache::new()
    }
}

impl std::fmt::Debug for GroupCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupCache")
            .field("quantum", &self.quantum)
            .field("entries", &self.len())
            .finish()
    }
}

impl GroupCache {
    /// An empty cache quantizing at the solver's default tolerance
    /// (`1e-9`).
    pub fn new() -> Self {
        GroupCache::with_quantum(1e-9)
    }

    /// An empty cache quantizing distances to `quantum` for key
    /// derivation. Matrices whose quantized distances coincide share a
    /// bucket and warm-seed each other; `0.0` (or non-finite) disables
    /// quantization — only bit-identical matrices ever meet.
    pub fn with_quantum(quantum: f64) -> Self {
        let quantum = if quantum.is_finite() && quantum > 0.0 {
            quantum
        } else {
            0.0
        };
        GroupCache {
            quantum,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// The bucket key for canonical distances under this cache's
    /// quantum and the given solver signature.
    fn key_of(&self, n: usize, sig: u64, canon: &[f64]) -> u64 {
        let mut h = fnv1a(b"mutree-cache-key-v1");
        h = fnv1a_continue(h, &(n as u64).to_le_bytes());
        h = fnv1a_continue(h, &self.quantum.to_bits().to_le_bytes());
        h = fnv1a_continue(h, &sig.to_le_bytes());
        for &d in canon {
            let cell = if self.quantum > 0.0 {
                (d / self.quantum).floor() as i64
            } else {
                d.to_bits() as i64
            };
            h = fnv1a_continue(h, &cell.to_le_bytes());
        }
        h
    }

    /// Looks up `m` (a group sub-matrix, local taxon indexing `0..n`)
    /// solved under solver signature `sig`.
    ///
    /// Canonicalizes, hashes, and scans the bucket: exact bit match →
    /// [`CacheOutcome::Hit`]; same bucket, same `n`/`sig`, different
    /// bits → [`CacheOutcome::Seed`]; otherwise [`CacheOutcome::Miss`].
    /// Entries failing their checksum are evicted and counted in
    /// [`CacheProbe::poisoned`].
    pub fn probe(&self, m: &DistanceMatrix, sig: u64) -> CacheProbe {
        let n = m.len();
        let (canon, order) = canonicalize(m);
        let key = self.key_of(n, sig, &canon);

        let mut poisoned = 0u64;
        let mut buckets = self.buckets.lock().expect("cache lock");
        let outcome = match buckets.get_mut(&key) {
            None => None,
            Some(bucket) => {
                bucket.retain(|e| {
                    let ok = entry_checksum(&e.canon, e.weight, &e.payload) == e.checksum;
                    if !ok {
                        poisoned += 1;
                    }
                    ok
                });
                let same_shape =
                    |e: &&Entry| e.n == n && e.sig == sig && e.canon.len() == canon.len();
                let exact = bucket.iter().filter(same_shape).find(|e| {
                    e.canon
                        .iter()
                        .zip(&canon)
                        .all(|(a, b)| a.to_bits() == b.to_bits())
                });
                match exact {
                    Some(e) => codec::decode_tree(&e.payload).map(|mut tree| {
                        tree.map_taxa(|c| order[c]);
                        CacheOutcome::Hit {
                            tree,
                            weight: e.weight,
                        }
                    }),
                    None => bucket.iter().find(same_shape).and_then(|e| {
                        codec::decode_tree(&e.payload).map(|mut tree| {
                            tree.map_taxa(|c| order[c]);
                            CacheOutcome::Seed {
                                tree,
                                weight: e.weight,
                                query: CacheQuery {
                                    key,
                                    canon: canon.clone(),
                                    order: order.clone(),
                                    sig,
                                    n,
                                },
                            }
                        })
                    }),
                }
            }
        };
        let outcome = outcome.unwrap_or(CacheOutcome::Miss(CacheQuery {
            key,
            canon,
            order,
            sig,
            n,
        }));
        CacheProbe { outcome, poisoned }
    }

    /// Files a finished, proven-optimal solve of the matrix `query` was
    /// probed from. `tree` is in that matrix's (local) taxon indexing;
    /// it is re-canonicalized before storage. An entry for the identical
    /// canonical matrix is replaced; otherwise the entry is appended
    /// (evicting the bucket's oldest beyond the cap).
    pub fn insert(&self, query: CacheQuery, tree: &UltrametricTree, weight: f64) {
        let CacheQuery {
            key,
            canon,
            order,
            sig,
            n,
        } = query;
        // order[k] = local taxon of canonical k; invert to map the
        // local-indexed tree into canonical indexing for storage.
        let mut inv = vec![0usize; order.len()];
        for (k, &local) in order.iter().enumerate() {
            inv[local] = k;
        }
        let mut canonical_tree = tree.clone();
        canonical_tree.map_taxa(|local| inv[local]);
        let payload = codec::encode_tree(&canonical_tree);
        let checksum = entry_checksum(&canon, weight, &payload);
        let entry = Entry {
            n,
            sig,
            canon,
            weight,
            payload,
            checksum,
        };

        let mut buckets = self.buckets.lock().expect("cache lock");
        let bucket = buckets.entry(key).or_default();
        let identical = bucket.iter_mut().find(|e| {
            e.n == entry.n
                && e.sig == entry.sig
                && e.canon.len() == entry.canon.len()
                && e.canon
                    .iter()
                    .zip(&entry.canon)
                    .all(|(a, b)| a.to_bits() == b.to_bits())
        });
        match identical {
            Some(slot) => *slot = entry,
            None => {
                if bucket.len() >= BUCKET_CAP {
                    bucket.remove(0);
                }
                bucket.push(entry);
            }
        }
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.buckets
            .lock()
            .expect("cache lock")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Corrupts every stored payload so the next probe fails each
    /// entry's checksum. Test hook for the poisoned-cache degradation
    /// path; not part of the public contract.
    #[doc(hidden)]
    pub fn poison_all(&self) {
        let mut buckets = self.buckets.lock().expect("cache lock");
        for bucket in buckets.values_mut() {
            for e in bucket.iter_mut() {
                match e.payload.first_mut() {
                    Some(b) => *b ^= 0xFF,
                    None => e.checksum ^= 1,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutree_tree::cluster;
    use mutree_tree::Linkage;

    /// A 4-taxon matrix with a unique ultrametric structure.
    fn matrix() -> DistanceMatrix {
        DistanceMatrix::from_rows(&[
            vec![0.0, 2.0, 8.0, 8.0],
            vec![2.0, 0.0, 8.0, 8.0],
            vec![8.0, 8.0, 0.0, 4.0],
            vec![8.0, 8.0, 4.0, 0.0],
        ])
        .unwrap()
    }

    fn tree_for(m: &DistanceMatrix) -> (UltrametricTree, f64) {
        let mut t = cluster(m, Linkage::Maximum);
        let w = t.fit_heights(m);
        (t, w)
    }

    #[test]
    fn cold_probe_misses_and_insert_hits() {
        let cache = GroupCache::new();
        let m = matrix();
        let probe = cache.probe(&m, 42);
        let CacheOutcome::Miss(query) = probe.outcome else {
            panic!("cold cache must miss");
        };
        assert_eq!(probe.poisoned, 0);
        let (t, w) = tree_for(&m);
        cache.insert(query, &t, w);
        assert_eq!(cache.len(), 1);

        let probe = cache.probe(&m, 42);
        let CacheOutcome::Hit { tree, weight } = probe.outcome else {
            panic!("identical matrix must hit");
        };
        assert_eq!(weight.to_bits(), w.to_bits());
        assert_eq!(
            mutree_tree::compare::robinson_foulds(&tree, &t).unwrap(),
            0,
            "stored topology must round-trip"
        );
    }

    #[test]
    fn taxon_permutations_share_one_entry() {
        let cache = GroupCache::new();
        // All distances distinct, so the maxmin permutation is tie-free
        // and canonicalization is label-invariant.
        let m = DistanceMatrix::from_rows(&[
            vec![0.0, 2.0, 9.0, 8.0],
            vec![2.0, 0.0, 7.0, 6.0],
            vec![9.0, 7.0, 0.0, 4.0],
            vec![8.0, 6.0, 4.0, 0.0],
        ])
        .unwrap();
        let CacheOutcome::Miss(q) = cache.probe(&m, 0).outcome else {
            panic!("miss expected");
        };
        let (t, w) = tree_for(&m);
        cache.insert(q, &t, w);

        // The same matrix with taxa relabeled canonicalizes identically.
        let perm = m.permute(&[2, 0, 3, 1]);
        let probe = cache.probe(&perm, 0);
        let CacheOutcome::Hit { tree, weight } = probe.outcome else {
            panic!("permuted matrix must hit the same entry");
        };
        assert_eq!(weight.to_bits(), w.to_bits());
        // The returned tree is in the *permuted* matrix's indexing: its
        // reference tree is the cluster tree of the permuted matrix.
        let (tp, _) = tree_for(&perm);
        assert_eq!(
            mutree_tree::compare::robinson_foulds(&tree, &tp).unwrap(),
            0
        );
    }

    #[test]
    fn different_signature_misses() {
        let cache = GroupCache::new();
        let m = matrix();
        let CacheOutcome::Miss(q) = cache.probe(&m, 1).outcome else {
            panic!("miss expected");
        };
        let (t, w) = tree_for(&m);
        cache.insert(q, &t, w);
        assert!(matches!(cache.probe(&m, 2).outcome, CacheOutcome::Miss(_)));
    }

    #[test]
    fn within_quantum_perturbation_seeds() {
        let quantum = 1e-3;
        let cache = GroupCache::with_quantum(quantum);
        // Place every distance at a bin center so a small perturbation
        // stays in the same quantization bucket.
        let center = |d: f64| (d / quantum).floor() * quantum + 0.5 * quantum;
        let mut m = matrix();
        for (i, j, d) in matrix().pairs() {
            m.set(i, j, center(d));
        }
        let CacheOutcome::Miss(q) = cache.probe(&m, 0).outcome else {
            panic!("miss expected");
        };
        let (t, w) = tree_for(&m);
        cache.insert(q, &t, w);

        let mut near = m.clone();
        near.set(0, 1, m.get(0, 1) + quantum / 4.0);
        let probe = cache.probe(&near, 0);
        let CacheOutcome::Seed { tree, .. } = probe.outcome else {
            panic!("ε-perturbed matrix must warm-seed");
        };
        assert_eq!(tree.leaf_count(), 4);

        // A perturbation past the quantum lands in another bucket.
        let mut far = m.clone();
        far.set(0, 1, m.get(0, 1) + 3.0 * quantum);
        assert!(matches!(
            cache.probe(&far, 0).outcome,
            CacheOutcome::Miss(_)
        ));
    }

    #[test]
    fn poisoned_entries_are_evicted_not_served() {
        let cache = GroupCache::new();
        let m = matrix();
        let CacheOutcome::Miss(q) = cache.probe(&m, 0).outcome else {
            panic!("miss expected");
        };
        let (t, w) = tree_for(&m);
        cache.insert(q, &t, w);
        cache.poison_all();

        let probe = cache.probe(&m, 0);
        assert_eq!(probe.poisoned, 1, "corrupted entry must be detected");
        assert!(
            matches!(probe.outcome, CacheOutcome::Miss(_)),
            "corrupted entry must not be served"
        );
        assert_eq!(cache.len(), 0, "corrupted entry must be evicted");
    }

    #[test]
    fn reinserting_identical_matrix_replaces() {
        let cache = GroupCache::new();
        let m = matrix();
        let (t, w) = tree_for(&m);
        for _ in 0..3 {
            let q = match cache.probe(&m, 0).outcome {
                CacheOutcome::Miss(q) => q,
                CacheOutcome::Seed { query, .. } => query,
                // An exact hit still re-files: rebuild the query from a
                // cold cache probe of the same matrix.
                CacheOutcome::Hit { .. } => match GroupCache::new().probe(&m, 0).outcome {
                    CacheOutcome::Miss(q) => q,
                    _ => unreachable!("cold cache misses"),
                },
            };
            cache.insert(q, &t, w);
        }
        assert_eq!(cache.len(), 1, "identical solves must not accumulate");
    }
}
