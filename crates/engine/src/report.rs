//! [`SolveReport`]: the unified outcome of a solve.
//!
//! The exact solver and the decomposition pipeline used to return two
//! unrelated result structs, leaving the CLI, the benches and the tests
//! to reconcile them field by field. A report carries everything either
//! path produces — tree(s), weight, merged search statistics, per-stage
//! timings with cache provenance, degradation records, the most severe
//! stop reason — in one shape.

use mutree_bnb::{BoundKernel, PruneStrategy, SearchStats, StopReason};
use mutree_clustersim::SimReport;
use mutree_tree::UltrametricTree;

/// Where a pipeline stage's tree came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StageProvenance {
    /// A live exact (or degraded-fallback) solve produced it.
    #[default]
    Solved,
    /// The group-solve cache answered it outright: the canonical matrix
    /// bytes matched a stored solve bit for bit, so the stored optimum
    /// was returned without searching.
    Cached,
    /// The cache held a solve of an ε-close matrix (same quantization
    /// bucket, different bits); its tree seeded the incumbent and a full
    /// exact search still ran — faster, but live.
    WarmSeeded,
}

impl std::fmt::Display for StageProvenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StageProvenance::Solved => "solved",
            StageProvenance::Cached => "cached",
            StageProvenance::WarmSeeded => "warm-seeded",
        })
    }
}

/// Why a pipeline stage fell short of a proven-optimal exact solve.
#[derive(Debug, Clone, PartialEq)]
pub enum DegradeReason {
    /// The exact solve stopped early (budget, deadline, cancellation or a
    /// worker panic) and its best incumbent — still a feasible subtree —
    /// was used.
    Stopped(StopReason),
    /// The exact solve returned an error; the max-linkage agglomerative
    /// fallback tree was used instead.
    Error(String),
    /// The exact solve panicked; the max-linkage agglomerative fallback
    /// tree was used instead.
    Panicked,
}

impl std::fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradeReason::Stopped(r) => write!(f, "search stopped early: {r}"),
            DegradeReason::Error(e) => write!(f, "solver error: {e}"),
            DegradeReason::Panicked => f.write_str("solver panicked"),
        }
    }
}

/// A pipeline stage that did not run to proven optimality.
///
/// The merged tree is still feasible — Lemma 2 guarantees any feasible
/// subtree over a compact group merges under the max-linkage attachment —
/// but the affected piece is a heuristic, not an optimum.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedGroup {
    /// Index into the pipeline's group list for a top-level group stage,
    /// or `None` when the condensed meta-matrix solve, a stage below a
    /// recursive meta solve, or an undecomposable whole-matrix solve was
    /// the degraded stage.
    pub group: Option<usize>,
    /// Depth-qualified stage path, e.g. `group 3`, `meta`, or
    /// `meta[1]/group 0` for a stage inside the first recursive condensed
    /// solve — so recursive degradations are no longer ambiguous.
    pub stage: String,
    /// What happened.
    pub reason: DegradeReason,
    /// How many solve attempts the stage made before degrading (1 when
    /// no [`RetryPolicy`](crate::RetryPolicy) was configured or the first
    /// attempt's outcome was non-retryable).
    pub attempts: u32,
}

/// Wall-clock time one pipeline stage took.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTiming {
    /// Depth-qualified stage path (same scheme as
    /// [`DegradedGroup::stage`]), plus `merge` for the join stage.
    pub stage: String,
    /// Seconds the stage ran for (including any retry backoff).
    pub seconds: f64,
    /// Solve attempts the stage made (1 unless a
    /// [`RetryPolicy`](crate::RetryPolicy) re-attempted a panicked or
    /// errored solve). Always 1 for the `merge` join, which is not a
    /// solve.
    pub attempts: u32,
    /// Whether the stage's tree was solved live, answered from the
    /// group-solve cache, or warm-seeded by it.
    pub provenance: StageProvenance,
}

/// The unified outcome of a solve, whichever path produced it.
#[derive(Debug, Clone)]
pub struct SolveReport {
    /// The (best) ultrametric tree, in original taxon indexing.
    pub tree: UltrametricTree,
    /// Its weight.
    pub weight: f64,
    /// Every optimal tree, when the search mode asked for all of them;
    /// otherwise just the best one. Never empty.
    pub trees: Vec<UltrametricTree>,
    /// Merged search statistics across every sub-search that ran.
    pub stats: SearchStats,
    /// The most severe stop reason any sub-search reported
    /// ([`StopReason::Completed`] when every search exhausted its space).
    pub stop: StopReason,
    /// Pipeline stages that fell back from a proven-optimal solve.
    /// Always empty for an exact (non-pipeline) solve.
    pub degraded: Vec<DegradedGroup>,
    /// Per-stage wall-clock times in pipeline order; a single synthetic
    /// entry for an exact solve.
    pub timings: Vec<StageTiming>,
    /// The species groups the compact sets induced (pipeline solves
    /// only).
    pub groups: Option<Vec<Vec<usize>>>,
    /// Number of proper compact sets the matrix had (pipeline solves
    /// only).
    pub compact_sets: Option<usize>,
    /// Discrete-event statistics when the simulated-cluster backend ran.
    pub sim: Option<SimReport>,
    /// The leaf-bitset width the solve dispatched to, in 64-bit words
    /// (exact solves only).
    pub leaf_words: Option<usize>,
    /// The bound kernel the solve dispatched to (exact solves only).
    pub bound_kernel: Option<BoundKernel>,
    /// The prune-stage strategy the solve dispatched to (exact solves
    /// only).
    pub prune: Option<PruneStrategy>,
}

impl SolveReport {
    /// Whether the solve ran to proven optimality everywhere: every
    /// search exhausted its space and no pipeline stage degraded.
    pub fn is_complete(&self) -> bool {
        self.stop.is_complete() && self.degraded.is_empty()
    }

    /// Total cache interactions: hits + misses (zero when no cache was
    /// attached or no stage was cacheable).
    pub fn cache_lookups(&self) -> u64 {
        self.stats.cache_hits + self.stats.cache_misses
    }

    /// The `count` slowest stages, most expensive first.
    pub fn slowest_stages(&self, count: usize) -> Vec<&StageTiming> {
        let mut by_time: Vec<&StageTiming> = self.timings.iter().collect();
        by_time.sort_by(|a, b| b.seconds.total_cmp(&a.seconds));
        by_time.truncate(count);
        by_time
    }
}
