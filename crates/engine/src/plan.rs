//! [`SolvePlan`]: a [`SolveRequest`] with every environment override
//! resolved.
//!
//! This module is the **only** place in the workspace that reads the
//! `MUTREE_*` environment variables (a hygiene test greps the source
//! tree for strays). Each knob resolves with the same precedence rule:
//!
//! | priority | source | example |
//! |---|---|---|
//! | 1 (wins) | explicit request field / builder call | [`SolveRequest::threads`] |
//! | 2 | environment variable | `MUTREE_PIPELINE_THREADS` |
//! | 3 | built-in default | inline execution |
//!
//! The recognized variables:
//!
//! | variable | request field | effect |
//! |---|---|---|
//! | `MUTREE_PIPELINE_THREADS` | `threads` | pipeline executor thread count |
//! | `MUTREE_FORCE_LEAF_WORDS` | `leaf_words` | leaf-bitset width in 64-bit words |
//! | `MUTREE_FORCE_BOUND_KERNEL` | `bound_kernel` | `scalar` or `lanes` bound arithmetic |
//! | `MUTREE_FORCE_PRUNE` | `prune` | `weight`, `propagate` or `hybrid` prune stages |
//! | `MUTREE_FRONTIER_SHARDS` | `frontier_shards` | work-stealing shard count |
//! | `MUTREE_CACHE` | `cache` | `1`/`true`/`on` enables the group-solve cache |
//! | `MUTREE_SERVE_QUEUE_DEPTH` | — (daemon knob) | `mutree serve` admission-queue depth |
//! | `MUTREE_SERVE_WORKERS` | — (daemon knob) | `mutree serve` concurrent solve workers |
//!
//! The two `MUTREE_SERVE_*` variables configure the serve daemon rather
//! than a single solve, so they have no [`SolveRequest`] field; the
//! daemon's config resolves them here (flag > environment > default) so
//! this module stays the only environment reader.
//!
//! Unparseable or out-of-range values are ignored (the variable behaves
//! as unset) rather than aborting a solve over a typo; width validation
//! against the compiled-in widths happens downstream where the widths
//! are known.
//!
//! Resolution captures the environment through [`EnvOverrides`], a plain
//! struct, so every precedence rule is testable without mutating the
//! process environment: tests build the overrides by hand and call
//! [`SolvePlan::resolve`] directly.

use mutree_bnb::{BoundKernel, PruneStrategy};

use crate::request::SolveRequest;

/// Pipeline executor threads from `MUTREE_PIPELINE_THREADS` (positive
/// integer; anything else is ignored).
pub fn env_pipeline_threads() -> Option<usize> {
    std::env::var("MUTREE_PIPELINE_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t > 0)
}

/// Forced leaf-bitset width from `MUTREE_FORCE_LEAF_WORDS`, unvalidated
/// — the solver checks it against the widths it was compiled with and
/// ignores unsupported values.
pub fn env_forced_leaf_words() -> Option<usize> {
    std::env::var("MUTREE_FORCE_LEAF_WORDS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
}

/// Forced bound kernel from `MUTREE_FORCE_BOUND_KERNEL` (`scalar` or
/// `lanes`).
pub fn env_forced_bound_kernel() -> Option<BoundKernel> {
    std::env::var("MUTREE_FORCE_BOUND_KERNEL")
        .ok()
        .and_then(|v| BoundKernel::parse(&v))
}

/// Forced prune strategy from `MUTREE_FORCE_PRUNE` (`weight`,
/// `propagate` or `hybrid`).
pub fn env_forced_prune() -> Option<PruneStrategy> {
    std::env::var("MUTREE_FORCE_PRUNE")
        .ok()
        .and_then(|v| PruneStrategy::parse(&v))
}

/// Forced work-stealing shard count from `MUTREE_FRONTIER_SHARDS`
/// (integer ≥ 1; the frontier clamps to its compiled-in maximum).
pub fn env_frontier_shards() -> Option<usize> {
    std::env::var("MUTREE_FRONTIER_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&s| s >= 1)
}

/// Whether `MUTREE_CACHE` asks for the group-solve cache (`1`, `true`
/// or `on`, case-insensitive). `None` when unset or unrecognized.
pub fn env_cache_enabled() -> Option<bool> {
    let v = std::env::var("MUTREE_CACHE").ok()?;
    match v.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Some(true),
        "0" | "false" | "off" | "no" => Some(false),
        _ => None,
    }
}

/// `mutree serve` admission-queue depth from `MUTREE_SERVE_QUEUE_DEPTH`
/// (integer ≥ 1; anything else is ignored). A daemon knob, not a
/// per-solve knob — it never appears in a [`SolveRequest`] or a
/// [`SolvePlan`]; the env read lives here so `tests/env_hygiene.rs`
/// keeps holding for the whole workspace.
pub fn env_serve_queue_depth() -> Option<usize> {
    std::env::var("MUTREE_SERVE_QUEUE_DEPTH")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&d| d >= 1)
}

/// `mutree serve` concurrent solve-worker count from
/// `MUTREE_SERVE_WORKERS` (integer ≥ 1; anything else is ignored). Same
/// daemon-knob caveat as [`env_serve_queue_depth`].
pub fn env_serve_workers() -> Option<usize> {
    std::env::var("MUTREE_SERVE_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&w| w >= 1)
}

/// A snapshot of the `MUTREE_*` environment overrides, decoupled from
/// the process environment so precedence is testable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EnvOverrides {
    /// `MUTREE_PIPELINE_THREADS`.
    pub pipeline_threads: Option<usize>,
    /// `MUTREE_FORCE_LEAF_WORDS` (raw, validated downstream).
    pub leaf_words: Option<usize>,
    /// `MUTREE_FORCE_BOUND_KERNEL`.
    pub bound_kernel: Option<BoundKernel>,
    /// `MUTREE_FORCE_PRUNE`.
    pub prune: Option<PruneStrategy>,
    /// `MUTREE_FRONTIER_SHARDS`.
    pub frontier_shards: Option<usize>,
    /// `MUTREE_CACHE`.
    pub cache: Option<bool>,
}

impl EnvOverrides {
    /// No overrides — resolution falls straight through to the request
    /// and the defaults. The honest baseline for tests.
    pub fn none() -> Self {
        EnvOverrides::default()
    }

    /// Reads the live process environment.
    pub fn capture() -> Self {
        EnvOverrides {
            pipeline_threads: env_pipeline_threads(),
            leaf_words: env_forced_leaf_words(),
            bound_kernel: env_forced_bound_kernel(),
            prune: env_forced_prune(),
            frontier_shards: env_frontier_shards(),
            cache: env_cache_enabled(),
        }
    }
}

/// A request with the environment folded in: what will actually run.
///
/// Fields that stay `None` after resolution mean "use the built-in
/// default", decided downstream where the defaults live (e.g. the
/// narrowest fitting leaf width is picked by the solver, which knows
/// the matrix size).
#[derive(Debug, Clone)]
pub struct SolvePlan {
    /// The originating request, unmodified.
    pub request: SolveRequest,
    /// Resolved pipeline executor threads.
    pub threads: Option<usize>,
    /// Resolved forced leaf width (still unvalidated).
    pub leaf_words: Option<usize>,
    /// Resolved forced bound kernel.
    pub bound_kernel: Option<BoundKernel>,
    /// Resolved prune strategy.
    pub prune: Option<PruneStrategy>,
    /// Resolved frontier shard override.
    pub frontier_shards: Option<usize>,
    /// Whether the group-solve cache is on.
    pub cache_enabled: bool,
    /// Whether the cache decision came from the request itself rather
    /// than the environment. Explicitly-requested caches additionally
    /// memoize whole pipeline solves; environment-enabled ones stay
    /// stage-level so ambient `MUTREE_CACHE=1` cannot change the shape
    /// of a run's timing report.
    pub cache_explicit: bool,
}

impl SolvePlan {
    /// Folds `env` into `request` under the **builder > environment >
    /// default** rule. This is the single point where the environment
    /// influences a solve.
    pub fn resolve(request: SolveRequest, env: &EnvOverrides) -> SolvePlan {
        let threads = request.threads.or(env.pipeline_threads);
        let leaf_words = request.leaf_words.or(env.leaf_words);
        let bound_kernel = request.bound_kernel.or(env.bound_kernel);
        let prune = request.prune.or(env.prune);
        let frontier_shards = request.frontier_shards.or(env.frontier_shards);
        let cache_enabled = request.cache.or(env.cache).unwrap_or(false);
        let cache_explicit = request.cache.is_some();
        SolvePlan {
            request,
            threads,
            leaf_words,
            bound_kernel,
            prune,
            frontier_shards,
            cache_enabled,
            cache_explicit,
        }
    }

    /// Resolves against the live process environment
    /// ([`EnvOverrides::capture`]).
    pub fn resolve_from_env(request: SolveRequest) -> SolvePlan {
        SolvePlan::resolve(request, &EnvOverrides::capture())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutree_distmat::DistanceMatrix;

    fn request() -> SolveRequest {
        let mut m = DistanceMatrix::zeros(3).unwrap();
        m.set(1, 0, 2.0);
        m.set(2, 0, 4.0);
        m.set(2, 1, 4.0);
        SolveRequest::exact(m)
    }

    #[test]
    fn defaults_without_request_or_env() {
        let plan = SolvePlan::resolve(request(), &EnvOverrides::none());
        assert_eq!(plan.threads, None);
        assert_eq!(plan.leaf_words, None);
        assert_eq!(plan.bound_kernel, None);
        assert_eq!(plan.prune, None);
        assert_eq!(plan.frontier_shards, None);
        assert!(!plan.cache_enabled);
        assert!(!plan.cache_explicit);
    }

    #[test]
    fn environment_fills_unset_fields() {
        let env = EnvOverrides {
            pipeline_threads: Some(8),
            leaf_words: Some(2),
            bound_kernel: Some(BoundKernel::Lanes),
            prune: Some(PruneStrategy::Propagate),
            frontier_shards: Some(4),
            cache: Some(true),
        };
        let plan = SolvePlan::resolve(request(), &env);
        assert_eq!(plan.threads, Some(8));
        assert_eq!(plan.leaf_words, Some(2));
        assert_eq!(plan.bound_kernel, Some(BoundKernel::Lanes));
        assert_eq!(plan.prune, Some(PruneStrategy::Propagate));
        assert_eq!(plan.frontier_shards, Some(4));
        assert!(plan.cache_enabled);
        // Environment-enabled, not explicit.
        assert!(!plan.cache_explicit);
    }

    #[test]
    fn builder_beats_environment_on_every_knob() {
        let env = EnvOverrides {
            pipeline_threads: Some(8),
            leaf_words: Some(4),
            bound_kernel: Some(BoundKernel::Lanes),
            prune: Some(PruneStrategy::Propagate),
            frontier_shards: Some(64),
            cache: Some(true),
        };
        let req = request()
            .threads(2)
            .leaf_words(1)
            .bound_kernel(BoundKernel::Scalar)
            .prune(PruneStrategy::WeightOnly)
            .frontier_shards(3)
            .cache(false);
        let plan = SolvePlan::resolve(req, &env);
        assert_eq!(plan.threads, Some(2));
        assert_eq!(plan.leaf_words, Some(1));
        assert_eq!(plan.bound_kernel, Some(BoundKernel::Scalar));
        assert_eq!(plan.prune, Some(PruneStrategy::WeightOnly));
        assert_eq!(plan.frontier_shards, Some(3));
        assert!(!plan.cache_enabled);
        assert!(plan.cache_explicit);
    }

    #[test]
    fn explicit_cache_on_is_flagged_explicit() {
        let plan = SolvePlan::resolve(request().cache(true), &EnvOverrides::none());
        assert!(plan.cache_enabled);
        assert!(plan.cache_explicit);
    }
}
