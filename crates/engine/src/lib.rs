//! The solve-engine spine: **request → plan → report**.
//!
//! Every way of running a minimum-ultrametric-tree solve — the CLI, the
//! benches, the tests — used to assemble its configuration ad hoc from
//! builder calls sprinkled with `MUTREE_*` environment reads scattered
//! across three crates. This crate pulls that into one explicit
//! three-stage spine:
//!
//! 1. [`SolveRequest`] — an owned, serializable description of *what* to
//!    solve: the matrix (inline or a PHYLIP path) plus every knob (mode,
//!    strategy, tolerance, budget, deadline, threads, forced leaf width,
//!    forced bound kernel, retry / checkpoint / memory policies, pipeline
//!    depth and threshold). Nothing in a request depends on the process
//!    environment.
//! 2. [`SolvePlan`] — the request with every environment override
//!    resolved, in exactly one place ([`SolvePlan::resolve`]). The
//!    precedence rule is uniform and tested: **builder > environment >
//!    default**. The `MUTREE_*` variables are captured by
//!    [`EnvOverrides::capture`]; no other call site in the workspace
//!    reads them (a hygiene test greps for strays).
//! 3. [`SolveReport`] — the unified outcome: tree(s), weight, merged
//!    [`SearchStats`](mutree_bnb::SearchStats), stage timings,
//!    degradation provenance and stop reasons, whichever path (exact
//!    solver or decomposition pipeline) produced it.
//!
//! The [`cache`] module adds the content-addressed group-solve cache the
//! decomposition pipeline consults per stage: solves keyed by the FNV
//! hash of the canonical (maxmin-permuted, tolerance-quantized) matrix
//! bytes, answering exact re-solves from memory and warm-seeding ε-close
//! ones.
//!
//! The [`wire`] module carries the spine over a socket: the
//! `mutree-report v1` codec serializes a [`SolveReport`] in the same
//! bit-exact line style as the request codec, and [`ServeError`] is the
//! structured error frame the `mutree serve` daemon answers with when a
//! request is shed, malformed, cancelled or failed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod plan;
pub mod report;
pub mod request;
pub mod wire;

pub use cache::{CacheOutcome, CacheProbe, CacheQuery, GroupCache};
pub use plan::{EnvOverrides, SolvePlan};
pub use report::{DegradeReason, DegradedGroup, SolveReport, StageProvenance, StageTiming};
pub use request::{
    BackendSpec, MatrixSource, RequestError, RetryPolicy, SolveKind, SolveRequest, ThreeThree,
};
pub use wire::{ReportError, ServeError, ServeErrorCode};
