//! Wire codecs for the serve daemon: `mutree-report v1` and
//! `mutree-error v1`.
//!
//! The daemon (`crates/serve`) carries the existing [`SolveRequest`]
//! text codec over length-prefixed frames; this module adds the response
//! side. A [`SolveReport`] serializes to the same line-based keyword
//! style as the request codec, with every `f64` written as its IEEE-754
//! bit pattern in hex, so a report decoded on the client is **bit
//! identical** to the one the server computed: weights, per-stage
//! seconds, tree heights, search statistics, stop reasons and
//! degradation provenance all survive the round trip exactly.
//!
//! Trees ride along as the hex of the checkpoint byte codec
//! ([`mutree_tree::codec`]), which already guarantees bit-exact heights
//! and validates structure on decode.
//!
//! One field does not cross the wire: `sim`, the discrete-event
//! statistics of the simulated-cluster backend. It is a diagnostic of
//! the *server's* run, not part of the answer, and its nested report has
//! no stability contract; `decode` always leaves it `None`.
//!
//! [`ServeError`] is the structured error frame: a stable machine-readable
//! [`code`](ServeError::code) (the admission controller's `overloaded`
//! shed, `malformed` input, a `panicked` worker, ...) plus a free-text
//! message.
//!
//! [`SolveRequest`]: crate::SolveRequest

use mutree_bnb::{BoundKernel, PruneStrategy, SearchStats, StopReason};
use mutree_tree::codec as tree_codec;

use crate::report::{DegradeReason, DegradedGroup, SolveReport, StageProvenance, StageTiming};

/// First line of every serialized request (the codec in
/// [`SolveRequest::encode`](crate::SolveRequest::encode)).
pub const REQUEST_HEADER: &str = "mutree-request v1";
/// First line of every serialized report.
pub const REPORT_HEADER: &str = "mutree-report v1";
/// First line of every serialized error frame.
pub const ERROR_HEADER: &str = "mutree-error v1";
/// Payload a client sends to ask the daemon for a graceful drain.
pub const SHUTDOWN_HEADER: &str = "mutree-shutdown v1";

/// A malformed `mutree-report v1` document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "report line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ReportError {}

fn stop_token(stop: StopReason) -> &'static str {
    match stop {
        StopReason::Completed => "completed",
        StopReason::BudgetExhausted => "budget",
        StopReason::DeadlineExpired => "deadline",
        StopReason::Cancelled => "cancelled",
        StopReason::MemoryExhausted => "memory",
        StopReason::WorkerPanicked => "worker-panic",
    }
}

fn parse_stop(tok: &str) -> Option<StopReason> {
    Some(match tok {
        "completed" => StopReason::Completed,
        "budget" => StopReason::BudgetExhausted,
        "deadline" => StopReason::DeadlineExpired,
        "cancelled" => StopReason::Cancelled,
        "memory" => StopReason::MemoryExhausted,
        "worker-panic" => StopReason::WorkerPanicked,
        _ => return None,
    })
}

fn provenance_token(p: StageProvenance) -> &'static str {
    match p {
        StageProvenance::Solved => "solved",
        StageProvenance::Cached => "cached",
        StageProvenance::WarmSeeded => "warm-seeded",
    }
}

fn parse_provenance(tok: &str) -> Option<StageProvenance> {
    Some(match tok {
        "solved" => StageProvenance::Solved,
        "cached" => StageProvenance::Cached,
        "warm-seeded" => StageProvenance::WarmSeeded,
        _ => return None,
    })
}

/// The search statistics in a fixed wire order. Every counter crosses the
/// wire; a new counter appended here stays decodable by older readers
/// because unknown `stat` names are an explicit decode error (the codec
/// is versioned, not sloppy) while *missing* ones default to zero.
const STAT_FIELDS: [&str; 16] = [
    "branched",
    "pruned",
    "propagation-pruned",
    "solutions-seen",
    "incumbent-updates",
    "peak-pool",
    "steals",
    "donations",
    "parks",
    "retries",
    "nodes-shed",
    "checkpoints",
    "cache-hits",
    "cache-misses",
    "cache-warm-seeds",
    "cache-poisoned",
];

fn stat_values(s: &SearchStats) -> [u64; 16] {
    [
        s.branched,
        s.pruned,
        s.propagation_pruned,
        s.solutions_seen,
        s.incumbent_updates,
        s.peak_pool,
        s.steals,
        s.donations,
        s.parks,
        s.retries,
        s.nodes_shed,
        s.checkpoints,
        s.cache_hits,
        s.cache_misses,
        s.cache_warm_seeds,
        s.cache_poisoned,
    ]
}

fn set_stat(s: &mut SearchStats, name: &str, v: u64) -> bool {
    match name {
        "branched" => s.branched = v,
        "pruned" => s.pruned = v,
        "propagation-pruned" => s.propagation_pruned = v,
        "solutions-seen" => s.solutions_seen = v,
        "incumbent-updates" => s.incumbent_updates = v,
        "peak-pool" => s.peak_pool = v,
        "steals" => s.steals = v,
        "donations" => s.donations = v,
        "parks" => s.parks = v,
        "retries" => s.retries = v,
        "nodes-shed" => s.nodes_shed = v,
        "checkpoints" => s.checkpoints = v,
        "cache-hits" => s.cache_hits = v,
        "cache-misses" => s.cache_misses = v,
        "cache-warm-seeds" => s.cache_warm_seeds = v,
        "cache-poisoned" => s.cache_poisoned = v,
        _ => return false,
    }
    true
}

fn hex_of(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn bytes_of(hex: &str) -> Option<Vec<u8>> {
    if !hex.len().is_multiple_of(2) {
        return None;
    }
    (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).ok())
        .collect()
}

/// One line with a newline-free free-text tail: embedded newlines would
/// smuggle extra protocol lines into the document, so they are flattened
/// to spaces on encode.
fn sanitize(text: &str) -> String {
    text.replace(['\n', '\r'], " ")
}

impl SolveReport {
    /// Serializes the report to its `mutree-report v1` line form.
    ///
    /// Everything except `sim` crosses the wire (see the module docs);
    /// [`decode`](SolveReport::decode) reproduces the same report to the
    /// bit — weights and stage seconds as IEEE-754 bit patterns, tree
    /// heights through the checkpoint byte codec.
    pub fn encode(&self) -> String {
        let mut out = String::from(REPORT_HEADER);
        out.push('\n');
        let mut line = |s: String| {
            out.push_str(&s);
            out.push('\n');
        };
        line(format!("weight {:016x}", self.weight.to_bits()));
        line(format!("stop {}", stop_token(self.stop)));
        for (name, value) in STAT_FIELDS.iter().zip(stat_values(&self.stats)) {
            line(format!("stat {name} {value}"));
        }
        if let Some(w) = self.leaf_words {
            line(format!("leaf-words {w}"));
        }
        if let Some(k) = self.bound_kernel {
            line(format!("bound-kernel {}", k.name()));
        }
        if let Some(p) = self.prune {
            line(format!("prune {}", p.name()));
        }
        if let Some(c) = self.compact_sets {
            line(format!("compact-sets {c}"));
        }
        if let Some(groups) = &self.groups {
            line(format!("groups {}", groups.len()));
            for g in groups {
                let taxa: Vec<String> = g.iter().map(|t| t.to_string()).collect();
                line(format!("group {}", taxa.join(" ")).trim_end().to_string());
            }
        }
        for t in &self.timings {
            line(format!(
                "timing {} {} {:016x} {}",
                t.attempts,
                provenance_token(t.provenance),
                t.seconds.to_bits(),
                sanitize(&t.stage)
            ));
        }
        for d in &self.degraded {
            let group = d
                .group
                .map(|g| g.to_string())
                .unwrap_or_else(|| "-".to_string());
            let reason = match &d.reason {
                DegradeReason::Stopped(r) => format!("stopped {}", stop_token(*r)),
                DegradeReason::Error(msg) => format!("error {}", sanitize(msg)),
                DegradeReason::Panicked => "panicked".to_string(),
            };
            line(format!("degraded {} {} {}", group, d.attempts, reason));
            line(format!("degraded-stage {}", sanitize(&d.stage)));
        }
        line(format!(
            "best {}",
            hex_of(&tree_codec::encode_tree(&self.tree))
        ));
        for t in &self.trees {
            line(format!("tree {}", hex_of(&tree_codec::encode_tree(t))));
        }
        out
    }

    /// Parses the text form produced by [`encode`](SolveReport::encode).
    ///
    /// # Errors
    ///
    /// [`ReportError`] naming the offending line on any malformed input:
    /// a wrong header, unknown keywords or tokens, bad hex, undecodable
    /// tree bytes, a dangling `degraded` record, or a missing mandatory
    /// field (`weight`, `stop`, `best`, at least one `tree`).
    pub fn decode(text: &str) -> Result<SolveReport, ReportError> {
        let fail = |line: usize, message: String| ReportError {
            line: line + 1,
            message,
        };
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, line)) if line == REPORT_HEADER => {}
            other => {
                return Err(fail(
                    0,
                    format!("expected {REPORT_HEADER:?} header, found {other:?}"),
                ))
            }
        }
        let mut weight: Option<f64> = None;
        let mut stop: Option<StopReason> = None;
        let mut stats = SearchStats::default();
        let mut leaf_words = None;
        let mut bound_kernel = None;
        let mut prune = None;
        let mut compact_sets = None;
        let mut groups: Option<Vec<Vec<usize>>> = None;
        let mut group_count = 0usize;
        let mut timings: Vec<StageTiming> = Vec::new();
        let mut degraded: Vec<DegradedGroup> = Vec::new();
        let mut stage_pending = false;
        let mut best = None;
        let mut trees = Vec::new();
        for (ln, raw) in lines {
            let raw = raw.trim_end();
            if raw.is_empty() {
                continue;
            }
            let (keyword, rest) = raw.split_once(' ').unwrap_or((raw, ""));
            let bits_of = |tok: &str| -> Result<f64, ReportError> {
                // Exactly 16 digits, matching the canonical `{:016x}`
                // encoding — a short token is corruption, not leniency.
                if tok.len() != 16 {
                    return Err(fail(ln, format!("bad hex float {tok:?}")));
                }
                u64::from_str_radix(tok, 16)
                    .map(f64::from_bits)
                    .map_err(|_| fail(ln, format!("bad hex float {tok:?}")))
            };
            let tree_of = |tok: &str| -> Result<_, ReportError> {
                bytes_of(tok)
                    .and_then(|b| tree_codec::decode_tree(&b))
                    .ok_or_else(|| fail(ln, format!("{keyword}: undecodable tree bytes")))
            };
            if stage_pending && keyword != "degraded-stage" {
                return Err(fail(
                    ln,
                    "degraded record is missing its degraded-stage line".to_string(),
                ));
            }
            match keyword {
                "weight" => weight = Some(bits_of(rest.trim())?),
                "stop" => {
                    stop = Some(parse_stop(rest.trim()).ok_or_else(|| {
                        fail(ln, format!("unknown stop reason {:?}", rest.trim()))
                    })?)
                }
                "stat" => {
                    let (name, value) = rest
                        .trim()
                        .split_once(' ')
                        .ok_or_else(|| fail(ln, format!("stat: missing value in {rest:?}")))?;
                    let value: u64 = value
                        .trim()
                        .parse()
                        .map_err(|_| fail(ln, format!("stat {name}: bad count {value:?}")))?;
                    if !set_stat(&mut stats, name, value) {
                        return Err(fail(ln, format!("unknown stat {name:?}")));
                    }
                }
                "leaf-words" => {
                    leaf_words = Some(
                        rest.trim()
                            .parse::<usize>()
                            .map_err(|_| fail(ln, format!("leaf-words: bad count {rest:?}")))?,
                    )
                }
                "bound-kernel" => {
                    bound_kernel = Some(BoundKernel::parse(rest).ok_or_else(|| {
                        fail(ln, format!("unknown bound kernel {:?}", rest.trim()))
                    })?)
                }
                "prune" => {
                    prune = Some(PruneStrategy::parse(rest).ok_or_else(|| {
                        fail(ln, format!("unknown prune strategy {:?}", rest.trim()))
                    })?)
                }
                "compact-sets" => {
                    compact_sets = Some(
                        rest.trim()
                            .parse::<usize>()
                            .map_err(|_| fail(ln, format!("compact-sets: bad count {rest:?}")))?,
                    )
                }
                "groups" => {
                    group_count = rest
                        .trim()
                        .parse()
                        .map_err(|_| fail(ln, format!("groups: bad count {rest:?}")))?;
                    groups = Some(Vec::with_capacity(group_count));
                }
                "group" => {
                    let list = groups
                        .as_mut()
                        .ok_or_else(|| fail(ln, "group before groups count".to_string()))?;
                    let taxa = rest
                        .split_whitespace()
                        .map(|t| {
                            t.parse::<usize>()
                                .map_err(|_| fail(ln, format!("group: bad taxon {t:?}")))
                        })
                        .collect::<Result<Vec<usize>, ReportError>>()?;
                    list.push(taxa);
                }
                "timing" => {
                    let mut toks = rest.splitn(4, ' ');
                    let attempts = toks
                        .next()
                        .and_then(|t| t.parse::<u32>().ok())
                        .ok_or_else(|| fail(ln, format!("timing: bad attempts in {rest:?}")))?;
                    let provenance = toks
                        .next()
                        .and_then(parse_provenance)
                        .ok_or_else(|| fail(ln, format!("timing: bad provenance in {rest:?}")))?;
                    let seconds = bits_of(toks.next().unwrap_or(""))?;
                    let stage = toks.next().unwrap_or("").to_string();
                    timings.push(StageTiming {
                        stage,
                        seconds,
                        attempts,
                        provenance,
                    });
                }
                "degraded" => {
                    let mut toks = rest.splitn(3, ' ');
                    let group = match toks.next() {
                        Some("-") => None,
                        Some(g) => Some(
                            g.parse::<usize>()
                                .map_err(|_| fail(ln, format!("degraded: bad group {g:?}")))?,
                        ),
                        None => return Err(fail(ln, "degraded: missing group".to_string())),
                    };
                    let attempts = toks
                        .next()
                        .and_then(|t| t.parse::<u32>().ok())
                        .ok_or_else(|| fail(ln, format!("degraded: bad attempts in {rest:?}")))?;
                    let reason = match toks.next().map(|r| r.split_once(' ').unwrap_or((r, ""))) {
                        Some(("stopped", tok)) => {
                            DegradeReason::Stopped(parse_stop(tok.trim()).ok_or_else(|| {
                                fail(ln, format!("degraded: unknown stop reason {tok:?}"))
                            })?)
                        }
                        Some(("error", msg)) => DegradeReason::Error(msg.to_string()),
                        Some(("panicked", "")) => DegradeReason::Panicked,
                        other => {
                            return Err(fail(ln, format!("degraded: unknown reason {other:?}")))
                        }
                    };
                    degraded.push(DegradedGroup {
                        group,
                        stage: String::new(),
                        reason,
                        attempts,
                    });
                    stage_pending = true;
                }
                "degraded-stage" => {
                    if !stage_pending {
                        return Err(fail(ln, "degraded-stage without degraded".to_string()));
                    }
                    degraded
                        .last_mut()
                        .expect("stage_pending implies a record")
                        .stage = rest.to_string();
                    stage_pending = false;
                }
                "best" => best = Some(tree_of(rest.trim())?),
                "tree" => trees.push(tree_of(rest.trim())?),
                other => return Err(fail(ln, format!("unknown keyword {other:?}"))),
            }
        }
        let total = text.lines().count();
        if stage_pending {
            return Err(fail(
                total,
                "degraded record is missing its degraded-stage line".to_string(),
            ));
        }
        let missing = |what: &str| fail(total, format!("missing {what}"));
        if let Some(groups) = &groups {
            if groups.len() != group_count {
                return Err(fail(
                    total,
                    format!("groups: expected {group_count}, found {}", groups.len()),
                ));
            }
        }
        if trees.is_empty() {
            return Err(missing("tree"));
        }
        Ok(SolveReport {
            tree: best.ok_or_else(|| missing("best"))?,
            weight: weight.ok_or_else(|| missing("weight"))?,
            trees,
            stats,
            stop: stop.ok_or_else(|| missing("stop"))?,
            degraded,
            timings,
            groups,
            compact_sets,
            sim: None,
            leaf_words,
            bound_kernel,
            prune,
        })
    }
}

/// Machine-readable class of a [`ServeError`] frame. The token set is
/// part of the `mutree-error v1` contract: clients branch on the code,
/// never on the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeErrorCode {
    /// The frame's payload was not a well-formed request (bad header,
    /// codec error, oversized or truncated frame, non-UTF-8 bytes, or a
    /// matrix source the daemon refuses, such as server-local paths).
    Malformed,
    /// The admission controller shed the request: the pending queue was
    /// at its configured depth, or the request's deadline had already
    /// passed when it would have been dispatched.
    Overloaded,
    /// The daemon is draining and accepts no new work.
    Draining,
    /// The request's `CancelToken` fired (its client disconnected)
    /// before a report could be produced.
    Cancelled,
    /// The solve panicked; the daemon and its pool survived, this
    /// request alone failed.
    Panicked,
    /// The solver returned an error (bad matrix, unresumable checkpoint,
    /// ...), carried in the message.
    Solver,
}

impl ServeErrorCode {
    /// The stable wire token for this code.
    pub fn token(self) -> &'static str {
        match self {
            ServeErrorCode::Malformed => "malformed",
            ServeErrorCode::Overloaded => "overloaded",
            ServeErrorCode::Draining => "draining",
            ServeErrorCode::Cancelled => "cancelled",
            ServeErrorCode::Panicked => "panicked",
            ServeErrorCode::Solver => "solver",
        }
    }

    /// Parses a wire token back to a code.
    pub fn parse(tok: &str) -> Option<ServeErrorCode> {
        Some(match tok.trim() {
            "malformed" => ServeErrorCode::Malformed,
            "overloaded" => ServeErrorCode::Overloaded,
            "draining" => ServeErrorCode::Draining,
            "cancelled" => ServeErrorCode::Cancelled,
            "panicked" => ServeErrorCode::Panicked,
            "solver" => ServeErrorCode::Solver,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ServeErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

/// The structured error frame a daemon sends instead of a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// What class of failure this is.
    pub code: ServeErrorCode,
    /// Human-readable detail (single line; newlines are flattened on
    /// encode).
    pub message: String,
}

impl ServeError {
    /// Builds an error frame.
    pub fn new(code: ServeErrorCode, message: impl Into<String>) -> ServeError {
        ServeError {
            code,
            message: message.into(),
        }
    }

    /// Serializes to the `mutree-error v1` line form.
    pub fn encode(&self) -> String {
        format!(
            "{ERROR_HEADER}\ncode {}\nmessage {}\n",
            self.code.token(),
            sanitize(&self.message)
        )
    }

    /// Parses the text form produced by [`encode`](ServeError::encode).
    ///
    /// # Errors
    ///
    /// [`ReportError`] on a wrong header, an unknown code, or a missing
    /// code line.
    pub fn decode(text: &str) -> Result<ServeError, ReportError> {
        let fail = |line: usize, message: String| ReportError { line, message };
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, line)) if line == ERROR_HEADER => {}
            other => {
                return Err(fail(
                    1,
                    format!("expected {ERROR_HEADER:?} header, found {other:?}"),
                ))
            }
        }
        let mut code = None;
        let mut message = String::new();
        for (ln, raw) in lines {
            let raw = raw.trim_end();
            if raw.is_empty() {
                continue;
            }
            let (keyword, rest) = raw.split_once(' ').unwrap_or((raw, ""));
            match keyword {
                "code" => {
                    code = Some(ServeErrorCode::parse(rest).ok_or_else(|| {
                        fail(ln + 1, format!("unknown error code {:?}", rest.trim()))
                    })?)
                }
                "message" => message = rest.to_string(),
                other => return Err(fail(ln + 1, format!("unknown keyword {other:?}"))),
            }
        }
        Ok(ServeError {
            code: code.ok_or_else(|| fail(text.lines().count(), "missing code".to_string()))?,
            message,
        })
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutree_tree::UltrametricTree;

    fn tree(n: usize) -> UltrametricTree {
        let mut t = UltrametricTree::leaf(0);
        for taxon in 1..n {
            let h = taxon as f64 * 1.25;
            t = UltrametricTree::join(t, UltrametricTree::leaf(taxon), h);
        }
        t
    }

    fn report() -> SolveReport {
        let t = tree(5);
        SolveReport {
            tree: t.clone(),
            weight: 12.345678901234567,
            trees: vec![t.clone(), tree(5)],
            stats: SearchStats {
                branched: 11,
                pruned: 7,
                propagation_pruned: 3,
                cache_hits: 2,
                cache_poisoned: 1,
                ..SearchStats::default()
            },
            stop: StopReason::DeadlineExpired,
            degraded: vec![
                DegradedGroup {
                    group: Some(3),
                    stage: "meta[1]/group 0".to_string(),
                    reason: DegradeReason::Stopped(StopReason::Cancelled),
                    attempts: 2,
                },
                DegradedGroup {
                    group: None,
                    stage: "meta".to_string(),
                    reason: DegradeReason::Error("solver error: bad matrix".to_string()),
                    attempts: 1,
                },
            ],
            timings: vec![StageTiming {
                stage: "group 0".to_string(),
                seconds: 0.001953125,
                attempts: 3,
                provenance: StageProvenance::WarmSeeded,
            }],
            groups: Some(vec![vec![0, 1], vec![2, 3, 4], vec![]]),
            compact_sets: Some(3),
            sim: None,
            leaf_words: Some(2),
            bound_kernel: Some(BoundKernel::Lanes),
            prune: Some(PruneStrategy::Hybrid),
        }
    }

    #[test]
    fn report_round_trips_bit_exactly() {
        let r = report();
        let decoded = SolveReport::decode(&r.encode()).unwrap();
        assert_eq!(decoded.weight.to_bits(), r.weight.to_bits());
        assert_eq!(decoded.stop, r.stop);
        assert_eq!(decoded.stats, r.stats);
        assert_eq!(decoded.degraded, r.degraded);
        assert_eq!(decoded.timings, r.timings);
        assert_eq!(decoded.groups, r.groups);
        assert_eq!(decoded.compact_sets, r.compact_sets);
        assert_eq!(decoded.leaf_words, r.leaf_words);
        assert_eq!(decoded.bound_kernel, r.bound_kernel);
        assert_eq!(decoded.prune, r.prune);
        assert_eq!(decoded.trees.len(), r.trees.len());
        assert_eq!(
            tree_codec::encode_tree(&decoded.tree),
            tree_codec::encode_tree(&r.tree)
        );
    }

    #[test]
    fn header_is_mandatory() {
        let err = SolveReport::decode("mutree-report v2\nweight 0\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(ServeError::decode("not an error frame").is_err());
    }

    #[test]
    fn unknown_keyword_and_bad_hex_are_rejected() {
        let good = report().encode();
        let with_junk = format!("{good}bogus 1\n");
        assert!(SolveReport::decode(&with_junk).is_err());
        let bad_hex = good.replace("weight ", "weight zz");
        assert!(SolveReport::decode(&bad_hex).is_err());
    }

    #[test]
    fn truncated_document_is_rejected() {
        let good = report().encode();
        let no_best: String = good
            .lines()
            .filter(|l| !l.starts_with("best"))
            .map(|l| format!("{l}\n"))
            .collect();
        let err = SolveReport::decode(&no_best).unwrap_err();
        assert!(err.message.contains("missing best"), "{err}");
    }

    #[test]
    fn dangling_degraded_record_is_rejected() {
        let text = format!(
            "{REPORT_HEADER}\nweight 3ff0000000000000\nstop completed\ndegraded - 1 panicked\n"
        );
        let err = SolveReport::decode(&text).unwrap_err();
        assert!(err.message.contains("degraded-stage"), "{err}");
    }

    #[test]
    fn error_frame_round_trips() {
        let e = ServeError::new(ServeErrorCode::Overloaded, "queue full (depth 4)");
        assert_eq!(ServeError::decode(&e.encode()).unwrap(), e);
        let empty = ServeError::new(ServeErrorCode::Cancelled, "");
        assert_eq!(ServeError::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn newlines_in_messages_cannot_smuggle_lines() {
        let e = ServeError::new(ServeErrorCode::Solver, "two\nlines");
        let decoded = ServeError::decode(&e.encode()).unwrap();
        assert_eq!(decoded.message, "two lines");
    }
}
