//! Property tests: the edit-distance dynamic program against a reference
//! implementation, and evolution-model sanity.

use mutree_seqgen::{
    edit_distance, evolve, p_distance, random_coalescent, random_root_sequence, DnaSeq,
    EvolutionParams, SubstitutionModel,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Reference Levenshtein: full quadratic table, no tricks.
fn reference_edit(a: &DnaSeq, b: &DnaSeq) -> usize {
    let (a, b) = (a.codes(), b.codes());
    let mut dp = vec![vec![0usize; b.len() + 1]; a.len() + 1];
    for (i, row) in dp.iter_mut().enumerate() {
        row[0] = i;
    }
    for (j, cell) in dp[0].iter_mut().enumerate() {
        *cell = j;
    }
    for i in 1..=a.len() {
        for j in 1..=b.len() {
            let sub = dp[i - 1][j - 1] + usize::from(a[i - 1] != b[j - 1]);
            dp[i][j] = sub.min(dp[i - 1][j] + 1).min(dp[i][j - 1] + 1);
        }
    }
    dp[a.len()][b.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn edit_distance_matches_reference(a in "[ACGT]{0,25}", b in "[ACGT]{0,25}") {
        let (a, b): (DnaSeq, DnaSeq) = (a.parse().unwrap(), b.parse().unwrap());
        prop_assert_eq!(edit_distance(&a, &b), reference_edit(&a, &b));
    }

    #[test]
    fn p_distance_bounds_edit_distance(a in "[ACGT]{1,30}") {
        let a: DnaSeq = a.parse().unwrap();
        // Mutate a copy by substitutions only: edit distance equals the
        // Hamming count then.
        let mut codes = a.codes().to_vec();
        for c in codes.iter_mut().step_by(3) {
            *c = (*c + 1) % 4;
        }
        let b = DnaSeq::from_codes(codes);
        let hamming = (p_distance(&a, &b) * a.len() as f64).round() as usize;
        prop_assert!(edit_distance(&a, &b) <= hamming);
    }

    #[test]
    fn coalescent_tree_is_binary_over_all_taxa(n in 2usize..25, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = random_coalescent(n, 1.0, &mut rng);
        prop_assert_eq!(t.leaf_count(), n);
        prop_assert_eq!(t.node_count(), 2 * n - 1);
        prop_assert!(t.validate().is_ok());
        prop_assert!(t.taxa().eq(0..n));
    }

    #[test]
    fn evolution_without_indels_preserves_length(n in 2usize..8, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = random_coalescent(n, 1.0, &mut rng);
        let root = random_root_sequence(60, &mut rng);
        let params = EvolutionParams {
            model: SubstitutionModel::JukesCantor { rate: 0.1 },
            indel_rate: 0.0,
            rate_variation: 0.2,
        };
        let seqs = evolve(&tree, &root, &params, &mut rng);
        for s in &seqs {
            prop_assert_eq!(s.len(), 60);
        }
    }

    #[test]
    fn mutation_rate_zero_is_identity(n in 2usize..6, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = random_coalescent(n, 1.0, &mut rng);
        let root = random_root_sequence(40, &mut rng);
        let params = EvolutionParams {
            model: SubstitutionModel::JukesCantor { rate: 0.0 },
            indel_rate: 0.0,
            rate_variation: 0.0,
        };
        let seqs = evolve(&tree, &root, &params, &mut rng);
        for s in &seqs {
            prop_assert_eq!(s, &root);
        }
    }
}
