//! Minimal FASTA reading and writing.

use crate::{DnaSeq, SeqError};

/// One FASTA record: a header name and its sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// The text after `>` on the header line (up to the first whitespace).
    pub name: String,
    /// The sequence.
    pub seq: DnaSeq,
}

/// Formats records as FASTA with 70-column wrapping.
pub fn to_fasta(records: &[FastaRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push('>');
        out.push_str(&r.name);
        out.push('\n');
        let text = r.seq.to_string();
        for chunk in text.as_bytes().chunks(70) {
            out.push_str(std::str::from_utf8(chunk).expect("ASCII"));
            out.push('\n');
        }
    }
    out
}

/// Parses FASTA text. Sequence lines may wrap; blank lines are skipped.
///
/// # Errors
///
/// [`SeqError::InvalidBase`] for non-`ACGT` sequence characters. Input with
/// sequence data before any header is reported as an invalid base at
/// offset 0.
pub fn parse_fasta(input: &str) -> Result<Vec<FastaRecord>, SeqError> {
    let mut records: Vec<FastaRecord> = Vec::new();
    let mut current: Option<(String, String)> = None;
    for line in input.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('>') {
            if let Some((name, text)) = current.take() {
                records.push(FastaRecord {
                    name,
                    seq: DnaSeq::parse(&text)?,
                });
            }
            let name = name.split_whitespace().next().unwrap_or("").to_string();
            current = Some((name, String::new()));
        } else {
            match &mut current {
                Some((_, text)) => text.push_str(line),
                None => {
                    return Err(SeqError::InvalidBase {
                        at: 0,
                        found: line.chars().next().unwrap_or(' '),
                    })
                }
            }
        }
    }
    if let Some((name, text)) = current {
        records.push(FastaRecord {
            name,
            seq: DnaSeq::parse(&text)?,
        });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let records = vec![
            FastaRecord {
                name: "sp1".into(),
                seq: "ACGTACGT".parse().unwrap(),
            },
            FastaRecord {
                name: "sp2".into(),
                seq: "TTTT".parse().unwrap(),
            },
        ];
        let text = to_fasta(&records);
        let parsed = parse_fasta(&text).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn wraps_long_sequences() {
        let records = vec![FastaRecord {
            name: "long".into(),
            seq: DnaSeq::from_codes(vec![0; 200]),
        }];
        let text = to_fasta(&records);
        assert!(text.lines().all(|l| l.len() <= 70));
        assert_eq!(parse_fasta(&text).unwrap()[0].seq.len(), 200);
    }

    #[test]
    fn header_keeps_first_word() {
        let parsed = parse_fasta(">sp1 Homo sapiens\nACGT\n").unwrap();
        assert_eq!(parsed[0].name, "sp1");
    }

    #[test]
    fn rejects_headerless_sequence() {
        assert!(parse_fasta("ACGT\n").is_err());
    }

    #[test]
    fn empty_input_is_empty() {
        assert_eq!(parse_fasta("").unwrap(), vec![]);
    }
}
