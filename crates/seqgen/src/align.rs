//! Pairwise sequence alignment with affine gap penalties (Gotoh 1982).
//!
//! Plain edit distance charges every gap position equally; real molecular
//! distances penalize *opening* a gap more than *extending* one, because a
//! single indel event often spans several bases. This module provides the
//! classic three-matrix dynamic program computing the minimum alignment
//! cost under mismatch / gap-open / gap-extend penalties, plus the
//! corresponding distance-matrix builder.
//!
//! With `gap_open == 0` and `gap_extend == mismatch == 1`, the cost equals
//! the Levenshtein distance — tested below.

use mutree_distmat::DistanceMatrix;

use crate::DnaSeq;

/// Alignment penalties. All non-negative; costs are minimized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlignParams {
    /// Cost of aligning two different bases.
    pub mismatch: f64,
    /// One-time cost of starting a gap.
    pub gap_open: f64,
    /// Cost per base inside a gap (including the first).
    pub gap_extend: f64,
}

impl AlignParams {
    /// Penalties equivalent to unit edit distance.
    pub fn levenshtein() -> Self {
        AlignParams {
            mismatch: 1.0,
            gap_open: 0.0,
            gap_extend: 1.0,
        }
    }

    /// A typical DNA setting: mismatches cheap, gaps expensive to open.
    pub fn dna_default() -> Self {
        AlignParams {
            mismatch: 1.0,
            gap_open: 2.5,
            gap_extend: 0.5,
        }
    }
}

/// Minimum alignment cost between two sequences under affine gap
/// penalties — Gotoh's `O(|a|·|b|)` three-state dynamic program with
/// two-row rolling storage.
///
/// # Panics
///
/// Panics when any penalty is negative or non-finite.
pub fn align_cost(a: &DnaSeq, b: &DnaSeq, params: &AlignParams) -> f64 {
    assert!(
        params.mismatch >= 0.0 && params.gap_open >= 0.0 && params.gap_extend >= 0.0,
        "penalties must be non-negative"
    );
    assert!(
        params.mismatch.is_finite() && params.gap_open.is_finite() && params.gap_extend.is_finite(),
        "penalties must be finite"
    );
    let (a, b) = (a.codes(), b.codes());
    let gap = |len: f64| params.gap_open + params.gap_extend * len;
    if a.is_empty() {
        return if b.is_empty() {
            0.0
        } else {
            gap(b.len() as f64)
        };
    }
    if b.is_empty() {
        return gap(a.len() as f64);
    }

    const INF: f64 = f64::INFINITY;
    let w = b.len() + 1;
    // m = best ending in a match/mismatch; x = gap in `b` (consuming `a`);
    // y = gap in `a` (consuming `b`).
    let mut m_prev = vec![INF; w];
    let mut x_prev = vec![INF; w];
    let mut y_prev = vec![INF; w];
    m_prev[0] = 0.0;
    for (j, cell) in y_prev.iter_mut().enumerate().skip(1) {
        *cell = gap(j as f64);
    }
    let mut m_cur = vec![INF; w];
    let mut x_cur = vec![INF; w];
    let mut y_cur = vec![INF; w];

    for (i, &ca) in a.iter().enumerate() {
        m_cur[0] = INF;
        y_cur[0] = INF;
        x_cur[0] = gap((i + 1) as f64);
        for (j, &cb) in b.iter().enumerate() {
            let jj = j + 1;
            let sub = if ca == cb { 0.0 } else { params.mismatch };
            let best_prev_diag = m_prev[j].min(x_prev[j]).min(y_prev[j]);
            m_cur[jj] = best_prev_diag + sub;
            // Open a new gap in b (come from any state one row up) or
            // extend the running one.
            let up_best = m_prev[jj].min(y_prev[jj]) + params.gap_open + params.gap_extend;
            x_cur[jj] = up_best.min(x_prev[jj] + params.gap_extend);
            let left_best = m_cur[j].min(x_cur[j]) + params.gap_open + params.gap_extend;
            y_cur[jj] = left_best.min(y_cur[j] + params.gap_extend);
        }
        std::mem::swap(&mut m_prev, &mut m_cur);
        std::mem::swap(&mut x_prev, &mut x_cur);
        std::mem::swap(&mut y_prev, &mut y_cur);
    }
    let last = b.len();
    m_prev[last].min(x_prev[last]).min(y_prev[last])
}

/// Pairwise affine-gap alignment costs as a distance matrix.
///
/// The result is symmetric and zero-diagonal by construction; unlike plain
/// edit distance it is **not** guaranteed to satisfy the triangle
/// inequality when `gap_open > 0`, so callers that need a metric should
/// apply [`DistanceMatrix::metric_closure`].
///
/// # Panics
///
/// Panics when fewer than two sequences are given.
pub fn align_distance_matrix(seqs: &[DnaSeq], params: &AlignParams) -> DistanceMatrix {
    assert!(seqs.len() >= 2, "need at least two sequences");
    let n = seqs.len();
    let mut m = DistanceMatrix::zeros(n).expect("n >= 2");
    for i in 1..n {
        for j in 0..i {
            m.set(i, j, align_cost(&seqs[i], &seqs[j], params));
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit_distance;

    fn s(text: &str) -> DnaSeq {
        text.parse().unwrap()
    }

    #[test]
    fn levenshtein_params_match_edit_distance() {
        let params = AlignParams::levenshtein();
        let cases = [
            ("ACGT", "ACGT"),
            ("ACGT", "AGGT"),
            ("ACGT", "CGT"),
            ("GATTACA", "GCATGCA"),
            ("", "ACG"),
            ("AAAA", "TTTT"),
            ("ACGTACGTAC", "TACGTTACG"),
        ];
        for (a, b) in cases {
            let (a, b) = (s(a), s(b));
            assert_eq!(
                align_cost(&a, &b, &params),
                edit_distance(&a, &b) as f64,
                "{a} vs {b}"
            );
        }
    }

    #[test]
    fn affine_gaps_prefer_one_long_gap() {
        // Deleting "CCC" as one block: levenshtein cost 3 either way, but
        // with affine penalties one 3-gap (open + 3·extend = 2.5 + 1.5 = 4)
        // beats three 1-gaps (3·(2.5 + 0.5) = 9) — the DP must find the
        // single-block alignment.
        let params = AlignParams::dna_default();
        let a = s("AAACCCGGG");
        let b = s("AAAGGG");
        assert!((align_cost(&a, &b, &params) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn identical_sequences_cost_zero() {
        let params = AlignParams::dna_default();
        let a = s("ACGTACGT");
        assert_eq!(align_cost(&a, &a, &params), 0.0);
    }

    #[test]
    fn symmetric_costs() {
        let params = AlignParams::dna_default();
        let a = s("ACGTACGTAC");
        let b = s("TACGGTTC");
        assert!((align_cost(&a, &b, &params) - align_cost(&b, &a, &params)).abs() < 1e-12);
    }

    #[test]
    fn empty_sequences() {
        let params = AlignParams::dna_default();
        assert_eq!(align_cost(&DnaSeq::new(), &DnaSeq::new(), &params), 0.0);
        // One 4-base gap: 2.5 + 4·0.5.
        assert!((align_cost(&DnaSeq::new(), &s("ACGT"), &params) - 4.5).abs() < 1e-9);
    }

    #[test]
    fn matrix_builder_is_symmetric_zero_diagonal() {
        let seqs = vec![s("ACGTACGT"), s("ACGAACGT"), s("ACGT"), s("TTTTTTTT")];
        let m = align_distance_matrix(&seqs, &AlignParams::dna_default());
        assert_eq!(m.len(), 4);
        assert!(m.get(0, 1) > 0.0);
        assert_eq!(m.get(2, 2), 0.0);
        // Mismatch-only pair costs 1 mismatch.
        assert!((m.get(0, 1) - 1.0).abs() < 1e-9);
        // Gap pair costs open + 4 extends.
        assert!((m.get(0, 2) - 4.5).abs() < 1e-9);
    }

    #[test]
    fn mismatch_cheaper_than_gap_pair_when_configured() {
        // With expensive gaps the aligner substitutes instead of gapping.
        let params = AlignParams {
            mismatch: 0.5,
            gap_open: 10.0,
            gap_extend: 5.0,
        };
        let a = s("ACGT");
        let b = s("AGGT");
        assert!((align_cost(&a, &b, &params) - 0.5).abs() < 1e-9);
    }
}
