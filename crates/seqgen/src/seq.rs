use std::fmt;

/// Errors from sequence parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeqError {
    /// A character outside `ACGTacgt` was encountered.
    InvalidBase {
        /// Byte offset of the bad character.
        at: usize,
        /// The offending character.
        found: char,
    },
}

impl fmt::Display for SeqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqError::InvalidBase { at, found } => {
                write!(f, "invalid base {found:?} at position {at}")
            }
        }
    }
}

impl std::error::Error for SeqError {}

/// A DNA sequence over the alphabet `{A, C, G, T}`, stored as base codes
/// `0..4` (`A=0, C=1, G=2, T=3`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct DnaSeq {
    bases: Vec<u8>,
}

impl DnaSeq {
    const LETTERS: [char; 4] = ['A', 'C', 'G', 'T'];

    /// An empty sequence.
    pub fn new() -> Self {
        DnaSeq::default()
    }

    /// Builds a sequence from raw base codes.
    ///
    /// # Panics
    ///
    /// Panics when a code is not in `0..4`.
    pub fn from_codes(bases: Vec<u8>) -> Self {
        assert!(bases.iter().all(|&b| b < 4), "base codes must be 0..4");
        DnaSeq { bases }
    }

    /// Parses `ACGT` text (case-insensitive).
    ///
    /// # Errors
    ///
    /// [`SeqError::InvalidBase`] on any other character.
    pub fn parse(text: &str) -> Result<Self, SeqError> {
        let mut bases = Vec::with_capacity(text.len());
        for (at, ch) in text.chars().enumerate() {
            let code = match ch.to_ascii_uppercase() {
                'A' => 0,
                'C' => 1,
                'G' => 2,
                'T' => 3,
                found => return Err(SeqError::InvalidBase { at, found }),
            };
            bases.push(code);
        }
        Ok(DnaSeq { bases })
    }

    /// Sequence length in bases.
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// Whether the sequence has no bases.
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }

    /// The raw base codes (`0..4`).
    pub fn codes(&self) -> &[u8] {
        &self.bases
    }

    /// Mutable access to the base codes for in-place evolution.
    pub(crate) fn codes_mut(&mut self) -> &mut Vec<u8> {
        &mut self.bases
    }
}

impl fmt::Display for DnaSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.bases {
            write!(f, "{}", DnaSeq::LETTERS[b as usize])?;
        }
        Ok(())
    }
}

impl std::str::FromStr for DnaSeq {
    type Err = SeqError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DnaSeq::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let s: DnaSeq = "ACGTacgt".parse().unwrap();
        assert_eq!(s.len(), 8);
        assert_eq!(s.to_string(), "ACGTACGT");
    }

    #[test]
    fn rejects_invalid_bases() {
        let err = DnaSeq::parse("ACGX").unwrap_err();
        assert_eq!(err, SeqError::InvalidBase { at: 3, found: 'X' });
    }

    #[test]
    fn empty_sequence() {
        let s = DnaSeq::new();
        assert!(s.is_empty());
        assert_eq!(s.to_string(), "");
    }

    #[test]
    #[should_panic(expected = "base codes")]
    fn from_codes_validates() {
        DnaSeq::from_codes(vec![0, 4]);
    }
}
