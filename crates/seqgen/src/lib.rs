//! Synthetic molecular sequence data for phylogenetic experiments.
//!
//! The PaCT 2005 paper evaluates on distance matrices computed from **Human
//! Mitochondrial DNA** — data we do not have. This crate builds the closest
//! synthetic equivalent, exercising the same code paths:
//!
//! 1. draw a random clock-like genealogy ([`random_coalescent`] — the
//!    Kingman coalescent yields an ultrametric tree, matching the
//!    molecular-clock assumption behind ultrametric tree reconstruction);
//! 2. evolve a DNA sequence down the tree under a substitution model with
//!    optional insertions/deletions ([`evolve`], [`SubstitutionModel`]);
//! 3. compute all pairwise **edit distances** ([`edit_distance`], a full
//!    dynamic program — the paper's "distance as the edit distance for any
//!    two of species") into a [`DistanceMatrix`].
//!
//! Levenshtein distance is a metric, so the resulting matrices satisfy the
//! triangle inequality the algorithms assume; because the genealogy is
//! clock-like they are *near*-ultrametric and strongly clustered — exactly
//! the structure that makes compact sets effective on real mtDNA.
//!
//! The one-call entry point for experiments is [`hmdna_like_matrix`].
//!
//! ```
//! use rand::SeedableRng;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let m = mutree_seqgen::hmdna_like_matrix(8, 200, &mut rng);
//! assert_eq!(m.len(), 8);
//! assert!(m.is_metric(1e-9));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod align;

mod distance;
mod evolve;
mod fasta;
mod seq;

pub use distance::{distance_matrix, edit_distance, jc_distance, p_distance, DistanceKind};
pub use evolve::{
    evolve, random_coalescent, random_root_sequence, EvolutionParams, SubstitutionModel,
};
pub use fasta::{parse_fasta, to_fasta, FastaRecord};
pub use seq::{DnaSeq, SeqError};

use mutree_distmat::DistanceMatrix;
use rand::Rng;

/// Generates a complete "HMDNA-like" distance matrix over `n` species:
/// coalescent genealogy, Kimura 2-parameter evolution with a light indel
/// process, pairwise edit distances. Labels are `HMDNA_00`, `HMDNA_01`, …
///
/// `seq_len` controls resolution: longer sequences give smoother, more
/// tree-like matrices. 200–500 is plenty for experiments up to ~40 species.
///
/// # Panics
///
/// Panics when `n < 2` or `seq_len == 0`.
pub fn hmdna_like_matrix<R: Rng + ?Sized>(n: usize, seq_len: usize, rng: &mut R) -> DistanceMatrix {
    let params = EvolutionParams {
        model: SubstitutionModel::Kimura {
            transition_rate: 0.04,
            transversion_rate: 0.01,
        },
        indel_rate: 0.002,
        rate_variation: 0.1,
    };
    let tree = random_coalescent(n, 1.0, rng);
    let root = random_root_sequence(seq_len, rng);
    let seqs = evolve(&tree, &root, &params, rng);
    let mut m = distance_matrix(&seqs, DistanceKind::Edit);
    m.set_labels((0..n).map(|i| format!("HMDNA_{i:02}")));
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hmdna_like_matrix_is_metric_and_labeled() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = hmdna_like_matrix(10, 150, &mut rng);
        assert_eq!(m.len(), 10);
        assert!(m.is_metric(1e-9));
        assert_eq!(m.label(0), "HMDNA_00");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = hmdna_like_matrix(6, 100, &mut StdRng::seed_from_u64(5));
        let b = hmdna_like_matrix(6, 100, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn clockiness_makes_it_near_ultrametric() {
        // Relative ultrametric violations should be modest for long
        // sequences: check the three-point condition with a generous slack.
        let mut rng = StdRng::seed_from_u64(11);
        let m = hmdna_like_matrix(8, 2000, &mut rng);
        let slack = 0.35 * m.max_distance();
        assert!(m.is_ultrametric(slack));
    }
}
